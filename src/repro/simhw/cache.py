"""Set-associative LRU cache simulator.

The paper's memory model needs LLC miss counts (assumption 3a: "we only
explicitly consider LLC").  Workloads normally use the *analytic* miss models
in :mod:`repro.simhw.memtrace` for speed; this trace-driven simulator is the
reference implementation those models are validated against (see
``tests/test_memtrace.py``) and the backend for trace-based profiling.

The design follows the usual software-cache idiom: per-set tag arrays plus an
age matrix for LRU, stored in NumPy arrays.  Individual accesses are processed
in Python, but :meth:`SetAssociativeCache.access_block` accepts a whole vector
of line addresses so callers amortise the call overhead, per the HPC guidance
of batching work into array operations where the algorithm allows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of a simulated cache."""

    capacity_bytes: int
    line_size: int = 64
    associativity: int = 16

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("capacity_bytes must be > 0")
        if self.line_size <= 0 or (self.line_size & (self.line_size - 1)) != 0:
            raise ConfigurationError("line_size must be a positive power of two")
        if self.associativity < 1:
            raise ConfigurationError("associativity must be >= 1")
        if self.capacity_bytes % (self.line_size * self.associativity) != 0:
            raise ConfigurationError(
                "capacity must be divisible by line_size * associativity"
            )

    @property
    def n_sets(self) -> int:
        return self.capacity_bytes // (self.line_size * self.associativity)

    @property
    def n_lines(self) -> int:
        return self.capacity_bytes // self.line_size


@dataclass
class CacheStats:
    """Hit/miss counters accumulated by a cache instance."""

    accesses: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        """Zero all counters."""
        self.accesses = 0
        self.misses = 0
        self.evictions = 0


class SetAssociativeCache:
    """An LRU set-associative cache operating on byte addresses."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self._line_shift = config.line_size.bit_length() - 1
        self._n_sets = config.n_sets
        # tags[set, way]; -1 marks an invalid way.
        self._tags = np.full((self._n_sets, config.associativity), -1, dtype=np.int64)
        # Monotone access counter per way for LRU; smaller is older.
        self._age = np.zeros((self._n_sets, config.associativity), dtype=np.int64)
        self._tick = 0
        self.stats = CacheStats()

    def reset(self) -> None:
        """Invalidate all lines and clear statistics."""
        self._tags.fill(-1)
        self._age.fill(0)
        self._tick = 0
        self.stats.reset()

    # -- access paths --------------------------------------------------------

    def access(self, address: int) -> bool:
        """Access one byte address.  Returns ``True`` on hit."""
        line = address >> self._line_shift
        return self._access_line(line)

    def _access_line(self, line: int) -> bool:
        set_idx = line % self._n_sets
        tags = self._tags[set_idx]
        self._tick += 1
        self.stats.accesses += 1
        ways = np.nonzero(tags == line)[0]
        if ways.size:
            self._age[set_idx, ways[0]] = self._tick
            return True
        self.stats.misses += 1
        invalid = np.nonzero(tags == -1)[0]
        if invalid.size:
            way = invalid[0]
        else:
            way = int(np.argmin(self._age[set_idx]))
            self.stats.evictions += 1
        tags[way] = line
        self._age[set_idx, way] = self._tick
        return False

    def access_block(self, addresses: np.ndarray) -> int:
        """Access a vector of byte addresses in order; return the number of
        misses incurred by the block."""
        addresses = np.asarray(addresses, dtype=np.int64)
        lines = addresses >> self._line_shift
        before = self.stats.misses
        for line in lines:
            self._access_line(int(line))
        return self.stats.misses - before

    # -- introspection --------------------------------------------------------

    def contains(self, address: int) -> bool:
        """True if the line holding ``address`` is currently resident."""
        line = address >> self._line_shift
        set_idx = line % self._n_sets
        return bool((self._tags[set_idx] == line).any())

    @property
    def resident_lines(self) -> int:
        """Number of valid lines currently held."""
        return int((self._tags >= 0).sum())
