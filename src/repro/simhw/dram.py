"""Fluid DRAM-contention model.

The paper's burden factors exist to predict one phenomenon: *memory resource
contention* — DRAM bandwidth saturation plus queueing delay (Section I cites
[7, 9]).  This module is the ground-truth source of that phenomenon in the
simulated machine.

Model
-----
Each running compute segment *i* is characterised by its **memory fraction**
``f_i`` (share of its uncontended duration spent stalled on LLC misses) and
its **demand bandwidth** ``d_i`` (bytes/s it would pull from DRAM when
running at full speed; misses are assumed uniformly spread through the
segment).  All segments share one stall-inflation factor ``k ≥ 1``: a
segment's slowdown is

    s_i(k) = (1 − f_i) + f_i · k,

its achieved traffic is ``d_i / s_i(k)`` (misses are conserved — a slowed
segment issues the same misses over a longer wall time), and the aggregate
achieved bandwidth is ``A(k) = Σ d_i / s_i(k)``.

``k`` is determined self-consistently:

- **Below saturation** (A at the queue-only inflation still fits in the peak
  bandwidth ``B``): ``k = q(u)`` where ``u = Δ/B`` is the demand utilisation
  and ``q(u) = 1 + κ·u²/(1+u)`` (clamped at u = 1) models memory-controller
  queueing — latency creeps up as the system approaches saturation.
- **At saturation**: ``k`` solves ``A(k) = B`` exactly (monotone in ``k``,
  solved by bisection), so the aggregate achieved bandwidth never exceeds
  the peak, regardless of how compute-diluted the segments are.

The effective stall per LLC miss observed by the simulated counters is
``ω_eff = ω₀ · k``.  The model is deterministic and piecewise-constant
between scheduling events, which is what lets the discrete-event kernel
treat compute progress as piecewise-linear.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.errors import ConfigurationError
from repro.obs import get_metrics
from repro.simhw.machine import MachineConfig

#: Relative tolerance of the bandwidth-cap root solve.
_SOLVE_TOL = 1e-9

#: Ceiling of the stall multiplier; only reachable with physically
#: inconsistent segment demands (traffic without proportional stall time).
_K_MAX = 1e12


def _quantize(x: float) -> float:
    """Round to 12 significant digits for cache keying.

    Collapsing float noise three orders of magnitude below the solver
    tolerance (1e-9 relative) lets running sets that differ only by
    accumulated rounding share a cache slot without observably changing the
    returned multiplier."""
    return float(f"{x:.12g}")


@dataclass(frozen=True)
class SegmentDemand:
    """Memory demand of one running compute segment.

    Attributes
    ----------
    mem_fraction:
        Fraction of the segment's uncontended duration that is LLC-miss
        stall time, in [0, 1].
    demand_bytes_per_sec:
        DRAM traffic the segment generates when running at full speed.
    """

    mem_fraction: float
    demand_bytes_per_sec: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.mem_fraction <= 1.0:
            raise ConfigurationError(
                f"mem_fraction must be in [0, 1], got {self.mem_fraction!r}"
            )
        if self.demand_bytes_per_sec < 0:
            raise ConfigurationError(
                f"demand_bytes_per_sec must be >= 0, got {self.demand_bytes_per_sec!r}"
            )


class DramModel:
    """Self-consistent bandwidth sharing for concurrent compute segments."""

    def __init__(
        self,
        config: MachineConfig,
        peak_bytes_per_sec: float | None = None,
        cache_size: int | None = None,
    ) -> None:
        """``peak_bytes_per_sec`` overrides the pool's capacity — used for
        per-socket pools on NUMA machines (each socket gets
        ``config.dram_peak_bytes_per_sec_per_socket``).

        ``cache_size`` bounds the LRU memo of :meth:`stall_multiplier`
        results (running sets recur constantly across DES timeslices, so the
        200-step bisection is usually redundant); ``None`` takes the
        machine's ``dram_solve_cache`` knob and ``0`` disables caching."""
        self.config = config
        self._peak = (
            peak_bytes_per_sec
            if peak_bytes_per_sec is not None
            else config.dram_peak_bytes_per_sec
        )
        self._kappa = config.dram_queue_gain
        self._cache_size = (
            config.dram_solve_cache if cache_size is None else cache_size
        )
        #: LRU memo: quantized (mem_fraction, demand) multiset -> k.
        self._cache: OrderedDict[tuple, float] = OrderedDict()
        #: Warm-start bracket: the last saturated solve's upper bound, reused
        #: as the initial ``hi`` so the doubling search rarely re-runs.
        self._warm_hi = 0.0
        self.cache_hits = 0
        self.cache_misses = 0

    # -- scalar curves ------------------------------------------------------

    def utilisation(self, total_demand: float) -> float:
        """u = Δ/B for aggregate demand ``total_demand`` in bytes/s."""
        return max(0.0, total_demand) / self._peak

    def queue_factor(self, u: float) -> float:
        """q(u) — latency inflation from memory-controller queueing, clamped
        at u = 1 (beyond saturation the serialisation is captured by the
        bandwidth-cap solve, not by per-access latency growth)."""
        if u <= 0.0:
            return 1.0
        uc = min(u, 1.0)
        return 1.0 + self._kappa * uc * uc / (1.0 + uc)

    # -- the shared inflation factor -------------------------------------------

    def stall_multiplier(self, segments: Sequence[SegmentDemand]) -> float:
        """The common factor k by which every segment's per-miss stall is
        inflated, given the currently running set.

        Results are memoised in a bounded LRU keyed by the quantized
        multiset of ``(mem_fraction, demand)`` pairs: the DES kernel
        re-solves on every running-set change, and identical sets recur
        constantly across timeslices."""
        total = sum(s.demand_bytes_per_sec for s in segments)
        if total <= 0:
            return 1.0
        key = None
        if self._cache_size > 0:
            key = tuple(
                sorted(
                    (_quantize(s.mem_fraction), _quantize(s.demand_bytes_per_sec))
                    for s in segments
                    if s.demand_bytes_per_sec > 0
                )
            )
            cached = self._cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                self._cache.move_to_end(key)
                return cached
        self.cache_misses += 1
        k = self._solve(segments, total)
        if key is not None:
            self._cache[key] = k
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
        return k

    def _solve(self, segments: Sequence[SegmentDemand], total: float) -> float:
        k_queue = self.queue_factor(self.utilisation(total))
        if self._achieved(segments, k_queue) <= self._peak:
            return k_queue
        # Saturated: solve A(k) = B.  A is strictly decreasing in k (every
        # segment with d_i > 0 has f_i > 0 because misses imply stall time).
        # This bisection is the expensive path (hit only on memo misses at
        # saturation), so it is worth a process-wide counter; the per-call
        # hit/miss totals are bridged from cache_info() at replay end.
        get_metrics().inc("dram.solve.bisections")
        lo, hi = k_queue, max(2.0 * k_queue, 2.0)
        if self._warm_hi > hi:
            hi = self._warm_hi
        while self._achieved(segments, hi) > self._peak:
            hi *= 2.0
            if hi > _K_MAX:
                # Physically inconsistent demand (huge traffic, ~zero memory
                # fraction) cannot be throttled below peak: saturate the
                # multiplier instead of diverging.
                return _K_MAX
        self._warm_hi = hi
        for _ in range(200):
            mid = 0.5 * (lo + hi)
            if self._achieved(segments, mid) > self._peak:
                lo = mid
            else:
                hi = mid
            if hi - lo <= _SOLVE_TOL * hi:
                break
        return 0.5 * (lo + hi)

    def solve_batch(self, mem_fractions, demands, warm_hi=None):
        """Vectorized :meth:`stall_multiplier` over independent lanes.

        ``mem_fractions`` and ``demands`` are ``(n_lanes, n_segs)`` arrays
        describing one running set per lane, padded with zero-demand
        columns (which are exact no-ops, as in the scalar path).
        ``warm_hi`` optionally carries each lane's warm-start bracket; the
        updated brackets are returned so callers can thread them through
        successive rounds exactly like ``_solve`` threads ``_warm_hi``.

        Returns ``(k, warm_hi_out)`` float64 arrays.  Every lane follows
        the scalar solve bit for bit — same queue-factor expression, same
        test-then-double bracket growth with the ``_K_MAX`` cap, same
        200-step bisection with the post-update tolerance check — via
        elementwise IEEE-754 ops and per-lane masks, so batching never
        changes a result.  The columnar sweep engine uses this to answer
        many concurrent replay walks with one convergence loop.

        This entry point is stateless with respect to the pool: it does
        not read or write ``_cache``/``_warm_hi`` (each caller owns its
        own memo, mirroring the one-pool-per-kernel structure).
        """
        import numpy as np

        F = np.asarray(mem_fractions, dtype=np.float64)
        D = np.asarray(demands, dtype=np.float64)
        n, width = D.shape
        wh_in = (
            np.zeros(n)
            if warm_hi is None
            else np.asarray(warm_hi, dtype=np.float64)
        )

        # Sequential per-segment accumulation: matches the scalar sum()
        # (adding 0.0 for padded columns is an exact identity).
        total = np.zeros(n)
        for j in range(width):
            total = total + D[:, j]

        def achieved(k):
            acc = np.zeros(n)
            for j in range(width):
                d = D[:, j]
                f = F[:, j]
                acc = acc + np.where(d > 0.0, d / (1.0 - f + f * k), 0.0)
            return acc

        u = np.maximum(0.0, total) / self._peak
        uc = np.minimum(u, 1.0)
        # queue_factor: at u <= 0 the second term is exactly 0.0.
        k_queue = 1.0 + self._kappa * uc * uc / (1.0 + uc)
        k = k_queue.copy()
        sat = achieved(k_queue) > self._peak
        wh_out = wh_in.copy()
        n_sat = int(sat.sum())
        if n_sat == 0:
            return k, wh_out
        get_metrics().inc("dram.solve.bisections", float(n_sat))

        lo = k_queue.copy()
        hi = np.maximum(2.0 * k_queue, 2.0)
        hi = np.where(wh_in > hi, wh_in, hi)
        capped = np.zeros(n, dtype=bool)
        active = sat.copy()
        while True:
            need = active & (achieved(hi) > self._peak)
            if not need.any():
                break
            hi = np.where(need, hi * 2.0, hi)
            newly = need & (hi > _K_MAX)
            if newly.any():
                k = np.where(newly, _K_MAX, k)
                capped |= newly
                active = active & ~newly
        wh_out = np.where(sat & ~capped, hi, wh_out)

        solving = sat & ~capped
        done = ~solving
        for _ in range(200):
            if done.all():
                break
            mid = 0.5 * (lo + hi)
            over = achieved(mid) > self._peak
            lo = np.where(~done & over, mid, lo)
            hi = np.where(~done & ~over, mid, hi)
            done = done | (hi - lo <= _SOLVE_TOL * hi)
        k = np.where(solving, 0.5 * (lo + hi), k)
        return k, wh_out

    @property
    def peak_bytes_per_sec(self) -> float:
        """The pool's configured peak bandwidth cap (bytes/s)."""
        return self._peak

    def achieved_bandwidth(
        self, segments: Sequence[SegmentDemand], k: float
    ) -> float:
        """A(k) — aggregate achieved bytes/s at stall multiplier ``k``."""
        return self._achieved(segments, k)

    def cache_info(self) -> dict[str, int]:
        """Hit/miss counters plus current and maximum cache size."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "size": len(self._cache),
            "maxsize": self._cache_size,
        }

    def clear_cache(self) -> None:
        """Drop all memoised solves and reset the counters."""
        self._cache.clear()
        self._warm_hi = 0.0
        self.cache_hits = 0
        self.cache_misses = 0

    def _achieved(self, segments: Sequence[SegmentDemand], k: float) -> float:
        return sum(
            s.demand_bytes_per_sec / (1.0 - s.mem_fraction + s.mem_fraction * k)
            for s in segments
            if s.demand_bytes_per_sec > 0
        )

    def effective_miss_stall(self, segments: Sequence[SegmentDemand]) -> float:
        """ω_eff — stall cycles per LLC miss for the running set."""
        return self.config.base_miss_stall * self.stall_multiplier(segments)

    # -- per-segment slowdowns ----------------------------------------------

    def slowdowns(self, segments: Sequence[SegmentDemand]) -> list[float]:
        """Instantaneous slowdown factor s_i ≥ 1 for each running segment.

        The returned factors convert *uncontended* cycles into wall cycles:
        a segment with ``r`` base cycles remaining completes after
        ``r * s_i`` wall cycles if the running set does not change.
        """
        if not segments:
            return []
        k = self.stall_multiplier(segments)
        return [1.0 - s.mem_fraction + s.mem_fraction * k for s in segments]

    def aggregate_achieved_bandwidth(
        self, segments: Iterable[SegmentDemand]
    ) -> float:
        """Total bytes/s actually transferred (never exceeds the peak)."""
        segs = list(segments)
        if not segs:
            return 0.0
        return self._achieved(segs, self.stall_multiplier(segs))
