"""Machine configuration.

:class:`MachineConfig` bundles every hardware parameter the simulation needs.
The default, :data:`WESTMERE_12`, mirrors the paper's experimental platform
(Section VII-A): a 12-core two-socket Intel Xeon (Westmere) with 12 MB LLC,
hardware prefetchers disabled, Hyper-Threading/Turbo/SpeedStep off.  Absolute
numbers (frequency, DRAM bandwidth) are representative, not measured — the
reproduction targets the *shape* of results, and every consumer reads these
values from the config rather than hard-coding them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MachineConfig:
    """Parameters of the simulated multicore machine.

    Attributes
    ----------
    n_cores:
        Number of physical cores (no SMT; paper assumption 3c).
    freq_ghz:
        Core clock in GHz; converts cycles to wall seconds for bandwidth math.
    line_size:
        Cache-line size in bytes; one LLC miss moves one line from DRAM.
    llc_bytes / llc_assoc:
        Last-level cache capacity and associativity (assumption 3a: only the
        LLC is modelled explicitly).
    base_miss_stall:
        ω₀ — *effective* CPU stall cycles per LLC miss with an idle memory
        system.  This is the post-overlap value: out-of-order cores sustain
        several misses in flight (memory-level parallelism), so the
        serialized cost per miss is far below the raw DRAM latency.  With the
        defaults (30 cycles, 64 B lines, 2.8 GHz) a fully memory-bound core
        demands 64·2.8e9/30 ≈ 6 GB/s — half the 12 GB/s socket peak — so
        streaming workloads saturate at realistic core counts.
    dram_peak_gbs:
        Peak sustainable DRAM bandwidth in GB/s shared by all cores; the
        contention model caps aggregate achieved traffic at this value.
    dram_queue_gain:
        κ — coefficient of the queueing-latency factor below saturation.
    timeslice_cycles:
        OS scheduler quantum in cycles (preemptive round-robin).
    tracer_overhead_cycles:
        Cost charged to the profiled program per annotation event; the
        interval profiler must subtract it (Section VI-A).
    """

    n_cores: int = 12
    #: Number of sockets; ``dram_peak_gbs`` is the *total* machine bandwidth,
    #: split evenly into per-socket pools.  Core *i* belongs to socket
    #: ``i % n_sockets`` (interleaved, modelling an OS that spreads threads).
    #: The default of 1 keeps the memory system a single pool — the paper's
    #: own simplification (assumption 3) — while 2 reproduces the
    #: multi-socket deviations the paper observes ("such a 20% deviation in
    #: speedups is often observed in multiple socket machines").
    n_sockets: int = 1
    freq_ghz: float = 2.8
    line_size: int = 64
    llc_bytes: int = 12 * 2**20
    llc_assoc: int = 16
    base_miss_stall: float = 30.0
    dram_peak_gbs: float = 12.0
    dram_queue_gain: float = 0.6
    timeslice_cycles: float = 2_000_000.0
    tracer_overhead_cycles: float = 120.0
    #: Cost charged to a thread when a core switches to it from a different
    #: thread (register save/restore + cache warmup).  Defaults to 0 so the
    #: abstract-machine reproductions (e.g. the exact Fig. 7 numbers) hold;
    #: set a few thousand cycles to study oversubscription realistically
    #: (see benchmarks/bench_sec3_recursive_paradigms.py).
    context_switch_cycles: float = 0.0
    #: Bound of the per-pool LRU memo over DRAM stall-multiplier solves
    #: (running sets recur constantly across DES timeslices).  0 disables
    #: caching and forces every solve to run the bisection from scratch.
    dram_solve_cache: int = 256

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ConfigurationError(f"n_cores must be >= 1, got {self.n_cores}")
        if self.n_sockets < 1:
            raise ConfigurationError(f"n_sockets must be >= 1, got {self.n_sockets}")
        if self.n_cores % self.n_sockets != 0:
            raise ConfigurationError(
                f"n_cores ({self.n_cores}) must divide evenly into "
                f"{self.n_sockets} socket(s)"
            )
        if self.freq_ghz <= 0:
            raise ConfigurationError(f"freq_ghz must be > 0, got {self.freq_ghz}")
        if self.line_size <= 0 or (self.line_size & (self.line_size - 1)) != 0:
            raise ConfigurationError(
                f"line_size must be a positive power of two, got {self.line_size}"
            )
        if self.llc_bytes <= 0:
            raise ConfigurationError(f"llc_bytes must be > 0, got {self.llc_bytes}")
        if self.llc_assoc < 1:
            raise ConfigurationError(f"llc_assoc must be >= 1, got {self.llc_assoc}")
        if self.base_miss_stall < 0:
            raise ConfigurationError("base_miss_stall must be >= 0")
        if self.dram_peak_gbs <= 0:
            raise ConfigurationError("dram_peak_gbs must be > 0")
        if self.dram_queue_gain < 0:
            raise ConfigurationError("dram_queue_gain must be >= 0")
        if self.timeslice_cycles <= 0:
            raise ConfigurationError("timeslice_cycles must be > 0")
        if self.tracer_overhead_cycles < 0:
            raise ConfigurationError("tracer_overhead_cycles must be >= 0")
        if self.context_switch_cycles < 0:
            raise ConfigurationError("context_switch_cycles must be >= 0")
        if self.dram_solve_cache < 0:
            raise ConfigurationError("dram_solve_cache must be >= 0")

    # -- unit conversions ---------------------------------------------------

    @property
    def freq_hz(self) -> float:
        """Core frequency in Hz."""
        return self.freq_ghz * 1e9

    @property
    def dram_peak_bytes_per_sec(self) -> float:
        """Peak DRAM bandwidth in bytes/second."""
        return self.dram_peak_gbs * 1e9

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count to wall-clock seconds."""
        return cycles / self.freq_hz

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert wall-clock seconds to cycles."""
        return seconds * self.freq_hz

    def traffic_mbs(self, llc_misses: float, cycles: float) -> float:
        """DRAM traffic in MB/s generated by ``llc_misses`` line fills spread
        over ``cycles`` cycles (the δ of Section V-D)."""
        if cycles <= 0:
            return 0.0
        seconds = self.cycles_to_seconds(cycles)
        return llc_misses * self.line_size / seconds / 1e6

    def socket_of(self, core: int) -> int:
        """The socket core ``core`` belongs to (interleaved mapping)."""
        return core % self.n_sockets

    @property
    def dram_peak_bytes_per_sec_per_socket(self) -> float:
        """Each socket's share of the total peak bandwidth."""
        return self.dram_peak_bytes_per_sec / self.n_sockets

    def with_cores(self, n_cores: int) -> "MachineConfig":
        """A copy of this config with a different core count (socket count
        reduced to 1 if it no longer divides evenly)."""
        sockets = self.n_sockets if n_cores % self.n_sockets == 0 else 1
        return replace(self, n_cores=n_cores, n_sockets=sockets)


#: Default machine mirroring the paper's 12-core Westmere Xeon testbed,
#: with the memory system as one pool (the paper's assumption 3).
WESTMERE_12 = MachineConfig()

#: The same machine with its two sockets modelled as separate DRAM pools —
#: the configuration behind the paper's observation that multi-socket boxes
#: show ~20 % speedup deviations (Section VII-B).
WESTMERE_12_NUMA = MachineConfig(n_sockets=2)
