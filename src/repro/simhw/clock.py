"""Virtual cycle clock.

Every component of the simulated machine — OS kernel, runtimes, profiler —
reads time from one :class:`VirtualClock`.  The unit is *CPU cycles* (the
paper profiles with ``rdtsc()``, which also counts cycles).  Time is a float
so fluid-rate compute segments can finish at fractional instants; callers that
need an integer stamp should round explicitly.
"""

from __future__ import annotations

from repro.errors import SimulationError


class VirtualClock:
    """A monotonically non-decreasing cycle counter.

    The clock refuses to move backwards; that invariant catches event-queue
    ordering bugs in the DES kernel early instead of letting them corrupt
    interval measurements silently.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current time in cycles."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Move the clock forward to absolute time ``t`` (cycles)."""
        if t < self._now - 1e-9:
            raise SimulationError(
                f"clock moving backwards: now={self._now!r}, requested={t!r}"
            )
        # Clamp tiny negative drift from float arithmetic instead of
        # accumulating it into the timeline.
        self._now = max(self._now, float(t))

    def advance_by(self, dt: float) -> None:
        """Move the clock forward by ``dt`` cycles."""
        if dt < 0:
            raise SimulationError(f"cannot advance clock by negative dt {dt!r}")
        self._now += float(dt)

    def reset(self, start: float = 0.0) -> None:
        """Rewind the clock (only meaningful between independent runs)."""
        if start < 0:
            raise SimulationError(f"clock cannot reset to negative time {start!r}")
        self._now = float(start)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now:.1f})"
