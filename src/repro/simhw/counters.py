"""PAPI-like performance counter facade.

The paper collects hardware counters per top-level parallel section
(Section IV-B): instruction count N, elapsed cycles T, and LLC misses D,
from which the memory model derives MPI = D/N and DRAM traffic δ.  This
module is the wrapper layer: the simulated machine *accumulates* into a
:class:`CounterSet`, and :class:`PerfCounters` exposes start/stop semantics
matching how the profiler brackets top-level sections.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.simhw.machine import MachineConfig


@dataclass
class CounterSet:
    """A snapshot-or-accumulator of the three counters the model consumes."""

    instructions: float = 0.0
    cycles: float = 0.0
    llc_misses: float = 0.0

    def add(self, other: "CounterSet") -> None:
        """Accumulate ``other`` into this set."""
        self.instructions += other.instructions
        self.cycles += other.cycles
        self.llc_misses += other.llc_misses

    def copy(self) -> "CounterSet":
        """An independent snapshot of the current values."""
        return CounterSet(self.instructions, self.cycles, self.llc_misses)

    def __sub__(self, other: "CounterSet") -> "CounterSet":
        return CounterSet(
            self.instructions - other.instructions,
            self.cycles - other.cycles,
            self.llc_misses - other.llc_misses,
        )

    # -- derived metrics (Section V-B symbols) -------------------------------

    @property
    def mpi(self) -> float:
        """MPI — LLC misses per instruction (D/N)."""
        return self.llc_misses / self.instructions if self.instructions else 0.0

    @property
    def cpi(self) -> float:
        """Average cycles per instruction (T/N)."""
        return self.cycles / self.instructions if self.instructions else 0.0

    def traffic_mbs(self, config: MachineConfig) -> float:
        """δ — DRAM traffic in MB/s over the measured interval."""
        return config.traffic_mbs(self.llc_misses, self.cycles)


class PerfCounters:
    """Start/stop counter collection against a live accumulator.

    The machine owns one global :class:`CounterSet` accumulator that every
    retired compute segment adds to; a :class:`PerfCounters` instance takes a
    snapshot at ``start()`` and reports the delta at ``stop()`` — exactly the
    discipline the profiler uses around top-level parallel sections.
    """

    def __init__(self, accumulator: CounterSet) -> None:
        self._acc = accumulator
        self._start: CounterSet | None = None
        self._start_time: float | None = None

    @property
    def running(self) -> bool:
        return self._start is not None

    def start(self, now: float) -> None:
        """Snapshot the accumulator; collection runs until :meth:`stop`."""
        if self._start is not None:
            raise SimulationError("performance counters already running")
        self._start = self._acc.copy()
        self._start_time = now

    def stop(self, now: float) -> CounterSet:
        """Stop collection; returns the counter delta with ``cycles`` forced
        to the wall-cycle interval (T is elapsed time, not a core counter)."""
        if self._start is None or self._start_time is None:
            raise SimulationError("performance counters are not running")
        delta = self._acc - self._start
        delta.cycles = now - self._start_time
        self._start = None
        self._start_time = None
        return delta
