"""Memory behaviour specifications, analytic LLC-miss models, and synthetic
address-trace generation.

Workloads describe each compute segment's memory behaviour with a
:class:`MemSpec` — *pattern*, *bytes touched*, *working-set size* — instead of
a full address trace.  :func:`analytic_llc_misses` lowers a spec to an
expected LLC miss count using standard first-order cache reasoning:

- ``STREAMING``: every line is touched once and the footprint exceeds the
  LLC, so misses ≈ bytes / line_size (compulsory, no reuse).
- ``RESIDENT``: the working set fits in the LLC; after cold misses for the
  working set, all reuse hits.
- ``RANDOM``: uniform random accesses over a working set; the steady-state
  hit probability equals the fraction of the working set that is resident,
  ``min(1, llc/ws)``.

:func:`generate_trace` produces an actual address stream with the same
nominal behaviour so the analytic models can be validated against the
reference simulator in :mod:`repro.simhw.cache`.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


class AccessPattern(enum.Enum):
    """Qualitative classes of memory access behaviour."""

    #: No memory traffic beyond registers/L1 — e.g. NPB-EP's RNG loop.
    NONE = "none"
    #: Sequential sweep over a footprint larger than the LLC.
    STREAMING = "streaming"
    #: Repeated accesses within an LLC-resident working set.
    RESIDENT = "resident"
    #: Uniform random accesses over a working set (sparse codes, e.g. CG).
    RANDOM = "random"


@dataclass(frozen=True)
class MemSpec:
    """Memory behaviour of one compute segment.

    Attributes
    ----------
    pattern:
        Which first-order model applies.
    bytes_touched:
        Total bytes read/written by the segment (counting repeats).
    working_set:
        Size of the data region the accesses fall in; for ``STREAMING`` this
        equals ``bytes_touched`` unless the sweep revisits the region.
    """

    pattern: AccessPattern = AccessPattern.NONE
    bytes_touched: int = 0
    working_set: int = 0

    def __post_init__(self) -> None:
        if self.bytes_touched < 0 or self.working_set < 0:
            raise ConfigurationError("bytes_touched and working_set must be >= 0")
        if self.pattern is not AccessPattern.NONE:
            if self.bytes_touched == 0:
                raise ConfigurationError(
                    f"{self.pattern} requires bytes_touched > 0"
                )
            if self.working_set == 0:
                object.__setattr__(self, "working_set", self.bytes_touched)


def analytic_llc_misses(
    spec: MemSpec, llc_bytes: int, line_size: int
) -> float:
    """Expected LLC misses for ``spec`` on an LLC of ``llc_bytes``.

    Deterministic and cheap — this is what the simulated performance counters
    and the ground-truth executor consume.  Validated against the
    trace-driven simulator in the test suite.
    """
    if spec.pattern is AccessPattern.NONE or spec.bytes_touched == 0:
        return 0.0

    lines_touched = spec.bytes_touched / line_size
    ws_lines = max(1.0, spec.working_set / line_size)
    llc_lines = llc_bytes / line_size

    if spec.pattern is AccessPattern.STREAMING:
        if spec.working_set <= llc_bytes:
            # The sweep actually fits: only the first pass misses.
            return min(lines_touched, ws_lines)
        return lines_touched

    if spec.pattern is AccessPattern.RESIDENT:
        # Cold misses for the working set (if it fits), every reuse hits.
        if spec.working_set <= llc_bytes:
            return min(lines_touched, ws_lines)
        # Caller mis-labelled an oversized set as resident; degrade to
        # streaming behaviour rather than under-reporting traffic.
        return lines_touched

    if spec.pattern is AccessPattern.RANDOM:
        resident_fraction = min(1.0, llc_lines / ws_lines)
        accesses = lines_touched
        return accesses * (1.0 - resident_fraction) + min(ws_lines, llc_lines) * (
            min(1.0, accesses / ws_lines)
        )

    raise ConfigurationError(f"unknown access pattern {spec.pattern!r}")


def generate_trace(
    spec: MemSpec,
    line_size: int,
    rng: np.random.Generator,
    base_address: int = 0,
    max_accesses: int = 1_000_000,
) -> np.ndarray:
    """Generate a concrete address stream realising ``spec``.

    The stream touches whole cache lines (one representative byte address per
    line access).  ``max_accesses`` bounds trace length for test budgets; the
    analytic model comparison scales accordingly.
    """
    if spec.pattern is AccessPattern.NONE or spec.bytes_touched == 0:
        return np.empty(0, dtype=np.int64)

    n_accesses = int(min(max_accesses, math.ceil(spec.bytes_touched / line_size)))
    ws_lines = max(1, spec.working_set // line_size)

    if spec.pattern is AccessPattern.STREAMING:
        # Sequential sweep, wrapping around the working set.
        idx = np.arange(n_accesses, dtype=np.int64) % ws_lines
    elif spec.pattern is AccessPattern.RESIDENT:
        idx = np.arange(n_accesses, dtype=np.int64) % ws_lines
    elif spec.pattern is AccessPattern.RANDOM:
        idx = rng.integers(0, ws_lines, size=n_accesses, dtype=np.int64)
    else:  # pragma: no cover - exhaustive enum
        raise ConfigurationError(f"unknown access pattern {spec.pattern!r}")

    return base_address + idx * line_size


def scaled_spec(spec: MemSpec, fraction: float) -> MemSpec:
    """A spec representing ``fraction`` of the segment's accesses, with the
    same locality class.  Used when a compute segment is split across
    preemption boundaries."""
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in [0, 1], got {fraction!r}")
    if spec.pattern is AccessPattern.NONE:
        return spec
    return MemSpec(
        pattern=spec.pattern,
        bytes_touched=int(round(spec.bytes_touched * fraction)),
        working_set=spec.working_set,
    )
