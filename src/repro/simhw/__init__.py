"""Simulated hardware substrate.

This package stands in for the paper's physical 12-core Westmere Xeon and its
PAPI hardware counters.  It provides:

- :mod:`repro.simhw.clock` — the virtual cycle clock every component shares.
- :mod:`repro.simhw.machine` — machine configuration (cores, frequency, LLC,
  DRAM bandwidth curve, OS timeslice) and conversion helpers.
- :mod:`repro.simhw.dram` — the fluid DRAM-contention model that produces
  bandwidth saturation and queueing delay (the phenomenon the paper's burden
  factors predict).
- :mod:`repro.simhw.cache` — a set-associative LRU cache simulator used to
  validate the analytic miss models and to back trace-driven profiling.
- :mod:`repro.simhw.memtrace` — synthetic memory access-stream generators and
  the analytic LLC-miss models workloads use.
- :mod:`repro.simhw.counters` — a PAPI-like performance-counter facade.
"""

from repro.simhw.clock import VirtualClock
from repro.simhw.machine import MachineConfig, WESTMERE_12, WESTMERE_12_NUMA
from repro.simhw.dram import DramModel, SegmentDemand
from repro.simhw.cache import CacheConfig, SetAssociativeCache, CacheStats
from repro.simhw.memtrace import (
    AccessPattern,
    MemSpec,
    analytic_llc_misses,
    generate_trace,
)
from repro.simhw.counters import CounterSet, PerfCounters

__all__ = [
    "VirtualClock",
    "MachineConfig",
    "WESTMERE_12",
    "WESTMERE_12_NUMA",
    "DramModel",
    "SegmentDemand",
    "CacheConfig",
    "SetAssociativeCache",
    "CacheStats",
    "AccessPattern",
    "MemSpec",
    "analytic_llc_misses",
    "generate_trace",
    "CounterSet",
    "PerfCounters",
]
