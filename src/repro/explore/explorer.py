"""Interleaving exploration over the event-sparse DES kernel.

One explored grid point = the same (workload, schedule, n_threads) evaluated
once per :class:`ScheduleVariant` — a lock-handoff policy plus seed — through
the ordinary :class:`~repro.core.batch.BatchPredictor` fan-out.  The FIFO
variant is always sampled: it is byte-identical to the un-explored prediction,
so the envelope is anchored on the number every other caller already sees,
and the point estimate the report carries stays unchanged.

Replays recur through the process-wide section memo (keyed by policy + seed),
so exploring N variants of a lock-free workload costs one replay, not N.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.core.batch import BatchPredictor, SweepTask, SweepTaskFailure
from repro.core.profiler import ProgramProfile
from repro.core.report import SpeedupEnvelope, SpeedupEstimate, SpeedupReport
from repro.errors import ConfigurationError
from repro.simos import normalize_handoff

#: Methods an exploration may sample (the FF emulator is interleaving-blind).
EXPLORE_METHODS = ("syn", "real")


@dataclass(frozen=True)
class ScheduleVariant:
    """One point of the handoff-policy space: a policy plus its seed."""

    handoff: str
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "handoff", normalize_handoff(self.handoff))
        if self.handoff != "random":
            object.__setattr__(self, "seed", 0)

    @property
    def label(self) -> str:
        """Stable display name, e.g. ``"fifo"`` or ``"random:3"``."""
        if self.handoff == "random":
            return f"random:{self.seed}"
        return self.handoff

    @classmethod
    def parse(cls, label: str) -> "ScheduleVariant":
        """Inverse of :attr:`label` (how envelope extremes are re-run)."""
        if ":" in label:
            policy, _, seed = label.partition(":")
            return cls(handoff=policy, seed=int(seed))
        return cls(handoff=label)


def default_variants(samples: int = 6, seed: int = 0) -> tuple[ScheduleVariant, ...]:
    """The standard exploration set: fifo, lifo, adversarial, then seeded
    random draws until ``samples`` variants exist.

    ``fifo`` always comes first — the envelope must contain the default
    prediction by construction.  ``seed`` offsets the random draws so two
    explorations with different seeds sample different interleavings.
    """
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    fixed = [
        ScheduleVariant("fifo"),
        ScheduleVariant("lifo"),
        ScheduleVariant("adversarial"),
    ]
    variants = fixed[:samples]
    variants.extend(
        ScheduleVariant("random", seed=seed + i) for i in range(samples - len(variants))
    )
    return tuple(variants)


class Explorer:
    """Envelope-producing driver over :class:`BatchPredictor`.

    Typical use::

        prophet = ParallelProphet()
        profiles = {"locky": prophet.profile(program)}
        reports = Explorer(prophet, samples=6, jobs=4).explore(
            profiles, threads=[2, 4], schedules=["static"]
        )
        env = reports["locky"].envelope(schedule="static", n_threads=4)
        assert env.contains(real_speedup, slack=0.06)
    """

    def __init__(
        self,
        prophet=None,
        samples: int = 6,
        seed: int = 0,
        variants: Optional[Sequence[ScheduleVariant]] = None,
        jobs: Optional[int] = 1,
        backend: str = "auto",
    ) -> None:
        """``variants`` overrides the default policy set; a missing fifo
        variant is prepended so the envelope always brackets the default
        prediction.  ``jobs``/``backend`` are forwarded to the batch
        fan-out — results are byte-identical for any ``jobs`` (the sweep's
        determinism guarantee)."""
        if variants is None:
            variants = default_variants(samples, seed)
        else:
            variants = tuple(variants)
            if not any(v.handoff == "fifo" for v in variants):
                variants = (ScheduleVariant("fifo"),) + variants
        self.variants = tuple(variants)
        self.seed = seed
        self.batch = BatchPredictor(prophet, jobs=jobs, backend=backend)
        self.prophet = self.batch.prophet

    # ------------------------------------------------------------------ API

    def explore(
        self,
        profiles: Union[ProgramProfile, Mapping[str, ProgramProfile]],
        threads: Sequence[int],
        schedules: Iterable[str] = ("static",),
        paradigm: str = "omp",
        method: str = "syn",
        memory_model: bool = True,
        on_error: str = "raise",
    ) -> dict[str, SpeedupReport]:
        """Explore the grid; one report per workload.

        Each report carries the FIFO variant's estimates (exactly what an
        un-explored sweep would return) plus one
        :class:`~repro.core.report.SpeedupEnvelope` per grid point in
        ``report.envelopes``.  ``method`` is ``"syn"`` (predicted envelope)
        or ``"real"`` (measured envelope — ground truth under every
        explored interleaving).
        """
        if method not in EXPLORE_METHODS:
            raise ConfigurationError(
                f"unknown exploration method {method!r} "
                f"(expected one of {EXPLORE_METHODS})"
            )
        if isinstance(profiles, ProgramProfile):
            profiles = {"workload": profiles}
        else:
            profiles = dict(profiles)
        schedules = list(schedules)
        # Grid order: workload, schedule, threads — variants innermost, so
        # each point's samples come back contiguous and in variant order.
        tasks = [
            SweepTask(
                workload=name,
                schedule=schedule,
                n_threads=t,
                methods=(method,),
                paradigm=paradigm,
                memory_model=memory_model,
                handoff=variant.handoff,
                handoff_seed=variant.seed,
            )
            for name in profiles
            for schedule in schedules
            for t in threads
            for variant in self.variants
        ]
        reports = {name: SpeedupReport() for name in profiles}
        # Samples per grid point, insertion-ordered (= grid order).
        points: dict[tuple, list[tuple[str, float]]] = {}
        for task, outcome in self.batch.run(tasks, profiles, on_error=on_error):
            if isinstance(outcome, SweepTaskFailure):
                reports[task.workload].failures.append(outcome)
                continue
            variant = ScheduleVariant(task.handoff, task.handoff_seed)
            for est in outcome:
                if variant.handoff == "fifo":
                    # The anchor sample doubles as the point estimate.
                    reports[task.workload].add(est)
                key = (task.workload, est.paradigm, est.schedule, est.n_threads)
                points.setdefault(key, []).append((variant.label, est.speedup))
        for (name, point_paradigm, schedule, t), samples in points.items():
            reports[name].envelopes.append(
                SpeedupEnvelope.from_samples(
                    method=method,
                    paradigm=point_paradigm,
                    schedule=schedule,
                    n_threads=t,
                    samples=samples,
                )
            )
        return reports


def verify_envelope(
    prophet,
    profile: ProgramProfile,
    n_threads: int,
    schedule: str = "static",
    paradigm: str = "omp",
    samples: int = 6,
    seed: int = 0,
    memory_model: bool = True,
) -> tuple[int, int]:
    """Re-verify one explored point's extremes by uncached eager replay.

    Explores the (single) grid point through the normal memoised batch
    path, then re-runs the variants that produced ``lo`` and ``hi`` with a
    memoisation-free :class:`~repro.core.synthesizer.Synthesizer` and
    compares bitwise.  Returns ``(checked, mismatches)`` — a non-zero
    mismatch count means the section memo or the columnar bypass corrupted
    an explored sample.
    """
    from repro.core.synthesizer import Synthesizer
    from repro.runtime.tasks import Schedule

    explorer = Explorer(prophet, samples=samples, seed=seed, jobs=1)
    report = explorer.explore(
        {"point": profile},
        threads=[n_threads],
        schedules=[schedule],
        paradigm=paradigm,
        memory_model=memory_model,
    )["point"]
    (env,) = report.envelopes
    # Both extremes are re-run even when one variant produced both (a
    # degenerate, zero-width envelope): the second replay then doubles as
    # an uncached-determinism check.
    expected = [(env.lo_variant, env.lo), (env.hi_variant, env.hi)]
    checked = mismatches = 0
    for label, value in expected:
        variant = ScheduleVariant.parse(label)
        syn = Synthesizer(
            paradigm=paradigm,
            schedule=Schedule.parse(schedule),
            overheads=prophet.overheads,
            handoff=variant.handoff,
            handoff_seed=variant.seed,
            memoize=False,
        )
        run = syn.predict(profile, n_threads, use_memory_model=memory_model)
        checked += 1
        if run.estimate.speedup != value:
            mismatches += 1
    return checked, mismatches
