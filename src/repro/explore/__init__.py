"""Schedule-space exploration: lock-interleaving envelopes.

The DES kernel's default FIFO lock handoff commits every replay to exactly
one interleaving, which is why lock-heavy programs showed ~25% SYN-vs-REAL
divergence: REAL's interleaving is just one point in a space the single
FAKE replay never samples.  This package explores that space — it re-runs
each grid point under several handoff policies (fifo, lifo, seeded-random
draws, adversarial longest-remaining-work-first) and collapses the results
into a min/median/max :class:`~repro.core.report.SpeedupEnvelope` instead
of a single number.

See :doc:`docs/exploration` for the full story.
"""

from repro.explore.explorer import (
    Explorer,
    ScheduleVariant,
    default_variants,
    verify_envelope,
)

__all__ = [
    "Explorer",
    "ScheduleVariant",
    "default_variants",
    "verify_envelope",
]
