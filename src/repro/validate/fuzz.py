"""Deterministic fuzz driver for the differential harness.

Shares one program-description format with ``tests/test_fuzz_pipeline.py``:
a program is a list of top-level items, each either a ``float`` (serial
compute of that many cycles) or ``("sec", tasks)`` where ``tasks`` is a list
of ``(ops, nested)`` bodies, ``ops`` a list of
``("compute", cycles, mem_spec, lock_id)`` leaves and ``nested`` a list of
sub-section descriptions.  :func:`build_program` turns a description into an
annotated program; the Hypothesis strategies in the test generate
descriptions randomly, :func:`generate_program` here does the same from a
seeded ``random.Random`` so ``repro check --fuzz`` is reproducible
bit-for-bit from its seed.

:func:`run_fuzz` feeds the generated programs through the full pipeline
(profile → FF/SYN predict → REAL replay) under the differential harness,
with the invariant checker active if the caller enabled it.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

from repro.validate.differential import (
    DifferentialHarness,
    DifferentialReport,
    TolerancePolicy,
)

#: Smallest fuzz leaf, in cycles.  The synthesizer subtracts the longest
#: per-worker traversal overhead (Fig. 8 line 26), so on trees of tiny
#: leaves the residual is unbounded relative to the work; the agreement
#: claims only apply where leaves dwarf the ~100-cycle per-node cost
#: (see tests/test_fuzz_pipeline.py::test_fake_matches_real_without_memory).
MIN_LEAF_CYCLES = 5_000.0


def _run_section(tr, desc, counter):
    _, tasks = desc
    name = f"s{counter[0]}"
    counter[0] += 1
    with tr.section(name):
        for ops, nested in tasks:
            with tr.task():
                for _, cycles, mem, lock in ops:
                    if lock is not None:
                        with tr.lock(lock):
                            tr.compute(cycles, mem=mem)
                    else:
                        tr.compute(cycles, mem=mem)
                for sub in nested:
                    _run_section(tr, sub, counter)


def build_program(items):
    """An annotated program callable from a program description."""

    def program(tr):
        counter = [0]
        for item in items:
            if isinstance(item, float):
                tr.compute(item)
            else:
                _run_section(tr, item, counter)

    return program


def generate_program(rng: random.Random, max_depth: int = 2) -> list:
    """One random program description, drawn deterministically from ``rng``.

    Leaves carry no memory specs (memory-free programs are where FAKE/REAL
    agreement is exact, so any divergence is a real finding, not model
    noise) and respect :data:`MIN_LEAF_CYCLES`; sections occasionally nest
    and leaves occasionally take one of two locks.
    """

    def leaf() -> tuple:
        lock = rng.choice([None, None, None, 1, 2])
        cycles = rng.uniform(MIN_LEAF_CYCLES, 200_000.0)
        return ("compute", cycles, None, lock)

    def section(depth: int) -> tuple:
        tasks = []
        for _ in range(rng.randint(1, 4)):
            ops = [leaf() for _ in range(rng.randint(1, 3))]
            nested = []
            if depth > 0 and rng.random() < 0.3:
                nested = [section(depth - 1)]
            tasks.append((ops, nested))
        return ("sec", tasks)

    items: list = []
    for _ in range(rng.randint(1, 4)):
        if rng.random() < 0.4:
            items.append(rng.uniform(MIN_LEAF_CYCLES, 100_000.0))
        else:
            items.append(section(max_depth))
    return items


def description_has_locks(items) -> bool:
    """True if any leaf of a program description takes a lock."""

    def section_has(desc) -> bool:
        _, tasks = desc
        for ops, nested in tasks:
            if any(lock is not None for _, _, _, lock in ops):
                return True
            if any(section_has(sub) for sub in nested):
                return True
        return False

    return any(
        section_has(item) for item in items if not isinstance(item, float)
    )


def generate_locky_program(rng: random.Random, max_depth: int = 2) -> list:
    """Like :func:`generate_program`, but guaranteed lock-bearing.

    Redraws (deterministically, from the same ``rng`` stream) until the
    description contains at least one locked leaf — the corpus the
    envelope acceptance test runs on must exercise contention, and ~19%
    of unconstrained draws are lock-free.
    """
    while True:
        items = generate_program(rng, max_depth=max_depth)
        if description_has_locks(items):
            return items


def run_fuzz(
    n_programs: int = 10,
    seed: int = 0,
    machine=None,
    threads: Sequence[int] = (2, 4),
    policy: Optional[TolerancePolicy] = None,
    explore_samples: int = 6,
    locky_only: bool = False,
) -> DifferentialReport:
    """Differential-validate ``n_programs`` seeded random programs.

    Profiles each generated program on ``machine`` with zeroed runtime
    overheads (the fuzz trees are synthetic; overhead subtraction noise
    would only blur the comparison) and runs the FF/SYN/REAL differential
    harness with ``memory_model=False`` — the programs are memory-free by
    construction.  Returns the merged :class:`DifferentialReport`.

    Lock-bearing programs are judged against explored interleaving
    envelopes (``explore_samples`` handoff variants; 0 restores the flat
    tolerance).  ``locky_only=True`` draws exclusively lock-bearing
    programs — the envelope acceptance corpus.
    """
    from repro.core.profiler import IntervalProfiler
    from repro.core.prophet import ParallelProphet
    from repro.runtime import RuntimeOverheads
    from repro.simhw import MachineConfig

    if machine is None:
        machine = MachineConfig(n_cores=4)
    rng = random.Random(seed)
    overheads = RuntimeOverheads().scaled(0.0)
    prophet = ParallelProphet(machine=machine, overheads=overheads)
    profiler = IntervalProfiler(machine)
    profiles = {}
    for i in range(n_programs):
        items = (
            generate_locky_program(rng) if locky_only else generate_program(rng)
        )
        profiles[f"fuzz-{seed}-{i}"] = profiler.profile(build_program(items))
    harness = DifferentialHarness(
        prophet, policy=policy, explore_samples=explore_samples
    )
    return harness.run(profiles, threads=list(threads), memory_model=False)
