"""Cross-emulator differential validation: FF vs SYN vs REAL.

The paper's credibility argument is cross-validation of its two emulators
against measured runs (Figs. 11-12); this harness makes that comparison an
always-available tool.  It runs all three methods over a
workload × paradigm × schedule × threads grid, applies a tolerance policy,
and — crucially — *classifies* discrepancies instead of flattening them to
pass/fail:

- ``ok`` — every pairwise error within tolerance;
- ``expected`` — a divergence with a known, documented cause.  The paper's
  own Fig. 7 is the canonical case: on nested parallelism the FF predicts
  1.5× where real and synthesizer give 2.0×, because its abstract machine
  models neither OS preemption nor oversubscription.  Lock-bearing trees
  are the other class (the FF serialises critical sections greedily, the
  replay develops real convoys).
- ``violation`` — a divergence with *no* known cause: a regression in one
  of the fast paths this harness exists to catch.

Lock-bearing workloads get a sharper check than a flat tolerance: their
SYN prediction is expanded into a [min, max] envelope over explored lock
interleavings (:mod:`repro.explore`) and REAL must fall inside it — see
``docs/exploration.md``.

Counts are reported through ``repro.obs.metrics`` (``validate.diff.*``);
records carry the three speedups so a report is self-explanatory.  See
``docs/validation.md`` for the tolerance policy rationale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

# NOTE: repro.core is imported lazily throughout.  simos.kernel and the
# core executors import this package at module level for get_checker(), so
# an eager repro.core import here would be circular.
from repro.obs import get_metrics
from repro.validate.invariants import has_nested_sections
from repro.validate.policy import (
    ENVELOPE_SLACK,
    FF_TOLERANCE,
    SURROGATE_TOLERANCE,
    SYN_TOLERANCE,
)


@dataclass(frozen=True)
class GridPoint:
    """One differential comparison: a workload at one configuration."""

    workload: str
    paradigm: str
    schedule: str
    n_threads: int

    @property
    def label(self) -> str:
        return (
            f"{self.workload}/{self.paradigm}/{self.schedule}"
            f"/t={self.n_threads}"
        )


@dataclass(frozen=True)
class TolerancePolicy:
    """Acceptable relative errors between methods.

    Defaults come from :mod:`repro.validate.policy` (the single source
    shared with the invariant checker).  They follow the paper's measured
    envelopes: the synthesizer's Fig. 11 error is 3.3% average with a 19%
    worst case (hence 0.25 with headroom for the FAKE replay's
    overhead-subtraction drift); the FF is held tighter (0.15, ~2× its
    7.3% average) *because* its known failure modes — nested parallelism,
    locks — are classified as expected divergences rather than absorbed
    into slack.

    ``envelope_slack`` governs lock-bearing points when exploration is on:
    instead of the flat ``syn_vs_real`` band around the single FIFO
    prediction, REAL must fall inside the explored [min, max] envelope
    widened by this relative slack (covering what interleaving choice
    cannot explain — overhead-subtraction drift, fake-delay quantisation).
    """

    syn_vs_real: float = SYN_TOLERANCE
    ff_vs_real: float = FF_TOLERANCE
    envelope_slack: float = ENVELOPE_SLACK
    #: The surrogate tier predicts the *emulators'* answers, so its
    #: tolerance class compares surrogate vs exact (not vs REAL): a
    #: confident surrogate answer further than this from the exact method
    #: it stands in for is a violation (see :func:`verify_surrogate`).
    surrogate_vs_exact: float = SURROGATE_TOLERANCE


@dataclass
class DiffRecord:
    """Outcome of one grid point."""

    point: GridPoint
    speedups: dict[str, Optional[float]]
    status: str  # "ok" | "expected" | "violation"
    kind: str = ""  # divergence class, e.g. "ff_nested_underprediction"
    detail: str = ""
    #: The explored SYN envelope this point was judged against, when
    #: exploration ran (lock-bearing trees); None for flat-tolerance points.
    envelope: Optional[object] = None

    def __str__(self) -> str:
        cells = ", ".join(
            f"{m}={s:.2f}" for m, s in self.speedups.items() if s is not None
        )
        if self.envelope is not None:
            cells += f", syn∈[{self.envelope.lo:.2f}, {self.envelope.hi:.2f}]"
        tail = f" [{self.kind}] {self.detail}" if self.kind else ""
        return f"{self.status:>9}  {self.point.label}  ({cells}){tail}"


@dataclass
class DifferentialReport:
    """All records of one harness run, with filtered views and a summary."""

    records: list[DiffRecord] = field(default_factory=list)

    @property
    def violations(self) -> list[DiffRecord]:
        return [r for r in self.records if r.status == "violation"]

    @property
    def expected_divergences(self) -> list[DiffRecord]:
        return [r for r in self.records if r.status == "expected"]

    @property
    def ok(self) -> list[DiffRecord]:
        return [r for r in self.records if r.status == "ok"]

    def merge(self, other: "DifferentialReport") -> None:
        self.records.extend(other.records)

    def summary(self) -> str:
        lines = [
            f"differential: {len(self.records)} grid point(s) — "
            f"{len(self.ok)} ok, "
            f"{len(self.expected_divergences)} expected divergence(s), "
            f"{len(self.violations)} violation(s)"
        ]
        for r in self.records:
            if r.status != "ok":
                lines.append(str(r))
        return "\n".join(lines)


def _has_locks(tree) -> bool:
    """True if any node of the tree is an L (critical-section) node."""
    from repro.core.tree import NodeKind

    seen: set[int] = set()
    stack = list(tree.root.children)
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node.kind is NodeKind.L:
            return True
        stack.extend(node.children)
    return False


class DifferentialHarness:
    """Runs FF vs SYN vs REAL over a grid and classifies every discrepancy."""

    def __init__(
        self,
        prophet=None,
        policy: Optional[TolerancePolicy] = None,
        explore_samples: int = 6,
    ):
        """``explore_samples`` controls schedule-space exploration of
        lock-bearing workloads: their SYN prediction is expanded into a
        [min, max] envelope over that many handoff-policy variants, and
        REAL is required to fall inside it (±``policy.envelope_slack``)
        instead of within the flat ``syn_vs_real`` band — the flat band
        papered over the single-interleaving blind spot.  ``0`` disables
        exploration and restores the flat check everywhere."""
        if prophet is None:
            from repro.core.prophet import ParallelProphet

            prophet = ParallelProphet()
        self.prophet = prophet
        self.policy = policy or TolerancePolicy()
        self.explore_samples = explore_samples

    def run(
        self,
        profiles: Mapping[str, "object"],
        threads: Sequence[int],
        schedules: Iterable[str] = ("static",),
        paradigms: Iterable[str] = ("omp",),
        memory_model: bool = True,
    ) -> DifferentialReport:
        """Differential-validate every grid point; returns the full report.

        The FF is compared only under the ``omp`` paradigm (its abstract
        machine models OpenMP worksharing); under ``cilk``/``omp_task`` the
        comparison is SYN vs REAL.  ``memory_model=False`` skips burden
        calibration — right for memory-free programs and much faster.
        """
        report = DifferentialReport()
        metrics = get_metrics()
        schedules = list(schedules)
        paradigms = list(paradigms)
        for name, profile in profiles.items():
            nested = has_nested_sections(profile.tree)
            locky = _has_locks(profile.tree)
            for paradigm in paradigms:
                use_ff = paradigm == "omp"
                for schedule in schedules:
                    predicted = self.prophet.predict(
                        profile,
                        threads=threads,
                        paradigm=paradigm,
                        schedules=[schedule],
                        methods=("ff", "syn") if use_ff else ("syn",),
                        memory_model=memory_model,
                    )
                    real = self.prophet.measure_real(
                        profile, threads, paradigm=paradigm, schedule=schedule
                    )
                    exploration = None
                    if locky and self.explore_samples > 0:
                        # Lock-bearing tree: the single FIFO prediction is
                        # one interleaving among many, so judge REAL
                        # against the explored envelope instead of a flat
                        # band around that one point.
                        from repro.explore import Explorer

                        exploration = Explorer(
                            self.prophet, samples=self.explore_samples
                        ).explore(
                            {name: profile},
                            threads=threads,
                            schedules=[schedule],
                            paradigm=paradigm,
                            memory_model=memory_model,
                        )[name]
                        metrics.inc("validate.diff.explored_grids")
                    for t in threads:
                        point = GridPoint(name, paradigm, schedule, t)
                        speedups = {
                            "ff": (
                                predicted.speedup(method="ff", n_threads=t)
                                if use_ff
                                else None
                            ),
                            "syn": predicted.speedup(method="syn", n_threads=t),
                            "real": real.speedup(n_threads=t),
                        }
                        record = self._classify(
                            point,
                            speedups,
                            nested=nested,
                            locky=locky,
                            envelope=(
                                exploration.envelope(n_threads=t)
                                if exploration is not None
                                else None
                            ),
                        )
                        report.records.append(record)
                        metrics.inc("validate.diff.points")
                        metrics.inc(f"validate.diff.{record.status}")
        return report

    # ------------------------------------------------------------- internals

    def _classify(
        self,
        point: GridPoint,
        speedups: dict[str, Optional[float]],
        nested: bool,
        locky: bool,
        envelope=None,
    ) -> DiffRecord:
        """Apply the tolerance policy and the known-divergence taxonomy."""
        from repro.core.report import error_ratio

        real = speedups["real"]
        syn = speedups["syn"]
        ff = speedups["ff"]

        if envelope is not None:
            # Envelope check replaces the flat SYN band: the explored
            # [min, max] already spans the interleavings, so REAL escaping
            # it is a genuine emulation defect, not schedule luck.
            if not envelope.contains(real, slack=self.policy.envelope_slack):
                return DiffRecord(
                    point,
                    speedups,
                    status="violation",
                    kind="syn_envelope_miss",
                    detail=f"real {real:.2f} outside explored envelope "
                    f"[{envelope.lo:.2f}, {envelope.hi:.2f}] "
                    f"(±{self.policy.envelope_slack:.0%} slack, "
                    f"{envelope.n_samples} interleavings)",
                    envelope=envelope,
                )
        else:
            err_syn = error_ratio(syn, real)
            if err_syn > self.policy.syn_vs_real:
                return DiffRecord(
                    point,
                    speedups,
                    status="violation",
                    kind="syn_real_mismatch",
                    detail=f"synthesizer off by {err_syn:.1%} "
                    f"(tolerance {self.policy.syn_vs_real:.0%})",
                )

        if ff is not None:
            err_ff = error_ratio(ff, real)
            if err_ff > self.policy.ff_vs_real:
                if nested and ff < real:
                    # Paper Fig. 7: the FF's abstract machine models neither
                    # preemption nor oversubscription, so nested parallelism
                    # is systematically underpredicted.
                    return DiffRecord(
                        point,
                        speedups,
                        status="expected",
                        kind="ff_nested_underprediction",
                        detail=f"FF under by {err_ff:.1%} on nested "
                        "parallelism (paper Fig. 7)",
                        envelope=envelope,
                    )
                if locky:
                    # The FF serialises critical sections greedily on its
                    # event heap; the replay develops real lock convoys.
                    return DiffRecord(
                        point,
                        speedups,
                        status="expected",
                        kind="ff_lock_approximation",
                        detail=f"FF off by {err_ff:.1%} on a lock-bearing "
                        "tree (greedy serialisation)",
                        envelope=envelope,
                    )
                return DiffRecord(
                    point,
                    speedups,
                    status="violation",
                    kind="ff_real_mismatch",
                    detail=f"FF off by {err_ff:.1%} with no known cause "
                    f"(tolerance {self.policy.ff_vs_real:.0%})",
                    envelope=envelope,
                )

        return DiffRecord(point, speedups, status="ok", envelope=envelope)


def verify_surrogate(
    prophet,
    profile,
    threads: Sequence[int],
    schedules: Iterable[str] = ("static",),
    paradigm: str = "omp",
    memory_model: bool = True,
    surrogate=None,
    tolerance: Optional[float] = None,
) -> tuple[int, int, list[str]]:
    """Validate surrogate answers against uncached exact replays.

    For every grid point the surrogate answers *confidently* (the only
    answers the ``auto`` tier would serve without fallback), recompute the
    exact prediction with the section-replay memo cleared — so the
    reference cannot come from warm state the surrogate's training run
    left behind — and compare under the surrogate tolerance class.

    Returns ``(checked, abstained, mismatches)``: grid points compared,
    grid points the surrogate declined (unsupported or unconfident — those
    fall back to exact in production and need no check), and human-readable
    mismatch descriptions (empty means the tier is sound on this grid).
    """
    from repro.core.executor import clear_section_memo
    from repro.core.report import error_ratio
    from repro.runtime.tasks import Schedule

    if surrogate is None:
        from repro.surrogate import get_default_surrogate

        surrogate = get_default_surrogate()
    if tolerance is None:
        tolerance = SURROGATE_TOLERANCE
    machine = prophet.machine
    checked = abstained = 0
    mismatches: list[str] = []
    metrics = get_metrics()
    for sched in schedules:
        schedule = Schedule.parse(sched)
        for t in threads:
            for method in ("ff", "syn"):
                ans = surrogate.answer(
                    profile,
                    machine,
                    method,
                    paradigm,
                    schedule,
                    t,
                    memory_model=memory_model,
                )
                if ans is None or not ans.confident:
                    abstained += 1
                    continue
                clear_section_memo()
                exact_report = prophet.predict(
                    profile,
                    threads=[t],
                    paradigm=paradigm,
                    schedules=[schedule.label],
                    methods=(method,),
                    memory_model=memory_model,
                )
                exact = exact_report.speedup(method=method, n_threads=t)
                checked += 1
                metrics.inc("validate.surrogate.checked")
                err = error_ratio(ans.speedup, exact)
                if err > tolerance:
                    metrics.inc("validate.surrogate.mismatches")
                    mismatches.append(
                        f"{method}/{schedule.label}/t={t}: surrogate "
                        f"{ans.speedup:.3f}x vs exact {exact:.3f}x "
                        f"(error {err:.1%} > tolerance {tolerance:.0%}, "
                        f"spread {ans.spread:.4f})"
                    )
    return checked, abstained, mismatches
