"""The single source of truth for validation tolerances.

Before this module existed the same numbers lived twice — the invariant
checker's ``SPEEDUP_EPS`` dict and the differential harness's
``TolerancePolicy`` defaults — and could silently drift apart.  Both now
derive from the constants below; change a bound here and every consumer
(speedup-bound invariant, differential classification, docs examples)
moves together.

Import discipline: this module must stay import-cycle-safe.  It is pulled
in by ``repro.validate.invariants``, which ``simos.kernel`` and the core
executors import at module level, so nothing here may import ``repro.core``
(or anything that does).

Rationale for the values (see ``docs/validation.md``):

- The synthesizer's Fig. 11 error is 3.3% average with a 19% worst case;
  0.25 leaves headroom for the FAKE replay's overhead-subtraction drift.
- The FF is held tighter (0.15, ~2x its 7.3% average) because its known
  failure modes — nested parallelism, locks — are *classified* as expected
  divergences rather than absorbed into slack.
- REAL replays recompute leaf durations the RLE compressor averaged within
  tolerance, so their speedup bound carries 10% slack; FF runs an exact
  abstract machine (float noise only).
- Lock-bearing programs are no longer judged by the flat SYN tolerance at
  all: ``repro.explore`` turns the single FIFO handoff point into a
  min/median/max envelope over lock-acquisition orders, and REAL must fall
  inside it within :data:`ENVELOPE_SLACK` — the same few-percent residual
  the FAKE replay's traversal-overhead subtraction exhibits on lock-free
  trees (``tests/test_fuzz_pipeline.py``).
"""

from __future__ import annotations

#: Synthesizer (FAKE replay) vs. ground truth, and the "syn" speedup-bound
#: slack: the overhead-subtraction drift applies to both comparisons.
SYN_TOLERANCE = 0.25

#: Fast-forward emulator vs. ground truth (unexplained divergences only;
#: nested/locky divergences are classified, not tolerated).
FF_TOLERANCE = 0.15

#: REAL-replay speedup-bound slack (RLE-averaged leaf durations).
REAL_TOLERANCE = 0.10

#: FF speedup-bound slack: the abstract machine is exact, float noise only.
FF_BOUND_TOLERANCE = 1e-9

#: Residual slack around an explored [min, max] speedup envelope when
#: judging a lock-bearing program's REAL speedup: the envelope brackets the
#: interleaving uncertainty, this brackets what interleavings cannot explain
#: (traversal-overhead subtraction, RLE averaging).
ENVELOPE_SLACK = 0.06

#: Learned-surrogate answer vs. the exact emulator it stands in for
#: (relative speedup error).  Matches SYN_TOLERANCE: a surrogate answer is
#: acceptable when it deviates from its oracle by no more than the oracle
#: itself may deviate from ground truth — the tier never adds a *new*
#: class of error on top of the model error already accepted.  Training
#: calibrates its confidence gate against 0.8× this bound so confident
#: answers keep headroom inside it.
SURROGATE_TOLERANCE = 0.25

__all__ = [
    "ENVELOPE_SLACK",
    "FF_BOUND_TOLERANCE",
    "FF_TOLERANCE",
    "REAL_TOLERANCE",
    "SURROGATE_TOLERANCE",
    "SYN_TOLERANCE",
]
