"""Standing validation layer: runtime invariants + differential harness.

Two complementary tools (see ``docs/validation.md``):

- :mod:`repro.validate.invariants` — cheap runtime checks wired into the
  kernel, executors, and emulators behind a single flag
  (``REPRO_VALIDATE=1`` or ``get_checker().enabled = True``);
- :mod:`repro.validate.differential` — FF vs SYN vs REAL cross-validation
  over a workload grid, classifying every discrepancy as ok, expected
  divergence (e.g. the paper's Fig. 7 FF nested-parallelism
  underprediction), or violation;
- :mod:`repro.validate.fuzz` — a seeded deterministic program generator
  driving the differential harness (shared with ``test_fuzz_pipeline``).
"""

from repro.validate.differential import (
    DiffRecord,
    DifferentialHarness,
    DifferentialReport,
    GridPoint,
    TolerancePolicy,
)
from repro.validate.fuzz import build_program, generate_program, run_fuzz
from repro.validate.invariants import (
    InvariantChecker,
    Violation,
    get_checker,
    has_nested_sections,
    set_checker,
)

__all__ = [
    "DiffRecord",
    "DifferentialHarness",
    "DifferentialReport",
    "GridPoint",
    "InvariantChecker",
    "TolerancePolicy",
    "Violation",
    "build_program",
    "generate_program",
    "get_checker",
    "has_nested_sections",
    "run_fuzz",
    "set_checker",
]
