"""Standing validation layer: runtime invariants + differential harness.

Two complementary tools (see ``docs/validation.md``):

- :mod:`repro.validate.invariants` — cheap runtime checks wired into the
  kernel, executors, and emulators behind a single flag
  (``REPRO_VALIDATE=1`` or ``get_checker().enabled = True``);
- :mod:`repro.validate.differential` — FF vs SYN vs REAL cross-validation
  over a workload grid, classifying every discrepancy as ok, expected
  divergence (e.g. the paper's Fig. 7 FF nested-parallelism
  underprediction), or violation;
- :mod:`repro.validate.fuzz` — a seeded deterministic program generator
  driving the differential harness (shared with ``test_fuzz_pipeline``);
- :mod:`repro.validate.policy` — the shared tolerance constants every
  checker above derives its defaults from (single source of truth).
"""

from repro.validate.differential import (
    DiffRecord,
    DifferentialHarness,
    DifferentialReport,
    GridPoint,
    TolerancePolicy,
    verify_surrogate,
)
from repro.validate.fuzz import (
    build_program,
    description_has_locks,
    generate_locky_program,
    generate_program,
    run_fuzz,
)
from repro.validate.invariants import (
    InvariantChecker,
    Violation,
    get_checker,
    has_nested_sections,
    set_checker,
)
from repro.validate.policy import (
    ENVELOPE_SLACK,
    FF_BOUND_TOLERANCE,
    FF_TOLERANCE,
    REAL_TOLERANCE,
    SURROGATE_TOLERANCE,
    SYN_TOLERANCE,
)

__all__ = [
    "DiffRecord",
    "DifferentialHarness",
    "DifferentialReport",
    "ENVELOPE_SLACK",
    "FF_BOUND_TOLERANCE",
    "FF_TOLERANCE",
    "GridPoint",
    "InvariantChecker",
    "REAL_TOLERANCE",
    "SURROGATE_TOLERANCE",
    "SYN_TOLERANCE",
    "TolerancePolicy",
    "Violation",
    "build_program",
    "description_has_locks",
    "generate_locky_program",
    "generate_program",
    "get_checker",
    "has_nested_sections",
    "run_fuzz",
    "set_checker",
    "verify_surrogate",
]
