"""Runtime invariant checks for the simulation and emulation pipeline.

Three PRs of aggressive fast paths (closed-form FF, DRAM-solve memo,
event-sparse kernel, coalesced replay, cross-grid section memo) mean the
predictor's correctness rests on a web of parity claims that were verified
once, at PR time.  This module turns them into *standing* checks, wired
behind a single flag into ``simos.kernel``, ``core.executor``,
``core.ffemu``, and ``core.batch``:

- **simulated-time monotonicity** — no popped event may precede the clock;
- **work conservation** — base compute cycles handed to the kernel equal the
  busy cycles it accounts (exactly so on demand-free replays, as a lower
  bound under DRAM contention, where slowdown ≥ 1 stretches wall time);
- **counter attribution** — a segment's instruction/miss fractions sum to
  exactly 1 over its life, however often it was preempted;
- **DRAM bandwidth cap** — the solved stall factor never lets aggregate
  achieved bandwidth exceed the configured peak;
- **speedup bound** — no method predicts beyond its machine's concurrency
  (FF: the abstract t-CPU machine; SYN/REAL: the physical core count, with
  documented slack for the FAKE replay's overhead subtraction);
- **section-memo soundness** — a deterministic sample of memo hits is
  re-verified by an exact uncached replay, bit for bit.

Discipline
----------
Same contract as ``repro.obs``: every hook is a single attribute test
(``if checker.enabled:``) when disabled, and the compiled-in cost on the
replay hot path stays under the 2% budget
(``benchmarks/bench_validate_overhead.py`` enforces it).  Enable via
``REPRO_VALIDATE=1``, ``repro check`` / ``--selfcheck`` on the CLI, or
``get_checker().enabled = True`` in code.  See ``docs/validation.md``.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.errors import InvariantViolation
from repro.obs import get_metrics
from repro.validate.policy import (
    FF_BOUND_TOLERANCE,
    REAL_TOLERANCE,
    SYN_TOLERANCE,
)

#: Relative tolerance for float-accumulation effects (attribution fractions,
#: work-conservation sums).  Individual interval errors are ~1e-12 relative;
#: 1e-6 leaves three orders of magnitude for long accumulation chains.
REL_TOL = 1e-6

#: DRAM achieved-bandwidth slack over the configured peak: the bisection
#: solves A(k) = B to 1e-9 relative, so anything past 1e-6 is a real breach.
DRAM_TOL = 1e-6

#: Stall multipliers at/above this are the model's saturation fallback for
#: physically inconsistent demands; the bandwidth cap does not apply there.
_K_SATURATED = 1e11

#: Per-method multiplicative slack on the speedup bound.  FF runs an exact
#: abstract machine (float noise only).  REAL recomputes leaf durations the
#: RLE compressor averaged within tolerance.  FAKE (SYN) additionally
#: subtracts the longest per-worker traversal overhead (Fig. 8 line 26),
#: which over-subtracts on trees of tiny nodes — the synthesizer's
#: documented approximation (see tests/test_fuzz_pipeline.py).  The values
#: are shared with the differential harness via ``repro.validate.policy``.
SPEEDUP_EPS = {
    "ff": FF_BOUND_TOLERANCE,
    "real": REAL_TOLERANCE,
    "syn": SYN_TOLERANCE,
}


@dataclass
class Violation:
    """One failed invariant check, in structured form."""

    check: str  #: invariant name, e.g. "work_conservation"
    where: str  #: instrumentation site / grid-point label
    detail: str  #: human-readable description
    observed: Optional[float] = None
    expected: Optional[float] = None

    def __str__(self) -> str:
        msg = f"[{self.check}] {self.where}: {self.detail}"
        if self.observed is not None or self.expected is not None:
            msg += f" (observed={self.observed!r}, expected={self.expected!r})"
        return msg


class InvariantChecker:
    """Process-wide switchboard for the runtime invariant checks.

    ``enabled`` gates every hook; ``mode`` decides what a failed check does:
    ``"raise"`` throws :class:`~repro.errors.InvariantViolation` at the
    fault site (the right default for tests and batch workers, where the
    existing error plumbing turns it into a structured task failure), while
    ``"record"`` collects :class:`Violation` records on :attr:`violations`
    so a harness can report them all (the CLI's ``check``/``--selfcheck``).
    Every outcome is also counted on the ``repro.obs`` metrics registry
    (``validate.checks`` / ``validate.violations``).
    """

    __slots__ = (
        "enabled",
        "mode",
        "violations",
        "checks_run",
        "memo_verify_every",
        "_memo_hits",
    )

    def __init__(
        self,
        enabled: bool = False,
        mode: str = "raise",
        memo_verify_every: int = 64,
    ) -> None:
        self.enabled = enabled
        self.mode = mode
        #: Violations collected in ``"record"`` mode.
        self.violations: list[Violation] = []
        #: Checks evaluated while enabled (the overhead bench's hook census).
        self.checks_run = 0
        #: Verify every Nth section-memo hit by exact replay (1 = all).
        self.memo_verify_every = memo_verify_every
        self._memo_hits = 0

    # ------------------------------------------------------------- plumbing

    def reset(self) -> None:
        """Drop collected violations and zero the counters."""
        self.violations.clear()
        self.checks_run = 0
        self._memo_hits = 0

    def fail(
        self,
        check: str,
        where: str,
        detail: str,
        observed: Optional[float] = None,
        expected: Optional[float] = None,
    ) -> None:
        """Report one failed check (raise or record, per :attr:`mode`)."""
        violation = Violation(check, where, detail, observed, expected)
        get_metrics().inc("validate.violations")
        if self.mode == "raise":
            raise InvariantViolation(str(violation))
        self.violations.append(violation)

    # ------------------------------------------------------ kernel invariants

    def check_event_time(self, t: float, now: float) -> None:
        """Popped-event monotonicity: the heap never yields the past."""
        self.checks_run += 1
        if t < now - 1e-9:
            self.fail(
                "time_monotonic",
                "kernel.run",
                "event popped before current simulated time",
                observed=t,
                expected=now,
            )

    def check_segment_complete(self, seg) -> None:
        """A completing segment retired all its work, consumed at least its
        base cycles of wall time (slowdown ≥ 1), and attributed exactly its
        whole counter share (fractions sum to 1 under preemption)."""
        self.checks_run += 1
        total = seg.total
        if seg.remaining > REL_TOL * max(total, 1.0):
            self.fail(
                "segment_complete",
                "kernel._complete_segment",
                "segment completed with work remaining",
                observed=seg.remaining,
                expected=0.0,
            )
        if seg.wall_consumed < total * (1.0 - REL_TOL) - 1e-6:
            self.fail(
                "work_conservation",
                "kernel._complete_segment",
                "segment consumed less wall time than its base cycles",
                observed=seg.wall_consumed,
                expected=total,
            )
        # inv_frac is -1.0 when the checker was disabled at attach time
        # (enabling mid-run must not produce false positives).
        if seg.inv_frac >= 0.0 and total > 0 and abs(seg.inv_frac - 1.0) > REL_TOL:
            self.fail(
                "counter_attribution",
                "kernel._complete_segment",
                "instruction/miss fractions did not sum to 1 over the "
                "segment's life",
                observed=seg.inv_frac,
                expected=1.0,
            )

    def check_work_conservation(
        self, cycles_in: float, busy_out: float, exact: bool, where: str
    ) -> None:
        """Whole-run conservation: base compute cycles in vs busy cycles out.

        ``exact=True`` (no segment ever had memory demand, so every slowdown
        was identically 1.0) requires equality; otherwise busy cycles may
        only exceed the base cycles (contention stretches, never shrinks).
        """
        self.checks_run += 1
        tol = REL_TOL * max(cycles_in, 1.0)
        if busy_out < cycles_in - tol:
            self.fail(
                "work_conservation",
                where,
                "kernel accounted fewer busy cycles than compute submitted",
                observed=busy_out,
                expected=cycles_in,
            )
        elif exact and busy_out > cycles_in + tol:
            self.fail(
                "work_conservation",
                where,
                "demand-free run accounted more busy cycles than submitted",
                observed=busy_out,
                expected=cycles_in,
            )

    def check_dram_cap(self, pool, demands, k: float) -> None:
        """The solved stall factor keeps achieved bandwidth under the peak."""
        self.checks_run += 1
        if k >= _K_SATURATED:
            return  # saturation fallback for inconsistent demands
        total = sum(d.demand_bytes_per_sec for d in demands)
        if total <= 0:
            return
        achieved = pool.achieved_bandwidth(demands, k)
        peak = pool.peak_bytes_per_sec
        if achieved > peak * (1.0 + DRAM_TOL):
            self.fail(
                "dram_bandwidth_cap",
                "kernel._rerate_socket",
                "aggregate achieved DRAM bandwidth exceeds the configured peak",
                observed=achieved,
                expected=peak,
            )

    # --------------------------------------------------- prediction invariants

    def check_speedup(
        self,
        method: str,
        speedup: float,
        n_threads: int,
        n_cores: int,
        nested: bool,
        where: str,
    ) -> None:
        """Speedup ≤ concurrency · (1 + ε) for the emulators' machines.

        FF runs an abstract machine with exactly ``n_threads`` CPUs.  The
        replay paradigms run on ``n_cores`` physical cores; non-nested
        programs cannot use more than ``min(n_threads, n_cores)`` of them,
        but nested OpenMP teams spawn *physical* threads, so a "t-thread"
        nested program legitimately scales to the full core count.
        Methods outside ff/syn/real (baselines) are not checked.
        """
        eps = SPEEDUP_EPS.get(method)
        if eps is None:
            return
        self.checks_run += 1
        if method == "ff":
            cap = float(n_threads)
        else:
            cap = float(n_cores if nested else min(n_threads, n_cores))
        if speedup > cap * (1.0 + eps) + 1e-9 or speedup <= 0:
            self.fail(
                "speedup_bound",
                where,
                f"{method} speedup outside (0, {cap:g}·(1+{eps:g})]",
                observed=speedup,
                expected=cap,
            )

    # ------------------------------------------------------- memo verification

    def sample_memo_hit(self) -> bool:
        """Deterministic sampling of section-memo hits for re-verification:
        the first hit and every :attr:`memo_verify_every`-th after it."""
        self._memo_hits += 1
        return self._memo_hits % self.memo_verify_every == 1 or (
            self.memo_verify_every == 1
        )

    def check_memo_parity(self, cached, fresh, where: str) -> None:
        """A memoised :class:`~repro.core.executor.SectionRun` must equal an
        uncached replay *bitwise* — the determinism claim the memo rests on."""
        self.checks_run += 1
        for field in (
            "gross_cycles",
            "traversal_overhead",
            "preemptions",
            "steals",
            "lock_acquires",
            "lock_contended",
        ):
            got = getattr(cached, field)
            want = getattr(fresh, field)
            if got != want:
                self.fail(
                    "section_memo_parity",
                    where,
                    f"memoised section replay diverges from exact replay "
                    f"on {field}",
                    observed=float(got),
                    expected=float(want),
                )


def has_nested_sections(tree) -> bool:
    """True if any top-level SEC contains another SEC (the Fig. 7 shape).

    Nested sections are what let a t-thread replay scale past t (nested
    physical teams) and what the FF's abstract machine cannot model —
    both the speedup-bound cap and the differential harness's expected-
    divergence classification key off this predicate.
    """
    from repro.core.tree import NodeKind

    seen: set[int] = set()

    def any_sec_below(node) -> bool:
        for child in node.children:
            if id(child) in seen:
                continue
            seen.add(id(child))
            if child.kind is NodeKind.SEC or any_sec_below(child):
                return True
        return False

    return any(
        top.kind is NodeKind.SEC and any_sec_below(top)
        for top in tree.root.children
    )


#: Process-global checker; disabled unless opted in (same pattern as the
#: tracer's ``REPRO_TRACE``).  Kernels/executors/emulators capture it at
#: construction, so replace-or-enable it *before* building them.
_checker = InvariantChecker(
    enabled=os.environ.get("REPRO_VALIDATE", "") not in ("", "0")
)


def get_checker() -> InvariantChecker:
    """The process-global invariant checker."""
    return _checker


def set_checker(checker: InvariantChecker) -> InvariantChecker:
    """Replace the process-global checker (tests); returns it."""
    global _checker
    _checker = checker
    return checker
