"""Parallel Prophet — speedup prediction for annotated serial programs.

A faithful, fully self-contained reproduction of

    Minjang Kim, Pranith Kumar, Hyesoon Kim, Bevin Brett,
    "Predicting Potential Speedup of Serial Code via Lightweight Profiling
    and Emulations with Memory Performance Model", IPDPS 2012.

The package layers:

- :mod:`repro.simhw` — simulated hardware (cycle clock, LLC, DRAM contention
  model, PAPI-like counters): the stand-in for the paper's 12-core Westmere.
- :mod:`repro.simos` — deterministic discrete-event OS kernel (preemptive
  round-robin scheduler, mutexes, barriers, events).
- :mod:`repro.runtime` — OpenMP-like and Cilk-like parallel runtimes running
  on the simulated OS.
- :mod:`repro.core` — the paper's contribution: annotations, interval
  profiling into a program tree, tree compression, the fast-forward and
  program-synthesis emulators, the burden-factor memory model, and the
  top-level :class:`~repro.core.prophet.ParallelProphet` API.
- :mod:`repro.baselines` — Amdahl-family analytical models plus
  Suitability-like and Kismet-like comparison predictors.
- :mod:`repro.workloads` — annotated serial programs mirroring the paper's
  OmpSCR and NPB benchmarks plus the Test1/Test2 validation generators.

Quickstart::

    from repro import ParallelProphet, WESTMERE_12
    from repro.workloads import get_workload

    prophet = ParallelProphet(machine=WESTMERE_12)
    profile = prophet.profile(get_workload("npb_ft").build())
    report = prophet.predict(profile, threads=[2, 4, 6, 8, 10, 12])
    print(report.to_table())
"""

from repro.errors import (
    AnnotationError,
    CalibrationError,
    ConfigurationError,
    DeadlockError,
    EmulationError,
    ReproError,
    SimulationError,
)
from repro.simhw import MachineConfig, WESTMERE_12

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "MachineConfig",
    "WESTMERE_12",
    "ReproError",
    "AnnotationError",
    "SimulationError",
    "DeadlockError",
    "ConfigurationError",
    "CalibrationError",
    "EmulationError",
    "ParallelProphet",
]


def __getattr__(name: str):
    # Lazy import: ParallelProphet pulls in the full core stack; keep the
    # top-level import light for users who only need simhw/simos pieces.
    if name == "ParallelProphet":
        from repro.core.prophet import ParallelProphet

        return ParallelProphet
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
