"""Deterministic feature extraction for the learned surrogate tier.

The surrogate replaces an *emulation* with a table lookup, so its features
must be computable without running any emulator: everything here derives
from the program tree the interval profiler already recorded, the
per-section hardware counters, the machine configuration, and the grid
point being asked about (method, paradigm, schedule, thread count).

The vector splits into two halves:

- **base features** — a function of (profile, machine) only: work totals,
  task-count/imbalance aggregates, lock/nesting/pipeline flags, per-section
  memory demand versus the machine's DRAM peak.  These require a full tree
  walk, so :func:`base_features` results are cached by the surrogate per
  live profile object and the per-point cost stays microseconds.
- **point features** — a function of the requested grid point: method and
  paradigm one-hots, schedule family and chunk, thread count, and two
  closed-form speedup priors (the Amdahl bound from the serial fraction and
  the serialisation bound from the lock-work fraction, both in log space —
  the same space the model predicts in).  A ridge model over these priors
  starts from "textbook speedup" and learns the residual the emulators
  actually produce.

Feature order is frozen by :data:`BASE_FEATURES` / :data:`POINT_FEATURES`;
saved models embed the names and refuse to load against a different schema.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from repro.core.tree import NodeKind
from repro.runtime.tasks import Schedule

#: Names of the profile+machine half of the vector, in order.
BASE_FEATURES = (
    "log_serial_cycles",
    "serial_fraction",
    "n_sections",
    "log_tasks",
    "task_imbalance",
    "lock_work_frac",
    "has_locks",
    "has_nested",
    "has_pipeline",
    "has_nowait",
    "tree_depth",
    "mean_mpi_x100",
    "traffic_ratio",
    "log2_cores",
    "miss_stall_x100",
    "log_dram_peak_gbs",
)

#: Names of the grid-point half of the vector, in order.
POINT_FEATURES = (
    "method_ff",
    "paradigm_omp",
    "paradigm_cilk",
    "paradigm_omp_task",
    "sched_static",
    "sched_static_chunk",
    "sched_dynamic",
    "log_chunk",
    "log2_threads",
    "threads_frac",
    "log_tasks_per_thread",
    "parallel_cover",
    "demand_pressure",
    "memory_model",
    "log_amdahl_bound",
    "log_lock_bound",
    "log_task_bound",
    "ff_x_task_bound",
    "locks_x_task_bound",
    "dynamic_x_task_bound",
)

#: The full schema: base half then point half.
FEATURE_NAMES = BASE_FEATURES + POINT_FEATURES


def _span(node, t: int, chunk: int) -> float:
    """Recursive work-span time estimate of ``node`` under ``t`` workers.

    Sections schedule their tasks in waves of ``t`` chunks of ``chunk``
    consecutive tasks; full waves cost a chunk of mean-length tasks each,
    and the last wave finishes when its longest unit does.  Nested sections
    recurse with the same ``t`` (nested parallelism shortens the enclosing
    task, which is how the estimate can exceed a flat per-section bound —
    the same reason the invariant checker caps nested speedups at
    ``n_cores``, not ``t``).  Locks and runtime overheads are deliberately
    ignored: this is a feature prior, and those effects are what the
    ensemble learns as the residual.
    """
    if node.kind is NodeKind.SEC:
        per = []
        counts = []
        for task in node.children:
            per.append(sum(_span(c, t, chunk) for c in task.children))
            counts.append(max(1, task.repeat))
        n = sum(counts)
        if n == 0 or not per:
            return 0.0
        total = sum(p * c for p, c in zip(per, counts))
        mean = total / n
        longest = max(per)
        units = math.ceil(n / chunk)
        waves = math.ceil(units / t)
        last_unit = max(longest, mean * min(chunk, n)) if units > 1 else total
        time = (waves - 1) * chunk * mean + min(last_unit, total)
        return time * max(1, node.repeat)
    if node.is_leaf:
        return node.subtree_length()
    return max(1, node.repeat) * sum(_span(c, t, chunk) for c in node.children)


class BaseFeatures:
    """Cached per-profile extraction state: the base vector plus the
    program tree the thread-dependent speedup prior is computed from."""

    __slots__ = ("vector", "tree", "total_cycles", "_bounds")

    def __init__(self, vector: list, tree, total_cycles: float) -> None:
        self.vector = vector
        self.tree = tree
        self.total_cycles = total_cycles
        self._bounds: dict = {}

    def task_bound(self, n_threads: int, chunk: int = 1) -> float:
        """Closed-form speedup bound with task-count quantization.

        ``serial_cycles / span(t)`` over the recursive estimate above — a
        single-task section parallelizes not at all, 13 equal tasks on 12
        threads take two waves, a chunk of 4 over 9 tasks caps concurrency
        at 3.  Cached per (threads, chunk): the tree walk runs once per
        distinct grid shape, not once per prediction.
        """
        if self.total_cycles <= 0:
            return 1.0
        t = max(1, n_threads)
        chunk = max(1, chunk)
        key = (t, chunk)
        bound = self._bounds.get(key)
        if bound is None:
            span = sum(_span(c, t, chunk) for c in self.tree.root.children)
            bound = self.total_cycles / max(span, 1e-9)
            self._bounds[key] = bound
        return bound


def _section_stats(section) -> dict:
    """Task-level aggregates of one top-level SEC node (repeats expanded)."""
    n_tasks = 0
    lengths_sum = 0.0
    lengths_max = 0.0
    lock_cycles = 0.0
    nested = False
    for task in section.children:
        per_instance = (
            task.subtree_length() / task.repeat if task.repeat else 0.0
        )
        n_tasks += task.repeat
        lengths_sum += task.subtree_length()
        lengths_max = max(lengths_max, per_instance)
        for node in task.walk():
            if node.kind is NodeKind.SEC:
                nested = True
            if node.kind is NodeKind.L:
                lock_cycles += node.subtree_length()
    mean_len = lengths_sum / n_tasks if n_tasks else 0.0
    return {
        "n_tasks": n_tasks,
        "cycles": section.subtree_length(),
        "imbalance": (lengths_max / mean_len) if mean_len > 0 else 1.0,
        "lock_cycles": lock_cycles * section.repeat,
        "nested": nested,
        "pipeline": bool(section.pipeline),
        "nowait": bool(section.nowait),
    }


def base_features(profile, machine) -> BaseFeatures:
    """The (profile, machine) half of the vector — one full tree walk.

    Section aggregates are weighted by each section's share of the total
    parallel work, so a tiny prologue loop cannot dominate the signature of
    a program whose time lives in one big section.  The returned
    :class:`BaseFeatures` also carries the per-section summary
    :meth:`BaseFeatures.task_bound` evaluates per thread count.
    """
    tree = profile.tree
    serial = tree.serial_cycles()
    sections = tree.top_level_sections()
    stats = [_section_stats(s) for s in sections]
    section_cycles = sum(s["cycles"] for s in stats)
    weights = [
        (s["cycles"] / section_cycles) if section_cycles > 0 else 0.0
        for s in stats
    ]

    def wmean(key, transform=lambda v: v) -> float:
        return sum(w * transform(s[key]) for w, s in zip(weights, stats))

    lock_frac = (
        sum(s["lock_cycles"] for s in stats) / section_cycles
        if section_cycles > 0
        else 0.0
    )
    # Per-section memory demand, weighted the same way; sections the counter
    # pass never saw (name mismatch) contribute zero demand.
    mpi = traffic = 0.0
    peak_mbs = machine.dram_peak_gbs * 1e3
    for w, section in zip(weights, sections):
        counters = profile.sections.get(section.name)
        if counters is None:
            continue
        mpi += w * counters.mpi
        traffic += w * counters.traffic_mbs(machine)
    vector = [
        math.log10(1.0 + serial),
        tree.serial_fraction(),
        float(len(sections)),
        wmean("n_tasks", lambda v: math.log10(1.0 + v)),
        min(wmean("imbalance"), 16.0),
        min(lock_frac, 1.0),
        1.0 if any(s["lock_cycles"] > 0 for s in stats) else 0.0,
        1.0 if any(s["nested"] for s in stats) else 0.0,
        1.0 if any(s["pipeline"] for s in stats) else 0.0,
        1.0 if any(s["nowait"] for s in stats) else 0.0,
        float(tree.max_depth()),
        100.0 * mpi,
        traffic / peak_mbs if peak_mbs > 0 else 0.0,
        math.log2(max(1, machine.n_cores)),
        machine.base_miss_stall / 100.0,
        math.log10(max(machine.dram_peak_gbs, 1e-9)),
    ]
    return BaseFeatures(vector=vector, tree=tree, total_cycles=serial)


def point_features(
    base: BaseFeatures,
    machine,
    method: str,
    paradigm: str,
    schedule: Schedule,
    n_threads: int,
    memory_model: bool,
) -> list[float]:
    """Assemble the full vector for one grid point from cached ``base``."""
    vec = base.vector
    serial_frac = vec[BASE_FEATURES.index("serial_fraction")]
    log_tasks = vec[BASE_FEATURES.index("log_tasks")]
    lock_frac = vec[BASE_FEATURES.index("lock_work_frac")]
    has_locks = vec[BASE_FEATURES.index("has_locks")]
    traffic_ratio = vec[BASE_FEATURES.index("traffic_ratio")]
    tasks = 10.0 ** log_tasks - 1.0
    t = float(n_threads)
    # Closed-form priors, in the model's own log-speedup space.
    amdahl = 1.0 / (serial_frac + (1.0 - serial_frac) / t)
    lock_bound = 1.0 / (lock_frac + (1.0 - lock_frac) / t)
    chunked = schedule.kind.value == "static_chunk"
    dynamic = schedule.is_dynamic_family
    log_task_bound = math.log(
        max(
            base.task_bound(
                n_threads,
                schedule.chunk if (chunked or dynamic) and schedule.chunk else 1,
            ),
            1e-9,
        )
    )
    return list(vec) + [
        1.0 if method == "ff" else 0.0,
        1.0 if paradigm == "omp" else 0.0,
        1.0 if paradigm == "cilk" else 0.0,
        1.0 if paradigm == "omp_task" else 0.0,
        1.0 if schedule.kind.value == "static" else 0.0,
        1.0 if chunked else 0.0,
        1.0 if schedule.is_dynamic_family else 0.0,
        math.log10(1.0 + schedule.chunk) if (chunked or schedule.is_dynamic_family) else 0.0,
        math.log2(max(t, 1.0)),
        t / max(1, machine.n_cores),
        math.log10(1.0 + tasks / t),
        min(1.0, tasks / t) if t > 0 else 0.0,
        min(traffic_ratio * t, 8.0),
        1.0 if memory_model else 0.0,
        math.log(max(amdahl, 1e-9)),
        math.log(max(lock_bound, 1e-9)),
        log_task_bound,
        log_task_bound * (1.0 if method == "ff" else 0.0),
        log_task_bound * has_locks,
        log_task_bound * (1.0 if dynamic else 0.0),
    ]


def machine_signature(machine) -> tuple:
    """The machine fields the surrogate was (or was not) trained on.

    A model only answers for machine shapes it saw during training — the
    feature space covers the machine parameters, but extrapolating a linear
    model to an unseen memory system is exactly the silent-wrongness the
    exact-fallback tier exists to prevent.
    """
    return (
        machine.n_cores,
        machine.n_sockets,
        machine.freq_ghz,
        machine.line_size,
        machine.llc_bytes,
        machine.base_miss_stall,
        machine.dram_peak_gbs,
        machine.dram_queue_gain,
        machine.timeslice_cycles,
        machine.context_switch_cycles,
    )


def extract(
    profile,
    machine,
    method: str,
    paradigm: str,
    schedule: Schedule | str,
    n_threads: int,
    memory_model: bool = True,
    base: Optional[BaseFeatures] = None,
) -> list[float]:
    """One full feature vector (convenience for training and tests)."""
    if isinstance(schedule, str):
        schedule = Schedule.parse(schedule)
    if base is None:
        base = base_features(profile, machine)
    return point_features(
        base, machine, method, paradigm, schedule, n_threads, memory_model
    )
