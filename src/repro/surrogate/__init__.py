"""Learned surrogate prediction tier (see ``docs/surrogate.md``).

A :class:`~repro.surrogate.model.Surrogate` is a small ridge-regression
ensemble over deterministic program/machine/grid-point features that stands
in for the exact emulators on warm interactive traffic.  Prediction entry
points (:meth:`ParallelProphet.predict`, :class:`BatchPredictor`, the serve
daemon) take ``tier="exact" | "surrogate" | "auto"``:

- ``exact`` — the emulators, unchanged (the default everywhere).
- ``surrogate`` — every answer the model supports comes from the model,
  confident or not; unsupported points still fall back to the emulators.
- ``auto`` — the model answers only where its ensemble spread is below its
  calibrated threshold; everything else falls back to the exact path.
  Hits/fallbacks/abstains are recorded under ``surrogate.*`` metrics.

The process-wide default model used when callers don't pass one explicitly
lives here: ``REPRO_SURROGATE_MODEL`` points at a pretrained JSON artifact;
otherwise a quick model is trained in-process on first use (a few seconds,
cached for the process lifetime).
"""

from __future__ import annotations

import os
import threading
from typing import Optional

from repro.surrogate.features import (
    BASE_FEATURES,
    FEATURE_NAMES,
    POINT_FEATURES,
    BaseFeatures,
    base_features,
    extract,
    machine_signature,
    point_features,
)
from repro.surrogate.model import (
    RidgeEnsemble,
    Surrogate,
    SurrogateAnswer,
)

#: Environment variable naming a pretrained model JSON to load instead of
#: training the quick default in-process.
MODEL_ENV = "REPRO_SURROGATE_MODEL"

_default_lock = threading.Lock()
_default: Optional[Surrogate] = None


def get_default_surrogate() -> Surrogate:
    """The process-wide surrogate, loading or training it on first use.

    Resolution order: a model previously installed with
    :func:`set_default_surrogate`; the JSON named by ``REPRO_SURROGATE_MODEL``;
    else a quick in-process training run against the default machine
    (deterministic, a few seconds, cached for the process lifetime).
    """
    global _default
    with _default_lock:
        if _default is None:
            path = os.environ.get(MODEL_ENV)
            if path:
                _default = Surrogate.load(path)
            else:
                from repro.surrogate.train import TrainConfig, train

                _default = train(TrainConfig()).surrogate
        return _default


def set_default_surrogate(surrogate: Optional[Surrogate]) -> None:
    """Install (or with None, clear) the process-wide surrogate."""
    global _default
    with _default_lock:
        _default = surrogate


__all__ = [
    "BASE_FEATURES",
    "BaseFeatures",
    "FEATURE_NAMES",
    "MODEL_ENV",
    "POINT_FEATURES",
    "RidgeEnsemble",
    "Surrogate",
    "SurrogateAnswer",
    "base_features",
    "extract",
    "get_default_surrogate",
    "machine_signature",
    "point_features",
    "set_default_surrogate",
]
