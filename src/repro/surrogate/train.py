"""Training-set generation and active-learning loop for the surrogate tier.

The exact pipeline is its own labelling oracle: every grid point the
surrogate should answer can be computed by :class:`repro.core.batch`'s
sweeper (which routes through the columnar engine where it applies), so
"training data" is just a deterministic corpus of profiles × grid points
pushed through the oracle.  The corpus mixes the registered workloads
(realistic memory behaviour) with seeded fuzz programs (structural
coverage: locks, nesting, imbalance shapes the workloads don't hit).

Labelling is the expensive part, so the loop is *active*: a small seed set
is labelled up front, the ensemble is fitted, and each refinement round
labels only the pool points where the ensemble members disagree most
(highest spread).  Selection uses a stable sort over (spread, index) so
the same seed and grid always label the same points in the same order —
the saved model is byte-identical across runs.

The spread threshold that gates the ``auto`` tier is calibrated on a
held-out labelled validation slice: the largest spread below which every
validation answer stays within 0.8× the surrogate tolerance class.
"""

from __future__ import annotations

import argparse
import math
import random
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.batch import BatchPredictor, SweepTask
from repro.core.prophet import ParallelProphet
from repro.errors import ConfigurationError
from repro.runtime.tasks import Schedule
from repro.simhw.machine import WESTMERE_12, MachineConfig
from repro.surrogate.features import (
    BASE_FEATURES,
    base_features,
    extract,
    machine_signature,
)
from repro.surrogate.model import RidgeEnsemble, Surrogate, stratum_key
from repro.validate.fuzz import build_program, generate_program
from repro.validate.policy import SURROGATE_TOLERANCE


@dataclass
class TrainConfig:
    """Everything that determines a training run (and hence the artifact)."""

    seed: int = 0
    machine: MachineConfig = WESTMERE_12
    #: Registered workloads in the corpus, profiled at each scale below.
    #: Full scale (1.0) must be present: it is what ``predict``/``sweep``
    #: callers actually query, and the spread gate only opens near the
    #: training distribution.  The smaller scales widen the serial-cycles
    #: axis so scaled/sliced profiles stay in-distribution too.
    workloads: Sequence[str] = ("npb_ep", "npb_ft")
    workload_scales: Sequence[float] = (1.0, 0.1)
    #: Seeded fuzz programs in the corpus.
    fuzz_programs: int = 12
    threads: Sequence[int] = (2, 4, 6, 8, 12)
    schedules: Sequence[str] = ("static", "static,4", "dynamic,4")
    methods: Sequence[str] = ("ff", "syn")
    #: Both memory-model settings are in the grid so the ``memory_model``
    #: feature is informative — otherwise the column is constant and every
    #: off-setting query is out-of-distribution (answered unconfidently).
    memory_models: Sequence[bool] = (True, False)
    #: Active-learning shape: seed labels, then ``rounds`` × ``batch`` more.
    initial: int = 256
    rounds: int = 4
    batch: int = 128
    #: Held-out labelled slice for spread-threshold calibration.
    validation: int = 128
    n_models: int = 8
    ridge: float = 1e-2
    #: Bootstrap resample fraction (see :class:`RidgeEnsemble`).
    subsample: float = 0.5
    jobs: int = 1
    #: Error budget (relative speedup error vs the oracle) a confident
    #: answer must stay within on the validation slice.
    target_error: float = field(default=0.8 * SURROGATE_TOLERANCE)


@dataclass(frozen=True)
class _Candidate:
    """One unlabelled pool entry: a (profile, grid point) pair."""

    workload: str
    method: str
    schedule: str
    n_threads: int
    memory_model: bool


@dataclass
class TrainResult:
    """The trained surrogate plus the numbers a caller may want to log."""

    surrogate: Surrogate
    labelled: int
    pool: int
    validation_error_max: float
    validation_confident_frac: float


def build_corpus(cfg: TrainConfig, prophet: ParallelProphet) -> dict:
    """Profile the training corpus: registered workloads + seeded fuzz."""
    from repro.workloads import get_workload

    profiles = {}
    for name in cfg.workloads:
        for scale in cfg.workload_scales:
            spec = get_workload(name, scale=scale)
            profiles[f"{name}@{scale:g}"] = prophet.profile(spec.program)
    rng = random.Random(cfg.seed)
    for i in range(cfg.fuzz_programs):
        program = build_program(generate_program(rng))
        profiles[f"fuzz-{cfg.seed}-{i}"] = prophet.profile(program)
    return profiles


def _label(
    predictor: BatchPredictor,
    profiles: dict,
    candidates: Sequence[_Candidate],
) -> list[float]:
    """Oracle-label candidates: log speedup from the exact sweeper."""
    tasks = [
        SweepTask(
            workload=c.workload,
            schedule=c.schedule,
            n_threads=c.n_threads,
            methods=(c.method,),
            memory_model=c.memory_model,
        )
        for c in candidates
    ]
    labels = []
    for _task, outcome in predictor.run(tasks, profiles):
        (estimate,) = outcome
        labels.append(math.log(max(estimate.speedup, 1e-9)))
    return labels


def train(cfg: Optional[TrainConfig] = None) -> TrainResult:
    """Run the full corpus → oracle → active-learning → calibration loop."""
    cfg = cfg or TrainConfig()
    if cfg.initial < 2:
        raise ConfigurationError(f"initial must be >= 2, got {cfg.initial}")
    prophet = ParallelProphet(machine=cfg.machine)
    predictor = BatchPredictor(prophet, jobs=cfg.jobs)
    profiles = build_corpus(cfg, prophet)

    # The full candidate pool, in deterministic grid order.
    schedules = [Schedule.parse(s).label for s in cfg.schedules]
    pool = [
        _Candidate(name, method, schedule, t, mm)
        for name in profiles
        for method in cfg.methods
        for schedule in schedules
        for t in cfg.threads
        for mm in cfg.memory_models
    ]
    bases = {
        name: base_features(profile, cfg.machine)
        for name, profile in profiles.items()
    }

    def vectors(cands: Sequence[_Candidate]) -> np.ndarray:
        return np.asarray(
            [
                extract(
                    profiles[c.workload],
                    cfg.machine,
                    c.method,
                    c.schedule,
                    Schedule.parse(c.schedule),
                    c.n_threads,
                    c.memory_model,
                    base=bases[c.workload],
                )
                for c in cands
            ],
            dtype=np.float64,
        )

    # Deterministic shuffle, then carve off validation + seed slices.
    rng = random.Random(cfg.seed + 1)
    order = list(range(len(pool)))
    rng.shuffle(order)
    val_idx = order[: min(cfg.validation, max(0, len(order) - cfg.initial))]
    rest = order[len(val_idx):]
    seed_idx = rest[: min(cfg.initial, len(rest))]
    unlabelled = rest[len(seed_idx):]

    labelled_idx = list(seed_idx)
    labels = dict(
        zip(
            labelled_idx,
            _label(predictor, profiles, [pool[i] for i in labelled_idx]),
        )
    )

    ensemble = RidgeEnsemble(
        n_models=cfg.n_models,
        ridge=cfg.ridge,
        seed=cfg.seed,
        subsample=cfg.subsample,
    )

    def fit() -> None:
        X = vectors([pool[i] for i in labelled_idx])
        y = np.asarray([labels[i] for i in labelled_idx])
        ensemble.fit(X, y)

    fit()
    for _round in range(cfg.rounds):
        if not unlabelled:
            break
        _mean, spread = ensemble.predict(
            vectors([pool[i] for i in unlabelled])
        )
        # Highest-spread first; ties broken by pool index so the same run
        # always labels the same points (np.argsort stable + index key).
        ranked = sorted(
            range(len(unlabelled)),
            key=lambda j: (-spread[j], unlabelled[j]),
        )
        picked_positions = ranked[: cfg.batch]
        picked = [unlabelled[j] for j in picked_positions]
        for index, label in zip(
            picked,
            _label(predictor, profiles, [pool[i] for i in picked]),
        ):
            labels[index] = label
        labelled_idx.extend(picked)
        unlabelled = [i for i in unlabelled if i not in set(picked)]
        fit()

    # ---------------------------------------------------- threshold calibration
    locks_idx = BASE_FEATURES.index("has_locks")
    val = [pool[i] for i in val_idx]
    thresholds: dict[str, float] = {}
    if val:
        val_labels = _label(predictor, profiles, val)
        mean, spread = ensemble.predict(vectors(val))
        pred = np.minimum(
            np.exp(mean), np.asarray([c.n_threads for c in val], dtype=float)
        )
        exact = np.exp(np.asarray(val_labels))
        rel_err = np.abs(pred - exact) / np.maximum(exact, 1e-9)
        strata = [
            stratum_key(
                c.method, bases[c.workload].vector[locks_idx] > 0.0
            )
            for c in val
        ]
        # Per stratum: the largest spread prefix whose worst relative error
        # stays inside the target budget (sort by spread ascending, take
        # the longest prefix).  Strata are calibrated independently so the
        # hardest-to-regress one (the FF on lock-bearing trees) abstains
        # without vetoing the rest.
        confident = np.zeros(len(val), dtype=bool)
        for key in sorted(set(strata)):
            members = [j for j, s in enumerate(strata) if s == key]
            members.sort(key=lambda j: (spread[j], j))
            threshold = 0.0
            worst = 0.0
            for j in members:
                worst = max(worst, float(rel_err[j]))
                if worst > cfg.target_error:
                    break
                threshold = float(spread[j])
            thresholds[key] = threshold
            if threshold > 0.0:
                for j in members:
                    if spread[j] <= threshold:
                        confident[j] = True
        confident_frac = float(confident.mean())
        err_max = (
            float(rel_err[confident].max()) if confident.any() else 0.0
        )
    else:
        confident_frac = 0.0
        err_max = 0.0

    surrogate = Surrogate(
        model=ensemble,
        spread_thresholds=thresholds,
        machines=[machine_signature(cfg.machine)],
        paradigms=("omp",),
        meta={
            "seed": cfg.seed,
            "workloads": list(cfg.workloads),
            "fuzz_programs": cfg.fuzz_programs,
            "threads": list(cfg.threads),
            "schedules": list(schedules),
            "methods": list(cfg.methods),
            "memory_models": [bool(m) for m in cfg.memory_models],
            "labelled": len(labelled_idx),
            "pool": len(pool),
            "rounds": cfg.rounds,
            "target_error": cfg.target_error,
        },
    )
    return TrainResult(
        surrogate=surrogate,
        labelled=len(labelled_idx),
        pool=len(pool),
        validation_error_max=err_max,
        validation_confident_frac=confident_frac,
    )


def quick_config(seed: int = 0, machine: MachineConfig = WESTMERE_12) -> TrainConfig:
    """The small default configuration behind :func:`get_default_surrogate`.

    Sized to train in a few seconds: a reduced corpus and grid, two
    refinement rounds.  Serving deployments should train a full
    :class:`TrainConfig` offline and point ``REPRO_SURROGATE_MODEL`` at it.
    """
    return TrainConfig(
        seed=seed,
        machine=machine,
        workloads=("npb_ep",),
        workload_scales=(1.0, 0.05),
        fuzz_programs=8,
        threads=(2, 4, 8, machine.n_cores)
        if machine.n_cores not in (2, 4, 8)
        else (2, 4, 8),
        schedules=("static", "static,4"),
        initial=128,
        rounds=3,
        batch=48,
        validation=64,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.surrogate.train -o model.json``"""
    parser = argparse.ArgumentParser(
        description="Train the repro surrogate model against the exact oracle."
    )
    parser.add_argument("-o", "--output", required=True, help="model JSON path")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true", help="small config")
    parser.add_argument("--jobs", type=int, default=1)
    args = parser.parse_args(argv)
    cfg = quick_config(seed=args.seed) if args.quick else TrainConfig(seed=args.seed)
    cfg.jobs = args.jobs
    result = train(cfg)
    result.surrogate.save(args.output)
    thresholds = ", ".join(
        f"{k}={v:.4f}"
        for k, v in sorted(result.surrogate.spread_thresholds.items())
    )
    print(
        f"trained on {result.labelled}/{result.pool} grid points; "
        f"validation max rel err {result.validation_error_max:.3f}, "
        f"confident on {result.validation_confident_frac:.0%} "
        f"(thresholds {thresholds})"
    )
    print(f"saved {args.output}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
