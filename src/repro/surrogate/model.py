"""Ridge-regression ensemble surrogate with spread-based uncertainty.

The model is deliberately small: ``k`` ridge regressions fitted on
bootstrap resamples of the training set, each mapping a feature vector
(:mod:`repro.surrogate.features`) to **log speedup**.  The ensemble mean is
the prediction; the ensemble spread (standard deviation across members) is
the uncertainty estimate that gates the ``auto`` tier — where the members
disagree, the training data under-determined the answer and the exact
simulator must be consulted instead.

Everything is closed-form numpy (one ``solve`` per member at fit time, one
matrix-vector product at predict time), deterministic for a given seed, and
serialises to canonical JSON: the same seed and training grid produce a
byte-identical saved model, which is what lets ``repro check`` treat the
model file as a reproducible artifact rather than an opaque binary.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.tasks import Schedule
from repro.surrogate.features import (
    BASE_FEATURES,
    FEATURE_NAMES,
    base_features,
    machine_signature,
    point_features,
)

#: Methods the surrogate can stand in for.  ``real`` replays always go to
#: the simulator: the surrogate predicts predictions, not ground truth.
SUPPORTED_METHODS = ("ff", "syn")

#: File-format version embedded in saved models.
FORMAT_VERSION = 1

_HAS_LOCKS = BASE_FEATURES.index("has_locks")
_HAS_NESTED = BASE_FEATURES.index("has_nested")


def stratum_key(method: str, has_locks: bool) -> str:
    """The confidence stratum of a grid point.

    The spread threshold is calibrated per (method, lock-bearing) stratum
    rather than globally: the strata fail differently (the FF's greedy
    lock serialisation is systematically hard to regress, mirroring the
    differential harness's expected-divergence taxonomy), and a single
    global threshold lets the worst stratum veto every confident answer
    the others could give.
    """
    return f"{method}|{'locks' if has_locks else 'nolocks'}"


class RidgeEnsemble:
    """``k`` bootstrap-resampled ridge regressions over standardised features.

    ``subsample`` sets the bootstrap resample size as a fraction of the
    training set.  Full-size resamples (1.0) under-state uncertainty for a
    linear model — members converge to near-identical fits even where the
    data is thin — so the default draws half-size resamples, which keeps
    the central member exact while making the spread a live signal.
    """

    def __init__(
        self,
        n_models: int = 8,
        ridge: float = 1e-2,
        seed: int = 0,
        subsample: float = 0.5,
    ) -> None:
        if n_models < 1:
            raise ConfigurationError(
                f"n_models must be >= 1, got {n_models}"
            )
        if ridge <= 0:
            raise ConfigurationError(f"ridge must be > 0, got {ridge}")
        if not 0.0 < subsample <= 1.0:
            raise ConfigurationError(
                f"subsample must be in (0, 1], got {subsample}"
            )
        self.n_models = n_models
        self.ridge = ridge
        self.seed = seed
        self.subsample = subsample
        self._mean: Optional[np.ndarray] = None
        self._scale: Optional[np.ndarray] = None
        #: (k, n_features + 1) — per-member weights, bias last.
        self._weights: Optional[np.ndarray] = None

    # ------------------------------------------------------------------- fit

    def fit(self, X, y) -> "RidgeEnsemble":
        """Fit the ensemble on ``X`` (n, d) → ``y`` (n,) log-speedups."""
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or X.shape[0] != y.shape[0] or X.shape[0] < 2:
            raise ConfigurationError(
                f"need a (n>=2, d) training matrix, got X{X.shape} y{y.shape}"
            )
        self._mean = X.mean(axis=0)
        scale = X.std(axis=0)
        scale[scale < 1e-12] = 1.0  # constant columns pass through unscaled
        self._scale = scale
        Z = (X - self._mean) / self._scale
        Z = np.hstack([Z, np.ones((Z.shape[0], 1))])
        n, d = Z.shape
        penalty = self.ridge * np.eye(d)
        penalty[-1, -1] = 0.0  # never shrink the bias
        rng = np.random.default_rng(self.seed)
        weights = np.empty((self.n_models, d))
        resample = max(2, int(n * self.subsample))
        for k in range(self.n_models):
            # First member sees the full set (the "central" model); the rest
            # are bootstrap resamples whose disagreement is the spread.
            idx = (
                np.arange(n)
                if k == 0
                else np.sort(rng.integers(0, n, size=resample))
            )
            A = Z[idx]
            b = y[idx]
            # Penalty scales with the resample so members are shrunk
            # equally hard per observation.
            weights[k] = np.linalg.solve(
                A.T @ A + penalty * (len(idx) / n), A.T @ b
            )
        self._weights = weights
        return self

    @property
    def fitted(self) -> bool:
        return self._weights is not None

    # --------------------------------------------------------------- predict

    def predict(self, X) -> tuple[np.ndarray, np.ndarray]:
        """(ensemble mean, ensemble spread) of log speedup for ``X`` (n, d)."""
        if not self.fitted:
            raise ConfigurationError("predict() before fit()")
        X = np.asarray(X, dtype=np.float64)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        Z = (X - self._mean) / self._scale
        Z = np.hstack([Z, np.ones((Z.shape[0], 1))])
        per_member = Z @ self._weights.T  # (n, k)
        mean = per_member.mean(axis=1)
        spread = per_member.std(axis=1)
        return mean, spread

    def predict_one(self, x) -> tuple[float, float]:
        """(mean, spread) for a single feature vector."""
        mean, spread = self.predict(np.asarray(x, dtype=np.float64))
        return float(mean[0]), float(spread[0])

    # ----------------------------------------------------------- persistence

    def to_dict(self) -> dict:
        if not self.fitted:
            raise ConfigurationError("cannot serialise an unfitted ensemble")
        return {
            "n_models": self.n_models,
            "ridge": self.ridge,
            "seed": self.seed,
            "subsample": self.subsample,
            "mean": self._mean.tolist(),
            "scale": self._scale.tolist(),
            "weights": self._weights.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RidgeEnsemble":
        ens = cls(
            n_models=int(payload["n_models"]),
            ridge=float(payload["ridge"]),
            seed=int(payload["seed"]),
            subsample=float(payload.get("subsample", 1.0)),
        )
        ens._mean = np.asarray(payload["mean"], dtype=np.float64)
        ens._scale = np.asarray(payload["scale"], dtype=np.float64)
        ens._weights = np.asarray(payload["weights"], dtype=np.float64)
        return ens


class SurrogateAnswer:
    """One surrogate prediction: speedup, uncertainty, confidence verdict."""

    __slots__ = ("speedup", "spread", "confident")

    def __init__(self, speedup: float, spread: float, confident: bool) -> None:
        self.speedup = speedup
        self.spread = spread
        self.confident = confident

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SurrogateAnswer(speedup={self.speedup:.3f}, "
            f"spread={self.spread:.4f}, confident={self.confident})"
        )


class Surrogate:
    """A trained surrogate: ensemble + feature schema + uncertainty gate.

    This is the saved artifact the prediction tiers consult.  ``answer``
    returns None for grid points outside the model's competence (method,
    paradigm, or machine shape it was never trained on) — the caller falls
    back to the exact simulator; otherwise it returns a
    :class:`SurrogateAnswer` whose ``confident`` flag compares the
    ensemble spread against the per-stratum threshold calibrated at
    training time (``auto`` tier falls back when False).

    ``spread_thresholds`` maps :func:`stratum_key` strings to thresholds;
    a stratum absent from the map (or calibrated to 0.0) never answers
    confidently.
    """

    def __init__(
        self,
        model: RidgeEnsemble,
        spread_thresholds: dict,
        machines: Sequence[tuple],
        paradigms: Sequence[str] = ("omp",),
        meta: Optional[dict] = None,
    ) -> None:
        self.model = model
        self.spread_thresholds = {
            str(k): float(v) for k, v in spread_thresholds.items()
        }
        self.machines = [tuple(m) for m in machines]
        self.paradigms = tuple(paradigms)
        self.meta = dict(meta or {})
        #: Tiny id-keyed cache of base extraction state per live profile
        #: object (the profile rides along to pin the id), so warm
        #: single-point predictions skip the tree walk.
        self._base_cache: dict[int, tuple[object, object]] = {}
        self._base_cache_size = 32

    # ------------------------------------------------------------ answering

    def supports(
        self, machine, method: str, paradigm: str, n_threads: int
    ) -> bool:
        """True if this model may answer for the given grid point at all."""
        return (
            method in SUPPORTED_METHODS
            and paradigm in self.paradigms
            and n_threads >= 1
            and machine_signature(machine) in self.machines
        )

    def _base_for(self, profile, machine):
        key = id(profile)
        hit = self._base_cache.get(key)
        if hit is not None and hit[0] is profile:
            return hit[1]
        base = base_features(profile, machine)
        if len(self._base_cache) >= self._base_cache_size:
            self._base_cache.pop(next(iter(self._base_cache)))
        self._base_cache[key] = (profile, base)
        return base

    def answer(
        self,
        profile,
        machine,
        method: str,
        paradigm: str,
        schedule: Schedule | str,
        n_threads: int,
        memory_model: bool = True,
    ) -> Optional[SurrogateAnswer]:
        """Predict one grid point, or None where the model has no standing."""
        if not self.supports(machine, method, paradigm, n_threads):
            return None
        if isinstance(schedule, str):
            schedule = Schedule.parse(schedule)
        base = self._base_for(profile, machine)
        x = point_features(
            base, machine, method, paradigm, schedule, n_threads, memory_model
        )
        log_speedup, spread = self.model.predict_one(x)
        # Clamp into the band the invariant checker enforces for the method
        # being stood in for — a surrogate answer must never trip a bound no
        # exact answer could.  FF is capped at exactly t; SYN at the core
        # count for nested trees, min(t, cores) otherwise.
        if method == "ff":
            cap = float(n_threads)
        else:
            nested = base.vector[_HAS_NESTED] > 0.0
            cap = float(
                machine.n_cores
                if nested
                else min(n_threads, machine.n_cores)
            )
        speedup = min(float(np.exp(log_speedup)), cap)
        speedup = max(speedup, 1e-6)
        threshold = self.spread_thresholds.get(
            stratum_key(method, base.vector[_HAS_LOCKS] > 0.0), 0.0
        )
        return SurrogateAnswer(
            speedup, spread, confident=threshold > 0.0 and spread <= threshold
        )

    # ----------------------------------------------------------- persistence

    def to_dict(self) -> dict:
        return {
            "format": FORMAT_VERSION,
            "kind": "repro-surrogate",
            "feature_names": list(FEATURE_NAMES),
            "spread_thresholds": dict(sorted(self.spread_thresholds.items())),
            "machines": [list(m) for m in self.machines],
            "paradigms": list(self.paradigms),
            "meta": self.meta,
            "model": self.model.to_dict(),
        }

    def to_json(self) -> str:
        """Canonical JSON — byte-identical for identical training runs."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=1) + "\n"

    def save(self, path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def from_dict(cls, payload: dict) -> "Surrogate":
        if payload.get("kind") != "repro-surrogate":
            raise ConfigurationError("not a repro surrogate model file")
        if payload.get("format") != FORMAT_VERSION:
            raise ConfigurationError(
                f"surrogate model format {payload.get('format')!r} != "
                f"{FORMAT_VERSION}; retrain with repro.surrogate.train"
            )
        names = tuple(payload.get("feature_names", ()))
        if names != FEATURE_NAMES:
            raise ConfigurationError(
                "surrogate model was trained on a different feature schema; "
                "retrain with repro.surrogate.train"
            )
        return cls(
            model=RidgeEnsemble.from_dict(payload["model"]),
            spread_thresholds=dict(payload["spread_thresholds"]),
            machines=[tuple(m) for m in payload["machines"]],
            paradigms=tuple(payload.get("paradigms", ("omp",))),
            meta=payload.get("meta", {}),
        )

    @classmethod
    def load(cls, path) -> "Surrogate":
        return cls.from_dict(json.loads(Path(path).read_text()))
