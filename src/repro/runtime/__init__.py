"""Parallel runtimes on top of the simulated OS.

Two threading paradigms, mirroring the paper's targets (Section III):

- :mod:`repro.runtime.openmp` — an OpenMP 2.0-style runtime: fork/join
  thread teams per parallel region, ``static`` / ``static,c`` / ``dynamic,c``
  loop scheduling, implicit end-of-region barriers, and *physical* nested
  teams (oversubscription), which is exactly why naive nested OpenMP scales
  poorly in the paper's Fig. 1(b) discussion.
- :mod:`repro.runtime.cilk` — a Cilk Plus-style work-stealing task pool:
  per-worker deques, child stealing, ``spawn``/``sync``, and a recursive
  divide-and-conquer ``cilk_for``.

All runtime costs (fork, chunk dispatch, steal, lock handling) are explicit
:class:`~repro.runtime.overhead.RuntimeOverheads` constants paid as compute
requests, so the fast-forward emulator can consume the very same numbers —
the paper obtains them from the EPCC microbenchmarks [8]; we obtain them from
:func:`repro.runtime.overhead.measure_overheads` run on the simulator.
"""

from repro.runtime.overhead import RuntimeOverheads, measure_overheads
from repro.runtime.tasks import Schedule, ScheduleKind, TaskBody
from repro.runtime.openmp import OmpRuntime
from repro.runtime.cilk import CilkPool
from repro.runtime.omptask import OmpTaskPool

__all__ = [
    "RuntimeOverheads",
    "measure_overheads",
    "Schedule",
    "ScheduleKind",
    "TaskBody",
    "OmpRuntime",
    "CilkPool",
    "OmpTaskPool",
]
