"""OpenMP 2.0-style fork/join runtime on the simulated OS.

One :class:`OmpRuntime` serves a kernel; each ``parallel_for`` call forks a
*team*: the calling thread becomes member 0 and ``n_threads − 1`` fresh OS
threads are spawned (paper-relevant detail: OpenMP nested parallelism spawns
*physical* threads, so nested regions oversubscribe the machine and rely on
the OS scheduler — the behaviour behind Figs. 1(b) and 7).

Scheduling follows libgomp semantics:

- ``static``: contiguous blocks, one per thread;
- ``static,c``: chunks of ``c`` dealt round-robin;
- ``dynamic,c``: chunks grabbed first-come-first-served from a shared
  counter, paying a higher per-chunk dispatch cost.

The implicit end-of-region barrier is a real simulated barrier; ``nowait``
skips it and hands the worker threads back to the caller to join later.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Sequence

from repro.errors import ConfigurationError
from repro.runtime.overhead import DEFAULT_OVERHEADS, RuntimeOverheads
from repro.runtime.tasks import Schedule, ScheduleKind, TaskBody
from repro.simos import (
    BarrierWait,
    Compute,
    Join,
    SimBarrier,
    SimKernel,
    Spawn,
)


class _DynamicState:
    """Shared chunk cursor for dynamic scheduling.

    The simulation kernel interleaves threads deterministically, so a plain
    counter is race-free; the *cost* of the real atomic fetch-add is modelled
    by ``omp_dynamic_dispatch``.
    """

    __slots__ = ("chunks", "next")

    def __init__(self, chunks: list[list[int]]) -> None:
        self.chunks = chunks
        self.next = 0

    def grab(self) -> Optional[list[int]]:
        if self.next >= len(self.chunks):
            return None
        chunk = self.chunks[self.next]
        self.next += 1
        return chunk


class OmpRuntime:
    """OpenMP-like parallel-loop execution for simulated threads."""

    def __init__(
        self,
        kernel: SimKernel,
        overheads: RuntimeOverheads = DEFAULT_OVERHEADS,
    ) -> None:
        self.kernel = kernel
        self.overheads = overheads
        #: Parallel regions entered (for tests / overhead accounting).
        self.regions_forked = 0

    def parallel_for(
        self,
        bodies: Sequence[TaskBody],
        n_threads: int,
        schedule: Schedule,
        nowait: bool = False,
    ) -> Generator[Any, Any, Optional[list[Any]]]:
        """Execute ``bodies`` as the iterations of a parallel loop.

        Must be driven with ``yield from`` by a simulated thread.  With
        ``nowait=True`` returns the list of still-running worker
        :class:`~repro.simos.thread.SimThread` handles the caller must
        eventually ``Join``; otherwise returns ``None`` after the implicit
        barrier and worker joins.
        """
        if n_threads < 1:
            raise ConfigurationError(f"n_threads must be >= 1, got {n_threads}")
        oh = self.overheads
        n_iters = len(bodies)
        self.regions_forked += 1

        # Master pays the fork cost (team wakeup + descriptor publication).
        yield Compute(
            cycles=oh.omp_fork_base + oh.omp_fork_per_thread * (n_threads - 1)
        )

        if n_threads == 1:
            # Degenerate team: run everything inline, still paying dispatch.
            for body in bodies:
                yield Compute(cycles=self._dispatch_cost(schedule))
                yield from body()
            return None

        barrier = SimBarrier(n_threads) if not nowait else None
        dynamic: Optional[_DynamicState] = None
        owned: Optional[list[list[int]]] = None
        if schedule.is_dynamic_family:
            dynamic = _DynamicState(schedule.chunks(n_iters, n_threads))
        else:
            owned = schedule.static_assignment(n_iters, n_threads)

        workers = []
        for tid in range(1, n_threads):
            gen = self._member(tid, bodies, schedule, owned, dynamic, barrier)
            worker = yield Spawn(gen, name=f"omp-w{tid}")
            workers.append(worker)

        # Master works as team member 0 (no thread-start cost: it is awake).
        yield from self._member_work(0, bodies, schedule, owned, dynamic)

        if nowait:
            return workers

        if barrier is not None:
            yield BarrierWait(barrier)
        for worker in workers:
            yield Join(worker)
        yield Compute(cycles=oh.omp_join_barrier)
        return None

    def parallel_aggregated(
        self,
        member_bodies: Sequence[TaskBody],
        n_threads: int,
    ) -> Generator[Any, Any, None]:
        """Fork/join skeleton for pre-aggregated work shares.

        ``member_bodies[tid]`` is the *entire* work share of team member
        ``tid`` — typically a single coalesced ``Compute`` covering all the
        iterations that member owns, with per-chunk dispatch overhead
        already charged arithmetically by the caller.  Fork, thread-start,
        barrier, and join costs are identical to :meth:`parallel_for`, so a
        coalesced region is cycle-for-cycle compatible with the expanded
        one whenever the share aggregation itself is exact.
        """
        if n_threads < 1:
            raise ConfigurationError(f"n_threads must be >= 1, got {n_threads}")
        if len(member_bodies) != n_threads:
            raise ConfigurationError(
                f"need one body per member: {len(member_bodies)} != {n_threads}"
            )
        oh = self.overheads
        self.regions_forked += 1
        yield Compute(
            cycles=oh.omp_fork_base + oh.omp_fork_per_thread * (n_threads - 1)
        )
        if n_threads == 1:
            yield from member_bodies[0]()
            return
        barrier = SimBarrier(n_threads)
        workers = []
        for tid in range(1, n_threads):
            gen = self._aggregated_member(member_bodies[tid], barrier)
            worker = yield Spawn(gen, name=f"omp-w{tid}")
            workers.append(worker)
        yield from member_bodies[0]()
        yield BarrierWait(barrier)
        for worker in workers:
            yield Join(worker)
        yield Compute(cycles=oh.omp_join_barrier)

    def _aggregated_member(
        self, body: TaskBody, barrier: SimBarrier
    ) -> Generator[Any, Any, None]:
        yield Compute(cycles=self.overheads.omp_thread_start)
        yield from body()
        yield BarrierWait(barrier)

    def parallel_loops(
        self,
        loops: Sequence[tuple[Sequence[TaskBody], Schedule, bool]],
        n_threads: int,
    ) -> Generator[Any, Any, None]:
        """One parallel region containing several worksharing loops.

        ``loops`` is a sequence of ``(bodies, schedule, nowait)`` — OpenMP's

            #pragma omp parallel
            {
              #pragma omp for nowait   // loops[0]
              ...
              #pragma omp for          // loops[1]
              ...
            }

        A thread finishing its share of a ``nowait`` loop proceeds straight
        into the next loop; loops without ``nowait`` end with a team
        barrier.  The region always closes with an implicit barrier.  This
        is the semantics behind the paper's PAR_SEC_END(nowait) support.
        """
        if n_threads < 1:
            raise ConfigurationError(f"n_threads must be >= 1, got {n_threads}")
        oh = self.overheads
        self.regions_forked += 1
        yield Compute(
            cycles=oh.omp_fork_base + oh.omp_fork_per_thread * (n_threads - 1)
        )

        if n_threads == 1:
            for bodies, schedule, _nowait in loops:
                for body in bodies:
                    yield Compute(cycles=self._dispatch_cost(schedule))
                    yield from body()
            return

        barrier = SimBarrier(n_threads)
        plans = []
        for bodies, schedule, nowait in loops:
            n_iters = len(bodies)
            if schedule.is_dynamic_family:
                plans.append(
                    (bodies, schedule, nowait,
                     None, _DynamicState(schedule.chunks(n_iters, n_threads)))
                )
            else:
                plans.append(
                    (bodies, schedule, nowait,
                     schedule.static_assignment(n_iters, n_threads), None)
                )

        def member(tid: int, is_master: bool) -> Generator[Any, Any, None]:
            if not is_master:
                yield Compute(cycles=self.overheads.omp_thread_start)
            for bodies, schedule, nowait, owned, dynamic in plans:
                yield from self._member_work(tid, bodies, schedule, owned, dynamic)
                if not nowait:
                    yield BarrierWait(barrier)
            # Implicit barrier at the region end.
            yield BarrierWait(barrier)

        workers = []
        for tid in range(1, n_threads):
            w = yield Spawn(member(tid, False), name=f"omp-w{tid}")
            workers.append(w)
        yield from member(0, True)
        for worker in workers:
            yield Join(worker)
        yield Compute(cycles=oh.omp_join_barrier)

    # -- internals -----------------------------------------------------------

    def _dispatch_cost(self, schedule: Schedule) -> float:
        if schedule.is_dynamic_family:
            return self.overheads.omp_dynamic_dispatch
        return self.overheads.omp_static_dispatch

    def _member(
        self,
        tid: int,
        bodies: Sequence[TaskBody],
        schedule: Schedule,
        owned: Optional[list[list[int]]],
        dynamic: Optional[_DynamicState],
        barrier: Optional[SimBarrier],
    ) -> Generator[Any, Any, None]:
        yield Compute(cycles=self.overheads.omp_thread_start)
        yield from self._member_work(tid, bodies, schedule, owned, dynamic)
        if barrier is not None:
            yield BarrierWait(barrier)

    def _member_work(
        self,
        tid: int,
        bodies: Sequence[TaskBody],
        schedule: Schedule,
        owned: Optional[list[list[int]]],
        dynamic: Optional[_DynamicState],
    ) -> Generator[Any, Any, None]:
        cost = self._dispatch_cost(schedule)
        if dynamic is not None:
            while True:
                yield Compute(cycles=cost)
                chunk = dynamic.grab()
                if chunk is None:
                    return
                for idx in chunk:
                    yield from bodies[idx]()
        else:
            assert owned is not None
            chunk_size = (
                schedule.chunk
                if schedule.kind is ScheduleKind.STATIC_CHUNK
                else max(1, len(owned[tid]))
            )
            for pos, idx in enumerate(owned[tid]):
                if pos % chunk_size == 0:
                    yield Compute(cycles=cost)
                yield from bodies[idx]()
