"""Cilk Plus-style work-stealing runtime on the simulated OS.

A :class:`CilkPool` owns ``n_workers`` simulated threads, each with a
double-ended task queue.  Semantics follow the child-stealing / help-first
model (as in TBB and practical Cilk runtimes):

- ``spawn`` pushes a child task on the *bottom* of the current worker's
  deque;
- an idle worker pops its own bottom (LIFO — cache-friendly depth-first) or
  steals from the *top* of a victim's deque (FIFO — the oldest, largest
  piece of work), scanning victims round-robin for determinism;
- ``sync`` does not block while useful work exists: the syncing worker
  executes its own or stolen tasks until the awaited children finish
  (help-first), parking on the pool event only when the whole pool is dry;
- every task has an *implicit sync* before completion, as in Cilk.

``cilk_for`` is the recursive binary splitting used by real Cilk Plus: the
range halves until it reaches the grain size (default ``ceil(n / (8·P))``),
so load balance emerges from stealing — which is why recursive/nested
parallelism that defeats naive OpenMP teams works here (paper Fig. 1(b)).
"""

from __future__ import annotations

import math
from collections import deque
from typing import Any, Callable, Generator, Optional, Sequence

from repro.errors import ConfigurationError
from repro.runtime.overhead import DEFAULT_OVERHEADS, RuntimeOverheads
from repro.simos import (
    Compute,
    EventClear,
    EventSet,
    EventWait,
    Join,
    SimEvent,
    SimKernel,
    Spawn,
)

#: A Cilk task body: takes the executing context, yields sim-OS requests.
CilkBody = Callable[["CilkContext"], Generator[Any, Any, Any]]


class CilkTask:
    """A spawned task frame."""

    __slots__ = ("factory", "parent", "pending_children", "waiting", "done")

    def __init__(self, factory: CilkBody, parent: Optional["CilkTask"]) -> None:
        self.factory = factory
        self.parent = parent
        self.pending_children = 0
        #: True while the owning worker is parked in this task's sync.
        self.waiting = False
        self.done = False


class CilkContext:
    """Execution context handed to a running task body."""

    __slots__ = ("pool", "wid", "task")

    def __init__(self, pool: "CilkPool", wid: int, task: CilkTask) -> None:
        self.pool = pool
        self.wid = wid
        self.task = task

    def spawn(self, factory: CilkBody) -> Generator[Any, Any, CilkTask]:
        """``cilk_spawn``: enqueue a child task; returns its handle."""
        pool = self.pool
        yield Compute(cycles=pool.overheads.cilk_spawn)
        child = CilkTask(factory, parent=self.task)
        self.task.pending_children += 1
        pool.deques[self.wid].append(child)
        pool.spawns += 1
        if pool.work_event.waiters:
            yield from pool._notify()
        return child

    def sync(self) -> Generator[Any, Any, None]:
        """``cilk_sync``: wait for this task's children, helping meanwhile."""
        yield from self.pool._sync_loop(self.wid, self.task)

    def call(self, factory: CilkBody) -> Generator[Any, Any, Any]:
        """A plain (non-spawned) call of a child body, as in line 12 of the
        paper's FFT example — runs inline on this worker."""
        child = CilkTask(factory, parent=self.task)
        return self.pool._run_body(self.wid, child)


class CilkPool:
    """A work-stealing pool of simulated worker threads."""

    def __init__(
        self,
        kernel: SimKernel,
        n_workers: int,
        overheads: RuntimeOverheads = DEFAULT_OVERHEADS,
    ) -> None:
        if n_workers < 1:
            raise ConfigurationError(f"n_workers must be >= 1, got {n_workers}")
        self.kernel = kernel
        self.n_workers = n_workers
        self.overheads = overheads
        self.deques: list[deque[CilkTask]] = [deque() for _ in range(n_workers)]
        self.work_event = SimEvent("cilk-work")
        self.stopping = False
        self.root: Optional[CilkTask] = None
        #: Statistics.
        self.steals = 0
        self.spawns = 0
        self.tasks_run = 0

    # -- public entry ------------------------------------------------------------

    def run(self, root_factory: CilkBody) -> Generator[Any, Any, None]:
        """Run ``root_factory`` to completion on this pool.

        Must be driven with ``yield from`` by a simulated thread, which
        becomes worker 0; ``n_workers − 1`` extra OS threads are spawned and
        joined before returning (one pool per estimate, matching the paper's
        per-section ``__cilkrts_set_param`` + measurement discipline).
        """
        self.stopping = False
        self.root = CilkTask(root_factory, parent=None)
        self.deques[0].append(self.root)
        workers = []
        for wid in range(1, self.n_workers):
            gen = self._worker_loop(wid)
            w = yield Spawn(gen, name=f"cilk-w{wid}")
            workers.append(w)
        yield from self._master_loop()
        for w in workers:
            yield Join(w)
        self.root = None

    def cilk_for(
        self,
        ctx: CilkContext,
        bodies: Sequence[CilkBody],
        grain: Optional[int] = None,
    ) -> Generator[Any, Any, None]:
        """``cilk_for`` over ``bodies`` with recursive binary splitting.

        Each body receives the :class:`CilkContext` of the worker that
        actually executes it (which differs from ``ctx`` when its range
        chunk was stolen), so nested spawns land on the right deque.
        """
        n = len(bodies)
        if n == 0:
            return
        if grain is None:
            grain = max(1, math.ceil(n / (8 * self.n_workers)))
        yield from self._for_range(ctx, bodies, 0, n, grain)

    # -- worker machinery -----------------------------------------------------------

    def _notify(self) -> Generator[Any, Any, None]:
        yield EventSet(self.work_event, wake="all")
        yield EventClear(self.work_event)

    def _find_task(self, wid: int) -> tuple[Optional[CilkTask], bool]:
        """Pop own bottom, else steal a victim's top.  Returns (task, stolen)."""
        own = self.deques[wid]
        if own:
            return own.pop(), False
        for offset in range(1, self.n_workers):
            victim = self.deques[(wid + offset) % self.n_workers]
            if victim:
                self.steals += 1
                return victim.popleft(), True
        return None, False

    def _worker_loop(self, wid: int) -> Generator[Any, Any, None]:
        yield Compute(cycles=self.overheads.cilk_pool_start_per_worker)
        while True:
            task, stolen = self._find_task(wid)
            if task is None:
                if self.stopping:
                    return
                yield EventWait(self.work_event)
                continue
            yield from self._execute(wid, task, stolen)

    def _master_loop(self) -> Generator[Any, Any, None]:
        root = self.root
        assert root is not None
        while not root.done:
            task, stolen = self._find_task(0)
            if task is None:
                yield EventWait(self.work_event)
                continue
            yield from self._execute(0, task, stolen)
        self.stopping = True
        yield from self._notify()

    def _execute(
        self, wid: int, task: CilkTask, stolen: bool
    ) -> Generator[Any, Any, None]:
        if stolen:
            yield Compute(cycles=self.overheads.cilk_steal)
        yield Compute(cycles=self.overheads.cilk_task_run)
        yield from self._run_body(wid, task)

    def _run_body(self, wid: int, task: CilkTask) -> Generator[Any, Any, Any]:
        self.tasks_run += 1
        ctx = CilkContext(self, wid, task)
        result = yield from task.factory(ctx)
        # Implicit sync: a Cilk function does not return while its children run.
        if task.pending_children > 0:
            yield from self._sync_loop(wid, task)
        task.done = True
        parent = task.parent
        if parent is not None:
            parent.pending_children -= 1
            if parent.pending_children == 0 and parent.waiting:
                yield from self._notify()
        elif task is self.root:
            yield from self._notify()
        return result

    def _sync_loop(self, wid: int, task: CilkTask) -> Generator[Any, Any, None]:
        while task.pending_children > 0:
            sub, stolen = self._find_task(wid)
            if sub is not None:
                yield from self._execute(wid, sub, stolen)
                continue
            task.waiting = True
            yield EventWait(self.work_event)
            task.waiting = False

    def _for_range(
        self,
        ctx: CilkContext,
        bodies: Sequence[CilkBody],
        lo: int,
        hi: int,
        grain: int,
    ) -> Generator[Any, Any, None]:
        while hi - lo > grain:
            mid = (lo + hi) // 2
            upper = self._make_range_task(bodies, mid, hi, grain)
            yield from ctx.spawn(upper)
            hi = mid
        for i in range(lo, hi):
            yield from bodies[i](ctx)
        yield from ctx.sync()

    def _make_range_task(
        self, bodies: Sequence[CilkBody], lo: int, hi: int, grain: int
    ) -> CilkBody:
        def factory(cctx: CilkContext) -> Generator[Any, Any, None]:
            yield from self._for_range(cctx, bodies, lo, hi, grain)

        return factory
