"""Shared task and scheduling vocabulary for the parallel runtimes.

A *task body* is a zero-argument callable returning a fresh generator of
simulated-OS requests — the unit both runtimes execute.  Factories (rather
than generators) are required because a body may run more than once across
estimates and because generators are single-shot.

:class:`Schedule` captures OpenMP's loop-scheduling clause; the paper
evaluates ``(static,1)``, ``(static)``, and ``(dynamic,1)`` (Section VII-B).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable, Generator

from repro.errors import ConfigurationError

#: A factory producing a fresh generator of sim-OS requests.
TaskBody = Callable[[], Generator[Any, Any, Any]]


class ScheduleKind(enum.Enum):
    """The OpenMP loop-schedule families the runtimes implement."""

    STATIC = "static"
    STATIC_CHUNK = "static_chunk"
    DYNAMIC = "dynamic"
    GUIDED = "guided"


@dataclass(frozen=True)
class Schedule:
    """An OpenMP-style loop schedule.

    ``Schedule.static()`` — contiguous blocks, one per thread.
    ``Schedule.static_chunk(c)`` — round-robin chunks of ``c`` iterations.
    ``Schedule.dynamic(c)`` — first-come-first-served chunks of ``c``.
    ``Schedule.guided(c)`` — first-come-first-served chunks shrinking
    proportionally to the remaining iterations (libgomp: remaining/t),
    never below ``c``.
    """

    kind: ScheduleKind
    chunk: int = 1

    def __post_init__(self) -> None:
        if self.chunk < 1:
            raise ConfigurationError(f"chunk must be >= 1, got {self.chunk}")

    @staticmethod
    def static() -> "Schedule":
        return Schedule(ScheduleKind.STATIC)

    @staticmethod
    def static_chunk(chunk: int = 1) -> "Schedule":
        return Schedule(ScheduleKind.STATIC_CHUNK, chunk)

    @staticmethod
    def dynamic(chunk: int = 1) -> "Schedule":
        return Schedule(ScheduleKind.DYNAMIC, chunk)

    @staticmethod
    def guided(chunk: int = 1) -> "Schedule":
        return Schedule(ScheduleKind.GUIDED, chunk)

    @staticmethod
    def parse(spec: str) -> "Schedule":
        """Parse ``"static"``, ``"static,1"``, ``"dynamic,4"``…  (the paper's
        notation for OpenMP schedule clauses)."""
        text = spec.strip().lower().replace("(", "").replace(")", "")
        if "," in text:
            kind, _, chunk_text = text.partition(",")
            chunk = int(chunk_text)
        else:
            kind, chunk = text, 0
        kind = kind.strip()
        if kind == "static":
            return Schedule.static() if chunk == 0 else Schedule.static_chunk(chunk)
        if kind == "dynamic":
            return Schedule.dynamic(max(1, chunk))
        if kind == "guided":
            return Schedule.guided(max(1, chunk))
        raise ConfigurationError(f"unknown schedule spec {spec!r}")

    @property
    def label(self) -> str:
        if self.kind is ScheduleKind.STATIC:
            return "static"
        if self.kind is ScheduleKind.STATIC_CHUNK:
            return f"static,{self.chunk}"
        if self.kind is ScheduleKind.GUIDED:
            return f"guided,{self.chunk}"
        return f"dynamic,{self.chunk}"

    @property
    def is_dynamic_family(self) -> bool:
        """True for schedules whose chunks are grabbed first-come-first-
        served at run time (dynamic and guided)."""
        return self.kind in (ScheduleKind.DYNAMIC, ScheduleKind.GUIDED)

    def static_assignment(self, n_iters: int, n_threads: int) -> list[list[int]]:
        """Iteration indices owned by each thread under a static schedule.

        Mirrors libgomp: plain ``static`` deals contiguous blocks (the first
        ``n_iters mod n_threads`` threads get one extra); ``static,c`` deals
        chunks of ``c`` round-robin.
        """
        if self.is_dynamic_family:
            raise ConfigurationError(
                f"{self.label} schedules have no static assignment"
            )
        owned: list[list[int]] = [[] for _ in range(n_threads)]
        if self.kind is ScheduleKind.STATIC:
            base = n_iters // n_threads
            extra = n_iters % n_threads
            start = 0
            for tid in range(n_threads):
                count = base + (1 if tid < extra else 0)
                owned[tid] = list(range(start, start + count))
                start += count
        else:
            c = self.chunk
            for chunk_idx, chunk_start in enumerate(range(0, n_iters, c)):
                tid = chunk_idx % n_threads
                owned[tid].extend(range(chunk_start, min(chunk_start + c, n_iters)))
        return owned

    def chunks(self, n_iters: int, n_threads: int = 1) -> list[list[int]]:
        """The iteration space cut into dispatch chunks.

        For ``guided`` the chunk sizes shrink with the remaining iteration
        count (libgomp semantics: ``max(chunk, remaining / n_threads)``),
        so ``n_threads`` matters; other kinds ignore it.
        """
        if self.kind is ScheduleKind.GUIDED:
            out: list[list[int]] = []
            start = 0
            while start < n_iters:
                remaining = n_iters - start
                size = max(self.chunk, -(-remaining // max(1, n_threads)))
                out.append(list(range(start, min(start + size, n_iters))))
                start += size
            return out
        c = self.chunk if self.kind is not ScheduleKind.STATIC else n_iters
        return [
            list(range(s, min(s + c, n_iters)))
            for s in range(0, n_iters, max(1, c))
        ]
