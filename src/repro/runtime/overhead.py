"""Parallel-overhead constants and their EPCC-style measurement.

The paper models OpenMP construct overheads using the EPCC microbenchmark
methodology [6, 8] and "adds the factors in the FF emulator when (1) a
parallel loop is started and terminated, (2) an iteration is started, and
(3) a critical section is acquired and released" (Section IV-C).

Here the same constants are *paid* by the simulated runtimes (ground truth
and synthesizer) and *consumed* by the fast-forward emulator — and
:func:`measure_overheads` re-derives effective fork/join and dispatch costs
by running EPCC-style probe loops on the simulator, which is how the FF gets
its numbers in the benchmark harness.  Default magnitudes follow the EPCC
reports for a Westmere-class Xeon (fork/join in the small tens of
microseconds, per-chunk dispatch tens to hundreds of cycles).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError
from repro.simhw.machine import MachineConfig


@dataclass(frozen=True)
class RuntimeOverheads:
    """Cycle costs of runtime operations.

    OpenMP:

    - ``omp_fork_base`` + ``omp_fork_per_thread``·(t−1): entering a parallel
      region (team wakeup, work descriptor publication).
    - ``omp_thread_start``: per-worker cost before its first chunk.
    - ``omp_join_barrier``: master-side cost of the implicit end barrier.
    - ``omp_static_dispatch``: per-chunk loop bookkeeping under static
      schedules.
    - ``omp_dynamic_dispatch``: per-chunk shared-counter fetch-add under
      dynamic schedules (noticeably more expensive — why ``dynamic,1`` hurts
      fine-grained loops).
    - ``omp_lock_acquire`` / ``omp_lock_release``: critical-section entry and
      exit outside any contention wait.

    Cilk:

    - ``cilk_spawn``: pushing a child task frame onto the worker deque.
    - ``cilk_steal``: a successful steal (detach + transfer).
    - ``cilk_task_run``: per-task scheduling bookkeeping before the body.
    - ``cilk_pool_start_per_worker``: waking one worker at pool start.
    """

    omp_fork_base: float = 3_000.0
    omp_fork_per_thread: float = 1_200.0
    omp_thread_start: float = 800.0
    omp_join_barrier: float = 2_000.0
    omp_static_dispatch: float = 60.0
    omp_dynamic_dispatch: float = 220.0
    omp_lock_acquire: float = 120.0
    omp_lock_release: float = 80.0
    cilk_spawn: float = 180.0
    cilk_steal: float = 900.0
    cilk_task_run: float = 100.0
    cilk_pool_start_per_worker: float = 1_500.0
    #: OpenMP 3.0 tasking: creating a task (descriptor + enqueue on the
    #: team queue) and dequeuing one (the shared queue's lock).  Both cost
    #: more than Cilk's deque push because the queue is shared (EPCC's task
    #: benchmarks show the same relation).
    omp_task_create: float = 350.0
    omp_task_dispatch: float = 450.0

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigurationError(f"{name} must be >= 0, got {value!r}")

    def scaled(self, factor: float) -> "RuntimeOverheads":
        """All overheads multiplied by ``factor`` (ablation studies)."""
        if factor < 0:
            raise ConfigurationError(f"factor must be >= 0, got {factor!r}")
        return RuntimeOverheads(
            **{k: v * factor for k, v in self.__dict__.items()}
        )

    def with_(self, **kwargs: float) -> "RuntimeOverheads":
        """Copy with selected fields replaced."""
        return replace(self, **kwargs)


#: Overheads used throughout unless a caller supplies its own.
DEFAULT_OVERHEADS = RuntimeOverheads()


def measure_overheads(
    config: MachineConfig,
    overheads: RuntimeOverheads = DEFAULT_OVERHEADS,
    reps: int = 10,
) -> dict[str, float]:
    """EPCC-style overhead measurement on the simulated machine.

    Runs probe loops through the real runtime and reports *effective* costs:

    - ``parallel_region`` — cost of an empty parallel region on t = 2,
      measured as elapsed time minus ideal work (zero here);
    - ``static_iteration`` / ``dynamic_iteration`` — per-iteration cost of an
      N-iteration empty loop;
    - ``lock_pair`` — cost of an uncontended acquire/release pair.

    The FF emulator and Table III use these numbers, mirroring how the paper
    derives its overhead factors from [8] and then observes (Section VII-B)
    that real overheads are not always the constants the microbenchmark
    suggests.
    """
    # Imported here to avoid an import cycle (openmp imports overhead).
    from repro.simos import Compute, SimKernel, SimMutex, Acquire, Release
    from repro.runtime.openmp import OmpRuntime
    from repro.runtime.tasks import Schedule

    results: dict[str, float] = {}

    def region_probe() -> float:
        kernel = SimKernel(config.with_cores(2))
        omp = OmpRuntime(kernel, overheads)

        def empty_body():
            return
            yield  # pragma: no cover - marks this function as a generator

        def master():
            for _ in range(reps):
                yield from omp.parallel_for(
                    [empty_body, empty_body], n_threads=2, schedule=Schedule.static()
                )

        kernel.spawn(master(), name="epcc-region")
        return kernel.run() / reps

    results["parallel_region"] = region_probe()

    def loop_probe(schedule: Schedule, n_iters: int = 128) -> float:
        kernel = SimKernel(config.with_cores(2))
        omp = OmpRuntime(kernel, overheads)

        def empty_body():
            return
            yield  # pragma: no cover

        def master():
            yield from omp.parallel_for(
                [empty_body] * n_iters, n_threads=2, schedule=schedule
            )

        kernel.spawn(master(), name="epcc-loop")
        total = kernel.run()
        return (total - results["parallel_region"]) * 2 / n_iters

    results["static_iteration"] = loop_probe(Schedule.static_chunk(1))
    results["dynamic_iteration"] = loop_probe(Schedule.dynamic(1))

    def lock_probe(n: int = 64) -> float:
        kernel = SimKernel(config.with_cores(1))
        mutex = SimMutex("epcc")

        def master():
            for _ in range(n):
                yield Compute(cycles=overheads.omp_lock_acquire)
                yield Acquire(mutex)
                yield Release(mutex)
                yield Compute(cycles=overheads.omp_lock_release)

        kernel.spawn(master(), name="epcc-lock")
        return kernel.run() / n

    results["lock_pair"] = lock_probe()
    return results
