"""OpenMP 3.0-style task runtime (``#pragma omp task`` / ``taskwait``).

Paper Section III: "a naive implementation by OpenMP's nested parallelism
mostly yields poor speedups in these patterns because of too many spawned
physical threads.  For such recursive parallelism, TBB, Cilk Plus, and
OpenMP 3.0's task are much more effective."  This runtime is the third
member of that list, so the claim can be reproduced head-to-head (see
``benchmarks/bench_sec3_recursive_paradigms.py``).

Semantics follow libgomp's tasking model, simplified to the parts that
matter for timing:

- one *team* of ``n_threads`` workers with a **shared team-wide task
  queue** (unlike Cilk's per-worker deques — the shared queue is OpenMP's
  classic contention point, modelled by a per-dequeue dispatch cost);
- ``task`` enqueues a child; ``taskwait`` blocks the current task until its
  children finish, executing other queued tasks meanwhile (task switching,
  as untied tasks allow);
- an implicit ``taskwait`` covers remaining children when a task body ends
  (matching the barrier-at-end-of-parallel-region guarantee at the root).

The structure mirrors :mod:`repro.runtime.cilk` so the executor can lower
nested sections identically; the scheduling discipline (shared FIFO vs
stealing LIFO deques) is the behavioural difference under test.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Generator, Optional

from repro.errors import ConfigurationError
from repro.runtime.overhead import DEFAULT_OVERHEADS, RuntimeOverheads
from repro.simos import (
    Compute,
    EventClear,
    EventSet,
    EventWait,
    Join,
    SimEvent,
    SimKernel,
    Spawn,
)

#: An OpenMP task body: takes the executing context, yields sim-OS requests.
OmpTaskBody = Callable[["OmpTaskContext"], Generator[Any, Any, Any]]


class OmpTask:
    """One task instance."""

    __slots__ = ("factory", "parent", "pending_children", "waiting", "done")

    def __init__(self, factory: OmpTaskBody, parent: Optional["OmpTask"]) -> None:
        self.factory = factory
        self.parent = parent
        self.pending_children = 0
        self.waiting = False
        self.done = False


class OmpTaskContext:
    """Execution context handed to a running task body."""

    __slots__ = ("pool", "wid", "task")

    def __init__(self, pool: "OmpTaskPool", wid: int, task: OmpTask) -> None:
        self.pool = pool
        self.wid = wid
        self.task = task

    def task_spawn(self, factory: OmpTaskBody) -> Generator[Any, Any, OmpTask]:
        """``#pragma omp task``: enqueue a child on the team queue."""
        pool = self.pool
        yield Compute(cycles=pool.overheads.omp_task_create)
        child = OmpTask(factory, parent=self.task)
        self.task.pending_children += 1
        pool.queue.append(child)
        pool.spawned += 1
        if pool.work_event.waiters:
            yield from pool._notify()
        return child

    def taskwait(self) -> Generator[Any, Any, None]:
        """``#pragma omp taskwait``: wait for this task's children, running
        other queued tasks meanwhile."""
        yield from self.pool._wait_loop(self.wid, self.task)

    def task_loop(
        self, bodies: list[OmpTaskBody]
    ) -> Generator[Any, Any, None]:
        """A taskloop-style construct: one task per body, then taskwait."""
        for body in bodies:
            yield from self.task_spawn(body)
        yield from self.taskwait()


class OmpTaskPool:
    """A team of workers draining a shared task queue."""

    def __init__(
        self,
        kernel: SimKernel,
        n_threads: int,
        overheads: RuntimeOverheads = DEFAULT_OVERHEADS,
    ) -> None:
        if n_threads < 1:
            raise ConfigurationError(f"n_threads must be >= 1, got {n_threads}")
        self.kernel = kernel
        self.n_threads = n_threads
        self.overheads = overheads
        self.queue: deque[OmpTask] = deque()
        self.work_event = SimEvent("omp-task-work")
        self.stopping = False
        self.root: Optional[OmpTask] = None
        self.spawned = 0
        self.tasks_run = 0

    # -- public entry ------------------------------------------------------------

    def run(self, root_factory: OmpTaskBody) -> Generator[Any, Any, None]:
        """Run ``root_factory`` on this team (driven with ``yield from``)."""
        oh = self.overheads
        yield Compute(
            cycles=oh.omp_fork_base + oh.omp_fork_per_thread * (self.n_threads - 1)
        )
        self.stopping = False
        self.root = OmpTask(root_factory, parent=None)
        self.queue.append(self.root)
        workers = []
        for wid in range(1, self.n_threads):
            w = yield Spawn(self._worker_loop(wid), name=f"omp-task-w{wid}")
            workers.append(w)
        yield from self._master_loop()
        for w in workers:
            yield Join(w)
        yield Compute(cycles=oh.omp_join_barrier)
        self.root = None

    # -- worker machinery -----------------------------------------------------------

    def _notify(self) -> Generator[Any, Any, None]:
        yield EventSet(self.work_event, wake="all")
        yield EventClear(self.work_event)

    def _take(self) -> Optional[OmpTask]:
        """Dequeue from the shared team queue (FIFO, like libgomp)."""
        if self.queue:
            return self.queue.popleft()
        return None

    def _worker_loop(self, wid: int) -> Generator[Any, Any, None]:
        yield Compute(cycles=self.overheads.omp_thread_start)
        while True:
            task = self._take()
            if task is None:
                if self.stopping:
                    return
                yield EventWait(self.work_event)
                continue
            yield from self._execute(wid, task)

    def _master_loop(self) -> Generator[Any, Any, None]:
        root = self.root
        assert root is not None
        while not root.done:
            task = self._take()
            if task is None:
                yield EventWait(self.work_event)
                continue
            yield from self._execute(0, task)
        self.stopping = True
        yield from self._notify()

    def _execute(self, wid: int, task: OmpTask) -> Generator[Any, Any, Any]:
        # The shared-queue dequeue cost: OpenMP's tasking overhead.
        yield Compute(cycles=self.overheads.omp_task_dispatch)
        self.tasks_run += 1
        ctx = OmpTaskContext(self, wid, task)
        result = yield from task.factory(ctx)
        if task.pending_children > 0:
            # Implicit taskwait before a task completes.
            yield from self._wait_loop(wid, task)
        task.done = True
        parent = task.parent
        if parent is not None:
            parent.pending_children -= 1
            if parent.pending_children == 0 and parent.waiting:
                yield from self._notify()
        elif task is self.root:
            yield from self._notify()
        return result

    def _wait_loop(self, wid: int, task: OmpTask) -> Generator[Any, Any, None]:
        while task.pending_children > 0:
            sub = self._take()
            if sub is not None:
                yield from self._execute(wid, sub)
                continue
            task.waiting = True
            yield EventWait(self.work_event)
            task.waiting = False
