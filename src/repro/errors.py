"""Exception hierarchy for the Parallel Prophet reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being able
to distinguish annotation misuse from simulator faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class AnnotationError(ReproError):
    """Annotation misuse: mismatched BEGIN/END pairs, nesting violations,
    releasing a lock that is not held, or annotations outside a profile run.

    The paper (Section IV-B) specifies that interval profiling matches each
    ``*_END`` against the top of the annotation stack and "if they do not
    match, an error is reported" — this is that error.
    """


class SimulationError(ReproError):
    """Internal inconsistency inside the discrete-event simulation, e.g.
    time moving backwards, a thread scheduled on two cores, or a deadlock
    (no runnable thread while threads remain blocked)."""


class DeadlockError(SimulationError):
    """The simulated system can make no further progress: every live thread
    is blocked on a lock, barrier, or join that can never be satisfied."""


class ConfigurationError(ReproError):
    """Invalid machine, runtime, or model configuration values."""


class CalibrationError(ReproError):
    """The memory-model calibration (Eqs. 6 and 7 fitting) failed, e.g. the
    microbenchmark produced too few points or a degenerate fit."""


class EmulationError(ReproError):
    """An emulator (fast-forward or synthesizer) encountered a program tree
    it cannot emulate, e.g. an unknown node kind or an unsupported paradigm."""


class InvariantViolation(ReproError):
    """A runtime invariant check failed (:mod:`repro.validate.invariants`).

    Raised only while the invariant checker is enabled in ``"raise"`` mode;
    in ``"record"`` mode violations are collected on the checker instead.
    The message carries the check name, the instrumentation site, and the
    observed-vs-expected values.
    """


class ServeError(ReproError):
    """A request to the prediction daemon (:mod:`repro.serve`) was refused.

    Carries an HTTP-ish ``status`` and a stable machine-readable ``code``
    so the server can render a structured JSON error and in-process callers
    (tests, the work queue) can branch on the same taxonomy.  Subclasses —
    queue saturation, grid budget, deadline — live in
    :mod:`repro.serve.budgets` next to the limits they enforce.
    """

    #: HTTP status the server maps this error to.
    status: int = 400
    #: Stable machine-readable error code for the JSON body.
    code: str = "bad_request"


class BatchError(ReproError):
    """One or more grid points of a batch sweep failed.

    Raised by :meth:`repro.core.batch.BatchPredictor.run` (with
    ``on_error="raise"``) *after* the full deterministic merge, so every
    per-task failure is available on :attr:`failures` — a list of
    :class:`repro.core.batch.SweepTaskFailure` records in grid order.
    """

    def __init__(self, failures) -> None:
        self.failures = list(failures)
        shown = ", ".join(
            f"{f.workload}/{f.schedule}/t={f.n_threads}: {f.message}"
            for f in self.failures[:3]
        )
        if len(self.failures) > 3:
            shown += f", ... ({len(self.failures) - 3} more)"
        super().__init__(
            f"{len(self.failures)} sweep task(s) failed: {shown}"
        )
