"""Transport-free request handlers for the prediction daemon.

:class:`ServeState` owns everything a request touches — the cache layer,
the bounded work queue, the budgets — and exposes exactly one entry point,
:meth:`ServeState.handle`, mapping ``(method, path, payload)`` to
``(status, response dict)``.  The HTTP server is a thin shell over it, and
tests drive the same surface in-process without sockets.

Request flow for the compute endpoints (predict/sweep/explore/check):

1. normalise the payload (defaults filled, orderings canonicalised) —
   equivalent requests become identical cache keys;
2. consult the ``response`` cache class — a warm repeat never queues;
3. admission control — grid budget (413), thread budget, queue bound
   (429);
4. enqueue the computation and wait, bounded by the request deadline
   (504 on expiry; the work itself is never killed mid-simulation and
   lands in the caches for the retry);
5. cache and return the response.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Optional

from repro.errors import ReproError, ServeError
from repro.obs import get_metrics
from repro.serve.budgets import Deadline, RequestBudgets
from repro.serve.cachelayer import CacheLayer
from repro.serve.workqueue import WorkQueue

#: Methods a request may ask of the batch predictor.
_METHODS = ("ff", "syn", "real")

#: Prediction tiers a request may select (see ``docs/surrogate.md``).
_TIERS = ("exact", "surrogate", "auto")


def estimate_to_dict(est) -> dict[str, Any]:
    """JSON shape of one :class:`~repro.core.report.SpeedupEstimate`."""
    return {
        "method": est.method,
        "paradigm": est.paradigm,
        "schedule": est.schedule,
        "n_threads": est.n_threads,
        "speedup": est.speedup,
        "with_memory_model": est.with_memory_model,
        "sections": dict(est.sections),
    }


def envelope_to_dict(env) -> dict[str, Any]:
    """JSON shape of one :class:`~repro.core.report.SpeedupEnvelope`."""
    return {
        "method": env.method,
        "paradigm": env.paradigm,
        "schedule": env.schedule,
        "n_threads": env.n_threads,
        "lo": env.lo,
        "median": env.median,
        "hi": env.hi,
        "samples": [list(s) for s in env.samples],
    }


def report_to_dict(report) -> dict[str, Any]:
    """JSON shape of a :class:`~repro.core.report.SpeedupReport`."""
    return {
        "estimates": [estimate_to_dict(e) for e in report.estimates],
        "envelopes": [envelope_to_dict(e) for e in report.envelopes],
        "failures": [str(f) for f in report.failures],
    }


class ServeState:
    """All daemon state behind the HTTP surface; one instance per server."""

    def __init__(
        self,
        cache: Optional[CacheLayer] = None,
        queue: Optional[WorkQueue] = None,
        budgets: Optional[RequestBudgets] = None,
        default_tier: str = "exact",
    ) -> None:
        if default_tier not in _TIERS:
            raise ServeError(
                f"unknown tier {default_tier!r} (expected one of {_TIERS})"
            )
        self.cache = cache if cache is not None else CacheLayer()
        self.queue = queue if queue is not None else WorkQueue()
        self.budgets = budgets if budgets is not None else RequestBudgets()
        self.default_tier = default_tier
        self.started = time.time()
        self.requests = 0
        #: Installed by the server: called (in a helper thread) on
        #: ``POST /shutdown`` to begin an orderly drain-and-stop.
        self.on_shutdown: Optional[Callable[[], None]] = None
        self._routes: dict[tuple[str, str], Callable[[dict], dict]] = {
            ("GET", "/health"): self._health,
            ("GET", "/workloads"): self._workloads,
            ("GET", "/stats"): self._stats,
            ("POST", "/predict"): self._predict,
            ("POST", "/sweep"): self._sweep,
            ("POST", "/explore"): self._explore,
            ("POST", "/check"): self._check,
            ("POST", "/cache/clear"): self._cache_clear,
            ("POST", "/shutdown"): self._shutdown,
        }

    # -------------------------------------------------------------- dispatch

    def handle(self, method: str, path: str, payload: dict) -> tuple[int, dict]:
        """Route one request; every error becomes a structured JSON body."""
        metrics = get_metrics()
        self.requests += 1
        metrics.inc("serve.requests")
        handler = self._routes.get((method, path.rstrip("/") or "/"))
        if handler is None:
            return 404, {"error": "not_found", "message": f"no route {method} {path}"}
        try:
            return 200, handler(payload)
        except ServeError as exc:
            metrics.inc(f"serve.errors.{exc.code}")
            return exc.status, {"error": exc.code, "message": str(exc)}
        except ReproError as exc:
            metrics.inc("serve.errors.bad_request")
            return 400, {"error": type(exc).__name__, "message": str(exc)}
        except Exception as exc:  # pragma: no cover - defensive
            metrics.inc("serve.errors.internal")
            return 500, {"error": "internal", "message": f"{type(exc).__name__}: {exc}"}

    # ------------------------------------------------------------ normalising

    def _grid(self, payload: dict, *, workloads_field: str) -> dict[str, Any]:
        """Fill defaults and canonicalise one compute request.

        Returns a plain dict safe to JSON-dump as the response-cache key;
        raises the budget errors for oversized grids up front.
        """
        if not isinstance(payload, dict):
            raise ServeError(f"request body must be a JSON object, got {payload!r}")
        raw = payload.get(workloads_field)
        if isinstance(raw, str):
            workloads = [w.strip() for w in raw.split(",") if w.strip()]
        elif isinstance(raw, list):
            workloads = [str(w) for w in raw]
        else:
            raise ServeError(f"missing required field {workloads_field!r}")
        if not workloads:
            raise ServeError(f"{workloads_field!r} names no workloads")
        threads = payload.get("threads", [2, 4, 8])
        if not isinstance(threads, list) or not threads:
            raise ServeError(f"threads must be a non-empty list, got {threads!r}")
        self.budgets.check_threads(threads)
        schedules = payload.get("schedules", ["static"])
        if isinstance(schedules, str):
            schedules = [s for s in schedules.split(";") if s]
        methods = payload.get("methods", ["syn"])
        if isinstance(methods, str):
            methods = [m for m in methods.split(",") if m]
        for m in methods:
            if m not in _METHODS:
                raise ServeError(f"unknown method {m!r} (expected one of {_METHODS})")
        tier = str(payload.get("tier", self.default_tier))
        if tier not in _TIERS:
            raise ServeError(f"unknown tier {tier!r} (expected one of {_TIERS})")
        n_points = len(workloads) * len(schedules) * len(threads) * len(methods)
        self.budgets.check_grid(n_points)
        return {
            "workloads": sorted(set(workloads)),
            "threads": [int(t) for t in threads],
            "schedules": [str(s) for s in schedules],
            "methods": [str(m) for m in methods],
            "paradigm": payload.get("paradigm"),
            "memory_model": bool(payload.get("memory_model", True)),
            "cores": int(payload.get("cores", 12)),
            # The tier is part of the canonical request — surrogate and
            # exact answers for the same grid cache separately.
            "tier": tier,
        }

    def _through_cache_and_queue(
        self,
        route: str,
        request: dict[str, Any],
        fn: Callable[[], dict],
        timeout_s,
    ) -> dict:
        """Steps 2-5 of the request flow, shared by every compute endpoint."""
        key = route + ":" + json.dumps(request, sort_keys=True)
        cached = self.cache.responses.get(key)
        if cached is not None:
            return {**cached, "cached": True}
        deadline = Deadline(self.budgets.clamp_timeout(timeout_s))
        t0 = time.perf_counter()
        job = self.queue.submit(fn, deadline, label=route)
        response = job.wait(deadline.remaining())
        response = {**response, "elapsed_s": time.perf_counter() - t0}
        self.cache.responses.put(key, response)
        return {**response, "cached": False}

    # ------------------------------------------------------------- endpoints

    def _health(self, _payload: dict) -> dict:
        return {
            "status": "ok",
            "uptime_s": time.time() - self.started,
            "requests": self.requests,
        }

    def _workloads(self, _payload: dict) -> dict:
        from repro.workloads import get_workload, workload_names

        rows = []
        for name in workload_names():
            wl = get_workload(name)
            rows.append(
                {
                    "name": wl.name,
                    "paradigm": wl.paradigm,
                    "input": wl.input_label,
                    "description": wl.description,
                    "schedule": wl.schedule,
                }
            )
        return {"workloads": rows}

    def _stats(self, _payload: dict) -> dict:
        metrics = get_metrics()
        serve_counters = metrics.counters(prefix="serve.")
        return {
            "uptime_s": time.time() - self.started,
            "requests": self.requests,
            "queue": self.queue.stats(),
            "cache": self.cache.stats(),
            "metrics": serve_counters,
            "surrogate": metrics.counters(prefix="surrogate."),
            "hit_rates": {
                name: rate
                for name, rate in metrics.hit_rates().items()
                if name.startswith("serve.")
            },
        }

    def _cache_clear(self, _payload: dict) -> dict:
        return {"cleared": self.cache.clear()}

    def _shutdown(self, _payload: dict) -> dict:
        if self.on_shutdown is None:
            raise ServeError("this deployment does not allow remote shutdown")
        import threading

        threading.Thread(
            target=self.on_shutdown,
            name="repro-serve-shutdown",
            daemon=True,
        ).start()
        return {"status": "draining"}

    # ----------------------------------------------------- compute endpoints

    def _run_grid(self, request: dict[str, Any]) -> dict:
        """Worker-side body of /predict and /sweep."""
        prophet, predictor = self.cache.predictor_for(request["cores"])
        profiles = {
            name: self.cache.profile_for(name, request["cores"], prophet)
            for name in request["workloads"]
        }
        paradigm = request["paradigm"]
        if paradigm is None:
            paradigm = self._default_paradigm(request["workloads"])
        reports = predictor.sweep(
            profiles,
            threads=request["threads"],
            schedules=request["schedules"],
            methods=tuple(request["methods"]),
            paradigm=paradigm,
            memory_model=request["memory_model"],
            on_error="collect",
            tier=request["tier"],
        )
        return {
            "request": request,
            "paradigm": paradigm,
            "reports": {name: report_to_dict(r) for name, r in reports.items()},
        }

    @staticmethod
    def _default_paradigm(workloads: list[str]) -> str:
        """A single workload defaults to its registered paradigm; grids of
        several fall back to "omp" (the only paradigm they all speak)."""
        if len(workloads) == 1:
            from repro.workloads import get_workload

            return get_workload(workloads[0]).paradigm
        return "omp"

    def _predict(self, payload: dict) -> dict:
        request = self._grid(payload, workloads_field="workload")
        if len(request["workloads"]) != 1:
            raise ServeError("/predict takes exactly one workload; use /sweep")
        if "methods" not in payload:
            request["methods"] = ["ff", "syn"]
        return self._through_cache_and_queue(
            "predict",
            request,
            lambda: self._run_grid(request),
            payload.get("timeout_s"),
        )

    def _sweep(self, payload: dict) -> dict:
        request = self._grid(payload, workloads_field="workloads")
        return self._through_cache_and_queue(
            "sweep",
            request,
            lambda: self._run_grid(request),
            payload.get("timeout_s"),
        )

    def _explore(self, payload: dict) -> dict:
        request = self._grid(payload, workloads_field="workload")
        samples = int(payload.get("samples", 6))
        if samples < 1:
            raise ServeError(f"samples must be >= 1, got {samples}")
        # Each grid point is replayed once per handoff variant.
        self.budgets.check_grid(
            samples * len(request["schedules"]) * len(request["threads"]),
            where="explore request",
        )
        request["samples"] = samples
        request["seed"] = int(payload.get("seed", 0))

        def run() -> dict:
            from repro.explore import Explorer

            prophet, _predictor = self.cache.predictor_for(request["cores"])
            profiles = {
                name: self.cache.profile_for(name, request["cores"], prophet)
                for name in request["workloads"]
            }
            explored = Explorer(
                prophet,
                samples=request["samples"],
                seed=request["seed"],
                jobs=self.cache.jobs,
                backend=self.cache.backend,
            ).explore(
                profiles,
                threads=request["threads"],
                schedules=request["schedules"],
                memory_model=request["memory_model"],
                on_error="collect",
            )
            return {
                "request": request,
                "reports": {name: report_to_dict(r) for name, r in explored.items()},
            }

        return self._through_cache_and_queue(
            "explore",
            request,
            run,
            payload.get("timeout_s"),
        )

    def _check(self, payload: dict) -> dict:
        if "workload" not in payload and "workloads" not in payload:
            payload = {**payload, "workloads": ["npb_ep"]}
        field = "workload" if "workload" in payload else "workloads"
        request = self._grid(payload, workloads_field=field)
        if "threads" not in payload:
            request["threads"] = [2, 4]
        if "memory_model" not in payload:
            request["memory_model"] = False

        def run() -> dict:
            from repro.validate import DifferentialHarness

            prophet, _predictor = self.cache.predictor_for(request["cores"])
            profiles = {
                name: self.cache.profile_for(name, request["cores"], prophet)
                for name in request["workloads"]
            }
            report = DifferentialHarness(prophet).run(
                profiles,
                threads=request["threads"],
                schedules=request["schedules"],
                memory_model=request["memory_model"],
            )
            return {
                "request": request,
                "summary": report.summary(),
                "violations": len(report.violations),
                "points": len(report.records),
            }

        return self._through_cache_and_queue(
            "check",
            request,
            run,
            payload.get("timeout_s"),
        )
