"""Prediction-as-a-service: a long-lived daemon over the prophet pipeline.

One-shot CLI invocations pay full calibration and start with cold caches on
every prediction.  This package turns the pipeline into a multi-tenant
process: an HTTP+JSON server (stdlib only) whose requests flow through a
bounded work queue into shared :class:`~repro.core.batch.BatchPredictor`
instances, with every cache the pipeline grows — Ψ/Φ calibrations, interval
profiles, section-replay memo, DRAM-solve LRU, columnar lowerings, whole
responses — promoted to explicit, process-lifetime, eviction-governed
state in :class:`~repro.serve.cachelayer.CacheLayer`.

Layout
------
- :mod:`repro.serve.budgets` — admission limits and the structured-error
  taxonomy (queue full → 429, grid budget → 413, deadline → 504).
- :mod:`repro.serve.cachelayer` — named, size-bounded, metrics-instrumented
  LRU cache classes plus adapters over the pipeline's existing caches.
- :mod:`repro.serve.workqueue` — bounded queue + worker threads with
  admission control and drain-on-shutdown.
- :mod:`repro.serve.handlers` — transport-free request handlers
  (predict/sweep/explore/check/stats/cache-clear) over a shared state.
- :mod:`repro.serve.server` — the ThreadingHTTPServer wiring and the
  ``repro serve`` entry point.

See ``docs/serving.md`` for the endpoint reference.
"""

from repro.serve.budgets import (
    BudgetExceeded,
    Deadline,
    DeadlineExceeded,
    QueueFull,
    RequestBudgets,
)
from repro.serve.cachelayer import CacheLayer, LRUCache
from repro.serve.handlers import ServeState
from repro.serve.server import ReproServer, ServeConfig, create_server
from repro.serve.workqueue import WorkQueue

__all__ = [
    "BudgetExceeded",
    "CacheLayer",
    "Deadline",
    "DeadlineExceeded",
    "LRUCache",
    "QueueFull",
    "ReproServer",
    "RequestBudgets",
    "ServeConfig",
    "ServeState",
    "WorkQueue",
    "create_server",
]
