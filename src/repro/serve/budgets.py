"""Per-request budgets and the daemon's structured-error taxonomy.

A long-lived server cannot let one request monopolise it: admission control
happens *before* compute.  Three budget classes exist, each with a stable
machine-readable code and an HTTP status the transport maps onto:

- **queue depth** — the bounded work queue refuses new work when full
  (:class:`QueueFull`, 429): the client should back off and retry.
- **grid size** — predict/sweep/explore requests declare their full
  (workloads × schedules × threads × methods) grid up front; grids above
  ``max_grid_points`` are refused (:class:`BudgetExceeded`, 413) rather
  than queued and killed later.
- **wall clock** — every request carries a :class:`Deadline`; work still
  queued at expiry is dropped, and a client waiting past it receives a
  structured 504 (:class:`DeadlineExceeded`).  Python threads cannot be
  interrupted mid-compute, so a request that *started* keeps running to
  completion and warms the caches for its retry — the deadline bounds how
  long the client waits, admission bounds how much work can start.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

from repro.errors import ServeError


class QueueFull(ServeError):
    """The bounded work queue is at capacity; retry after a backoff."""

    status = 429
    code = "queue_full"


class BudgetExceeded(ServeError):
    """The declared request grid exceeds the per-request size budget."""

    status = 413
    code = "grid_budget_exceeded"


class DeadlineExceeded(ServeError):
    """The request's wall-clock budget elapsed before a result was ready."""

    status = 504
    code = "deadline_exceeded"


@dataclass(frozen=True)
class RequestBudgets:
    """Admission limits applied to every request (server-wide defaults).

    ``timeout_s`` is the *ceiling*: a request may ask for less via its
    ``timeout_s`` field but never more.  ``max_grid_points`` counts
    (workload, schedule, thread-count, method) tuples; ``max_threads``
    bounds any single requested thread count so a typo'd ``threads``
    cannot allocate absurd simulated machines.
    """

    max_grid_points: int = 4096
    max_threads: int = 256
    timeout_s: float = 60.0

    def check_grid(self, n_points: int, where: str = "request") -> None:
        """Refuse grids above the per-request point budget."""
        if n_points > self.max_grid_points:
            raise BudgetExceeded(
                f"{where} declares {n_points} grid point(s), over the "
                f"budget of {self.max_grid_points}; split the request"
            )

    def check_threads(self, threads) -> None:
        """Refuse absurd thread counts before they reach the simulator."""
        for t in threads:
            if not isinstance(t, int) or t < 1:
                raise ServeError(f"thread counts must be positive integers, got {t!r}")
            if t > self.max_threads:
                raise BudgetExceeded(
                    f"thread count {t} exceeds the budget of {self.max_threads}"
                )

    def clamp_timeout(self, requested: Optional[float]) -> float:
        """The effective deadline: the request's ask capped by the ceiling."""
        if requested is None:
            return self.timeout_s
        try:
            requested = float(requested)
        except (TypeError, ValueError):
            raise ServeError(f"timeout_s must be a number, got {requested!r}")
        if requested <= 0:
            raise ServeError(f"timeout_s must be positive, got {requested}")
        return min(requested, self.timeout_s)


class Deadline:
    """Wall-clock budget for one request, shared by queue and handler.

    The monotonic clock keeps the deadline immune to system time jumps;
    ``remaining()`` is what the handler passes to its wait, and the queue
    worker consults ``expired()`` before starting work so requests that
    aged out while queued are dropped instead of computed for nobody.
    """

    __slots__ = ("timeout_s", "_expires")

    def __init__(self, timeout_s: float) -> None:
        self.timeout_s = timeout_s
        self._expires = time.monotonic() + timeout_s

    def remaining(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self._expires - time.monotonic())

    def expired(self) -> bool:
        return time.monotonic() >= self._expires

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(timeout_s={self.timeout_s}, remaining={self.remaining():.3f})"
