"""The daemon's process-lifetime cache layer.

Before this module, the pipeline's caches were scattered and implicit:
the Ψ/Φ calibration lived on whichever ``ParallelProphet`` happened to be
constructed, interval profiles were rebuilt per CLI invocation, the
section-replay memo and DRAM-solve LRU warmed up and died with the
process, and columnar lowerings were rebuilt per sweep chunk.  A one-shot
CLI never noticed; a daemon serving repeat traffic lives or dies by them.

:class:`CacheLayer` promotes them to explicit, named, eviction-governed
cache classes:

- ``predictor`` — one (:class:`~repro.core.prophet.ParallelProphet`,
  :class:`~repro.core.batch.BatchPredictor`) pair per machine shape.  The
  prophet carries the calibration cache (the single most expensive warmup)
  and the predictor carries the persistent executor/columnar-engine caches
  (:meth:`BatchPredictor.cache_info`).  Evicting a predictor resets it.
- ``profile`` — interval profiles keyed by (workload, machine), with
  their attached burden tables riding along.
- ``response`` — whole JSON responses keyed by the canonical request, so
  a byte-identical repeat request never reaches the compute queue.

plus adapters over the process-wide caches that already exist: the
section-replay memo (:func:`repro.core.executor.section_memo_info`) is
resized to the layer's configured bound and reported/cleared through the
same surface.

Every get is instrumented through the :mod:`repro.obs` metrics registry
as ``serve.cache.<class>.hits`` / ``.misses`` / ``.evictions``, so
``GET /stats`` and the ``--metrics`` CLI flag show one consistent story
(and :meth:`MetricsRegistry.hit_rates` derives ``.hit_rate`` for free).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Optional

from repro.obs import get_metrics


class LRUCache:
    """A named, size-bounded, thread-safe LRU cache class.

    ``on_evict`` (if given) runs for every value leaving the cache —
    capacity eviction and :meth:`clear` alike — so cache classes holding
    stateful values (e.g. predictors with executor caches) can release
    them deterministically.
    """

    def __init__(
        self,
        name: str,
        maxsize: int,
        on_evict: Optional[Callable[[Any], None]] = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"cache {name!r}: maxsize must be >= 1, got {maxsize}")
        self.name = name
        self.maxsize = maxsize
        self.on_evict = on_evict
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: get_or_create races lost: a build that was discarded because a
        #: concurrent creator inserted first.
        self.races = 0
        self._data: OrderedDict[Any, Any] = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ ops

    def get(self, key: Any) -> Optional[Any]:
        """Look up ``key``, refreshing recency; None on miss (instrumented).

        None doubles as the miss signal, which is why :meth:`put` refuses
        to store it — a cached None would be indistinguishable from a miss
        and re-built forever.  Falsy values that are not None (``0``,
        ``""``, ``{}``) are cached and returned normally.
        """
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                get_metrics().inc(f"serve.cache.{self.name}.misses")
                return None
            self._data.move_to_end(key)
            self.hits += 1
        get_metrics().inc(f"serve.cache.{self.name}.hits")
        return value

    def _insert(self, key: Any, value: Any) -> list:
        """Insert under the caller-held lock; returns evicted values."""
        evicted = []
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            _, old = self._data.popitem(last=False)
            self.evictions += 1
            evicted.append(old)
        return evicted

    def _dispose(self, evicted: list) -> None:
        """Run eviction accounting/hooks outside the lock."""
        if not evicted:
            return
        get_metrics().inc(
            f"serve.cache.{self.name}.evictions", float(len(evicted))
        )
        if self.on_evict is not None:
            for old in evicted:
                self.on_evict(old)

    def put(self, key: Any, value: Any) -> None:
        """Insert ``value``, evicting least-recently-used entries over bound."""
        if value is None:
            raise ValueError(
                f"cache {self.name!r}: None cannot be cached "
                "(it is the miss signal)"
            )
        with self._lock:
            evicted = self._insert(key, value)
        self._dispose(evicted)

    def get_or_create(self, key: Any, factory: Callable[[], Any]) -> Any:
        """``get`` falling back to ``factory()`` on miss — first put wins.

        The factory runs outside the cache lock (it may be expensive), so
        two racing creators may both build; the insert is then
        insert-if-absent under the lock.  The first value in stays (and is
        what *every* racer returns); the loser's build is discarded through
        ``on_evict`` so stateful values (predictors with executor caches,
        registered metrics) are released instead of leaking.
        """
        value = self.get(key)
        if value is not None:
            return value
        created = factory()
        if created is None:
            raise ValueError(
                f"cache {self.name!r}: factory for {key!r} returned None "
                "(None is the miss signal and cannot be cached)"
            )
        with self._lock:
            existing = self._data.get(key)
            if existing is not None:
                self._data.move_to_end(key)
                self.hits += 1
                self.races += 1
                evicted = []
            else:
                evicted = self._insert(key, created)
        if existing is not None:
            get_metrics().inc(f"serve.cache.{self.name}.races")
            if self.on_evict is not None:
                self.on_evict(created)
            self._dispose(evicted)
            return existing
        self._dispose(evicted)
        return created

    def clear(self) -> int:
        """Drop every entry (running ``on_evict``); returns the count."""
        with self._lock:
            dropped = list(self._data.values())
            self._data.clear()
        if self.on_evict is not None:
            for value in dropped:
                self.on_evict(value)
        return len(dropped)

    def info(self) -> dict[str, int]:
        """Hit/miss/eviction/size counters (same shape as the DRAM memo's)."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "size": len(self._data),
                "maxsize": self.maxsize,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


class CacheLayer:
    """All process-lifetime caches of one daemon, behind one surface.

    ``jobs`` and ``backend`` are the sweep-execution knobs baked into
    every predictor this layer creates; requests select only the machine
    shape (``cores``), keeping the predictor key small and the executor
    caches hot across differently-phrased requests.
    """

    def __init__(
        self,
        predictor_size: int = 8,
        profile_size: int = 64,
        response_size: int = 256,
        section_memo_size: Optional[int] = None,
        jobs: int = 1,
        backend: str = "auto",
    ) -> None:
        self.jobs = jobs
        self.backend = backend
        self.predictors = LRUCache(
            "predictor",
            predictor_size,
            on_evict=lambda pair: pair[1].reset(),
        )
        self.profiles = LRUCache("profile", profile_size)
        self.responses = LRUCache("response", response_size)
        if section_memo_size is not None:
            from repro.core.executor import set_section_memo_size

            set_section_memo_size(section_memo_size)

    # ------------------------------------------------------------ factories

    def predictor_for(self, cores: int):
        """The (prophet, predictor) pair for a machine shape, cached.

        The prophet owns the calibration cache; the predictor owns the
        persistent executor and columnar-engine caches.  Together they are
        the warm state a repeat request hits.
        """

        def build():
            from repro.core.batch import BatchPredictor
            from repro.core.prophet import ParallelProphet
            from repro.simhw.machine import MachineConfig

            prophet = ParallelProphet(machine=MachineConfig(n_cores=cores))
            return prophet, BatchPredictor(
                prophet,
                jobs=self.jobs,
                backend=self.backend,
            )

        return self.predictors.get_or_create(int(cores), build)

    def profile_for(self, workload: str, cores: int, prophet):
        """The interval profile of a registered workload, cached per machine.

        Burden tables attach to the cached object as predictions request
        them, so the calibrated per-thread-count burdens are part of the
        warm state too.
        """

        def build():
            from repro.workloads import get_workload

            return prophet.profile(get_workload(workload).program)

        return self.profiles.get_or_create((workload, int(cores)), build)

    # -------------------------------------------------------------- surface

    def stats(self) -> dict[str, Any]:
        """Per-cache-class counters, including the adapted pipeline caches."""
        from repro.core.executor import section_memo_info

        layer = {
            cache.name: cache.info()
            for cache in (self.predictors, self.profiles, self.responses)
        }
        layer["section_memo"] = section_memo_info()
        predictors = {}
        with self.predictors._lock:
            pairs = list(self.predictors._data.items())
        for cores, (_prophet, predictor) in pairs:
            predictors[str(cores)] = predictor.cache_info()
        return {"classes": layer, "predictors": predictors}

    def clear(self) -> dict[str, int]:
        """Drop every cache class; returns per-class dropped-entry counts.

        Predictor eviction hooks reset their executor/engine caches, and
        the process-wide section memo is cleared alongside so ``POST
        /cache/clear`` really does return the daemon to a cold state.
        """
        from repro.core.executor import clear_section_memo, section_memo_info

        memo_size = section_memo_info()["size"]
        cleared = {
            "predictor": self.predictors.clear(),
            "profile": self.profiles.clear(),
            "response": self.responses.clear(),
            "section_memo": memo_size,
        }
        clear_section_memo()
        get_metrics().inc("serve.cache.clears")
        return cleared
