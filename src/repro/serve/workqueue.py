"""Bounded work queue feeding the daemon's predictors.

HTTP handler threads never compute: they submit a closure and wait on its
:class:`Job` with the request's deadline.  A fixed pool of worker threads
drains the queue, which is bounded — a full queue refuses admission
(:class:`~repro.serve.budgets.QueueFull` → 429) instead of buffering
unbounded work the clients have long given up on.

Why one worker by default: the cache layer's values (executor caches,
section memo, columnar engines) are plain dicts tuned for the GIL, not for
concurrent mutation, and a single simulated sweep already saturates a
core.  ``workers > 1`` is supported for mixed traffic (the caches degrade
to occasional double-compute, never corruption of returned results), but
the deterministic default is serial execution in admission order.

Shutdown drains: pending jobs run to completion before the workers exit,
so an orderly stop never drops accepted work (tested by
``tests/test_serve_queue.py``).
"""

from __future__ import annotations

import queue
import threading
from typing import Any, Callable, Optional

from repro.obs import get_metrics
from repro.serve.budgets import Deadline, DeadlineExceeded, QueueFull

#: Worker-loop sentinel; one per worker is enqueued at shutdown.
_STOP = object()


class Job:
    """One unit of accepted work: a closure plus its completion state."""

    __slots__ = ("fn", "deadline", "label", "result", "error", "_done")

    def __init__(self, fn: Callable[[], Any], deadline: Deadline, label: str) -> None:
        self.fn = fn
        self.deadline = deadline
        self.label = label
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._done = threading.Event()

    def finish(self, result: Any = None, error: Optional[BaseException] = None) -> None:
        self.result = result
        self.error = error
        self._done.set()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until completion; raise the job's error or a 504 on timeout.

        A timeout does not cancel the work — threads cannot be interrupted
        mid-simulation — so the computation completes and warms the caches
        for the client's retry; only the *wait* is bounded.
        """
        if not self._done.wait(timeout):
            raise DeadlineExceeded(
                f"{self.label}: no result within {self.deadline.timeout_s:.1f}s "
                "(the computation continues and will be cached for a retry)"
            )
        if self.error is not None:
            raise self.error
        return self.result


class WorkQueue:
    """Fixed worker pool over a bounded FIFO queue with admission control."""

    def __init__(self, workers: int = 1, depth: int = 16) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.depth = depth
        self.submitted = 0
        self.completed = 0
        self.rejected = 0
        self.expired = 0
        self.active = 0
        self._queue: queue.Queue = queue.Queue(maxsize=depth)
        self._lock = threading.Lock()
        self._closed = False
        self._workers = [
            threading.Thread(
                target=self._worker,
                name=f"repro-serve-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # ------------------------------------------------------------ admission

    def submit(self, fn: Callable[[], Any], deadline: Deadline, label: str) -> Job:
        """Admit one closure, or refuse with a structured 429."""
        metrics = get_metrics()
        job = Job(fn, deadline, label)
        with self._lock:
            if self._closed:
                self.rejected += 1
                metrics.inc("serve.queue.rejected")
                raise QueueFull(f"{label}: the daemon is shutting down")
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                self.rejected += 1
                metrics.inc("serve.queue.rejected")
                raise QueueFull(
                    f"{label}: work queue at capacity ({self.depth} pending); "
                    "retry with backoff"
                )
            self.submitted += 1
        metrics.inc("serve.queue.submitted")
        return job

    # ------------------------------------------------------------- execution

    def _worker(self) -> None:
        metrics = get_metrics()
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                return
            job: Job = item
            if job.deadline.expired():
                # Aged out while queued: dropping is cheaper than computing
                # a result nobody is waiting for.
                with self._lock:
                    self.expired += 1
                metrics.inc("serve.queue.expired")
                job.finish(error=DeadlineExceeded(f"{job.label}: expired while queued"))
                self._queue.task_done()
                continue
            with self._lock:
                self.active += 1
            try:
                job.finish(result=job.fn())
            except BaseException as exc:  # surfaced to the waiting client
                job.finish(error=exc)
            finally:
                with self._lock:
                    self.active -= 1
                    self.completed += 1
                metrics.inc("serve.queue.completed")
                self._queue.task_done()

    # -------------------------------------------------------------- teardown

    def shutdown(self, timeout: Optional[float] = None) -> bool:
        """Stop admission, drain pending work, join the workers.

        Returns True if every worker exited within ``timeout`` (None waits
        indefinitely).  Already-accepted jobs complete: the sentinels sit
        *behind* them in FIFO order.  Idempotent: a repeat call enqueues no
        new sentinels but re-joins any still-running workers, so a False
        (timed-out) shutdown can be retried and reports honestly.
        """
        with self._lock:
            first = not self._closed
            self._closed = True
        if first:
            # Sentinels go in exactly once; a repeat call must not enqueue
            # another round that a later worker would mistake for fresh stop
            # orders (or that would sit in a full queue forever).
            for _ in self._workers:
                self._queue.put(_STOP)
        # Always re-join: an earlier call that timed out on a stuck worker
        # reported False, and a repeat call must re-check rather than claim
        # success for workers that may still be alive.
        deadline = Deadline(timeout) if timeout is not None else None
        alive = False
        for thread in self._workers:
            if not thread.is_alive():
                continue
            thread.join(deadline.remaining() if deadline is not None else None)
            alive = alive or thread.is_alive()
        return not alive

    # ----------------------------------------------------------------- stats

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "depth": self.depth,
                "pending": self._queue.qsize(),
                "workers": len(self._workers),
                "alive": sum(1 for t in self._workers if t.is_alive()),
                "active": self.active,
                "submitted": self.submitted,
                "completed": self.completed,
                "rejected": self.rejected,
                "expired": self.expired,
            }
