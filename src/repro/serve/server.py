"""HTTP shell of the prediction daemon (stdlib only, no new deps).

``ThreadingHTTPServer`` gives each connection its own handler thread;
those threads parse JSON and wait — all compute happens on the bounded
:class:`~repro.serve.workqueue.WorkQueue` behind
:class:`~repro.serve.handlers.ServeState`, so concurrency is governed by
the queue's admission control, not by how many sockets are open.

Typical use (the ``repro serve`` CLI wraps exactly this)::

    server = create_server(ServeConfig(port=8765))
    server.serve_forever()          # Ctrl-C → orderly drain

In-process (tests, benches)::

    server = create_server(ServeConfig(port=0))   # ephemeral port
    server.start()                                # background thread
    ... requests against http://127.0.0.1:{server.port} ...
    server.stop()                                 # drain + join
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.serve.budgets import RequestBudgets
from repro.serve.cachelayer import CacheLayer
from repro.serve.handlers import ServeState
from repro.serve.workqueue import WorkQueue

#: Request bodies above this size are refused outright (413).
_MAX_BODY_BYTES = 1 << 20


@dataclass(frozen=True)
class ServeConfig:
    """Everything ``repro serve`` exposes as flags, as one value."""

    host: str = "127.0.0.1"
    port: int = 8765
    #: Work-queue shape: worker threads and pending-request bound.
    workers: int = 1
    queue_depth: int = 16
    #: Per-request budgets (grid size, thread counts, wall clock).
    budgets: RequestBudgets = field(default_factory=RequestBudgets)
    #: Sweep-execution knobs baked into every cached predictor.
    jobs: int = 1
    backend: str = "auto"
    #: Default prediction tier for requests that don't pass ``tier``
    #: themselves ("exact" | "surrogate" | "auto"; see docs/surrogate.md).
    tier: str = "exact"
    #: Cache-class bounds (entries, not bytes).
    predictor_cache: int = 8
    profile_cache: int = 64
    response_cache: int = 256
    section_memo: Optional[int] = None
    #: Allow ``POST /shutdown`` (on for the CLI, off by default embedded).
    allow_shutdown: bool = True
    #: Log one line per request to stderr.
    log_requests: bool = False


class _Handler(BaseHTTPRequestHandler):
    """Thin JSON adapter: parse, delegate to ServeState, serialise."""

    #: Installed by :class:`ReproServer`.
    state: ServeState = None  # type: ignore[assignment]
    quiet = True
    protocol_version = "HTTP/1.1"

    # BaseHTTPRequestHandler logs to stderr per request; keep it opt-in.
    def log_message(self, fmt, *args):  # noqa: D102
        if not self.quiet:
            super().log_message(fmt, *args)

    def _reply(self, status: int, body: dict) -> None:
        data = json.dumps(body, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        status, body = self.state.handle("GET", self.path, {})
        self._reply(status, body)

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            # Refuse without reading the body; drop the connection so the
            # unread bytes are never parsed as a follow-up request (and so
            # a client mid-send is unblocked rather than deadlocked).
            self.close_connection = True
            self._reply(
                413,
                {
                    "error": "body_too_large",
                    "message": f"request body over {_MAX_BODY_BYTES} bytes",
                },
            )
            return
        raw = self.rfile.read(length) if length else b""
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError as exc:
            self._reply(400, {"error": "bad_json", "message": str(exc)})
            return
        status, body = self.state.handle("POST", self.path, payload)
        self._reply(status, body)


class ReproServer:
    """One daemon: HTTP listener + ServeState, with an orderly stop."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.state = ServeState(
            cache=CacheLayer(
                predictor_size=config.predictor_cache,
                profile_size=config.profile_cache,
                response_size=config.response_cache,
                section_memo_size=config.section_memo,
                jobs=config.jobs,
                backend=config.backend,
            ),
            queue=WorkQueue(workers=config.workers, depth=config.queue_depth),
            budgets=config.budgets,
            default_tier=config.tier,
        )
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {"state": self.state, "quiet": not config.log_requests},
        )
        self._httpd = ThreadingHTTPServer((config.host, config.port), handler)
        self._thread: Optional[threading.Thread] = None
        self._serving = False
        self._stopped = threading.Event()
        if config.allow_shutdown:
            self.state.on_shutdown = self.stop

    # ------------------------------------------------------------- lifecycle

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        return self._httpd.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def serve_forever(self) -> None:
        """Blocking serve loop; KeyboardInterrupt triggers an orderly stop."""
        self._serving = True
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive path
            pass
        finally:
            self.stop()

    def start(self) -> "ReproServer":
        """Serve on a background thread (tests, benches); returns self."""
        self._serving = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self, timeout: Optional[float] = 30.0) -> None:
        """Stop accepting, drain the work queue, close the listener.

        Idempotent: the /shutdown endpoint, Ctrl-C, and tests may all call
        it; only the first does the work.
        """
        if self._stopped.is_set():
            return
        self._stopped.set()
        if self._serving:
            # shutdown() blocks until the serve loop acknowledges; calling
            # it on a never-started server would wait forever.
            self._httpd.shutdown()
        self._httpd.server_close()
        self.state.queue.shutdown(timeout=timeout)
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None


def create_server(config: Optional[ServeConfig] = None) -> ReproServer:
    """Build (but do not start) a daemon from ``config``."""
    return ReproServer(config if config is not None else ServeConfig())
