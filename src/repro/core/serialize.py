"""Profile persistence: save/load program profiles as JSON.

Profiling is the expensive step of the workflow (it runs the whole annotated
program); emulation is cheap and parameterised.  Persisting profiles lets a
user profile once and re-predict under different thread counts, schedules,
and paradigms later — or on another machine's calibration.

The program tree is a DAG after dictionary compression (shared canonical
subtrees), so nodes are serialised as a flat table keyed by id with child
references, preserving sharing exactly; a round-trip neither duplicates
shared nodes nor changes any measurement.
"""

from __future__ import annotations

import json
from dataclasses import fields
from pathlib import Path
from typing import Any, Union

from repro.core.compress import CompressionStats
from repro.core.profiler import ProfileStats, ProgramProfile, SectionCounters
from repro.core.tree import Node, NodeKind, ProgramTree
from repro.errors import ConfigurationError
from repro.simhw.counters import CounterSet
from repro.simhw.machine import MachineConfig

#: Format version; bumped on incompatible layout changes.
FORMAT_VERSION = 1


# ------------------------------------------------------------------ tree


def tree_to_dict(tree: ProgramTree) -> dict[str, Any]:
    """Flatten a (possibly DAG-shaped) tree into an id-keyed node table."""
    ids: dict[int, int] = {}
    nodes: list[dict[str, Any]] = []

    def visit(node: Node) -> int:
        key = id(node)
        if key in ids:
            return ids[key]
        # Reserve the slot before recursing (children cannot cycle back —
        # trees/DAGs only — but this keeps ids in discovery order).
        idx = len(nodes)
        ids[key] = idx
        nodes.append({})
        nodes[idx] = {
            "kind": node.kind.value,
            "name": node.name,
            "length": node.length,
            "lock_id": node.lock_id,
            "repeat": node.repeat,
            "cpu_cycles": node.cpu_cycles,
            "instructions": node.instructions,
            "llc_misses": node.llc_misses,
            "nowait": node.nowait,
            "pipeline": node.pipeline,
            "children": [visit(c) for c in node.children],
        }
        return idx

    root_idx = visit(tree.root)
    return {"root": root_idx, "nodes": nodes}


def tree_from_dict(data: dict[str, Any]) -> ProgramTree:
    """Rebuild a tree/DAG from :func:`tree_to_dict` output."""
    raw_nodes = data["nodes"]
    built: list[Node | None] = [None] * len(raw_nodes)

    def build(idx: int) -> Node:
        cached = built[idx]
        if cached is not None:
            return cached
        raw = raw_nodes[idx]
        node = Node(
            NodeKind(raw["kind"]),
            name=raw["name"],
            length=raw["length"],
            lock_id=raw["lock_id"],
            repeat=raw["repeat"],
            cpu_cycles=raw["cpu_cycles"],
            instructions=raw["instructions"],
            llc_misses=raw["llc_misses"],
            nowait=raw["nowait"],
        )
        node.pipeline = raw.get("pipeline", False)
        built[idx] = node
        node.children = [build(c) for c in raw["children"]]
        return node

    return ProgramTree(build(data["root"]))


# ------------------------------------------------------------------ profile


def profile_to_dict(profile: ProgramProfile) -> dict[str, Any]:
    """Serialise a whole profile (tree, counters, machine, burdens)."""
    return {
        "format_version": FORMAT_VERSION,
        # Enumerate dataclass fields instead of hand-listing them: a
        # hand-written dict silently dropped fields added after the seed
        # (n_sockets, context_switch_cycles, dram_solve_cache), so NUMA
        # and context-switch configs lost those knobs on round-trip.
        "machine": {
            f.name: getattr(profile.machine, f.name)
            for f in fields(MachineConfig)
        },
        "tree": tree_to_dict(profile.tree),
        "sections": {
            name: {
                "instructions": sc.total.instructions,
                "cycles": sc.total.cycles,
                "llc_misses": sc.total.llc_misses,
                "invocations": sc.invocations,
            }
            for name, sc in profile.sections.items()
        },
        "stats": {
            "net_program_cycles": profile.stats.net_program_cycles,
            "gross_tracer_cycles": profile.stats.gross_tracer_cycles,
            "annotation_events": profile.stats.annotation_events,
        },
        "compression": (
            {
                "logical_nodes": profile.compression.logical_nodes,
                "nodes_before": profile.compression.nodes_before,
                "nodes_after": profile.compression.nodes_after,
            }
            if profile.compression is not None
            else None
        ),
        "burdens": {
            name: {str(t): beta for t, beta in table.items()}
            for name, table in profile.burdens.items()
        },
    }


def profile_from_dict(data: dict[str, Any]) -> ProgramProfile:
    """Rebuild a profile serialised by :func:`profile_to_dict`."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported profile format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    machine = MachineConfig(**data["machine"])
    tree = tree_from_dict(data["tree"])
    sections = {
        name: SectionCounters(
            name=name,
            total=CounterSet(
                instructions=raw["instructions"],
                cycles=raw["cycles"],
                llc_misses=raw["llc_misses"],
            ),
            invocations=raw["invocations"],
        )
        for name, raw in data["sections"].items()
    }
    stats = ProfileStats(**data["stats"])
    compression = (
        CompressionStats(**data["compression"])
        if data.get("compression") is not None
        else None
    )
    profile = ProgramProfile(
        tree=tree,
        sections=sections,
        machine=machine,
        stats=stats,
        compression=compression,
    )
    for name, table in data.get("burdens", {}).items():
        profile.burdens[name] = {int(t): beta for t, beta in table.items()}
    return profile


def save_profile(profile: ProgramProfile, path: Union[str, Path]) -> None:
    """Write a profile to ``path`` as JSON."""
    Path(path).write_text(json.dumps(profile_to_dict(profile)))


def load_profile(path: Union[str, Path]) -> ProgramProfile:
    """Read a profile written by :func:`save_profile`."""
    return profile_from_dict(json.loads(Path(path).read_text()))
