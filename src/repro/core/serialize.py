"""Profile persistence: save/load program profiles as JSON.

Profiling is the expensive step of the workflow (it runs the whole annotated
program); emulation is cheap and parameterised.  Persisting profiles lets a
user profile once and re-predict under different thread counts, schedules,
and paradigms later — or on another machine's calibration.

The program tree is a DAG after dictionary compression (shared canonical
subtrees), so nodes are serialised as a flat table keyed by id with child
references, preserving sharing exactly; a round-trip neither duplicates
shared nodes nor changes any measurement.
"""

from __future__ import annotations

import json
from dataclasses import fields
from pathlib import Path
from typing import Any, Union

from repro.core.compress import CompressionStats
from repro.core.profiler import ProfileStats, ProgramProfile, SectionCounters
from repro.core.tree import Node, NodeKind, ProgramTree
from repro.errors import ConfigurationError
from repro.simhw.counters import CounterSet
from repro.simhw.machine import MachineConfig

#: Format version; bumped on incompatible layout changes.
FORMAT_VERSION = 1


# ------------------------------------------------------------------ tree

#: Per-node scalar fields, derived from ``Node.__slots__`` the same way the
#: machine dict is derived from ``fields(MachineConfig)``: a hand-written
#: list silently dropped ``pipeline`` when it was added after the seed, so
#: any slot added to Node later is serialised automatically.  ``kind`` is
#: encoded by value and ``children`` by id reference, so both are excluded.
_NODE_SCALAR_FIELDS = tuple(
    s for s in Node.__slots__ if s not in ("kind", "children")
)

#: The subset of scalar fields the Node constructor accepts; anything else
#: (``pipeline`` today) is restored by attribute assignment after build.
_NODE_CTOR_FIELDS = (
    "name",
    "length",
    "lock_id",
    "repeat",
    "cpu_cycles",
    "instructions",
    "llc_misses",
    "nowait",
)

#: Measurement fields that must load as non-negative numbers.
_NODE_COUNTER_FIELDS = ("cpu_cycles", "instructions", "llc_misses")


def tree_to_dict(tree: ProgramTree) -> dict[str, Any]:
    """Flatten a (possibly DAG-shaped) tree into an id-keyed node table."""
    ids: dict[int, int] = {}
    nodes: list[dict[str, Any]] = []

    def visit(node: Node) -> int:
        key = id(node)
        if key in ids:
            return ids[key]
        # Reserve the slot before recursing (children cannot cycle back —
        # trees/DAGs only — but this keeps ids in discovery order).
        idx = len(nodes)
        ids[key] = idx
        nodes.append({})
        nodes[idx] = {
            "kind": node.kind.value,
            **{f: getattr(node, f) for f in _NODE_SCALAR_FIELDS},
            "children": [visit(c) for c in node.children],
        }
        return idx

    root_idx = visit(tree.root)
    return {"root": root_idx, "nodes": nodes}


def tree_from_dict(data: dict[str, Any]) -> ProgramTree:
    """Rebuild a tree/DAG from :func:`tree_to_dict` output.

    Malformed node tables (missing fields, wrong types, negative
    measurements) raise :class:`~repro.errors.ConfigurationError` rather
    than leaking bare ``KeyError``/``ValueError`` from deep inside."""
    raw_nodes = data["nodes"]
    built: list[Node | None] = [None] * len(raw_nodes)

    def build(idx: int) -> Node:
        cached = built[idx]
        if cached is not None:
            return cached
        raw = raw_nodes[idx]
        try:
            for f in _NODE_COUNTER_FIELDS:
                value = raw[f]
                if value < 0:
                    raise ConfigurationError(
                        f"node {idx}: {f} must be >= 0, got {value!r}"
                    )
            node = Node(
                NodeKind(raw["kind"]),
                **{f: raw[f] for f in _NODE_CTOR_FIELDS},
            )
        except ConfigurationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"malformed node {idx} in profile data: {exc!r}"
            ) from exc
        # Slots outside the constructor signature round-trip by assignment
        # (absent in older files: keep the freshly-built node's default).
        for f in _NODE_SCALAR_FIELDS:
            if f not in _NODE_CTOR_FIELDS and f in raw:
                setattr(node, f, raw[f])
        built[idx] = node
        node.children = [build(c) for c in raw["children"]]
        return node

    return ProgramTree(build(data["root"]))


# ------------------------------------------------------------------ profile


def profile_to_dict(profile: ProgramProfile) -> dict[str, Any]:
    """Serialise a whole profile (tree, counters, machine, burdens)."""
    return {
        "format_version": FORMAT_VERSION,
        # Enumerate dataclass fields instead of hand-listing them: a
        # hand-written dict silently dropped fields added after the seed
        # (n_sockets, context_switch_cycles, dram_solve_cache), so NUMA
        # and context-switch configs lost those knobs on round-trip.
        "machine": {
            f.name: getattr(profile.machine, f.name)
            for f in fields(MachineConfig)
        },
        "tree": tree_to_dict(profile.tree),
        "sections": {
            name: {
                "instructions": sc.total.instructions,
                "cycles": sc.total.cycles,
                "llc_misses": sc.total.llc_misses,
                "invocations": sc.invocations,
            }
            for name, sc in profile.sections.items()
        },
        "stats": {
            "net_program_cycles": profile.stats.net_program_cycles,
            "gross_tracer_cycles": profile.stats.gross_tracer_cycles,
            "annotation_events": profile.stats.annotation_events,
        },
        "compression": (
            {
                "logical_nodes": profile.compression.logical_nodes,
                "nodes_before": profile.compression.nodes_before,
                "nodes_after": profile.compression.nodes_after,
            }
            if profile.compression is not None
            else None
        ),
        "burdens": {
            name: {str(t): beta for t, beta in table.items()}
            for name, table in profile.burdens.items()
        },
    }


def profile_from_dict(data: dict[str, Any]) -> ProgramProfile:
    """Rebuild a profile serialised by :func:`profile_to_dict`.

    Any structural defect in the loaded data — missing keys, wrong types,
    negative-valued counters or burdens — surfaces as
    :class:`~repro.errors.ConfigurationError`, never a bare
    ``KeyError``/``ValueError`` (profiles are the format users hand-edit
    and pass between machines, so load errors must say what is wrong)."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported profile format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        machine = MachineConfig(**data["machine"])
        tree = tree_from_dict(data["tree"])
        sections = {}
        for name, raw in data["sections"].items():
            for f in ("instructions", "cycles", "llc_misses", "invocations"):
                if raw[f] < 0:
                    raise ConfigurationError(
                        f"section {name!r}: {f} must be >= 0, got {raw[f]!r}"
                    )
            sections[name] = SectionCounters(
                name=name,
                total=CounterSet(
                    instructions=raw["instructions"],
                    cycles=raw["cycles"],
                    llc_misses=raw["llc_misses"],
                ),
                invocations=raw["invocations"],
            )
        stats = ProfileStats(**data["stats"])
        compression = (
            CompressionStats(**data["compression"])
            if data.get("compression") is not None
            else None
        )
        profile = ProgramProfile(
            tree=tree,
            sections=sections,
            machine=machine,
            stats=stats,
            compression=compression,
        )
        for name, table in data.get("burdens", {}).items():
            for t, beta in table.items():
                if beta < 0:
                    raise ConfigurationError(
                        f"burden for {name!r} at t={t}: "
                        f"must be >= 0, got {beta!r}"
                    )
            profile.burdens[name] = {int(t): beta for t, beta in table.items()}
    except ConfigurationError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise ConfigurationError(
            f"malformed profile data: {exc!r}"
        ) from exc
    return profile


def save_profile(profile: ProgramProfile, path: Union[str, Path]) -> None:
    """Write a profile to ``path`` as JSON."""
    Path(path).write_text(json.dumps(profile_to_dict(profile)))


def load_profile(path: Union[str, Path]) -> ProgramProfile:
    """Read a profile written by :func:`save_profile`."""
    return profile_from_dict(json.loads(Path(path).read_text()))
