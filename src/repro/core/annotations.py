"""Annotation API and serial tracer (paper Sections IV-A, IV-B, VI-A).

Programmers describe the parallel structure of a *serial* program with six
annotations (Table II of the paper)::

    PAR_SEC_BEGIN(name)   ->  tracer.par_sec_begin(name)
    PAR_SEC_END(barrier)  ->  tracer.par_sec_end(barrier=True)
    PAR_TASK_BEGIN(name)  ->  tracer.par_task_begin(name)
    PAR_TASK_END()        ->  tracer.par_task_end()
    LOCK_BEGIN(lock_id)   ->  tracer.lock_begin(lock_id)
    LOCK_END(lock_id)     ->  tracer.lock_end(lock_id)

plus the Pythonic context managers :meth:`Tracer.section`, :meth:`Tracer.task`
and :meth:`Tracer.lock`.

Because this reproduction runs on a simulated machine, the program's *work*
is expressed declaratively: :meth:`Tracer.compute` performs ``cpu_cycles`` of
execution with a given memory behaviour (:class:`~repro.simhw.memtrace.MemSpec`).
The tracer plays the role of the paper's Pin-probe tracer: it advances the
virtual ``rdtsc`` clock (including DRAM stall time from the machine's memory
model), charges itself a per-annotation overhead, keeps the running overhead
total so the profiler can exclude it from interval lengths (the paper's
Section VI-A problem), collects per-top-level-section hardware counters, and
builds the program tree on the fly.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator, Optional

from repro.errors import AnnotationError
from repro.core.tree import Node, NodeKind
from repro.simhw.counters import CounterSet
from repro.simhw.dram import DramModel, SegmentDemand
from repro.simhw.machine import MachineConfig
from repro.simhw.memtrace import MemSpec, analytic_llc_misses

#: A serial annotated program: a callable that drives a tracer.
AnnotationProgram = Callable[["Tracer"], None]


class _OpenLeaf:
    """Accumulates consecutive compute calls into one U/L leaf."""

    __slots__ = ("kind", "lock_id", "measured", "cpu_cycles", "instructions", "misses")

    def __init__(self, kind: NodeKind, lock_id: Optional[int]) -> None:
        self.kind = kind
        self.lock_id = lock_id
        self.measured = 0.0
        self.cpu_cycles = 0.0
        self.instructions = 0.0
        self.misses = 0.0


class _SectionRecord:
    """Per-invocation counter snapshot for a top-level section."""

    __slots__ = ("name", "counters_at_begin", "clock_at_begin", "overhead_at_begin")

    def __init__(
        self, name: str, counters: CounterSet, clock: float, overhead: float
    ) -> None:
        self.name = name
        self.counters_at_begin = counters
        self.clock_at_begin = clock
        self.overhead_at_begin = overhead


class Tracer:
    """Builds a program tree while 'executing' an annotated serial program.

    Parameters
    ----------
    machine:
        The machine being profiled on (clock rate, LLC, DRAM curve, and the
        per-annotation tracer overhead).
    overhead_subtraction_accuracy:
        1.0 (default) subtracts the tracer's own overhead from interval
        lengths perfectly; lower values leave a fraction behind, modelling
        the imperfect net-length calculation the paper describes ("we tried
        our best to calculate the net length of each node").
    trace_driven:
        When True, LLC misses come from the reference set-associative cache
        simulator fed with synthetic address streams instead of the
        first-order analytic models.  The simulated cache persists across
        compute calls, so cross-segment reuse is captured — at the cost the
        paper attributes to cache simulation ("the cache model also incurs
        huge overhead").  ``trace_seed`` makes the streams reproducible and
        ``trace_max_accesses`` caps per-segment stream length (misses are
        scaled back up proportionally).
    """

    def __init__(
        self,
        machine: MachineConfig,
        overhead_subtraction_accuracy: float = 1.0,
        trace_driven: bool = False,
        trace_seed: int = 0,
        trace_max_accesses: int = 200_000,
    ) -> None:
        if not 0.0 <= overhead_subtraction_accuracy <= 1.0:
            raise AnnotationError(
                "overhead_subtraction_accuracy must be in [0, 1]"
            )
        self.machine = machine
        self.accuracy = overhead_subtraction_accuracy
        self.dram = DramModel(machine)
        self.trace_driven = trace_driven
        self._trace_max_accesses = trace_max_accesses
        if trace_driven:
            import numpy as np

            from repro.simhw.cache import CacheConfig, SetAssociativeCache

            self._llc = SetAssociativeCache(
                CacheConfig(
                    capacity_bytes=machine.llc_bytes,
                    line_size=machine.line_size,
                    associativity=machine.llc_assoc,
                )
            )
            self._trace_rng = np.random.default_rng(trace_seed)
            #: Distinct base address per working-set size, so independent
            #: data structures do not alias in the simulated cache.
            self._region_bases: dict[tuple, int] = {}
            self._next_base = 1 << 32
        else:
            self._llc = None
        self.clock = 0.0
        #: Cumulative tracer overhead charged so far (cycles).
        self.overhead_total = 0.0
        self.counters = CounterSet()
        self.root = Node(NodeKind.ROOT, name="root")
        # Stack entries: (node, clock_at_open, overhead_at_open).
        self._stack: list[tuple[Node, float, float]] = [(self.root, 0.0, 0.0)]
        self._open_leaf: Optional[_OpenLeaf] = None
        self._current_lock: Optional[int] = None
        self._section_records: dict[str, list[CounterSet]] = {}
        self._open_top_section: Optional[_SectionRecord] = None
        self.annotation_events = 0
        self._finished = False

    # ------------------------------------------------------------- inspection

    @property
    def _top(self) -> Node:
        return self._stack[-1][0]

    @property
    def depth(self) -> int:
        return len(self._stack) - 1

    # ------------------------------------------------------------- computation

    def compute(
        self,
        cpu_cycles: float,
        instructions: Optional[float] = None,
        mem: Optional[MemSpec] = None,
    ) -> float:
        """Execute ``cpu_cycles`` of pure computation plus the memory work
        described by ``mem``; returns the measured wall cycles.

        This is the reproduction's stand-in for running real code under the
        tracer: the clock advances by compute time plus DRAM stall time
        (single-threaded contention level), and the simulated hardware
        counters accumulate instructions and LLC misses.
        """
        self._check_open()
        if cpu_cycles < 0:
            raise AnnotationError(f"cpu_cycles must be >= 0, got {cpu_cycles!r}")
        if cpu_cycles == 0 and mem is None:
            return 0.0
        top = self._top
        if top.kind is NodeKind.SEC:
            raise AnnotationError(
                "computation directly inside a parallel section is not "
                "annotatable; wrap it in a PAR_TASK"
            )
        if instructions is None:
            instructions = cpu_cycles
        if mem is None:
            misses = 0.0
        elif self.trace_driven:
            misses = self._simulate_misses(mem)
        else:
            misses = analytic_llc_misses(
                mem, self.machine.llc_bytes, self.machine.line_size
            )
        base = cpu_cycles + misses * self.machine.base_miss_stall
        measured = base * self._serial_slowdown(base, misses)

        kind = NodeKind.L if self._current_lock is not None else NodeKind.U
        leaf = self._open_leaf
        if leaf is None or leaf.kind is not kind or leaf.lock_id != self._current_lock:
            self._flush_leaf()
            leaf = _OpenLeaf(kind, self._current_lock)
            self._open_leaf = leaf
        leaf.measured += measured
        leaf.cpu_cycles += cpu_cycles
        leaf.instructions += instructions
        leaf.misses += misses

        self.clock += measured
        self.counters.instructions += instructions
        self.counters.cycles += measured
        self.counters.llc_misses += misses
        return measured

    def _simulate_misses(self, mem: MemSpec) -> float:
        """Trace-driven miss count via the reference cache simulator."""
        from repro.simhw.memtrace import generate_trace

        key = (mem.pattern, mem.working_set)
        base = self._region_bases.get(key)
        if base is None:
            base = self._next_base
            self._region_bases[key] = base
            self._next_base += max(mem.working_set, self.machine.line_size) * 2
        trace = generate_trace(
            mem,
            self.machine.line_size,
            self._trace_rng,
            base_address=base,
            max_accesses=self._trace_max_accesses,
        )
        if trace.size == 0:
            return 0.0
        misses = self._llc.access_block(trace)
        full_accesses = mem.bytes_touched / self.machine.line_size
        return misses * (full_accesses / trace.size)

    def _serial_slowdown(self, base_cycles: float, misses: float) -> float:
        if misses <= 0 or base_cycles <= 0:
            return 1.0
        mem_fraction = min(1.0, misses * self.machine.base_miss_stall / base_cycles)
        seconds = self.machine.cycles_to_seconds(base_cycles)
        demand = misses * self.machine.line_size / seconds
        return self.dram.slowdowns([SegmentDemand(mem_fraction, demand)])[0]

    # ------------------------------------------------------------- annotations

    def par_sec_begin(self, name: str, pipeline: bool = False) -> None:
        """Open a parallel section.  ``pipeline=True`` marks it as a
        coarse-grained pipeline (extension, Section VII-E / [23]): its tasks
        must consist solely of :meth:`stage` regions."""
        self._check_open()
        top = self._top
        if self._current_lock is not None:
            raise AnnotationError("PAR_SEC_BEGIN inside a critical section")
        if top.kind not in (NodeKind.ROOT, NodeKind.TASK):
            raise AnnotationError(
                f"PAR_SEC_BEGIN not allowed inside a {top.kind.value} node"
            )
        self._flush_leaf()
        node = Node(NodeKind.SEC, name=name)
        node.pipeline = pipeline
        top.add(node)
        self._stack.append((node, self.clock, self.overhead_total))
        if top.kind is NodeKind.ROOT:
            # Top-level section: start hardware counter collection.
            self._open_top_section = _SectionRecord(
                name, self.counters.copy(), self.clock, self.overhead_total
            )
        self._charge_annotation()

    def par_sec_end(self, barrier: bool = True) -> None:
        """Close the current parallel section (PAR_SEC_END; ``barrier``
        mirrors the paper's implicit-barrier flag — False records nowait)."""
        self._check_open()
        node = self._close("PAR_SEC_END", NodeKind.SEC)
        node.nowait = not barrier
        if self._top.kind is NodeKind.ROOT:
            record = self._open_top_section
            if record is None:  # pragma: no cover - defensive
                raise AnnotationError("top-level section bookkeeping lost")
            delta = self.counters - record.counters_at_begin
            gross = self.clock - record.clock_at_begin
            inside_overhead = self.overhead_total - record.overhead_at_begin
            delta.cycles = gross - self.accuracy * inside_overhead
            self._section_records.setdefault(record.name, []).append(delta)
            self._open_top_section = None
        self._charge_annotation()

    def par_task_begin(self, name: str = "") -> None:
        """Open a parallel task (PAR_TASK_BEGIN)."""
        self._check_open()
        if self._top.kind is not NodeKind.SEC:
            raise AnnotationError(
                f"PAR_TASK_BEGIN outside a parallel section "
                f"(current: {self._top.kind.value})"
            )
        self._flush_leaf()
        node = Node(NodeKind.TASK, name=name)
        self._top.add(node)
        self._stack.append((node, self.clock, self.overhead_total))
        self._charge_annotation()

    def par_task_end(self) -> None:
        """Close the current parallel task (PAR_TASK_END)."""
        self._check_open()
        if self._current_lock is not None:
            raise AnnotationError("PAR_TASK_END while a lock is held")
        self._close("PAR_TASK_END", NodeKind.TASK)
        self._charge_annotation()

    def stage_begin(self, name: str = "") -> None:
        """Open a pipeline stage (extension annotation PIPE_STAGE_BEGIN)."""
        self._check_open()
        top = self._top
        if top.kind is not NodeKind.TASK:
            raise AnnotationError("STAGE_BEGIN outside a parallel task")
        parent_sec = self._stack[-2][0] if len(self._stack) >= 2 else None
        if parent_sec is None or not (
            parent_sec.kind is NodeKind.SEC and parent_sec.pipeline
        ):
            raise AnnotationError(
                "STAGE_BEGIN inside a task of a non-pipeline section"
            )
        if self._current_lock is not None:
            raise AnnotationError("STAGE_BEGIN inside a critical section")
        self._flush_leaf()
        node = Node(NodeKind.STAGE, name=name)
        top.add(node)
        self._stack.append((node, self.clock, self.overhead_total))
        self._charge_annotation()

    def stage_end(self) -> None:
        """Close the current pipeline stage."""
        self._check_open()
        if self._current_lock is not None:
            raise AnnotationError("STAGE_END while a lock is held")
        self._close("STAGE_END", NodeKind.STAGE)
        self._charge_annotation()

    def lock_begin(self, lock_id: int) -> None:
        """Enter the critical section guarded by ``lock_id`` (LOCK_BEGIN)."""
        self._check_open()
        if self._top.kind not in (NodeKind.TASK, NodeKind.STAGE):
            raise AnnotationError("LOCK_BEGIN outside a parallel task")
        if self._current_lock is not None:
            raise AnnotationError(
                f"LOCK_BEGIN({lock_id}) while lock {self._current_lock} is held "
                "(nested locks are not supported)"
            )
        self._flush_leaf()
        self._current_lock = lock_id
        self._charge_annotation()

    def lock_end(self, lock_id: int) -> None:
        """Leave the critical section guarded by ``lock_id`` (LOCK_END)."""
        self._check_open()
        if self._current_lock != lock_id:
            raise AnnotationError(
                f"LOCK_END({lock_id}) does not match held lock "
                f"{self._current_lock}"
            )
        self._flush_leaf()
        self._current_lock = None
        self._charge_annotation()

    # ------------------------------------------------------------- sugar

    @contextlib.contextmanager
    def section(
        self, name: str, barrier: bool = True, pipeline: bool = False
    ) -> Iterator[None]:
        """``with tracer.section(name):`` sugar for PAR_SEC_BEGIN/END."""
        self.par_sec_begin(name, pipeline=pipeline)
        yield
        self.par_sec_end(barrier=barrier)

    @contextlib.contextmanager
    def stage(self, name: str = "") -> Iterator[None]:
        """``with tracer.stage():`` sugar for STAGE_BEGIN/END."""
        self.stage_begin(name)
        yield
        self.stage_end()

    @contextlib.contextmanager
    def task(self, name: str = "") -> Iterator[None]:
        """``with tracer.task():`` sugar for PAR_TASK_BEGIN/END."""
        self.par_task_begin(name)
        yield
        self.par_task_end()

    @contextlib.contextmanager
    def lock(self, lock_id: int) -> Iterator[None]:
        """``with tracer.lock(id):`` sugar for LOCK_BEGIN/END."""
        self.lock_begin(lock_id)
        yield
        self.lock_end(lock_id)

    # ------------------------------------------------------------- finish

    def finish(self) -> Node:
        """Close the trace; returns the root node.

        Raises :class:`AnnotationError` if any annotation pair is still open
        (the paper's stack-matching error check).
        """
        self._check_open()
        if len(self._stack) != 1:
            open_names = [n.name or n.kind.value for n, _, _ in self._stack[1:]]
            raise AnnotationError(f"unclosed annotation pairs at end: {open_names}")
        if self._current_lock is not None:
            raise AnnotationError(f"lock {self._current_lock} still held at end")
        self._flush_leaf()
        self._fill_internal_lengths(self.root)
        self._finished = True
        return self.root

    def section_counters(self) -> dict[str, list[CounterSet]]:
        """Per top-level-section-name counter deltas, one per invocation."""
        return self._section_records

    # ------------------------------------------------------------- internals

    def _check_open(self) -> None:
        if self._finished:
            raise AnnotationError("tracer already finished")

    def _charge_annotation(self) -> None:
        oh = self.machine.tracer_overhead_cycles
        self.clock += oh
        self.overhead_total += oh
        self.annotation_events += 1

    def _flush_leaf(self) -> None:
        leaf = self._open_leaf
        if leaf is None:
            return
        self._open_leaf = None
        node = Node(
            leaf.kind,
            length=leaf.measured,
            lock_id=leaf.lock_id,
            cpu_cycles=leaf.cpu_cycles,
            instructions=leaf.instructions,
            llc_misses=leaf.misses,
        )
        self._top.add(node)

    def _close(self, what: str, expected: NodeKind) -> Node:
        node, clock_at_open, overhead_at_open = self._stack[-1]
        if node.kind is not expected:
            raise AnnotationError(
                f"{what} does not match open {node.kind.value} node "
                f"{node.name!r}"
            )
        self._flush_leaf()
        self._stack.pop()
        gross = self.clock - clock_at_open
        inside_overhead = self.overhead_total - overhead_at_open
        node.length = max(0.0, gross - self.accuracy * inside_overhead)
        return node

    def _fill_internal_lengths(self, node: Node) -> None:
        # ROOT length: total net program time.
        if node.kind is NodeKind.ROOT:
            node.length = sum(c.subtree_length() for c in node.children)
