"""The program-synthesis-based emulator (paper Section IV-E, Fig. 8).

The synthesizer predicts speedups by *running* an automatically generated
parallel program whose computations are fake delays: each U/L node becomes a
``FakeDelay(length × burden)`` that consumes time without touching memory,
locks are real mutexes, and nested sections are recursive parallel
constructs.  Because the generated program executes through the real runtime
and OS (here: the simulated ones), "all the details of schedulings and
overhead are automatically and silently modeled" — which is what fixes the
fast-forward emulator's nested-parallelism errors (Fig. 7).

The one modelling obligation the synthesizer retains is subtracting its own
tree-traversal overhead: per-node access and per-recursive-call costs are
charged while running, accumulated per worker, and the longest per-worker
total is subtracted from the gross measurement (Fig. 8 line 26).  Both the
charging and the subtraction are reproduced by the FAKE replay mode of
:class:`~repro.core.executor.ParallelExecutor`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.executor import ParallelExecutor, ReplayMode, ReplayResult
from repro.core.profiler import ProgramProfile
from repro.core.report import SpeedupEstimate
from repro.obs import get_metrics, get_tracer
from repro.runtime.overhead import DEFAULT_OVERHEADS, RuntimeOverheads
from repro.runtime.tasks import Schedule


@dataclass
class SynthesizerRun:
    """One synthesizer estimate plus its cost accounting (Section VII-D)."""

    estimate: SpeedupEstimate
    replay: ReplayResult
    #: Simulated cycles spent producing this estimate; per the paper,
    #: roughly serial_time × (1 + 1/S) plus profiling.
    emulation_cycles: float

    @property
    def slowdown_per_estimate(self) -> float:
        serial = self.replay.serial_cycles
        if serial <= 0:
            return 1.0
        return self.emulation_cycles / serial


class Synthesizer:
    """Speedup prediction by synthetic parallel execution."""

    def __init__(
        self,
        paradigm: str = "omp",
        schedule: Schedule = Schedule.static(),
        overheads: RuntimeOverheads = DEFAULT_OVERHEADS,
        tracer=None,
        handoff: str = "fifo",
        handoff_seed: int = 0,
        memoize: bool = True,
    ) -> None:
        self.paradigm = paradigm
        self.schedule = schedule
        self.overheads = overheads
        #: Lock handoff policy + seed for the FAKE replay's kernels — how
        #: ``repro.explore`` turns one SYN point into a schedule-space
        #: sample.  ``memoize=False`` forces uncached replays (envelope
        #: re-verification).
        self.handoff = handoff
        self.handoff_seed = handoff_seed
        self.memoize = memoize
        #: Forwarded to the replay executor so SYN replay events land on
        #: the caller's trace timeline.
        self.obs = tracer if tracer is not None else get_tracer()

    def predict(
        self,
        profile: ProgramProfile,
        n_threads: int,
        use_memory_model: bool = True,
    ) -> SynthesizerRun:
        """Predict the speedup at ``n_threads``.

        With ``use_memory_model=True`` the burden factors previously attached
        to the profile (see :meth:`repro.core.memmodel.MemoryModel.attach`)
        scale every fake delay in their section; otherwise β = 1 everywhere
        (the paper's 'Pred' vs 'PredM' distinction in Fig. 12).
        """
        get_metrics().inc("syn.replays")
        executor = ParallelExecutor(
            machine=profile.machine,
            paradigm=self.paradigm,
            schedule=self.schedule,
            overheads=self.overheads,
            tracer=self.obs,
            handoff=self.handoff,
            handoff_seed=self.handoff_seed,
            memoize=self.memoize,
        )
        burdens = (
            {name: profile.burden_for(name, n_threads) for name in profile.sections}
            if use_memory_model
            else {}
        )
        replay = executor.execute_profile(
            profile.tree, n_threads, mode=ReplayMode.FAKE, burdens=burdens
        )
        # Per-section speedups, aggregating repeated activations by name.
        net_by_name: dict[str, float] = {}
        for run in replay.sections:
            net_by_name[run.name] = net_by_name.get(run.name, 0.0) + run.net_cycles
        sections = {
            name: _safe_div(self._section_serial(profile, name), net)
            for name, net in net_by_name.items()
        }
        estimate = SpeedupEstimate(
            method="syn",
            paradigm=self.paradigm,
            schedule=self.schedule.label,
            n_threads=n_threads,
            speedup=replay.speedup,
            with_memory_model=use_memory_model,
            sections=sections,
        )
        emulation_cycles = sum(r.gross_cycles for r in replay.sections)
        return SynthesizerRun(
            estimate=estimate, replay=replay, emulation_cycles=emulation_cycles
        )

    @staticmethod
    def _section_serial(profile: ProgramProfile, name: str) -> float:
        # A name can label many top-level SEC nodes (e.g. a parallel inner
        # loop entered once per serial outer iteration); sum them all.
        return sum(
            sec.subtree_length()
            for sec in profile.tree.top_level_sections()
            if sec.name == name
        )


def _safe_div(num: float, den: float) -> float:
    return num / den if den else 0.0
