"""Program-tree compression (paper Section VI-B).

A program tree records every loop iteration as a separate node, so trees can
be huge (the paper reports 10 GB for NPB-IS, and 13.5 GB → 950 MB, a 93 %
reduction, for NPB-CG).  Two lossless-within-tolerance passes fix this:

1. **Run-length encoding**: consecutive sibling subtrees that are similar —
   identical structure with leaf lengths within a relative ``tolerance``
   (the paper allows 5 % variation) — collapse into one node whose
   ``repeat`` is the run length and whose leaf lengths are the
   repeat-weighted averages.
2. **Dictionary sharing**: *exactly* identical subtrees anywhere in the
   tree are replaced by references to one canonical instance (subtree
   hash-consing), so repeated call patterns cost one copy.  After the RLE
   pass has averaged near-identical runs, repeated sections usually become
   exactly identical, which is what makes this pass effective.

The total tree length is preserved exactly at any tolerance: RLE replaces
each run by its repeat-weighted average (sum-preserving) and dictionary
sharing only merges exact duplicates.

When iteration lengths are "extremely hard to compress in a lossless way"
(the paper's NPB-IS case: random per-iteration work), §VI-B allows lossy
compression "as a last resort".  :func:`compress_tree_lossy` implements it:
leaf lengths are quantised onto a relative log-scale grid of width
``lossy_tolerance`` *before* the lossless passes, so arbitrary same-shape
iterations collapse.  Each individual leaf moves by at most the tolerance;
totals drift by at most the same relative bound.
"""

from __future__ import annotations


from dataclasses import dataclass

from repro.core.tree import NODE_BYTES, Node, NodeKind, ProgramTree
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class CompressionStats:
    """Before/after sizes of a compression run."""

    logical_nodes: int
    nodes_before: int
    nodes_after: int
    #: True when leaf lengths were quantised (lossy mode).
    lossy: bool = False

    @property
    def bytes_before(self) -> int:
        return self.nodes_before * NODE_BYTES

    @property
    def bytes_after(self) -> int:
        return self.nodes_after * NODE_BYTES

    @property
    def reduction(self) -> float:
        """Fraction of node storage eliminated (the paper's '93 %')."""
        if self.nodes_before == 0:
            return 0.0
        return 1.0 - self.nodes_after / self.nodes_before


def compress_tree(tree: ProgramTree, tolerance: float = 0.05) -> CompressionStats:
    """Compress ``tree`` in place; returns statistics."""
    if tolerance < 0:
        raise ConfigurationError(f"tolerance must be >= 0, got {tolerance!r}")
    logical = tree.logical_nodes()
    before = tree.unique_nodes()
    _rle(tree.root, tolerance)
    _dictionary(tree.root)
    after = tree.unique_nodes()
    return CompressionStats(
        logical_nodes=logical, nodes_before=before, nodes_after=after
    )


def compress_tree_lossy(
    tree: ProgramTree, lossy_tolerance: float = 0.20
) -> CompressionStats:
    """Lossy compression (paper §VI-B's "last resort").

    Quantises every leaf length onto a relative grid of width
    ``lossy_tolerance`` (geometric buckets), then runs the lossless passes.
    Each leaf length moves by at most ``lossy_tolerance`` relative; work
    composition fields are scaled along so REAL replays stay consistent.
    """
    if lossy_tolerance <= 0:
        raise ConfigurationError(
            f"lossy_tolerance must be > 0, got {lossy_tolerance!r}"
        )
    logical = tree.logical_nodes()
    before = tree.unique_nodes()
    _quantize_leaves(tree.root, lossy_tolerance)
    _rle(tree.root, tolerance=0.0)
    _dictionary(tree.root)
    after = tree.unique_nodes()
    return CompressionStats(
        logical_nodes=logical,
        nodes_before=before,
        nodes_after=after,
        lossy=True,
    )


def _quantize_leaves(node: Node, tolerance: float) -> None:
    import math

    log_step = math.log1p(tolerance)

    def grid(value: float) -> float:
        if value <= 0:
            return 0.0
        return math.exp(round(math.log(value) / log_step) * log_step)

    for n in node.walk():
        if not n.is_leaf or n.length <= 0:
            continue
        length_q = grid(n.length)
        # Quantise the work-composition *rates* on the same grid so leaves
        # with near-identical profiles become exactly identical (and thus
        # dictionary-sharable), each field moving <= ~2x the tolerance.
        n.cpu_cycles = grid(n.cpu_cycles / n.length) * length_q
        n.instructions = grid(n.instructions / n.length) * length_q
        n.llc_misses = grid(n.llc_misses / n.length) * length_q
        n.length = length_q
    _refresh_internal_lengths(node)


def _refresh_internal_lengths(node: Node) -> float:
    """Recompute internal node lengths from (quantised) children so that
    structurally identical subtrees also carry identical lengths — otherwise
    stale measured interval lengths defeat dictionary sharing."""
    if node.is_leaf:
        return node.length
    per_instance = sum(
        _refresh_internal_lengths(c) * c.repeat for c in node.children
    )
    node.length = per_instance
    return per_instance


# ---------------------------------------------------------------- RLE pass


def _rle(node: Node, tolerance: float) -> None:
    for child in node.children:
        _rle(child, tolerance)
    if len(node.children) < 2:
        return
    new_children: list[Node] = []
    run: list[Node] = [node.children[0]]
    for child in node.children[1:]:
        if _mergeable(run[0], child, tolerance):
            run.append(child)
        else:
            new_children.append(_merge_run(run))
            run = [child]
    new_children.append(_merge_run(run))
    node.children = new_children


def _mergeable(a: Node, b: Node, tolerance: float) -> bool:
    """Similarity for run merging: like nodes_similar but top-level repeat
    counts may differ (they are summed by the merge)."""
    if a.kind is not b.kind or a.lock_id != b.lock_id or a.nowait != b.nowait:
        return False
    if a.pipeline != b.pipeline:
        return False
    if a.kind is NodeKind.SEC and a.name != b.name:
        return False
    if len(a.children) != len(b.children):
        return False
    if a.is_leaf and not _close(a.length, b.length, tolerance):
        return False
    from repro.core.tree import nodes_similar

    return all(
        nodes_similar(ca, cb, tolerance) for ca, cb in zip(a.children, b.children)
    )


def _close(x: float, y: float, tolerance: float) -> bool:
    hi = max(abs(x), abs(y))
    return hi == 0 or abs(x - y) <= tolerance * hi


def _merge_run(run: list[Node]) -> Node:
    if len(run) == 1:
        return run[0]
    total_repeat = sum(n.repeat for n in run)
    merged = _weighted_copy(run)
    merged.repeat = total_repeat
    return merged


def _weighted_copy(run: list[Node]) -> Node:
    """A copy of run[0] whose leaf values are repeat-weighted averages over
    the run, preserving each run's total length exactly."""
    first = run[0]
    weights = [n.repeat for n in run]
    total = sum(weights)
    node = Node(
        first.kind,
        first.name,
        length=sum(n.length * w for n, w in zip(run, weights)) / total,
        lock_id=first.lock_id,
        repeat=first.repeat,
        cpu_cycles=sum(n.cpu_cycles * w for n, w in zip(run, weights)) / total,
        instructions=sum(n.instructions * w for n, w in zip(run, weights)) / total,
        llc_misses=sum(n.llc_misses * w for n, w in zip(run, weights)) / total,
        nowait=first.nowait,
    )
    node.pipeline = first.pipeline
    for i in range(len(first.children)):
        node.children.append(_weighted_copy([n.children[i] for n in run]))
    return node


# ---------------------------------------------------------- dictionary pass


def _dictionary(root: Node) -> None:
    table: dict[tuple, Node] = {}
    sig_cache: dict[int, tuple] = {}

    def signature(node: Node) -> tuple:
        cached = sig_cache.get(id(node))
        if cached is not None:
            return cached
        sig = (
            node.kind.value,
            # Section names carry identity (burden factors and per-section
            # reports key on them); merging same-shape sections of different
            # names would silently rename one.
            node.name if node.kind is NodeKind.SEC else "",
            node.lock_id,
            node.nowait,
            node.pipeline,
            node.repeat,
            node.length,
            node.cpu_cycles,
            node.instructions,
            node.llc_misses,
            tuple(signature(c) for c in node.children),
        )
        sig_cache[id(node)] = sig
        return sig

    def dedup(node: Node) -> None:
        for i, child in enumerate(node.children):
            dedup(child)
            sig = signature(child)
            canonical = table.get(sig)
            if canonical is None:
                table[sig] = child
            elif canonical is not child:
                node.children[i] = canonical

    dedup(root)
