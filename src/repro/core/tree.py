"""The program tree (paper Section IV-B, Fig. 4).

Interval profiling records the dynamic execution of an annotated serial
program as a tree of five node kinds:

- ``ROOT`` — holds top-level parallel sections and top-level serial
  computation;
- ``SEC`` — a parallel section (a loop or task group whose children may run
  concurrently);
- ``TASK`` — one parallel task (loop iteration); children execute
  sequentially within the task;
- ``U`` — computation outside any lock;
- ``L`` — computation inside a critical section, labelled with its lock id.

Each node carries the **measured net length** in cycles (profiling overhead
already excluded) plus — for ground-truth replay only — the work composition
(pure-CPU cycles, instructions, LLC misses).  Emulators are restricted to
``length`` and per-section counters, mirroring what the paper's tool can
actually observe; the replay fields correspond to re-running the real
computation, which is what "measure the actual parallelized code" does.

``repeat`` supports the compressed representation of Section VI-B: a node
with ``repeat = n`` stands for ``n`` consecutive identical siblings.
"""

from __future__ import annotations

import enum
from typing import Callable, Iterator, Optional

from repro.errors import ConfigurationError


class NodeKind(enum.Enum):
    """The five node kinds of a program tree (paper Fig. 4) + STAGE."""

    ROOT = "root"
    SEC = "sec"
    TASK = "task"
    U = "U"
    L = "L"
    #: Pipeline stage (extension, paper Section VII-E / [23]): tasks of a
    #: pipeline section consist of consecutive STAGE nodes; stage *s* of
    #: task *j* must follow stage *s* of task *j−1*.
    STAGE = "stage"


#: Approximate per-node memory cost used for compression reporting, matching
#: the order of magnitude of the paper's C++ node records (Section VI-B).
NODE_BYTES = 96


class Node:
    """One node of a program tree."""

    __slots__ = (
        "kind",
        "name",
        "length",
        "children",
        "lock_id",
        "repeat",
        "cpu_cycles",
        "instructions",
        "llc_misses",
        "nowait",
        "pipeline",
    )

    def __init__(
        self,
        kind: NodeKind,
        name: str = "",
        length: float = 0.0,
        lock_id: Optional[int] = None,
        repeat: int = 1,
        cpu_cycles: float = 0.0,
        instructions: float = 0.0,
        llc_misses: float = 0.0,
        nowait: bool = False,
    ) -> None:
        if length < 0:
            raise ConfigurationError(f"node length must be >= 0, got {length!r}")
        if repeat < 1:
            raise ConfigurationError(f"repeat must be >= 1, got {repeat}")
        if kind is NodeKind.L and lock_id is None:
            raise ConfigurationError("L nodes require a lock_id")
        if kind is not NodeKind.L and lock_id is not None:
            raise ConfigurationError(f"{kind} nodes must not carry a lock_id")
        self.kind = kind
        self.name = name
        #: Measured net cycles of ONE instance (excluding repeats).
        self.length = length
        self.children: list[Node] = []
        self.lock_id = lock_id
        self.repeat = repeat
        #: Ground-truth work composition of one instance (leaves only).
        self.cpu_cycles = cpu_cycles
        self.instructions = instructions
        self.llc_misses = llc_misses
        #: SEC only: True if the section's implicit end barrier is waived.
        self.nowait = nowait
        #: SEC only: True if this section is a pipeline (tasks are ordered
        #: streams of STAGE nodes with cross-task stage serialisation).
        self.pipeline = False

    # -- structure -----------------------------------------------------------

    @property
    def is_leaf(self) -> bool:
        return self.kind in (NodeKind.U, NodeKind.L)

    def add(self, child: "Node") -> "Node":
        """Append ``child`` and return it (builder sugar)."""
        self.children.append(child)
        return child

    def walk(self) -> Iterator["Node"]:
        """Depth-first iteration over *unique* nodes (repeats not expanded)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def subtree_length(self) -> float:
        """Total serial cycles of this subtree, expanding repeats."""
        if self.is_leaf:
            return self.length * self.repeat
        return self.repeat * sum(c.subtree_length() for c in self.children)

    def logical_nodes(self) -> int:
        """Node count with repeats expanded (pre-compression size)."""
        own = 1
        if self.is_leaf:
            return self.repeat
        return self.repeat * (own + sum(c.logical_nodes() for c in self.children))

    def unique_nodes(self) -> int:
        """Distinct node objects reachable (post-compression size)."""
        seen: set[int] = set()
        count = 0
        stack = [self]
        while stack:
            node = stack.pop()
            if id(node) in seen:
                continue
            seen.add(id(node))
            count += 1
            stack.extend(node.children)
        return count

    def copy_shallow(self) -> "Node":
        """A copy of this node sharing no children list (children refs kept)."""
        n = Node(
            self.kind,
            self.name,
            self.length,
            self.lock_id,
            self.repeat,
            self.cpu_cycles,
            self.instructions,
            self.llc_misses,
            self.nowait,
        )
        n.pipeline = self.pipeline
        n.children = list(self.children)
        return n

    def validate(self) -> None:
        """Check structural invariants; raises :class:`ConfigurationError`.

        - ROOT children are SEC or U;
        - SEC children are TASK;
        - TASK children are U, L, or SEC;
        - leaves have no children.
        """
        allowed: dict[NodeKind, tuple[NodeKind, ...]] = {
            NodeKind.ROOT: (NodeKind.SEC, NodeKind.U),
            NodeKind.SEC: (NodeKind.TASK,),
            NodeKind.TASK: (NodeKind.U, NodeKind.L, NodeKind.SEC, NodeKind.STAGE),
            NodeKind.STAGE: (NodeKind.U, NodeKind.L),
            NodeKind.U: (),
            NodeKind.L: (),
        }
        for node in self.walk():
            kinds = allowed[node.kind]
            for child in node.children:
                if child.kind not in kinds:
                    raise ConfigurationError(
                        f"{node.kind.value} node {node.name!r} may not contain "
                        f"{child.kind.value} child {child.name!r}"
                    )
            if node.is_leaf and node.children:
                raise ConfigurationError(
                    f"leaf node {node.name!r} has children"
                )
            if node.kind is NodeKind.SEC and node.pipeline:
                stage_counts = {
                    sum(c.repeat for c in t.children if c.kind is NodeKind.STAGE)
                    for t in node.children
                }
                mixed = any(
                    c.kind is not NodeKind.STAGE
                    for t in node.children
                    for c in t.children
                )
                if mixed:
                    raise ConfigurationError(
                        f"pipeline section {node.name!r} tasks must contain "
                        "only STAGE nodes"
                    )
                if len(stage_counts) > 1:
                    raise ConfigurationError(
                        f"pipeline section {node.name!r} tasks disagree on "
                        f"stage count: {sorted(stage_counts)}"
                    )

    def pretty(self, indent: int = 0, max_depth: int = 12) -> str:
        """Human-readable rendering in the style of the paper's Fig. 4."""
        pad = "  " * indent
        label = self.kind.value if self.kind is not NodeKind.SEC else "Sec"
        rep = f" x{self.repeat}" if self.repeat > 1 else ""
        lock = f" lock={self.lock_id}" if self.lock_id is not None else ""
        name = f" {self.name!r}" if self.name else ""
        line = f"{pad}{label}{name}{lock} len={self.length:.0f}{rep}"
        if indent >= max_depth or not self.children:
            more = " ..." if self.children else ""
            return line + more
        return "\n".join(
            [line] + [c.pretty(indent + 1, max_depth) for c in self.children]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Node({self.kind.value}, {self.name!r}, len={self.length:.0f}, "
            f"children={len(self.children)}, repeat={self.repeat})"
        )


class ProgramTree:
    """The root of a recorded program plus derived whole-program metrics."""

    def __init__(self, root: Node) -> None:
        if root.kind is not NodeKind.ROOT:
            raise ConfigurationError("ProgramTree root must be a ROOT node")
        root.validate()
        self.root = root

    # -- structural queries -------------------------------------------------

    def top_level_sections(self) -> list[Node]:
        """SEC nodes directly under the root, in program order."""
        return [c for c in self.root.children if c.kind is NodeKind.SEC]

    def top_level_serial(self) -> list[Node]:
        """Serial U nodes directly under the root."""
        return [c for c in self.root.children if c.kind is NodeKind.U]

    def serial_cycles(self) -> float:
        """Total serial execution time recorded for the program."""
        return sum(c.subtree_length() * 1 for c in self.root.children)

    def section_cycles(self) -> float:
        """Total serial time spent inside parallel sections."""
        return sum(s.subtree_length() for s in self.top_level_sections())

    def serial_fraction(self) -> float:
        """Fraction of time outside any parallel section (Amdahl's s)."""
        total = self.serial_cycles()
        if total <= 0:
            return 0.0
        return 1.0 - self.section_cycles() / total

    def logical_nodes(self) -> int:
        """Node count with compression repeats expanded."""
        return self.root.logical_nodes()

    def unique_nodes(self) -> int:
        """Distinct stored node objects (post-compression size)."""
        return self.root.unique_nodes()

    def estimated_bytes(self, compressed: bool = True) -> int:
        """Approximate memory footprint of the stored tree."""
        n = self.unique_nodes() if compressed else self.logical_nodes()
        return n * NODE_BYTES

    def max_depth(self) -> int:
        """Depth of the deepest chain, counting the root."""
        def depth(node: Node) -> int:
            if not node.children:
                return 1
            return 1 + max(depth(c) for c in node.children)

        return depth(self.root)

    def map_leaves(self, fn: Callable[[Node], None]) -> None:
        """Apply ``fn`` to every unique leaf (used to apply burden factors)."""
        for node in self.root.walk():
            if node.is_leaf:
                fn(node)

    def pretty(self, max_depth: int = 12) -> str:
        """Fig. 4-style rendering of the whole tree."""
        return self.root.pretty(max_depth=max_depth)


def group_nowait_chains(children: list[Node]) -> list:
    """Group consecutive top-level SEC nodes joined by ``nowait`` into
    chains (lists of SEC nodes) to be executed by a single OpenMP team.

    Chainable nodes are plain sections executed once (``repeat == 1``, not
    pipelines); everything else passes through unchanged.  The returned list
    mixes :class:`Node` items and ``list[Node]`` chains.
    """

    def chainable(node: Node) -> bool:
        return node.kind is NodeKind.SEC and not node.pipeline and node.repeat == 1

    out: list = []
    i = 0
    while i < len(children):
        node = children[i]
        if chainable(node) and node.nowait and i + 1 < len(children):
            chain = [node]
            j = i + 1
            while j < len(children) and chainable(children[j]) and chain[-1].nowait:
                chain.append(children[j])
                j += 1
            if len(chain) > 1:
                out.append(chain)
                i = j
                continue
        out.append(node)
        i += 1
    return out


# -- similarity (used by compression and tests) ------------------------------


def nodes_similar(a: Node, b: Node, tolerance: float) -> bool:
    """Structural similarity with relative length tolerance (Section VI-B:
    "we allow 5 % of variation to be considered as the same length")."""
    if a.kind is not b.kind or a.lock_id != b.lock_id or a.nowait != b.nowait:
        return False
    if a.pipeline != b.pipeline:
        return False
    if a.kind is NodeKind.SEC and a.name != b.name:
        # Section names carry identity (burden factors key on them).
        return False
    if len(a.children) != len(b.children) or a.repeat != b.repeat:
        return False
    if a.is_leaf:
        if not _lengths_close(a.length, b.length, tolerance):
            return False
    return all(
        nodes_similar(ca, cb, tolerance) for ca, cb in zip(a.children, b.children)
    )


def _lengths_close(x: float, y: float, tolerance: float) -> bool:
    hi = max(abs(x), abs(y))
    if hi == 0:
        return True
    return abs(x - y) <= tolerance * hi
