"""Interval + memory profiling producing a :class:`ProgramProfile`.

This is step 2 of the paper's workflow (Fig. 3): run the annotated serial
program once under the tracer, collect the program tree and per-top-level-
section hardware counters, optionally compress the tree, and package the
result for the emulators and the memory model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.annotations import AnnotationProgram, Tracer
from repro.core.compress import CompressionStats, compress_tree
from repro.core.tree import ProgramTree
from repro.simhw.counters import CounterSet
from repro.simhw.machine import MachineConfig


@dataclass
class SectionCounters:
    """Aggregated hardware counters for one top-level section *name*.

    A section that executes many times (e.g. the parallel inner loop of LU,
    entered once per outer iteration) contributes one counter delta per
    invocation; the memory model uses the aggregate — "if a top-level
    parallel section is executed multiple times, we take an average"
    (Section V).
    """

    name: str
    total: CounterSet
    invocations: int

    @property
    def mpi(self) -> float:
        return self.total.mpi

    def traffic_mbs(self, machine: MachineConfig) -> float:
        """δ — the section's aggregate serial DRAM traffic in MB/s."""
        return self.total.traffic_mbs(machine)


@dataclass
class ProfileStats:
    """Cost accounting for the profiling run itself (Section VII-D)."""

    net_program_cycles: float
    gross_tracer_cycles: float
    annotation_events: int

    @property
    def slowdown(self) -> float:
        """Profiling slowdown factor versus the un-instrumented serial run."""
        if self.net_program_cycles <= 0:
            return 1.0
        return self.gross_tracer_cycles / self.net_program_cycles


@dataclass
class ProgramProfile:
    """Everything the emulators and memory model need about one program."""

    tree: ProgramTree
    sections: dict[str, SectionCounters]
    machine: MachineConfig
    stats: ProfileStats
    compression: Optional[CompressionStats] = None
    #: Burden factors per section name per thread count; attached by the
    #: memory model (Section V), consumed by both emulators.
    burdens: dict[str, dict[int, float]] = field(default_factory=dict)

    def serial_cycles(self) -> float:
        """Net serial execution time of the whole program (cycles)."""
        return self.tree.serial_cycles()

    def burden_for(self, section_name: str, n_threads: int) -> float:
        """β for a section at a thread count; 1.0 when no model is attached."""
        table = self.burdens.get(section_name)
        if not table:
            return 1.0
        if n_threads in table:
            return table[n_threads]
        # Interpolate between the nearest calibrated thread counts.
        keys = sorted(table)
        if n_threads <= keys[0]:
            return table[keys[0]]
        if n_threads >= keys[-1]:
            return table[keys[-1]]
        lo = max(k for k in keys if k <= n_threads)
        hi = min(k for k in keys if k >= n_threads)
        if lo == hi:
            return table[lo]
        w = (n_threads - lo) / (hi - lo)
        return table[lo] * (1 - w) + table[hi] * w


class IntervalProfiler:
    """Profiles an annotated serial program on a given machine."""

    def __init__(
        self,
        machine: MachineConfig,
        compress: bool = True,
        tolerance: float = 0.05,
        overhead_subtraction_accuracy: float = 1.0,
        trace_driven: bool = False,
        trace_seed: int = 0,
    ) -> None:
        self.machine = machine
        self.compress = compress
        self.tolerance = tolerance
        self.accuracy = overhead_subtraction_accuracy
        self.trace_driven = trace_driven
        self.trace_seed = trace_seed

    def profile(self, program: AnnotationProgram) -> ProgramProfile:
        """Run ``program`` under a fresh tracer and build its profile."""
        tracer = Tracer(
            self.machine,
            overhead_subtraction_accuracy=self.accuracy,
            trace_driven=self.trace_driven,
            trace_seed=self.trace_seed,
        )
        program(tracer)
        root = tracer.finish()
        tree = ProgramTree(root)

        stats = ProfileStats(
            net_program_cycles=tree.serial_cycles(),
            gross_tracer_cycles=tracer.clock,
            annotation_events=tracer.annotation_events,
        )

        compression: Optional[CompressionStats] = None
        if self.compress:
            compression = compress_tree(tree, tolerance=self.tolerance)

        sections: dict[str, SectionCounters] = {}
        for name, deltas in tracer.section_counters().items():
            total = CounterSet()
            for d in deltas:
                total.add(d)
            sections[name] = SectionCounters(
                name=name, total=total, invocations=len(deltas)
            )

        return ProgramProfile(
            tree=tree,
            sections=sections,
            machine=self.machine,
            stats=stats,
            compression=compression,
        )
