"""Result dataclasses and table formatting for speedup predictions."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass(frozen=True)
class SpeedupEstimate:
    """One predicted (or measured) speedup data point."""

    method: str  # "ff" | "syn" | "real" | "suit" | "kismet" | "amdahl"
    paradigm: str  # "omp" | "cilk"
    schedule: str  # e.g. "static,1"
    n_threads: int
    speedup: float
    with_memory_model: bool = False
    #: Per top-level-section speedups, when the method provides them.
    sections: dict[str, float] = field(default_factory=dict)

    @property
    def key(self) -> tuple:
        return (self.method, self.paradigm, self.schedule, self.n_threads,
                self.with_memory_model)


@dataclass(frozen=True)
class SpeedupEnvelope:
    """A min/median/max speedup band over explored lock interleavings.

    Produced by :class:`repro.explore.Explorer`: one grid point evaluated
    under several lock-handoff variants (fifo, lifo, seeded-random draws,
    adversarial) collapses into this band.  ``samples`` keeps every
    (variant label, speedup) pair in grid order, so the extremes can be
    re-verified by replaying exactly the variant that produced them.
    """

    method: str  # "syn" | "real"
    paradigm: str
    schedule: str
    n_threads: int
    lo: float
    median: float
    hi: float
    samples: tuple[tuple[str, float], ...]

    @classmethod
    def from_samples(
        cls,
        method: str,
        paradigm: str,
        schedule: str,
        n_threads: int,
        samples: Iterable[tuple[str, float]],
    ) -> "SpeedupEnvelope":
        """Build an envelope from (variant label, speedup) pairs."""
        samples = tuple(samples)
        if not samples:
            raise ValueError("an envelope needs at least one sample")
        values = [s for _, s in samples]
        return cls(
            method=method,
            paradigm=paradigm,
            schedule=schedule,
            n_threads=n_threads,
            lo=min(values),
            median=statistics.median(values),
            hi=max(values),
            samples=samples,
        )

    @property
    def n_samples(self) -> int:
        return len(self.samples)

    @property
    def width(self) -> float:
        """Relative band width (hi − lo) / median — the uncertainty the
        single FIFO point estimate used to hide."""
        return (self.hi - self.lo) / self.median if self.median > 0 else 0.0

    @property
    def lo_variant(self) -> str:
        """Label of the variant that achieved :attr:`lo` (first on ties)."""
        return min(self.samples, key=lambda s: (s[1], self.samples.index(s)))[0]

    @property
    def hi_variant(self) -> str:
        """Label of the variant that achieved :attr:`hi` (first on ties)."""
        return max(self.samples, key=lambda s: (s[1], -self.samples.index(s)))[0]

    def contains(self, speedup: float, slack: float = 0.0) -> bool:
        """True if ``speedup`` lies within [lo, hi], widened by a relative
        ``slack`` on both ends (what interleavings cannot explain)."""
        return self.lo * (1.0 - slack) <= speedup <= self.hi * (1.0 + slack)

    def __str__(self) -> str:
        return (
            f"{self.method} {self.paradigm} {self.schedule} "
            f"t={self.n_threads}: [{self.lo:.2f}, {self.hi:.2f}] "
            f"median {self.median:.2f} ({self.n_samples} interleavings)"
        )


class SpeedupReport:
    """A collection of estimates with lookup and rendering helpers."""

    def __init__(self, estimates: Optional[Iterable[SpeedupEstimate]] = None) -> None:
        self.estimates: list[SpeedupEstimate] = list(estimates or [])
        #: Structured per-grid-point failures attached by batch sweeps run
        #: with ``on_error="collect"`` (:class:`repro.core.batch.SweepTaskFailure`).
        self.failures: list = []
        #: Schedule-space envelopes attached by :class:`repro.explore.Explorer`
        #: (one per explored grid point; empty for plain predictions).
        self.envelopes: list[SpeedupEnvelope] = []

    def add(self, estimate: SpeedupEstimate) -> None:
        """Append one estimate."""
        self.estimates.append(estimate)

    def extend(self, estimates: Iterable[SpeedupEstimate]) -> None:
        """Append many estimates."""
        self.estimates.extend(estimates)

    def get(
        self,
        method: Optional[str] = None,
        schedule: Optional[str] = None,
        n_threads: Optional[int] = None,
        with_memory_model: Optional[bool] = None,
        paradigm: Optional[str] = None,
    ) -> list[SpeedupEstimate]:
        """Estimates matching every given filter (None = wildcard)."""
        out = self.estimates
        if method is not None:
            out = [e for e in out if e.method == method]
        if schedule is not None:
            out = [e for e in out if e.schedule == schedule]
        if n_threads is not None:
            out = [e for e in out if e.n_threads == n_threads]
        if with_memory_model is not None:
            out = [e for e in out if e.with_memory_model == with_memory_model]
        if paradigm is not None:
            out = [e for e in out if e.paradigm == paradigm]
        return out

    def one(self, **kwargs) -> SpeedupEstimate:
        """The single estimate matching the filters; KeyError otherwise."""
        matches = self.get(**kwargs)
        if len(matches) != 1:
            raise KeyError(
                f"expected exactly one estimate for {kwargs}, got {len(matches)}"
            )
        return matches[0]

    def speedup(self, **kwargs) -> float:
        """Shortcut: the speedup of the single matching estimate."""
        return self.one(**kwargs).speedup

    def add_envelope(self, envelope: SpeedupEnvelope) -> None:
        """Append one schedule-space envelope."""
        self.envelopes.append(envelope)

    def envelope(
        self,
        method: Optional[str] = None,
        schedule: Optional[str] = None,
        n_threads: Optional[int] = None,
        paradigm: Optional[str] = None,
    ) -> SpeedupEnvelope:
        """The single envelope matching the filters; KeyError otherwise."""
        out = self.envelopes
        if method is not None:
            out = [e for e in out if e.method == method]
        if schedule is not None:
            out = [e for e in out if e.schedule == schedule]
        if n_threads is not None:
            out = [e for e in out if e.n_threads == n_threads]
        if paradigm is not None:
            out = [e for e in out if e.paradigm == paradigm]
        if len(out) != 1:
            raise KeyError(
                f"expected exactly one envelope for "
                f"{dict(method=method, schedule=schedule, n_threads=n_threads, paradigm=paradigm)}, "
                f"got {len(out)}"
            )
        return out[0]

    def thread_counts(self) -> list[int]:
        """Distinct thread counts present (estimates or envelopes), sorted."""
        return sorted(
            {e.n_threads for e in self.estimates}
            | {e.n_threads for e in self.envelopes}
        )

    def to_table(self) -> str:
        """Render as a fixed-width table, one row per (method, schedule,
        memory-model flag), one column per thread count — the layout of the
        paper's Fig. 12 panels."""
        threads = self.thread_counts()
        rows: dict[tuple, dict[int, float]] = {}
        for e in self.estimates:
            label = e.method + ("+mem" if e.with_memory_model else "")
            row_key = (label, e.paradigm, e.schedule)
            rows.setdefault(row_key, {})[e.n_threads] = e.speedup
        header = f"{'method':<10} {'paradigm':<8} {'schedule':<10} " + " ".join(
            f"{t:>2}-core" for t in threads
        )
        lines = [header, "-" * len(header)]
        for (label, paradigm, schedule), by_t in sorted(rows.items()):
            cells = " ".join(
                f"{by_t[t]:>7.2f}" if t in by_t else f"{'-':>7}" for t in threads
            )
            lines.append(f"{label:<10} {paradigm:<8} {schedule:<10} {cells}")
        for env in self.envelopes:
            lines.append(f"envelope   {env}")
        if self.failures:
            lines.append(
                f"({len(self.failures)} grid point(s) failed; "
                "see report.failures)"
            )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table (same layout as
        :meth:`to_table`), for reports written to disk."""
        threads = self.thread_counts()
        rows: dict[tuple, dict[int, float]] = {}
        for e in self.estimates:
            label = e.method + ("+mem" if e.with_memory_model else "")
            rows.setdefault((label, e.paradigm, e.schedule), {})[e.n_threads] = (
                e.speedup
            )
        header = (
            "| method | paradigm | schedule | "
            + " | ".join(f"{t}-core" for t in threads)
            + " |"
        )
        sep = "|" + "---|" * (3 + len(threads))
        lines = [header, sep]
        for (label, paradigm, schedule), by_t in sorted(rows.items()):
            cells = " | ".join(
                f"{by_t[t]:.2f}" if t in by_t else "-" for t in threads
            )
            lines.append(f"| {label} | {paradigm} | {schedule} | {cells} |")
        bands: dict[tuple, dict[int, SpeedupEnvelope]] = {}
        for env in self.envelopes:
            label = env.method + "∈"
            bands.setdefault((label, env.paradigm, env.schedule), {})[
                env.n_threads
            ] = env
        for (label, paradigm, schedule), by_t in sorted(bands.items()):
            cells = " | ".join(
                f"[{by_t[t].lo:.2f}, {by_t[t].hi:.2f}]" if t in by_t else "-"
                for t in threads
            )
            lines.append(f"| {label} | {paradigm} | {schedule} | {cells} |")
        if self.failures:
            lines.append("")
            lines.append(
                f"*({len(self.failures)} grid point(s) failed; "
                "see report.failures)*"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.estimates)

    def __iter__(self):
        return iter(self.estimates)


def error_ratio(predicted: float, real: float) -> float:
    """Relative prediction error |pred − real| / real (the paper's metric)."""
    if real == 0:
        return 0.0 if predicted == 0 else float("inf")
    return abs(predicted - real) / abs(real)
