"""Result dataclasses and table formatting for speedup predictions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass(frozen=True)
class SpeedupEstimate:
    """One predicted (or measured) speedup data point."""

    method: str  # "ff" | "syn" | "real" | "suit" | "kismet" | "amdahl"
    paradigm: str  # "omp" | "cilk"
    schedule: str  # e.g. "static,1"
    n_threads: int
    speedup: float
    with_memory_model: bool = False
    #: Per top-level-section speedups, when the method provides them.
    sections: dict[str, float] = field(default_factory=dict)

    @property
    def key(self) -> tuple:
        return (self.method, self.paradigm, self.schedule, self.n_threads,
                self.with_memory_model)


class SpeedupReport:
    """A collection of estimates with lookup and rendering helpers."""

    def __init__(self, estimates: Optional[Iterable[SpeedupEstimate]] = None) -> None:
        self.estimates: list[SpeedupEstimate] = list(estimates or [])
        #: Structured per-grid-point failures attached by batch sweeps run
        #: with ``on_error="collect"`` (:class:`repro.core.batch.SweepTaskFailure`).
        self.failures: list = []

    def add(self, estimate: SpeedupEstimate) -> None:
        """Append one estimate."""
        self.estimates.append(estimate)

    def extend(self, estimates: Iterable[SpeedupEstimate]) -> None:
        """Append many estimates."""
        self.estimates.extend(estimates)

    def get(
        self,
        method: Optional[str] = None,
        schedule: Optional[str] = None,
        n_threads: Optional[int] = None,
        with_memory_model: Optional[bool] = None,
        paradigm: Optional[str] = None,
    ) -> list[SpeedupEstimate]:
        """Estimates matching every given filter (None = wildcard)."""
        out = self.estimates
        if method is not None:
            out = [e for e in out if e.method == method]
        if schedule is not None:
            out = [e for e in out if e.schedule == schedule]
        if n_threads is not None:
            out = [e for e in out if e.n_threads == n_threads]
        if with_memory_model is not None:
            out = [e for e in out if e.with_memory_model == with_memory_model]
        if paradigm is not None:
            out = [e for e in out if e.paradigm == paradigm]
        return out

    def one(self, **kwargs) -> SpeedupEstimate:
        """The single estimate matching the filters; KeyError otherwise."""
        matches = self.get(**kwargs)
        if len(matches) != 1:
            raise KeyError(
                f"expected exactly one estimate for {kwargs}, got {len(matches)}"
            )
        return matches[0]

    def speedup(self, **kwargs) -> float:
        """Shortcut: the speedup of the single matching estimate."""
        return self.one(**kwargs).speedup

    def thread_counts(self) -> list[int]:
        """Distinct thread counts present, sorted."""
        return sorted({e.n_threads for e in self.estimates})

    def to_table(self) -> str:
        """Render as a fixed-width table, one row per (method, schedule,
        memory-model flag), one column per thread count — the layout of the
        paper's Fig. 12 panels."""
        threads = self.thread_counts()
        rows: dict[tuple, dict[int, float]] = {}
        for e in self.estimates:
            label = e.method + ("+mem" if e.with_memory_model else "")
            row_key = (label, e.paradigm, e.schedule)
            rows.setdefault(row_key, {})[e.n_threads] = e.speedup
        header = f"{'method':<10} {'paradigm':<8} {'schedule':<10} " + " ".join(
            f"{t:>2}-core" for t in threads
        )
        lines = [header, "-" * len(header)]
        for (label, paradigm, schedule), by_t in sorted(rows.items()):
            cells = " ".join(
                f"{by_t[t]:>7.2f}" if t in by_t else f"{'-':>7}" for t in threads
            )
            lines.append(f"{label:<10} {paradigm:<8} {schedule:<10} {cells}")
        if self.failures:
            lines.append(
                f"({len(self.failures)} grid point(s) failed; "
                "see report.failures)"
            )
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """Render as a GitHub-flavoured markdown table (same layout as
        :meth:`to_table`), for reports written to disk."""
        threads = self.thread_counts()
        rows: dict[tuple, dict[int, float]] = {}
        for e in self.estimates:
            label = e.method + ("+mem" if e.with_memory_model else "")
            rows.setdefault((label, e.paradigm, e.schedule), {})[e.n_threads] = (
                e.speedup
            )
        header = (
            "| method | paradigm | schedule | "
            + " | ".join(f"{t}-core" for t in threads)
            + " |"
        )
        sep = "|" + "---|" * (3 + len(threads))
        lines = [header, sep]
        for (label, paradigm, schedule), by_t in sorted(rows.items()):
            cells = " | ".join(
                f"{by_t[t]:.2f}" if t in by_t else "-" for t in threads
            )
            lines.append(f"| {label} | {paradigm} | {schedule} | {cells} |")
        if self.failures:
            lines.append("")
            lines.append(
                f"*({len(self.failures)} grid point(s) failed; "
                "see report.failures)*"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.estimates)

    def __iter__(self):
        return iter(self.estimates)


def error_ratio(predicted: float, real: float) -> float:
    """Relative prediction error |pred − real| / real (the paper's metric)."""
    if real == 0:
        return 0.0 if predicted == 0 else float("inf")
    return abs(predicted - real) / abs(real)
