"""The fast-forwarding emulator (paper Section IV-C, Figs. 5-7).

The FF predicts parallel execution time *analytically*: it traverses the
program tree, tracking per-CPU availability and fast-forwarding a pseudo
clock with a priority heap that "serializes and prioritizes competing tasks".
It models:

- OpenMP loop schedules (``static``, ``static,c``, ``dynamic,c``) with the
  same chunk-assignment semantics as the simulated runtime;
- parallel overheads (region fork/join, chunk dispatch, lock entry/exit)
  using the same :class:`~repro.runtime.overhead.RuntimeOverheads` constants
  the simulated runtime pays;
- critical sections via per-lock availability times (greedy heap-order
  serialization);
- nested sections via a *separate scheduling context*: nested task *j* is
  mapped round-robin to CPU ``(parent_cpu + j) mod t`` **non-preemptively**
  and a whole U/L node is assigned to a logical processor at once.

That last rule is deliberately naive: it reproduces the paper's Section IV-D
finding that the FF (like Suitability) cannot model OS preemption and
oversubscription, mispredicting the Fig. 7 two-level nested loop as 1.5×
where the real (and synthesizer-predicted) speedup is 2.0×.

Burden factors multiply every terminal node length in the section (Fig. 4).
"""

from __future__ import annotations

import heapq
from bisect import bisect_right
from collections import deque
from dataclasses import dataclass
from typing import Deque, Mapping, Optional

from repro.core.tree import Node, NodeKind, ProgramTree
from repro.errors import EmulationError
from repro.obs import get_metrics, get_tracer
from repro.runtime.overhead import DEFAULT_OVERHEADS, RuntimeOverheads
from repro.runtime.tasks import Schedule, ScheduleKind
from repro.validate.invariants import get_checker


@dataclass
class FFSectionResult:
    """Predicted timing of one top-level section (all activations)."""

    name: str
    parallel_cycles: float
    serial_cycles: float

    @property
    def speedup(self) -> float:
        if self.parallel_cycles <= 0:
            return 1.0
        return self.serial_cycles / self.parallel_cycles


class _SectionInstance:
    """One dynamic activation of a SEC node during emulation."""

    __slots__ = ("sec", "pending", "end_time", "parent", "reps_left", "burden", "on_complete")

    def __init__(
        self,
        sec: Node,
        pending: int,
        parent: Optional["_Walker"],
        reps_left: int,
        burden: float = 1.0,
    ) -> None:
        self.sec = sec
        self.pending = pending
        self.end_time = 0.0
        self.parent = parent
        #: Further sequential activations of this (compressed) SEC node.
        self.reps_left = reps_left
        #: Burden factor applied to terminal nodes of this activation.
        self.burden = burden
        #: Callback fired when the activation completes (nowait chains).
        self.on_complete = None


class _Walker:
    """Executes a run of logical tasks sequentially on one CPU."""

    __slots__ = ("instance", "cpu", "time", "tasks", "task_idx", "node_idx")

    def __init__(
        self, instance: _SectionInstance, cpu: int, time: float, tasks: list[Node]
    ) -> None:
        self.instance = instance
        self.cpu = cpu
        self.time = time
        self.tasks = tasks
        self.task_idx = 0
        self.node_idx = 0


class FastForwardEmulator:
    """Analytical speedup prediction over an abstract t-CPU machine."""

    def __init__(
        self,
        overheads: RuntimeOverheads = DEFAULT_OVERHEADS,
        max_steps: int = 50_000_000,
        fast_path: bool = True,
        tracer=None,
    ) -> None:
        self.overheads = overheads
        self.max_steps = max_steps
        #: When True, sections made of pure-U homogeneous task runs under a
        #: static-family schedule are predicted in closed form per compressed
        #: run instead of per logical iteration (see :meth:`_closed_form`).
        #: The fast path agrees with the heap walk up to float summation
        #: order (<= 1e-9 relative); set False to force the exact walk.
        self.fast_path = fast_path
        #: Structured event tracer (defaults to the process-global one).
        self.obs = tracer if tracer is not None else get_tracer()
        #: Runtime invariant checker: per-section FF speedups are bounded
        #: by the abstract machine's CPU count while enabled.
        self.inv = get_checker()
        #: Tree-node visits performed by the last emulate_profile call — the
        #: FF's dominant cost (the paper reports 30×+ slowdowns on FFT from
        #: exactly this traversal plus heap pressure).
        self.nodes_visited = 0
        #: Sections predicted in closed form / forced onto the exact walk
        #: since the last :meth:`reset_counters`.  Instances are shared
        #: across grid points (the facade and the batch engine hoist one
        #: emulator per worker), so these are *per-emulation* scratch
        #: counters — :meth:`emulate_profile` resets them on entry.  The
        #: cumulative, cross-run totals live on the process-wide metrics
        #: registry (``ff.fast_path.hits`` / ``ff.fast_path.misses``).
        self.fast_path_hits = 0
        self.fast_path_misses = 0

    # ----------------------------------------------------------------- API

    def reset_counters(self) -> None:
        """Zero the per-emulation counters (``nodes_visited``, fast-path
        hit/miss).  Called automatically by :meth:`emulate_profile`; callers
        driving :meth:`emulate_section` directly should call it between
        logical runs so counts never leak across workloads."""
        self.nodes_visited = 0
        self.fast_path_hits = 0
        self.fast_path_misses = 0

    def emulate_profile(
        self,
        tree: ProgramTree,
        n_threads: int,
        schedule: Schedule,
        burdens: Optional[Mapping[str, float]] = None,
    ) -> tuple[float, list[FFSectionResult]]:
        """Predicted whole-program parallel time plus per-section results."""
        burdens = burdens or {}
        self.reset_counters()
        total = 0.0
        results: list[FFSectionResult] = []
        # Emulation is deterministic: dictionary-shared section nodes give
        # identical results, so memoise per (node object, burden).
        cache: dict[tuple[int, float], float] = {}
        from repro.core.tree import group_nowait_chains

        traced = self.obs.enabled
        for item in group_nowait_chains(tree.root.children):
            t0 = total
            hits0, misses0 = self.fast_path_hits, self.fast_path_misses
            if isinstance(item, list):
                cycles = self.emulate_chain(
                    item, n_threads, schedule, burdens, cache=cache
                )
                total += cycles
                results.append(
                    FFSectionResult(
                        name="+".join(s.name for s in item),
                        parallel_cycles=cycles,
                        serial_cycles=sum(s.subtree_length() for s in item),
                    )
                )
            elif item.kind is NodeKind.U:
                total += item.length * item.repeat
                continue
            elif item.kind is NodeKind.SEC:
                beta = burdens.get(item.name, 1.0)
                cycles = cache.get((id(item), beta))
                if cycles is None:
                    cycles = self.emulate_section(item, n_threads, schedule, beta)
                    cache[(id(item), beta)] = cycles
                total += cycles * item.repeat
                results.append(
                    FFSectionResult(
                        name=item.name,
                        parallel_cycles=cycles * item.repeat,
                        serial_cycles=item.subtree_length(),
                    )
                )
            else:  # pragma: no cover - validated trees
                raise EmulationError(f"unexpected top-level node {item!r}")
            if self.inv.enabled:
                # The abstract machine has exactly n_threads CPUs, so no
                # section may beat them (float noise aside).
                self.inv.check_speedup(
                    "ff",
                    results[-1].speedup,
                    n_threads,
                    n_threads,
                    nested=False,
                    where=f"ff:{results[-1].name}",
                )
            if traced:
                # One span per top-level section on the predicted timeline,
                # tagged with the fast-path-vs-heap-walk decision.
                self.obs.span(
                    results[-1].name,
                    ts=t0,
                    dur=total - t0,
                    track="ff",
                    cat="ff",
                    args={
                        "fast_path": self.fast_path_hits > hits0,
                        "heap_walk": self.fast_path_misses > misses0,
                        "threads": n_threads,
                        "schedule": schedule.label,
                    },
                )
        get_metrics().inc("ff.emulations")
        get_metrics().inc("ff.nodes_visited", self.nodes_visited)
        return total, results

    def emulate_section(
        self,
        sec: Node,
        n_threads: int,
        schedule: Schedule,
        burden: float = 1.0,
    ) -> float:
        """Predicted parallel cycles for one activation of ``sec``."""
        if sec.kind is not NodeKind.SEC:
            raise EmulationError(f"emulate_section needs a SEC node, got {sec.kind}")
        if n_threads < 1:
            raise EmulationError(f"n_threads must be >= 1, got {n_threads}")
        if sec.pipeline:
            from repro.core.pipeline import ff_pipeline_cycles

            return ff_pipeline_cycles(
                sec, n_threads, burden=burden, overheads=self.overheads
            )
        if self.fast_path:
            cycles = self._closed_form(sec, n_threads, schedule, burden)
            if cycles is not None:
                self.fast_path_hits += 1
                get_metrics().inc("ff.fast_path.hits")
                return cycles
            self.fast_path_misses += 1
            get_metrics().inc("ff.fast_path.misses")
        engine = _Engine(self, n_threads, schedule, burden)
        end = engine.run(sec)
        self.nodes_visited += engine.nodes_visited
        return end

    def _closed_form(
        self, sec: Node, n_threads: int, schedule: Schedule, burden: float
    ) -> Optional[float]:
        """RLE-aware closed-form prediction, or None when inapplicable.

        Applicable when the schedule is in the static family and every task
        of ``sec`` consists purely of unlocked computation (U nodes): the
        heap walk then has no cross-walker interaction (no lock availability,
        no nested activations, no run-time chunk grabbing), so each CPU's
        finish time is simply ``fork + (#dispatches)·dispatch + owned work``.
        Owned work is summed per *compressed run* of identical tasks (one
        representative task is costed, then replicated analytically across
        the run and across threads), making the cost O(stored nodes + t)
        instead of O(logical iterations) — the §VI-B compression win carried
        through to emulation time.

        The columnar sweep backend (``repro.core.columnar``) evaluates this
        same closed form vectorized over whole sweep columns, with this
        scalar path as its parity oracle (<=1e-9 relative, property-tested);
        any change to the formulas here must be mirrored there.
        """
        if schedule.is_dynamic_family:
            return None
        runs: list[tuple[int, float]] = []  # (iterations, cycles per task)
        visits = 0
        for task in sec.children:
            dur = 0.0
            for child in task.children:
                if child.kind is not NodeKind.U:
                    return None
                dur += child.length * child.repeat
                visits += 1
            runs.append((task.repeat, dur * burden))
        self.nodes_visited += visits
        oh = self.overheads
        fork = oh.omp_fork_base + oh.omp_fork_per_thread * (n_threads - 1)
        n_iters = sum(count for count, _ in runs)
        if n_iters == 0:
            return fork + oh.omp_join_barrier
        dispatch = oh.omp_static_dispatch
        # Prefix sums over runs: iteration index -> cumulative work.
        starts = [0] * len(runs)
        prefix = [0.0] * (len(runs) + 1)
        acc = 0
        for i, (count, dur) in enumerate(runs):
            starts[i] = acc
            acc += count
            prefix[i + 1] = prefix[i] + count * dur

        def work_range(a: int, b: int) -> float:
            """Serial work of logical iterations [a, b)."""
            if b <= a:
                return 0.0
            total = 0.0
            i = bisect_right(starts, a) - 1
            while i < len(runs) and starts[i] < b:
                count, dur = runs[i]
                lo = max(a, starts[i])
                hi = min(b, starts[i] + count)
                if lo == starts[i] and hi == starts[i] + count:
                    total += prefix[i + 1] - prefix[i]
                else:
                    total += (hi - lo) * dur
                i += 1
            return total

        end = fork
        if schedule.kind is ScheduleKind.STATIC:
            # Contiguous blocks, one dispatch entry per non-empty thread.
            base, extra = divmod(n_iters, n_threads)
            start = 0
            for tid in range(n_threads):
                count = base + (1 if tid < extra else 0)
                if count == 0:
                    break
                finish = fork + dispatch + work_range(start, start + count)
                start += count
                if finish > end:
                    end = finish
        else:  # STATIC_CHUNK: chunks of c dealt round-robin.
            c = schedule.chunk
            n_chunks = -(-n_iters // c)
            period = n_threads * c

            def owned_below(x: int, tid: int) -> int:
                """|{i < x : iteration i owned by thread tid}|."""
                full, rem = divmod(x, period)
                return full * c + min(max(rem - tid * c, 0), c)

            for tid in range(min(n_threads, n_chunks)):
                q = (n_chunks - 1 - tid) // n_threads + 1
                owned = 0.0
                for i, (count, dur) in enumerate(runs):
                    a, b = starts[i], starts[i] + count
                    owned += dur * (owned_below(b, tid) - owned_below(a, tid))
                finish = fork + q * dispatch + owned
                if finish > end:
                    end = finish
        return end + oh.omp_join_barrier

    def emulate_chain(
        self,
        secs: list[Node],
        n_threads: int,
        schedule: Schedule,
        burdens: Optional[Mapping[str, float]] = None,
        cache: Optional[dict[tuple[int, float], float]] = None,
    ) -> float:
        """Predicted cycles for a ``nowait`` chain of top-level sections
        executed by one team (PAR_SEC_END(nowait) semantics, Table II).

        Supported analytically for the static schedule family, where each
        thread's chunk sequence across loops is known up front.  For
        dynamic/guided the FF falls back to barrier semantics — one of its
        documented approximations (the synthesizer handles those exactly).
        On that fallback path, ``cache`` (keyed ``(id(sec), burden)``) lets
        dictionary-shared section nodes inside the chain reuse earlier
        emulations instead of re-running them.
        """
        burdens = burdens or {}
        betas = [burdens.get(s.name, 1.0) for s in secs]
        if schedule.is_dynamic_family:
            total = 0.0
            for s, b in zip(secs, betas):
                key = (id(s), b)
                cycles = cache.get(key) if cache is not None else None
                if cycles is None:
                    cycles = self.emulate_section(s, n_threads, schedule, b)
                    if cache is not None:
                        cache[key] = cycles
                total += cycles
            return total
        engine = _Engine(self, n_threads, schedule, 1.0)
        end = engine.run_chain(secs, betas)
        self.nodes_visited += engine.nodes_visited
        return end


class _Engine:
    """One emulation run: t CPUs, per-lock availability, walker heap."""

    def __init__(
        self,
        emu: FastForwardEmulator,
        n_threads: int,
        schedule: Schedule,
        burden: float,
    ) -> None:
        self.oh = emu.overheads
        self.max_steps = emu.max_steps
        self.t = n_threads
        self.schedule = schedule
        self.burden = burden
        self.cpu_free = [0.0] * n_threads
        self.cpu_busy = [False] * n_threads
        #: FIFO of work entries per CPU: ("chunk", ready, tasks, instance)
        #: for fresh task chunks, ("walker", ready, walker) for suspended
        #: parent continuations resuming after a nested section.
        self.queues: list[Deque[tuple]] = [deque() for _ in range(n_threads)]
        self.heap: list[tuple[float, int, _Walker]] = []
        self._seq = 0
        self.nodes_visited = 0
        self.lock_free: dict[int, float] = {}
        #: Dynamic-schedule chunk cursor for the top-level section.
        self.top_chunks: Deque[list[Node]] = deque()
        self.top_instance: Optional[_SectionInstance] = None

    # -- helpers -------------------------------------------------------------

    @staticmethod
    def _expand_tasks(sec: Node) -> list[Node]:
        tasks: list[Node] = []
        for task in sec.children:
            tasks.extend([task] * task.repeat)
        return tasks

    def _push(self, walker: _Walker) -> None:
        self._seq += 1
        self.cpu_busy[walker.cpu] = True
        heapq.heappush(self.heap, (walker.time, self._seq, walker))

    def _dispatch_cost(self) -> float:
        if self.schedule.is_dynamic_family:
            return self.oh.omp_dynamic_dispatch
        return self.oh.omp_static_dispatch

    def _fork_cost(self) -> float:
        return self.oh.omp_fork_base + self.oh.omp_fork_per_thread * (self.t - 1)

    # -- main loop --------------------------------------------------------------

    def run(self, sec: Node) -> float:
        start = self._fork_cost()
        tasks = self._expand_tasks(sec)
        instance = _SectionInstance(
            sec, pending=len(tasks), parent=None, reps_left=0, burden=self.burden
        )
        instance.end_time = start
        self.top_instance = instance
        if not tasks:
            return start + self.oh.omp_join_barrier
        for cpu in range(self.t):
            self.cpu_free[cpu] = start

        if self.schedule.is_dynamic_family:
            self.top_chunks = deque(
                [tasks[i] for i in chunk]
                for chunk in self.schedule.chunks(len(tasks), self.t)
            )
        else:
            owned = self.schedule.static_assignment(len(tasks), self.t)
            chunk = (
                self.schedule.chunk
                if self.schedule.kind is ScheduleKind.STATIC_CHUNK
                else max(1, len(tasks))
            )
            for cpu in range(self.t):
                mine = [tasks[i] for i in owned[cpu]]
                # One queue entry per dispatch chunk so dispatch overheads
                # are charged at the same granularity as the runtime.
                for pos in range(0, len(mine), chunk):
                    self.queues[cpu].append(
                        ("chunk", start, mine[pos : pos + chunk], instance)
                    )
        for cpu in range(self.t):
            self._cpu_pull(cpu, start)

        steps = 0
        while self.heap:
            steps += 1
            if steps > self.max_steps:
                raise EmulationError(
                    f"fast-forward emulation exceeded {self.max_steps} steps"
                )
            _, _, walker = heapq.heappop(self.heap)
            self._advance(walker)

        if instance.pending > 0:  # pragma: no cover - defensive
            raise EmulationError("emulation ended with unfinished tasks")
        return instance.end_time + self.oh.omp_join_barrier

    def run_chain(self, secs: list[Node], burdens: list[float]) -> float:
        """Emulate a nowait chain: one team, several static worksharing
        loops.  A thread's chunks for loop *i+1* queue behind its loop-*i*
        chunks when loop *i* ends in ``nowait``; a non-nowait boundary
        releases the next loop only when the previous one fully completes."""
        start = self._fork_cost()
        for cpu in range(self.t):
            self.cpu_free[cpu] = start

        instances: list[tuple[_SectionInstance, list[Node]]] = []
        for sec, beta in zip(secs, burdens):
            tasks = self._expand_tasks(sec)
            inst = _SectionInstance(
                sec, pending=len(tasks), parent=None, reps_left=0, burden=beta
            )
            inst.end_time = start
            instances.append((inst, tasks))
        self.top_instance = instances[0][0]

        def enqueue_run(idx: int, ready: float) -> None:
            # Release loop idx and every successor joined by nowait.
            j = idx
            while j < len(instances):
                inst, tasks = instances[j]
                if not tasks:
                    inst.end_time = max(inst.end_time, ready)
                    inst.pending = 0
                else:
                    owned = self.schedule.static_assignment(len(tasks), self.t)
                    chunk = (
                        self.schedule.chunk
                        if self.schedule.kind is ScheduleKind.STATIC_CHUNK
                        else max(1, len(tasks))
                    )
                    for cpu in range(self.t):
                        mine = [tasks[i] for i in owned[cpu]]
                        for pos in range(0, len(mine), chunk):
                            self.queues[cpu].append(
                                ("chunk", ready, mine[pos : pos + chunk], inst)
                            )
                if not secs[j].nowait or j + 1 >= len(instances):
                    break
                j += 1
            for cpu in range(self.t):
                self._cpu_pull(cpu, self.cpu_free[cpu])

        # Wire barrier boundaries: when loop i (non-nowait) completes, the
        # next run of loops is released at its end + barrier cost.
        for i in range(len(instances) - 1):
            if not secs[i].nowait:
                inst = instances[i][0]

                def release(end_time: float, nxt: int = i + 1) -> None:
                    enqueue_run(nxt, end_time + self.oh.omp_join_barrier)

                inst.on_complete = release

        enqueue_run(0, start)

        steps = 0
        while self.heap:
            steps += 1
            if steps > self.max_steps:
                raise EmulationError(
                    f"fast-forward emulation exceeded {self.max_steps} steps"
                )
            _, _, walker = heapq.heappop(self.heap)
            self._advance(walker)

        for inst, _tasks in instances:
            if inst.pending > 0:  # pragma: no cover - defensive
                raise EmulationError("chain emulation ended with unfinished tasks")
        end = max(inst.end_time for inst, _ in instances)
        return end + self.oh.omp_join_barrier

    def _cpu_pull(self, cpu: int, now: float) -> None:
        """If the CPU is idle, start its next queued work or grab a chunk."""
        if self.cpu_busy[cpu]:
            return
        q = self.queues[cpu]
        if q:
            entry = q.popleft()
            if entry[0] == "walker":
                _, ready, walker = entry
                # A parent continuation resumes with no dispatch cost (it
                # never left its thread; it only waited for its children).
                walker.time = max(now, ready, self.cpu_free[cpu])
                self._push(walker)
            else:
                _, ready, chunk_tasks, owner = entry
                t0 = max(now, ready, self.cpu_free[cpu]) + self._dispatch_cost()
                self._push(_Walker(owner, cpu, t0, chunk_tasks))
            return
        if self.top_chunks:
            chunk_tasks = self.top_chunks.popleft()
            t0 = max(now, self.cpu_free[cpu]) + self._dispatch_cost()
            assert self.top_instance is not None
            self._push(_Walker(self.top_instance, cpu, t0, chunk_tasks))

    # -- walker stepping ------------------------------------------------------------

    def _advance(self, walker: _Walker) -> None:
        """Process nodes until the walker suspends (nested section), crosses
        a node boundary (re-heaped so competing walkers interleave in global
        time order — the paper's priority-heap behaviour), or finishes."""
        while True:
            if walker.task_idx >= len(walker.tasks):
                self._finish_chunk(walker)
                return
            task = walker.tasks[walker.task_idx]
            if walker.node_idx >= len(task.children):
                walker.task_idx += 1
                walker.node_idx = 0
                continue
            node = task.children[walker.node_idx]
            walker.node_idx += 1
            self.nodes_visited += 1

            if node.kind is NodeKind.U:
                walker.time += (
                    node.length * walker.instance.burden * node.repeat
                )
                self._push(walker)
                return
            if node.kind is NodeKind.L:
                assert node.lock_id is not None
                free = self.lock_free.get(node.lock_id, 0.0)
                start = max(walker.time, free) + self.oh.omp_lock_acquire
                end = (
                    start
                    + node.length * walker.instance.burden * node.repeat
                    + self.oh.omp_lock_release
                )
                self.lock_free[node.lock_id] = end
                walker.time = end
                self._push(walker)
                return
            if node.kind is NodeKind.SEC:
                if node.pipeline:
                    # Nested pipelines are emulated analytically in place
                    # (their internal recurrence has no CPU interplay with
                    # the surrounding section in the FF's abstract machine).
                    from repro.core.pipeline import ff_pipeline_cycles

                    walker.time += node.repeat * ff_pipeline_cycles(
                        node, self.t, burden=walker.instance.burden,
                        overheads=self.oh,
                    )
                    self._push(walker)
                    return
                self._launch_activation(walker, node, reps_left=node.repeat)
                return
            raise EmulationError(f"bad node inside task: {node!r}")

    def _launch_activation(self, walker: _Walker, sec: Node, reps_left: int) -> None:
        """Start one activation of a nested section; the parent suspends.

        Nested task *j* is pinned to CPU ``(parent_cpu + j) mod t`` —
        whole-node, non-preemptive, availability-blind: the naive mapping
        the paper identifies as the root of the Fig. 7 misprediction.
        """
        tasks = self._expand_tasks(sec)
        walker.time += self._fork_cost()
        if not tasks:
            walker.time += reps_left * self.oh.omp_join_barrier
            self._push(walker)
            return
        instance = _SectionInstance(
            sec,
            pending=len(tasks),
            parent=walker,
            reps_left=reps_left - 1,
            burden=walker.instance.burden,
        )
        instance.end_time = walker.time
        # Parent yields its CPU while the nested section runs.
        self.cpu_free[walker.cpu] = max(self.cpu_free[walker.cpu], walker.time)
        self.cpu_busy[walker.cpu] = False
        for j, task in enumerate(tasks):
            cpu = (walker.cpu + j) % self.t
            self.queues[cpu].append(("chunk", walker.time, [task], instance))
        for cpu in range(self.t):
            self._cpu_pull(cpu, self.cpu_free[cpu])

    def _finish_chunk(self, walker: _Walker) -> None:
        instance = walker.instance
        cpu = walker.cpu
        self.cpu_free[cpu] = max(self.cpu_free[cpu], walker.time)
        self.cpu_busy[cpu] = False
        instance.end_time = max(instance.end_time, walker.time)
        instance.pending -= len(walker.tasks)
        if instance.pending <= 0 and instance.on_complete is not None:
            callback, instance.on_complete = instance.on_complete, None
            callback(instance.end_time)
        if instance.pending <= 0 and instance.parent is not None:
            parent = instance.parent
            ready = instance.end_time + self.oh.omp_join_barrier
            if instance.reps_left > 0:
                # Sequential re-activation of a compressed repeated section;
                # launching only enqueues children, so no CPU occupancy.
                parent.time = max(ready, self.cpu_free[parent.cpu])
                self._launch_activation(parent, instance.sec, instance.reps_left)
            else:
                # The parent continuation must queue behind any in-flight
                # work on its CPU (the abstract machine has exactly t CPUs;
                # jumping the queue would overlap execution and let
                # predicted speedups exceed t).
                self.queues[parent.cpu].append(("walker", ready, parent))
                self._cpu_pull(parent.cpu, self.cpu_free[parent.cpu])
        self._cpu_pull(cpu, self.cpu_free[cpu])
