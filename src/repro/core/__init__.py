"""The paper's contribution: annotation API, interval profiler, program tree,
compression, the two emulators, the memory performance model, and the
top-level :class:`~repro.core.prophet.ParallelProphet` facade.
"""

from repro.core.tree import Node, NodeKind, ProgramTree
from repro.core.annotations import Tracer, AnnotationProgram
from repro.core.profiler import IntervalProfiler, ProgramProfile, SectionCounters
from repro.core.compress import compress_tree, CompressionStats
from repro.core.ffemu import FastForwardEmulator
from repro.core.executor import ParallelExecutor, ReplayMode
from repro.core.synthesizer import Synthesizer
from repro.core.memmodel import MemoryModel, BurdenTable, classify_memory_behavior
from repro.core.microbench import CalibrationResult, calibrate_memory_model
from repro.core.diagnose import BottleneckDiagnoser, SectionDiagnosis
from repro.core.report import SpeedupEstimate, SpeedupReport
from repro.core.serialize import (
    load_profile,
    profile_from_dict,
    profile_to_dict,
    save_profile,
)
from repro.core.prophet import ParallelProphet
from repro.core.batch import BatchPredictor, SweepTask

__all__ = [
    "BatchPredictor",
    "SweepTask",
    "Node",
    "NodeKind",
    "ProgramTree",
    "Tracer",
    "AnnotationProgram",
    "IntervalProfiler",
    "ProgramProfile",
    "SectionCounters",
    "compress_tree",
    "CompressionStats",
    "FastForwardEmulator",
    "ParallelExecutor",
    "ReplayMode",
    "Synthesizer",
    "MemoryModel",
    "BurdenTable",
    "classify_memory_behavior",
    "CalibrationResult",
    "calibrate_memory_model",
    "SpeedupEstimate",
    "SpeedupReport",
    "BottleneckDiagnoser",
    "SectionDiagnosis",
    "save_profile",
    "load_profile",
    "profile_to_dict",
    "profile_from_dict",
    "ParallelProphet",
]
