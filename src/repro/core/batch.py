"""Sweep-scale batch prediction over (workload × schedule × threads × method).

The paper sells the emulators as lightweight per estimate (§VII-D), but the
validation methodology multiplies estimates: Fig. 11 alone is hundreds of
samples × schedules × core counts of *independent* emulations.  Every grid
point is a pure function of ``(profile, schedule, n_threads, method)``, so
the sweep is embarrassingly parallel — this module fans it out over a
``ProcessPoolExecutor`` with a deterministic merge.

Guarantees
----------
- **Determinism**: results are returned in grid order regardless of worker
  completion order, and the same worker code runs whether ``jobs`` is 1
  (in-process, no pool) or N (processes).  A parallel sweep is byte-identical
  to the serial one.
- **One calibration**: burden factors are attached to each profile in the
  parent *before* dispatch, so workers never re-run the Ψ/Φ microbenchmark
  (the prophet's calibration cache is shared by construction).
- **Bounded pickling**: tasks are grouped per workload and chunked, so a
  profile crosses the process boundary O(jobs) times, not once per point.

Typical use::

    prophet = ParallelProphet(machine=WESTMERE_12)
    profiles = {"ft": prophet.profile(ft_program)}
    reports = BatchPredictor(prophet, jobs=4).sweep(
        profiles,
        threads=[2, 4, 8, 12],
        schedules=["static", "static,1", "dynamic,1"],
        methods=("ff", "syn", "real"),
    )
    print(reports["ft"].to_table())
"""

from __future__ import annotations

import math
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.core.executor import ParallelExecutor, ReplayMode
from repro.core.ffemu import FastForwardEmulator
from repro.core.profiler import ProgramProfile
from repro.core.report import SpeedupEstimate, SpeedupReport
from repro.core.synthesizer import Synthesizer
from repro.errors import ConfigurationError
from repro.runtime.overhead import RuntimeOverheads
from repro.runtime.tasks import Schedule

#: Prediction methods a sweep task may request.
SWEEP_METHODS = ("ff", "syn", "real")


@dataclass(frozen=True)
class SweepTask:
    """One grid point: all requested methods for (workload, schedule, t).

    ``schedule`` is kept as its string label so tasks stay hashable and
    cheap to pickle; it is parsed once inside the worker.
    """

    workload: str
    schedule: str
    n_threads: int
    methods: tuple[str, ...] = ("syn",)
    paradigm: str = "omp"
    memory_model: bool = True

    def __post_init__(self) -> None:
        for m in self.methods:
            if m not in SWEEP_METHODS:
                raise ConfigurationError(
                    f"unknown sweep method {m!r} (expected one of {SWEEP_METHODS})"
                )
        if self.n_threads < 1:
            raise ConfigurationError(
                f"n_threads must be >= 1, got {self.n_threads}"
            )


def _predict_point(
    profile: ProgramProfile,
    overheads: RuntimeOverheads,
    task: SweepTask,
    ff: FastForwardEmulator,
) -> list[SpeedupEstimate]:
    """Evaluate one grid point; runs identically in-process or in a worker.

    Uses ``profile.machine`` (the machine the profile was taken on) for the
    synthesizer and ground-truth replays, mirroring how the facade's
    prediction paths behave.
    """
    schedule = Schedule.parse(task.schedule)
    serial = profile.serial_cycles()
    estimates: list[SpeedupEstimate] = []
    for method in task.methods:
        if method == "ff":
            burdens = (
                {
                    name: profile.burden_for(name, task.n_threads)
                    for name in profile.sections
                }
                if task.memory_model
                else {}
            )
            predicted, ff_sections = ff.emulate_profile(
                profile.tree, task.n_threads, schedule, burdens
            )
            estimates.append(
                SpeedupEstimate(
                    method="ff",
                    paradigm=task.paradigm,
                    schedule=schedule.label,
                    n_threads=task.n_threads,
                    speedup=serial / predicted if predicted > 0 else 1.0,
                    with_memory_model=task.memory_model,
                    sections={r.name: r.speedup for r in ff_sections},
                )
            )
        elif method == "syn":
            syn = Synthesizer(
                paradigm=task.paradigm, schedule=schedule, overheads=overheads
            )
            run = syn.predict(
                profile, task.n_threads, use_memory_model=task.memory_model
            )
            estimates.append(run.estimate)
        else:  # "real" — simulated ground-truth replay
            executor = ParallelExecutor(
                machine=profile.machine,
                paradigm=task.paradigm,
                schedule=schedule,
                overheads=overheads,
            )
            result = executor.execute_profile(
                profile.tree, task.n_threads, ReplayMode.REAL
            )
            estimates.append(
                SpeedupEstimate(
                    method="real",
                    paradigm=task.paradigm,
                    schedule=schedule.label,
                    n_threads=task.n_threads,
                    speedup=result.speedup,
                )
            )
    return estimates


def _run_taskset(
    profile: ProgramProfile,
    overheads: RuntimeOverheads,
    indexed_tasks: Sequence[tuple[int, SweepTask]],
) -> list[tuple[int, list[SpeedupEstimate]]]:
    """Worker entry point: evaluate a chunk of one workload's grid points.

    One FF emulator instance is shared across the chunk (it is stateless
    between ``emulate_profile`` calls), so repeated grid points amortise
    its setup the same way the facade's hoisted loop does.
    """
    ff = FastForwardEmulator(overheads)
    return [
        (index, _predict_point(profile, overheads, task, ff))
        for index, task in indexed_tasks
    ]


class BatchPredictor:
    """Deterministic fan-out of prediction grids over worker processes."""

    def __init__(
        self,
        prophet=None,
        jobs: Optional[int] = None,
        chunks_per_job: int = 4,
    ) -> None:
        """``jobs=None`` uses every CPU; ``jobs=1`` runs in-process (no pool
        is created, which keeps single-job sweeps overhead-free and makes
        the serial run the natural determinism baseline).  ``chunks_per_job``
        controls work-stealing granularity: each worker receives roughly
        this many chunks so an expensive grid point cannot straggle the
        whole sweep."""
        if prophet is None:
            from repro.core.prophet import ParallelProphet

            prophet = ParallelProphet()
        self.prophet = prophet
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        if chunks_per_job < 1:
            raise ConfigurationError(
                f"chunks_per_job must be >= 1, got {chunks_per_job}"
            )
        self.chunks_per_job = chunks_per_job

    # ------------------------------------------------------------------ API

    def sweep(
        self,
        profiles: Union[ProgramProfile, Mapping[str, ProgramProfile]],
        threads: Sequence[int],
        schedules: Iterable[Union[str, Schedule]] = ("static",),
        methods: Sequence[str] = ("syn",),
        paradigm: str = "omp",
        memory_model: bool = True,
    ) -> dict[str, SpeedupReport]:
        """Evaluate the full (workload × schedule × threads) grid.

        Returns one :class:`SpeedupReport` per workload with estimates in
        grid order (schedules outer, threads inner — the same order
        :meth:`ParallelProphet.predict` emits).
        """
        if isinstance(profiles, ProgramProfile):
            profiles = {"workload": profiles}
        else:
            profiles = dict(profiles)
        labels = [
            s.label if isinstance(s, Schedule) else Schedule.parse(s).label
            for s in schedules
        ]
        tasks = [
            SweepTask(
                workload=name,
                schedule=label,
                n_threads=t,
                methods=tuple(methods),
                paradigm=paradigm,
                memory_model=memory_model,
            )
            for name in profiles
            for label in labels
            for t in threads
        ]
        reports = {name: SpeedupReport() for name in profiles}
        for task, estimates in self.run(tasks, profiles):
            reports[task.workload].extend(estimates)
        return reports

    def run(
        self,
        tasks: Sequence[SweepTask],
        profiles: Mapping[str, ProgramProfile],
    ) -> list[tuple[SweepTask, list[SpeedupEstimate]]]:
        """Evaluate an explicit task list; results come back in task order.

        This is the engine under :meth:`sweep` for grids that are not plain
        cross products (e.g. a different schedule per sample, or ground
        truth only at selected thread counts).
        """
        for task in tasks:
            if task.workload not in profiles:
                raise ConfigurationError(
                    f"task references unknown workload {task.workload!r}"
                )
        self._attach_burdens(tasks, profiles)

        indexed = list(enumerate(tasks))
        by_workload: dict[str, list[tuple[int, SweepTask]]] = {}
        for index, task in indexed:
            by_workload.setdefault(task.workload, []).append((index, task))

        jobs = min(self.jobs, len(tasks)) if tasks else 1
        overheads = self.prophet.overheads
        gathered: list[tuple[int, list[SpeedupEstimate]]] = []
        if jobs <= 1:
            for name, items in by_workload.items():
                gathered.extend(_run_taskset(profiles[name], overheads, items))
        else:
            chunk = max(1, math.ceil(len(tasks) / (jobs * self.chunks_per_job)))
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = [
                    pool.submit(
                        _run_taskset,
                        profiles[name],
                        overheads,
                        items[pos : pos + chunk],
                    )
                    for name, items in by_workload.items()
                    for pos in range(0, len(items), chunk)
                ]
                for future in futures:
                    gathered.extend(future.result())
        gathered.sort(key=lambda pair: pair[0])
        return [(tasks[index], estimates) for index, estimates in gathered]

    # ------------------------------------------------------------- internals

    def _attach_burdens(
        self,
        tasks: Sequence[SweepTask],
        profiles: Mapping[str, ProgramProfile],
    ) -> None:
        """Attach burden factors once per profile, in the parent process.

        Only thread counts actually requested with the memory model by a
        predictive method need Ψ/Φ evaluation; the calibration itself is
        computed once on the prophet and reused for every profile."""
        for name, profile in profiles.items():
            wanted = sorted(
                {
                    task.n_threads
                    for task in tasks
                    if task.workload == name
                    and task.memory_model
                    and any(m in ("ff", "syn") for m in task.methods)
                }
            )
            if wanted and profile.sections:
                self.prophet.attach_burdens(profile, wanted)


def sweep(
    profiles: Union[ProgramProfile, Mapping[str, ProgramProfile]],
    threads: Sequence[int],
    schedules: Iterable[Union[str, Schedule]] = ("static",),
    methods: Sequence[str] = ("syn",),
    paradigm: str = "omp",
    memory_model: bool = True,
    jobs: Optional[int] = None,
    prophet=None,
) -> dict[str, SpeedupReport]:
    """Module-level convenience wrapper around :meth:`BatchPredictor.sweep`."""
    return BatchPredictor(prophet, jobs=jobs).sweep(
        profiles,
        threads=threads,
        schedules=schedules,
        methods=methods,
        paradigm=paradigm,
        memory_model=memory_model,
    )
