"""Sweep-scale batch prediction over (workload × schedule × threads × method).

The paper sells the emulators as lightweight per estimate (§VII-D), but the
validation methodology multiplies estimates: Fig. 11 alone is hundreds of
samples × schedules × core counts of *independent* emulations.  Every grid
point is a pure function of ``(profile, schedule, n_threads, method)``, so
the sweep is embarrassingly parallel — this module fans it out over a
``ProcessPoolExecutor`` with a deterministic merge.

Guarantees
----------
- **Determinism**: results are returned in grid order regardless of worker
  completion order, and the same worker code runs whether ``jobs`` is 1
  (in-process, no pool) or N (processes).  A parallel sweep is byte-identical
  to the serial one.
- **One calibration**: burden factors are attached to each profile in the
  parent *before* dispatch, so workers never re-run the Ψ/Φ microbenchmark
  (the prophet's calibration cache is shared by construction).
- **Bounded pickling**: tasks are grouped per workload and chunked, so a
  profile crosses the process boundary O(jobs) times, not once per point.

Typical use::

    prophet = ParallelProphet(machine=WESTMERE_12)
    profiles = {"ft": prophet.profile(ft_program)}
    reports = BatchPredictor(prophet, jobs=4).sweep(
        profiles,
        threads=[2, 4, 8, 12],
        schedules=["static", "static,1", "dynamic,1"],
        methods=("ff", "syn", "real"),
    )
    print(reports["ft"].to_table())
"""

from __future__ import annotations

import math
import os
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.core.executor import ParallelExecutor, ReplayMode
from repro.core.ffemu import FastForwardEmulator
from repro.core.profiler import ProgramProfile
from repro.core.report import SpeedupEstimate, SpeedupReport
from repro.core.synthesizer import Synthesizer
from repro.errors import BatchError, ConfigurationError
from repro.obs import get_metrics, get_tracer
from repro.runtime.overhead import RuntimeOverheads
from repro.runtime.tasks import Schedule
from repro.simos import normalize_handoff
from repro.validate.invariants import get_checker, has_nested_sections

#: Prediction methods a sweep task may request.
SWEEP_METHODS = ("ff", "syn", "real")


@dataclass(frozen=True)
class SweepTaskFailure:
    """Structured record of one failed grid point.

    Produced inside the worker (the exception itself may not survive
    pickling, so only its type name and message cross the process
    boundary) and merged into grid order with the successful results.
    """

    workload: str
    schedule: str
    n_threads: int
    error: str  # exception class name, e.g. "ConfigurationError"
    message: str

    def __str__(self) -> str:
        return (
            f"{self.workload}/{self.schedule}/t={self.n_threads}: "
            f"{self.error}: {self.message}"
        )


@dataclass(frozen=True)
class SweepTask:
    """One grid point: all requested methods for (workload, schedule, t).

    ``schedule`` is kept as its string label so tasks stay hashable and
    cheap to pickle; it is parsed once inside the worker.
    """

    workload: str
    schedule: str
    n_threads: int
    methods: tuple[str, ...] = ("syn",)
    paradigm: str = "omp"
    memory_model: bool = True
    #: Lock-handoff policy the replay kernels use at contended releases.
    #: Non-default policies turn this grid point into one schedule-space
    #: sample of ``repro.explore``'s speedup envelope.
    handoff: str = "fifo"
    handoff_seed: int = 0

    def __post_init__(self) -> None:
        for m in self.methods:
            if m not in SWEEP_METHODS:
                raise ConfigurationError(
                    f"unknown sweep method {m!r} (expected one of {SWEEP_METHODS})"
                )
        if self.n_threads < 1:
            raise ConfigurationError(
                f"n_threads must be >= 1, got {self.n_threads}"
            )
        # Canonicalise ("seeded-random" → "random", seed pinned to 0 for
        # policies that ignore it) so task equality and executor cache keys
        # reflect replay behaviour, not spelling.
        object.__setattr__(self, "handoff", normalize_handoff(self.handoff))
        if self.handoff != "random":
            object.__setattr__(self, "handoff_seed", 0)
        if self.handoff != "fifo" and "ff" in self.methods:
            raise ConfigurationError(
                "the fast-forward emulator is interleaving-blind; "
                f"handoff={self.handoff!r} supports only 'syn' and 'real'"
            )


def _predict_point(
    profile: ProgramProfile,
    overheads: RuntimeOverheads,
    task: SweepTask,
    ff: FastForwardEmulator,
    executors: Optional[dict[tuple, ParallelExecutor]] = None,
    engine=None,
) -> list[SpeedupEstimate]:
    """Evaluate one grid point; runs identically in-process or in a worker.

    Uses ``profile.machine`` (the machine the profile was taken on) for the
    synthesizer and ground-truth replays, mirroring how the facade's
    prediction paths behave.  ``executors`` (keyed by machine × paradigm ×
    schedule × handoff) reuses REAL-replay executors across grid points —
    chunk-scoped in pool workers, predictor-lifetime on the in-process
    path (:attr:`BatchPredictor._executors`); section results themselves
    recur through the process-wide
    :class:`~repro.core.executor.SectionMemo` either way.

    ``engine`` (chunk-scoped columnar engine, or None) is consulted first
    for each method; a point the engine declines falls back to the exact
    eager path below, preserving the per-point fallback contract.
    """
    if task.handoff != "fifo":
        # The columnar engine models the FIFO handoff analytically; an
        # explored interleaving must replay eagerly to be sound.
        engine = None
    schedule = Schedule.parse(task.schedule)
    executor_key = (
        profile.machine,
        task.paradigm,
        schedule.label,
        task.handoff,
        task.handoff_seed,
    )
    serial = profile.serial_cycles()
    estimates: list[SpeedupEstimate] = []
    for method in task.methods:
        if method == "ff":
            burdens = (
                {
                    name: profile.burden_for(name, task.n_threads)
                    for name in profile.sections
                }
                if task.memory_model
                else {}
            )
            col = (
                engine.ff_point(schedule, task.n_threads, burdens)
                if engine is not None
                else None
            )
            if col is not None:
                predicted, ff_sections = col
            else:
                predicted, ff_sections = ff.emulate_profile(
                    profile.tree, task.n_threads, schedule, burdens
                )
            estimates.append(
                SpeedupEstimate(
                    method="ff",
                    paradigm=task.paradigm,
                    schedule=schedule.label,
                    n_threads=task.n_threads,
                    speedup=serial / predicted if predicted > 0 else 1.0,
                    with_memory_model=task.memory_model,
                    sections={r.name: r.speedup for r in ff_sections},
                )
            )
        elif method == "syn":
            est = (
                engine.syn_point(
                    schedule, task.n_threads, task.memory_model, task.paradigm
                )
                if engine is not None
                else None
            )
            if est is None:
                syn = Synthesizer(
                    paradigm=task.paradigm,
                    schedule=schedule,
                    overheads=overheads,
                    handoff=task.handoff,
                    handoff_seed=task.handoff_seed,
                )
                run = syn.predict(
                    profile, task.n_threads, use_memory_model=task.memory_model
                )
                est = run.estimate
            estimates.append(est)
        else:  # "real" — simulated ground-truth replay
            est = (
                engine.real_point(schedule, task.n_threads, task.paradigm)
                if engine is not None
                else None
            )
            if est is not None:
                estimates.append(est)
                continue
            executor = (
                executors.get(executor_key) if executors is not None else None
            )
            if executor is None:
                executor = ParallelExecutor(
                    machine=profile.machine,
                    paradigm=task.paradigm,
                    schedule=schedule,
                    overheads=overheads,
                    handoff=task.handoff,
                    handoff_seed=task.handoff_seed,
                )
                if executors is not None:
                    executors[executor_key] = executor
            result = executor.execute_profile(
                profile.tree, task.n_threads, ReplayMode.REAL
            )
            estimates.append(
                SpeedupEstimate(
                    method="real",
                    paradigm=task.paradigm,
                    schedule=schedule.label,
                    n_threads=task.n_threads,
                    speedup=result.speedup,
                )
            )
    inv = get_checker()
    if inv.enabled:
        # Workers inherit REPRO_VALIDATE through the environment, and a
        # raise-mode violation here becomes a structured SweepTaskFailure
        # via _run_taskset's existing error plumbing.
        nested = has_nested_sections(profile.tree)
        for e in estimates:
            inv.check_speedup(
                e.method,
                e.speedup,
                e.n_threads,
                profile.machine.n_cores,
                nested,
                where=f"batch:{task.workload}/{e.method}"
                f"/{e.schedule}/t={e.n_threads}",
            )
    return estimates


def _run_taskset(
    profile: ProgramProfile,
    overheads: RuntimeOverheads,
    indexed_tasks: Sequence[tuple[int, SweepTask]],
    collect_metrics: bool = False,
    backend: str = "auto",
    executors: Optional[dict[tuple, ParallelExecutor]] = None,
    engines: Optional["OrderedDict"] = None,
) -> tuple[
    list[tuple[int, Union[list[SpeedupEstimate], SweepTaskFailure]]],
    Optional[dict],
]:
    """Worker entry point: evaluate a chunk of one workload's grid points.

    One FF emulator instance is shared across the chunk (it is stateless
    between ``emulate_profile`` calls), so repeated grid points amortise
    its setup the same way the facade's hoisted loop does.

    ``executors``/``engines`` (both optional) are the caller's persistent
    caches: the in-process path passes :class:`BatchPredictor`'s own so
    replay executors and columnar lowerings survive across sweeps (the
    serve daemon's warm state); pool workers pass neither and fall back to
    chunk-scoped instances.

    A failing task yields a :class:`SweepTaskFailure` in its grid slot
    instead of poisoning the whole chunk: the remaining tasks still run,
    and the parent's index-sorted merge stays deterministic.

    With ``collect_metrics=True`` (the process-pool path) the worker's
    process-wide metrics registry is reset at chunk start and its snapshot
    returned alongside the results, so the parent can fold worker-side
    counters (FF fast-path decisions, DRAM solves, ...) into its own
    registry.  The in-process path passes ``False``: increments land on
    the parent registry directly and must not be double-counted.
    """
    metrics = get_metrics()
    if collect_metrics:
        metrics.reset()
        inv = get_checker()
        if inv.enabled:
            # Fork-started pool workers inherit the parent's checker
            # verbatim — including the CLI's record mode, whose collected
            # violations would die with the worker process.  Force raise
            # mode: the except below turns a violation into a structured
            # SweepTaskFailure that survives the trip back to the parent.
            inv.mode = "raise"
            inv.reset()
    ff = FastForwardEmulator(overheads)
    if executors is None:
        executors = {}
    engine = None
    if backend != "eager" and not get_tracer().enabled:
        from repro.core.columnar import ColumnarEngine

        if engines is None:
            # One engine per chunk: its lowering and per-point caches are
            # shared by every grid point of this workload's chunk.
            engine = ColumnarEngine(profile, overheads)
        else:
            # Persistent path: one engine per live profile object, reused
            # across sweeps so the lowering and per-point caches survive.
            # The profile rides along in the value to pin the id() key.
            # Hit/miss counters live on the cache object, not the metrics
            # registry: pool chunking would make registry counts diverge
            # between jobs=1 and jobs>1 sweeps of the same grid.
            key = id(profile)
            cached = engines.get(key)
            if cached is not None and cached[0] is profile:
                engine = cached[1]
                engines.move_to_end(key)
                engines.hits = getattr(engines, "hits", 0) + 1
            else:
                engine = ColumnarEngine(profile, overheads)
                engines[key] = (profile, engine)
                engines.misses = getattr(engines, "misses", 0) + 1
    results: list[tuple[int, Union[list[SpeedupEstimate], SweepTaskFailure]]] = []
    for index, task in indexed_tasks:
        try:
            results.append(
                (
                    index,
                    _predict_point(
                        profile, overheads, task, ff, executors, engine
                    ),
                )
            )
        except Exception as exc:
            metrics.inc("batch.task.errors")
            results.append(
                (
                    index,
                    SweepTaskFailure(
                        workload=task.workload,
                        schedule=task.schedule,
                        n_threads=task.n_threads,
                        error=type(exc).__name__,
                        message=str(exc),
                    ),
                )
            )
    return results, (metrics.snapshot() if collect_metrics else None)


class BatchPredictor:
    """Deterministic fan-out of prediction grids over worker processes."""

    def __init__(
        self,
        prophet=None,
        jobs: Optional[int] = None,
        chunks_per_job: int = 4,
        backend: str = "auto",
        tier: str = "exact",
        surrogate=None,
    ) -> None:
        """``jobs=None`` uses every CPU; ``jobs=1`` runs in-process (no pool
        is created, which keeps single-job sweeps overhead-free and makes
        the serial run the natural determinism baseline).  ``chunks_per_job``
        controls work-stealing granularity: each worker receives roughly
        this many chunks so an expensive grid point cannot straggle the
        whole sweep.  ``backend`` is ``"auto"``/``"columnar"`` (vectorized
        engine with per-point eager fallback) or ``"eager"`` (scalar path
        everywhere).  ``tier`` is the default answer tier for sweeps
        (``"exact"``, ``"surrogate"``, or ``"auto"`` — see
        ``docs/surrogate.md``); ``surrogate`` overrides the process-default
        model for non-exact tiers."""
        if prophet is None:
            from repro.core.prophet import ParallelProphet

            prophet = ParallelProphet()
        self.prophet = prophet
        self.jobs = max(1, jobs if jobs is not None else (os.cpu_count() or 1))
        if chunks_per_job < 1:
            raise ConfigurationError(
                f"chunks_per_job must be >= 1, got {chunks_per_job}"
            )
        self.chunks_per_job = chunks_per_job
        if backend not in ("auto", "columnar", "eager"):
            raise ConfigurationError(
                f"unknown backend {backend!r}; expected 'auto', 'columnar' "
                f"or 'eager'"
            )
        self.backend = backend
        if tier not in ("exact", "surrogate", "auto"):
            raise ConfigurationError(
                f"unknown tier {tier!r}; expected 'exact', 'surrogate' "
                f"or 'auto'"
            )
        self.tier = tier
        self.surrogate = surrogate
        #: Bounds of the predictor-lifetime caches below (entries, LRU).
        self.executor_cache_size = 64
        self.engine_cache_size = 32
        #: REAL-replay executors, keyed by machine × paradigm × schedule ×
        #: handoff; live across sweeps on the in-process path so a daemon's
        #: repeat traffic replays into warm kernels.  Manage through
        #: :meth:`cache_info` / :meth:`reset`, not directly.
        self._executors: OrderedDict[tuple, ParallelExecutor] = OrderedDict()
        #: Columnar engines keyed by live profile object (the profile is
        #: pinned in the value so the ``id()`` key stays unambiguous).
        self._engines: OrderedDict[int, tuple] = OrderedDict()

    # ------------------------------------------------------------------ API

    def sweep(
        self,
        profiles: Union[ProgramProfile, Mapping[str, ProgramProfile]],
        threads: Sequence[int],
        schedules: Iterable[Union[str, Schedule]] = ("static",),
        methods: Sequence[str] = ("syn",),
        paradigm: str = "omp",
        memory_model: bool = True,
        on_error: str = "raise",
        tier: Optional[str] = None,
    ) -> dict[str, SpeedupReport]:
        """Evaluate the full (workload × schedule × threads) grid.

        Returns one :class:`SpeedupReport` per workload with estimates in
        grid order (schedules outer, threads inner — the same order
        :meth:`ParallelProphet.predict` emits).

        ``on_error="raise"`` raises :class:`repro.errors.BatchError` if any
        grid point failed; ``on_error="collect"`` instead attaches the
        :class:`SweepTaskFailure` records to ``report.failures`` of the
        affected workload and keeps the successful estimates.

        ``tier=None`` uses the predictor's configured tier; pass
        ``"exact"``/``"surrogate"``/``"auto"`` to override per call.
        """
        if isinstance(profiles, ProgramProfile):
            profiles = {"workload": profiles}
        else:
            profiles = dict(profiles)
        labels = []
        for s in schedules:
            if isinstance(s, Schedule):
                labels.append(s.label)
                continue
            try:
                labels.append(Schedule.parse(s).label)
            except ConfigurationError:
                # Defer to the per-task path: the worker fails this grid
                # point with a structured SweepTaskFailure, so on_error
                # governs unparsable schedules like any other task error.
                labels.append(s)
        tasks = [
            SweepTask(
                workload=name,
                schedule=label,
                n_threads=t,
                methods=tuple(methods),
                paradigm=paradigm,
                memory_model=memory_model,
            )
            for name in profiles
            for label in labels
            for t in threads
        ]
        reports = {name: SpeedupReport() for name in profiles}
        for task, outcome in self.run(tasks, profiles, on_error=on_error, tier=tier):
            if isinstance(outcome, SweepTaskFailure):
                reports[task.workload].failures.append(outcome)
            else:
                reports[task.workload].extend(outcome)
        return reports

    def run(
        self,
        tasks: Sequence[SweepTask],
        profiles: Mapping[str, ProgramProfile],
        on_error: str = "raise",
        tier: Optional[str] = None,
    ) -> list[tuple[SweepTask, Union[list[SpeedupEstimate], SweepTaskFailure]]]:
        """Evaluate an explicit task list; results come back in task order.

        This is the engine under :meth:`sweep` for grids that are not plain
        cross products (e.g. a different schedule per sample, or ground
        truth only at selected thread counts).

        A failing grid point never poisons its chunk or the merge: workers
        substitute a :class:`SweepTaskFailure` in the task's grid slot and
        keep going.  With ``on_error="raise"`` (default) a
        :class:`repro.errors.BatchError` carrying every failure is raised
        *after* the full merge; ``on_error="collect"`` returns the failure
        records in-place so callers can inspect partial results.

        With a non-exact ``tier`` (argument, or the predictor's default)
        the surrogate answers what it can *in the parent before dispatch* —
        the same pre-pass whether ``jobs`` is 1 or N, so surrogate metrics
        and results stay identical across job counts.  Only grid points
        with remaining exact work are dispatched; a point whose exact
        methods fail reports the failure for the whole point.
        """
        if on_error not in ("raise", "collect"):
            raise ConfigurationError(
                f'on_error must be "raise" or "collect", got {on_error!r}'
            )
        tier = tier if tier is not None else self.tier
        if tier not in ("exact", "surrogate", "auto"):
            raise ConfigurationError(
                f"unknown tier {tier!r}; expected 'exact', 'surrogate' "
                f"or 'auto'"
            )
        for task in tasks:
            if task.workload not in profiles:
                raise ConfigurationError(
                    f"task references unknown workload {task.workload!r}"
                )

        pre: dict[int, dict[str, SpeedupEstimate]] = {}
        if tier != "exact":
            indexed = self._surrogate_prepass(tasks, profiles, tier, pre)
        else:
            indexed = list(enumerate(tasks))
        self._attach_burdens([task for _i, task in indexed], profiles)

        by_workload: dict[str, list[tuple[int, SweepTask]]] = {}
        for index, task in indexed:
            by_workload.setdefault(task.workload, []).append((index, task))

        jobs = min(self.jobs, len(tasks)) if tasks else 1
        overheads = self.prophet.overheads
        obs = get_tracer()
        metrics = get_metrics()
        gathered: list[
            tuple[int, Union[list[SpeedupEstimate], SweepTaskFailure]]
        ] = []
        # One shared chunk construction: the in-process run is the pooled
        # run with chunk size "whole workload" and no pool, so both paths
        # exercise identical worker code (and the burden tables attached
        # above — there is no per-point recalibration on either path).
        if jobs <= 1:
            chunk = max((len(v) for v in by_workload.values()), default=1)
        else:
            chunk = max(1, math.ceil(len(tasks) / (jobs * self.chunks_per_job)))
        chunks = [
            (name, items[pos : pos + chunk])
            for name, items in by_workload.items()
            for pos in range(0, len(items), chunk)
        ]
        if jobs <= 1:
            # In-process: metric increments land on this registry directly,
            # so the worker must not reset/snapshot it.  The predictor's
            # persistent executor/engine caches keep replay state warm
            # across run() calls (and are trimmed to their bounds after).
            for name, chunk_items in chunks:
                results, _ = _run_taskset(
                    profiles[name],
                    overheads,
                    chunk_items,
                    False,
                    self.backend,
                    executors=self._executors,
                    engines=self._engines,
                )
                gathered.extend(results)
            self._trim_caches()
        else:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = []
                for name, chunk_items in chunks:
                    if obs.enabled:
                        # The batch track is indexed by grid position, not
                        # sim time: each chunk dispatch marks its first slot.
                        obs.instant(
                            "chunk_dispatch",
                            ts=float(chunk_items[0][0]),
                            track="batch",
                            cat="batch",
                            args={"workload": name, "size": len(chunk_items)},
                        )
                    futures.append(
                        pool.submit(
                            _run_taskset,
                            profiles[name],
                            overheads,
                            chunk_items,
                            True,
                            self.backend,
                        )
                    )
                # Merge worker metric snapshots in *submission* order —
                # counter merges are commutative sums, so the combined
                # registry is identical however the workers raced.
                for future in futures:
                    results, snapshot = future.result()
                    gathered.extend(results)
                    if snapshot is not None:
                        metrics.merge(snapshot)
        if pre:
            # Fold surrogate answers back into grid slots: fully-answered
            # points join the merge directly; partially-answered points
            # interleave surrogate and exact estimates in the task's method
            # order; an exact failure reports the whole point as failed.
            merged: dict[
                int, Union[list[SpeedupEstimate], SweepTaskFailure]
            ] = dict(gathered)
            for index, answered in pre.items():
                exact = merged.get(index)
                if isinstance(exact, SweepTaskFailure):
                    continue
                by_method = {e.method: e for e in (exact or [])}
                merged[index] = [
                    answered.get(m, by_method.get(m))
                    for m in tasks[index].methods
                ]
            gathered = list(merged.items())
        gathered.sort(key=lambda pair: pair[0])
        metrics.inc("batch.tasks", float(len(tasks)))

        failures = []
        for index, outcome in gathered:
            if isinstance(outcome, SweepTaskFailure):
                failures.append(outcome)
                if obs.enabled:
                    obs.instant(
                        "task_error",
                        ts=float(index),
                        track="batch",
                        cat="batch",
                        args={"task": str(outcome)},
                    )
            elif obs.enabled:
                obs.instant(
                    "task_complete",
                    ts=float(index),
                    track="batch",
                    cat="batch",
                    args={"workload": tasks[index].workload},
                )
        if failures and on_error == "raise":
            raise BatchError(failures)
        return [(tasks[index], outcome) for index, outcome in gathered]

    def _surrogate_prepass(
        self,
        tasks: Sequence[SweepTask],
        profiles: Mapping[str, ProgramProfile],
        tier: str,
        pre: dict[int, dict[str, SpeedupEstimate]],
    ) -> list[tuple[int, SweepTask]]:
        """Answer supported grid points from the surrogate before dispatch.

        Fills ``pre`` (index → method → estimate) and returns the indexed
        task list still needing exact evaluation, with answered methods
        stripped.  Runs entirely in the parent so hit/abstain/fallback
        metrics are identical for in-process and pooled sweeps.  Non-FIFO
        handoffs and unparsable schedules are left for the exact path (the
        model is trained on FIFO replays only; malformed schedules must
        keep producing their structured worker-side failures).
        """
        from dataclasses import replace as dc_replace

        from repro.surrogate import get_default_surrogate

        sur = (
            self.surrogate
            if self.surrogate is not None
            else get_default_surrogate()
        )
        metrics = get_metrics()
        inv = get_checker()
        nested_cache: dict[int, bool] = {}
        indexed: list[tuple[int, SweepTask]] = []
        for index, task in enumerate(tasks):
            profile = profiles[task.workload]
            try:
                schedule = Schedule.parse(task.schedule)
            except ConfigurationError:
                schedule = None
            answered: dict[str, SpeedupEstimate] = {}
            remaining: list[str] = []
            for method in task.methods:
                ans = None
                if schedule is not None and task.handoff == "fifo":
                    ans = sur.answer(
                        profile,
                        profile.machine,
                        method,
                        task.paradigm,
                        schedule,
                        task.n_threads,
                        task.memory_model,
                    )
                    if ans is not None and tier == "auto" and not ans.confident:
                        metrics.inc("surrogate.abstains")
                        ans = None
                if ans is None:
                    if schedule is not None:
                        metrics.inc("surrogate.fallbacks")
                    remaining.append(method)
                    continue
                metrics.inc("surrogate.hits")
                est = SpeedupEstimate(
                    method=method,
                    paradigm=task.paradigm,
                    schedule=schedule.label,
                    n_threads=task.n_threads,
                    speedup=ans.speedup,
                    with_memory_model=task.memory_model,
                )
                if inv.enabled:
                    nested = nested_cache.get(id(profile))
                    if nested is None:
                        nested = has_nested_sections(profile.tree)
                        nested_cache[id(profile)] = nested
                    inv.check_speedup(
                        method,
                        est.speedup,
                        task.n_threads,
                        profile.machine.n_cores,
                        nested,
                        where=f"batch:{task.workload}/{method}"
                        f"/{est.schedule}/t={task.n_threads}",
                    )
                answered[method] = est
            if answered:
                pre[index] = answered
            if remaining:
                indexed.append(
                    (
                        index,
                        task
                        if len(remaining) == len(task.methods)
                        else dc_replace(task, methods=tuple(remaining)),
                    )
                )
        return indexed

    # ----------------------------------------------------- cache lifetime

    def cache_info(self) -> dict:
        """Sizes and hit counters of every cache this predictor feeds.

        The explicit surface the serve cache layer and tests use instead
        of reaching into ``_executors``/``_engines``: predictor-lifetime
        executor and columnar-engine caches, plus the process-wide section
        memo the replays recur through.
        """
        from repro.core.executor import section_memo_info

        engines = [engine for _profile, engine in self._engines.values()]
        return {
            "executors": {
                "size": len(self._executors),
                "maxsize": self.executor_cache_size,
            },
            "engines": {
                "size": len(engines),
                "maxsize": self.engine_cache_size,
                "hits": getattr(self._engines, "hits", 0),
                "misses": getattr(self._engines, "misses", 0),
                "point_entries": sum(
                    e.cache_info()["points"] for e in engines
                ),
            },
            "section_memo": section_memo_info(),
        }

    def reset(self) -> None:
        """Drop the predictor-lifetime caches (executors, engines).

        The process-wide section memo is shared with other predictors and
        the facade, so it is *not* cleared here — use
        :func:`repro.core.executor.clear_section_memo` (or the serve cache
        layer's ``clear()``, which does both) for a fully cold state.
        """
        self._executors.clear()
        self._engines.clear()
        self._engines.hits = 0
        self._engines.misses = 0

    def _trim_caches(self) -> None:
        """Evict least-recently-used executors/engines over their bounds."""
        while len(self._executors) > self.executor_cache_size:
            self._executors.popitem(last=False)
        while len(self._engines) > self.engine_cache_size:
            self._engines.popitem(last=False)

    # ------------------------------------------------------------- internals

    def _attach_burdens(
        self,
        tasks: Sequence[SweepTask],
        profiles: Mapping[str, ProgramProfile],
    ) -> None:
        """Attach burden factors once per profile, in the parent process.

        Only thread counts actually requested with the memory model by a
        predictive method need Ψ/Φ evaluation; the calibration itself is
        computed once on the prophet and reused for every profile."""
        for name, profile in profiles.items():
            wanted = sorted(
                {
                    task.n_threads
                    for task in tasks
                    if task.workload == name
                    and task.memory_model
                    and any(m in ("ff", "syn") for m in task.methods)
                }
            )
            if wanted and profile.sections:
                self.prophet.attach_burdens(profile, wanted)


def sweep(
    profiles: Union[ProgramProfile, Mapping[str, ProgramProfile]],
    threads: Sequence[int],
    schedules: Iterable[Union[str, Schedule]] = ("static",),
    methods: Sequence[str] = ("syn",),
    paradigm: str = "omp",
    memory_model: bool = True,
    jobs: Optional[int] = None,
    prophet=None,
    on_error: str = "raise",
    backend: str = "auto",
    tier: str = "exact",
) -> dict[str, SpeedupReport]:
    """Module-level convenience wrapper around :meth:`BatchPredictor.sweep`."""
    return BatchPredictor(prophet, jobs=jobs, backend=backend, tier=tier).sweep(
        profiles,
        threads=threads,
        schedules=schedules,
        methods=methods,
        paradigm=paradigm,
        memory_model=memory_model,
        on_error=on_error,
    )
