"""Program-tree replay on the simulated machine.

One replay engine serves two roles:

- ``ReplayMode.REAL`` — **ground truth**: each leaf re-runs its actual work
  (pure-CPU cycles + LLC misses), so DRAM contention, lock contention, OS
  preemption, and runtime overheads all interact exactly as they would in
  the actually-parallelized program.  This stands in for the paper's
  hand-parallelized OpenMP/Cilk code measured on real hardware ("Real" in
  Figs. 2, 11, 12).
- ``ReplayMode.FAKE`` — the **synthesizer's generated program**: each leaf
  becomes a burden-scaled pure delay (the paper's ``FakeDelay``), locks are
  real simulated mutexes, nested sections become recursive parallel
  constructs, and the per-node tree-traversal overhead is charged and
  tracked per worker so it can be subtracted afterwards (Section IV-E).

Crucially the FAKE path consumes only what the profiler can observe —
measured net lengths and per-section burden factors — never the leaves'
ground-truth work composition, so predictions are honest.
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Mapping, Optional

from repro.core.tree import Node, NodeKind, ProgramTree
from repro.errors import EmulationError
from repro.obs import get_metrics, get_tracer
from repro.runtime.cilk import CilkContext, CilkPool
from repro.runtime.openmp import OmpRuntime
from repro.runtime.overhead import DEFAULT_OVERHEADS, RuntimeOverheads
from repro.runtime.tasks import Schedule, ScheduleKind
from repro.simhw.machine import MachineConfig
from repro.simos import (
    Acquire,
    Compute,
    GetCurrentThread,
    Release,
    SimKernel,
    SimMutex,
    normalize_handoff,
)
from repro.validate.invariants import get_checker


class ReplayMode(enum.Enum):
    """REAL = ground-truth work replay; FAKE = synthesizer fake delays."""

    REAL = "real"
    FAKE = "fake"


#: Synthesizer per-node traversal costs (paper Section IV-E: "these two units
#: of overhead on our machine are both approximately 50 cycles").
OVERHEAD_ACCESS_NODE = 50.0
OVERHEAD_RECURSIVE_CALL = 50.0


def _node_fingerprint(node: Node) -> tuple:
    """Structural identity of a subtree (all timing-relevant fields).

    Two nodes with equal fingerprints replay identically on equal
    machine/runtime configurations, which is what makes the cross-grid
    section memo sound: the simulation is deterministic in these inputs.
    """
    return (
        node.kind.value,
        node.name,
        node.length,
        node.lock_id,
        node.repeat,
        node.cpu_cycles,
        node.instructions,
        node.llc_misses,
        node.nowait,
        node.pipeline,
        tuple(_node_fingerprint(c) for c in node.children),
    )


class SectionMemo:
    """Bounded LRU over section replays, shared across executors.

    Sweep grids re-execute the same section at the same ``n_threads`` for
    every burden/point combination that maps to identical inputs; the memo
    returns the previous :class:`SectionRun` without building a kernel.
    Keys include every input the replay depends on (machine, overheads,
    paradigm, schedule, mode, thread count, quantized burden, kernel/
    coalescing toggles, and the section's structural fingerprint).
    """

    def __init__(self, maxsize: int = 256) -> None:
        self.maxsize = maxsize
        self._data: OrderedDict[tuple, SectionRun] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple) -> Optional["SectionRun"]:
        """Look up ``key``, counting a hit or miss and refreshing LRU order."""
        run = self._data.get(key)
        if run is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return run

    def put(self, key: tuple, run: "SectionRun") -> None:
        """Insert ``run``, evicting least-recently-used entries over capacity."""
        self._data[key] = run
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def cache_info(self) -> dict[str, int]:
        """Hit/miss/size/maxsize counters (mirrors the DRAM memo's stats)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._data),
            "maxsize": self.maxsize,
        }

    def clear(self) -> None:
        """Drop all entries and reset the counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0


#: Process-wide section memo (cleared via :func:`clear_section_memo`).
_SECTION_MEMO = SectionMemo()


def section_memo_info() -> dict[str, int]:
    """Hit/miss/size counters of the process-wide section memo."""
    return _SECTION_MEMO.cache_info()


def clear_section_memo() -> None:
    """Drop all memoised section replays (tests, config changes)."""
    _SECTION_MEMO.clear()


def set_section_memo_size(maxsize: int) -> None:
    """Rebound the process-wide section memo (serve cache-layer governance).

    Shrinking evicts least-recently-used entries immediately so the memo
    honours the new bound without waiting for the next insert."""
    if maxsize < 0:
        raise ValueError(f"section memo maxsize must be >= 0, got {maxsize}")
    _SECTION_MEMO.maxsize = maxsize
    while len(_SECTION_MEMO._data) > maxsize:
        _SECTION_MEMO._data.popitem(last=False)


class _OverheadManager:
    """Per-worker traversal overhead, as in the paper's Fig. 8 pseudo-code."""

    def __init__(self) -> None:
        self.per_thread: dict[int, float] = {}

    def add(self, tid: int, amount: float) -> None:
        self.per_thread[tid] = self.per_thread.get(tid, 0.0) + amount

    def longest(self) -> float:
        return max(self.per_thread.values(), default=0.0)


@dataclass
class SectionRun:
    """Result of emulating/executing one top-level parallel section."""

    name: str
    gross_cycles: float
    traversal_overhead: float
    preemptions: int
    steals: int
    #: Per-run lock stats from this section's (fresh) kernel: total and
    #: contended acquisitions.  Deterministic given the replay inputs, so
    #: the memo-parity invariant covers them too.
    lock_acquires: int = 0
    lock_contended: int = 0

    @property
    def net_cycles(self) -> float:
        """Gross time minus the longest per-worker traversal overhead
        (Fig. 8 line 26); equals gross for REAL replays."""
        return max(0.0, self.gross_cycles - self.traversal_overhead)


@dataclass
class ReplayResult:
    """Whole-program replay outcome."""

    total_cycles: float
    serial_cycles: float
    sections: list[SectionRun] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        if self.total_cycles <= 0:
            return 1.0
        return self.serial_cycles / self.total_cycles

    @property
    def lock_acquires(self) -> int:
        """Total lock acquisitions across all replayed sections."""
        return sum(run.lock_acquires for run in self.sections)

    @property
    def lock_contended(self) -> int:
        """Total contended lock acquisitions across all replayed sections."""
        return sum(run.lock_contended for run in self.sections)


class ParallelExecutor:
    """Replays program trees through the simulated runtimes.

    Parameters
    ----------
    machine:
        Target machine (``n_cores`` bounds real concurrency; thread counts
        above it oversubscribe, as on real hardware).
    paradigm:
        ``"omp"`` (fork/join teams; nested sections spawn nested *physical*
        teams — OpenMP 2.0's weakness on recursion), ``"cilk"`` (one
        work-stealing pool; nested sections become nested ``cilk_for``
        ranges), or ``"omp_task"`` (OpenMP 3.0 tasking: one team draining a
        shared task queue; nested sections become task groups).
    schedule:
        OpenMP loop schedule; ignored by the Cilk paradigm.
    overheads:
        Runtime overhead constants, shared with the FF emulator.
    coalesce:
        Coalesce each OpenMP worker's owned iterations of a lock-free,
        leaf-only section under a static-family schedule into one
        aggregated ``Compute`` (the replay-layer mirror of the FF fast
        path).  Falls back to the exact expanded lowering for locks,
        nesting, pipelines, dynamic schedules, and demand mixes that
        aggregation cannot represent exactly.
    kernel_optimize:
        Passed to every :class:`SimKernel` this executor builds (the
        event-sparse fast paths; ``False`` forces the eager reference
        kernel for parity testing).
    memoize:
        Consult the process-wide :class:`SectionMemo` before replaying a
        section (bypassed automatically while tracing is enabled).
    handoff, handoff_seed:
        Lock handoff policy forwarded to every kernel (``fifo`` — the
        byte-identical default — ``lifo``, ``random``/``seeded-random``,
        ``adversarial``; see :mod:`repro.simos.sync`).  ``handoff_seed``
        seeds the ``random`` policy's draw stream; the pair is part of the
        section-memo key, so explored replays never cross-contaminate.
    """

    def __init__(
        self,
        machine: MachineConfig,
        paradigm: str = "omp",
        schedule: Schedule = Schedule.static(),
        overheads: RuntimeOverheads = DEFAULT_OVERHEADS,
        tracer=None,
        coalesce: bool = True,
        kernel_optimize: bool = True,
        memoize: bool = True,
        handoff: str = "fifo",
        handoff_seed: int = 0,
    ) -> None:
        if paradigm not in ("omp", "cilk", "omp_task"):
            raise EmulationError(f"unknown paradigm {paradigm!r}")
        self.machine = machine
        self.paradigm = paradigm
        self.schedule = schedule
        self.overheads = overheads
        self.coalesce = coalesce
        self.kernel_optimize = kernel_optimize
        self.memoize = memoize
        self.handoff = normalize_handoff(handoff)
        # Only the random policy consumes the seed; normalising it to 0 for
        # the others keeps their memo keys shared across callers.
        self.handoff_seed = handoff_seed if self.handoff == "random" else 0
        #: Sections replayed through the coalesced / exact OpenMP lowering
        #: (fallback diagnostics for tests and benchmarks).
        self.coalesced_sections = 0
        self.exact_sections = 0
        #: Tracer handed to every kernel this executor constructs; the
        #: executor advances ``obs.offset`` between top-level sections so
        #: all per-section kernel runs land on one program-wide timeline.
        self.obs = tracer if tracer is not None else get_tracer()
        #: Runtime invariant checker (``repro.validate``): while enabled, a
        #: deterministic sample of section-memo hits is re-verified against
        #: an exact uncached replay.
        self.inv = get_checker()

    def _make_kernel(self) -> SimKernel:
        return SimKernel(
            self.machine,
            tracer=self.obs,
            optimize=self.kernel_optimize,
            handoff=self.handoff,
            handoff_seed=self.handoff_seed,
        )

    def _bridge_kernel_metrics(self, kernel: SimKernel) -> None:
        """Fold one finished kernel run's counters into the process-wide
        metrics registry.  The DRAM memo hit/miss counters are read here
        (once per section) instead of incrementing the registry inside the
        per-timeslice solve path, keeping the hot loop free of dict lookups.
        """
        m = get_metrics()
        m.inc("replay.sections")
        if kernel.preemptions:
            m.inc("sim.preemptions", kernel.preemptions)
        if kernel.lock_contended:
            m.inc("sim.lock.contended", kernel.lock_contended)
        stats = kernel.dram_cache_stats()
        if stats["hits"]:
            m.inc("dram.solve.hits", stats["hits"])
        if stats["misses"]:
            m.inc("dram.solve.misses", stats["misses"])

    # ----------------------------------------------------------------- API

    def execute_profile(
        self,
        tree: ProgramTree,
        n_threads: int,
        mode: ReplayMode = ReplayMode.REAL,
        burdens: Optional[Mapping[str, float]] = None,
    ) -> ReplayResult:
        """Replay a whole program: top-level sections are executed through
        the parallel runtime, top-level serial nodes pass through unchanged.

        ``burdens`` maps top-level section names to β factors; only FAKE
        replays consume them (REAL replays develop contention naturally).
        """
        burdens = burdens or {}
        total = 0.0
        sections: list[SectionRun] = []
        # The simulation is deterministic, so replaying the *same* section
        # node (dictionary-shared activations, compressed repeats) always
        # yields the same result — memoise per node object.
        cache: dict[int, SectionRun] = {}
        traced = self.obs.enabled
        # Sim-time origin of this program on the shared trace timeline.
        # Each per-section kernel starts its local clock at zero; advancing
        # ``obs.offset`` to the program-relative start of the section before
        # constructing its kernel stitches the runs end to end.
        origin = self.obs.offset
        try:
            for item in self._group_chains(tree.root.children):
                self.obs.offset = origin + total
                t0 = total
                if isinstance(item, Node):
                    if item.kind is NodeKind.U:
                        total += item.length * item.repeat
                        continue
                    beta = (
                        burdens.get(item.name, 1.0)
                        if mode is ReplayMode.FAKE
                        else 1.0
                    )
                    if traced:
                        # The exported timeline must show every repeat, so
                        # bypass the per-call cache (and execute_section
                        # bypasses the memo) and re-run the section per
                        # repeat with one span each.
                        for _ in range(item.repeat):
                            r0 = total
                            self.obs.offset = origin + total
                            run = self.execute_section(
                                item, n_threads, mode, burden=beta
                            )
                            sections.append(run)
                            total += run.net_cycles
                            self.obs.span(
                                run.name,
                                ts=origin + r0,
                                dur=total - r0,
                                track="sections",
                                cat="replay",
                                args={
                                    "mode": mode.value,
                                    "preemptions": run.preemptions,
                                },
                            )
                        continue
                    run = cache.get(id(item))
                    if run is None:
                        run = self.execute_section(
                            item, n_threads, mode, burden=beta
                        )
                        cache[id(item)] = run
                    else:
                        get_metrics().inc("replay.section_cache.hits")
                    sections.extend([run] * item.repeat)
                    total += run.net_cycles * item.repeat
                else:
                    # A nowait chain: one team runs the loops back to back.
                    run = self.execute_chain(item, n_threads, mode, burdens)
                    sections.append(run)
                    total += run.net_cycles
                    if traced:
                        self.obs.span(
                            run.name,
                            ts=origin + t0,
                            dur=total - t0,
                            track="sections",
                            cat="replay",
                            args={
                                "mode": mode.value,
                                "preemptions": run.preemptions,
                            },
                        )
        finally:
            self.obs.offset = origin
        return ReplayResult(
            total_cycles=total,
            serial_cycles=tree.serial_cycles(),
            sections=sections,
        )

    def _group_chains(self, children: list[Node]) -> list:
        """Group ``nowait`` chains for the OpenMP paradigm; the task-pool
        paradigms keep per-section execution with implicit barriers."""
        if self.paradigm != "omp":
            return list(children)
        from repro.core.tree import group_nowait_chains

        return group_nowait_chains(children)

    def execute_chain(
        self,
        secs: list[Node],
        n_threads: int,
        mode: ReplayMode = ReplayMode.REAL,
        burdens: Optional[Mapping[str, float]] = None,
    ) -> SectionRun:
        """Execute a nowait chain of sections as one OpenMP parallel region
        with several worksharing loops (PAR_SEC_END(nowait) semantics)."""
        burdens = burdens or {}
        kernel = self._make_kernel()
        locks: dict[int, SimMutex] = {}
        ohmgr = _OverheadManager()
        omp = OmpRuntime(kernel, self.overheads)

        loops = []
        for sec in secs:
            beta = burdens.get(sec.name, 1.0) if mode is ReplayMode.FAKE else 1.0
            bodies = self._omp_bodies(sec, omp, n_threads, locks, mode, beta, ohmgr)
            loops.append((bodies, self.schedule, sec.nowait))

        def master() -> Generator[Any, Any, None]:
            yield from omp.parallel_loops(loops, n_threads=n_threads)

        kernel.spawn(master(), name="replay-master")
        gross = kernel.run()
        self._bridge_kernel_metrics(kernel)
        return SectionRun(
            name="+".join(sec.name for sec in secs),
            gross_cycles=gross,
            traversal_overhead=ohmgr.longest() if mode is ReplayMode.FAKE else 0.0,
            preemptions=kernel.preemptions,
            steals=0,
            lock_acquires=kernel.lock_acquires,
            lock_contended=kernel.lock_contended,
        )

    def execute_section(
        self,
        sec: Node,
        n_threads: int,
        mode: ReplayMode = ReplayMode.REAL,
        burden: float = 1.0,
    ) -> SectionRun:
        """Execute one top-level parallel section on a fresh kernel.

        Matches the paper's ``EmulTopLevelParSec``: sets the worker count,
        measures gross elapsed cycles, and (FAKE mode) subtracts the longest
        per-worker traversal overhead.  Identical (section, config) pairs
        are served from the cross-grid :class:`SectionMemo` unless tracing
        is enabled (a memo hit would silence the kernel's timeline events).
        """
        if sec.kind is not NodeKind.SEC:
            raise EmulationError(f"execute_section needs a SEC node, got {sec.kind}")
        memo_key = None
        if self.memoize and not self.obs.enabled:
            memo_key = (
                self.machine,
                self.overheads,
                self.paradigm,
                self.schedule,
                mode.value,
                n_threads,
                float(f"{burden:.12g}"),
                self.coalesce,
                self.kernel_optimize,
                # Policy + seed keep explored replays sound: a lifo or
                # seeded-random run must never answer for the fifo point.
                self.handoff,
                self.handoff_seed,
                _node_fingerprint(sec),
            )
            run = _SECTION_MEMO.get(memo_key)
            m = get_metrics()
            if run is not None:
                m.inc("replay.section_memo.hits")
                m.inc("replay.sections")
                if self.inv.enabled and self.inv.sample_memo_hit():
                    fresh = self._execute_section_uncached(
                        sec, n_threads, mode, burden
                    )
                    self.inv.check_memo_parity(
                        run,
                        fresh,
                        where=f"{self.paradigm}/{self.schedule.label}"
                        f"/t={n_threads}/{sec.name}",
                    )
                return run
            m.inc("replay.section_memo.misses")
        run = self._execute_section_uncached(sec, n_threads, mode, burden)
        if memo_key is not None:
            _SECTION_MEMO.put(memo_key, run)
        return run

    def _execute_section_uncached(
        self,
        sec: Node,
        n_threads: int,
        mode: ReplayMode,
        burden: float,
    ) -> SectionRun:
        kernel = self._make_kernel()
        locks: dict[int, SimMutex] = {}
        ohmgr = _OverheadManager()
        steals = 0

        if sec.pipeline:
            from repro.core.pipeline import replay_pipeline_section

            def master() -> Generator[Any, Any, None]:
                yield from replay_pipeline_section(
                    kernel,
                    sec,
                    n_threads,
                    self.machine,
                    real=mode is ReplayMode.REAL,
                    burden=burden,
                    overheads=self.overheads,
                    locks=locks,
                )

            kernel.spawn(master(), name="replay-master")
            gross = kernel.run()
            self._bridge_kernel_metrics(kernel)
            return SectionRun(
                name=sec.name,
                gross_cycles=gross,
                traversal_overhead=0.0,
                preemptions=kernel.preemptions,
                steals=0,
                lock_acquires=kernel.lock_acquires,
                lock_contended=kernel.lock_contended,
            )

        if self.paradigm == "omp":
            omp = OmpRuntime(kernel, self.overheads)
            shares = (
                self._coalesce_shares(sec, n_threads, mode, burden)
                if self.coalesce
                else None
            )
            if shares is not None:
                self.coalesced_sections += 1
                member_bodies = [
                    self._coalesced_member_body(share, mode, ohmgr)
                    for share in shares
                ]

                def master() -> Generator[Any, Any, None]:
                    yield from omp.parallel_aggregated(
                        member_bodies, n_threads=n_threads
                    )

            else:
                self.exact_sections += 1

                def master() -> Generator[Any, Any, None]:
                    bodies = self._omp_bodies(
                        sec, omp, n_threads, locks, mode, burden, ohmgr
                    )
                    yield from omp.parallel_for(
                        bodies, n_threads=n_threads, schedule=self.schedule
                    )

            kernel.spawn(master(), name="replay-master")
            gross = kernel.run()
        elif self.paradigm == "cilk":
            pool = CilkPool(kernel, n_workers=n_threads, overheads=self.overheads)

            def cilk_for_op(ctx, bodies):
                return pool.cilk_for(ctx, bodies)

            bodies = self._pool_bodies(sec, cilk_for_op, locks, mode, burden, ohmgr)

            def root(ctx: CilkContext) -> Generator[Any, Any, None]:
                yield from pool.cilk_for(ctx, bodies)

            def master() -> Generator[Any, Any, None]:
                yield from pool.run(root)

            kernel.spawn(master(), name="replay-master")
            gross = kernel.run()
            steals = pool.steals
        else:  # omp_task
            from repro.runtime.omptask import OmpTaskPool

            task_pool = OmpTaskPool(
                kernel, n_threads=n_threads, overheads=self.overheads
            )

            def task_for_op(ctx, bodies):
                # Bodies already take the executing context, matching
                # OmpTaskBody's signature.
                return ctx.task_loop(bodies)

            bodies = self._pool_bodies(sec, task_for_op, locks, mode, burden, ohmgr)

            def task_root(ctx) -> Generator[Any, Any, None]:
                yield from task_for_op(ctx, bodies)

            def master() -> Generator[Any, Any, None]:
                yield from task_pool.run(task_root)

            kernel.spawn(master(), name="replay-master")
            gross = kernel.run()

        self._bridge_kernel_metrics(kernel)
        return SectionRun(
            name=sec.name,
            gross_cycles=gross,
            traversal_overhead=ohmgr.longest() if mode is ReplayMode.FAKE else 0.0,
            preemptions=kernel.preemptions,
            steals=steals,
            lock_acquires=kernel.lock_acquires,
            lock_contended=kernel.lock_contended,
        )

    # ----------------------------------------------------- coalesced lowering

    def _demand_sig(self, cycles: float, misses: float) -> tuple[float, float]:
        """Quantized (mem-fraction, demand) of one compute — the DRAM
        model's view of a segment.  Same formulas as the kernel's
        ``_attach_segment`` so "equal sig" means "identical contention
        behaviour"."""
        cfg = self.machine
        f = min(1.0, misses * cfg.base_miss_stall / cycles)
        seconds = cfg.cycles_to_seconds(cycles)
        d = misses * cfg.line_size / seconds if seconds > 0 else 0.0
        return (float(f"{f:.12g}"), float(f"{d:.12g}"))

    def _coalesce_shares(
        self,
        sec: Node,
        n_threads: int,
        mode: ReplayMode,
        burden: float,
    ) -> Optional[list[tuple[float, float, float, float, int]]]:
        """Per-member aggregated work shares for an OpenMP section, or
        ``None`` when only the exact expanded lowering is safe.

        Eligible sections are lock-free and leaf-only under a static-family
        schedule.  Demand-free work (every FAKE replay, and REAL sections
        with zero LLC misses) always aggregates exactly: concatenating
        slowdown-1.0 segments is associative.  REAL sections *with* misses
        aggregate only under plain ``static`` when every timed compute
        carries the same quantized demand signature — then each member's
        single fused segment presents the DRAM solver with the same
        (mem-fraction, demand) multiset as the expanded per-iteration
        stream, so contention develops identically.  Anything else (demand
        mixes, round-robin chunk interleaving with misses) would perturb
        the multiset and is handed to the exact path.

        Returns one ``(cycles, instructions, misses, traversal_overhead,
        n_dispatches)`` tuple per team member.
        """
        schedule = self.schedule
        if sec.pipeline or schedule.is_dynamic_family:
            return None
        stall = self.machine.base_miss_stall
        runs: list[tuple[int, float, float, float, float]] = []
        sigs: set = set()
        total_misses = 0.0
        for task in sec.children:
            c = i = m = oh = 0.0
            for node in task.children:
                if node.kind is not NodeKind.U:
                    return None
                if mode is ReplayMode.FAKE:
                    oh += OVERHEAD_ACCESS_NODE
                    c += node.length * burden * node.repeat
                else:
                    cc = (node.cpu_cycles + node.llc_misses * stall) * node.repeat
                    mm = node.llc_misses * node.repeat
                    if mm > 0.0 and cc <= 0.0:
                        # Instant (zero-cycle) misses have no demand in the
                        # expanded lowering; fusing them would invent some.
                        return None
                    c += cc
                    i += node.instructions * node.repeat
                    m += mm
                    if cc > 0.0:
                        sigs.add(self._demand_sig(cc, mm) if mm > 0.0 else None)
            total_misses += m * task.repeat
            runs.append((task.repeat, c, i, m, oh))
        if mode is ReplayMode.REAL and total_misses > 0.0:
            if (
                schedule.kind is not ScheduleKind.STATIC
                or len(sigs) != 1
                or None in sigs
            ):
                return None
        n_iters = sum(r[0] for r in runs)
        bounds = [0]
        for rep, *_ in runs:
            bounds.append(bounds[-1] + rep)
        shares = []
        for tid in range(n_threads):
            wc = wi = wm = woh = 0.0
            owned = 0
            for r, (rep, c, i, m, oh) in enumerate(runs):
                k = self._owned_in(
                    bounds[r], bounds[r + 1], tid, n_iters, n_threads
                )
                if k:
                    owned += k
                    wc += k * c
                    wi += k * i
                    wm += k * m
                    woh += k * oh
            if n_threads == 1:
                # The degenerate inline team dispatches per iteration.
                n_disp = n_iters
            elif schedule.kind is ScheduleKind.STATIC_CHUNK:
                n_disp = -(-owned // schedule.chunk)
            else:
                n_disp = 1 if owned else 0
            shares.append((wc, wi, wm, woh, n_disp))
        return shares

    def _owned_in(
        self, a: int, b: int, tid: int, n_iters: int, n_threads: int
    ) -> int:
        """How many iterations of ``[a, b)`` member ``tid`` owns (closed
        form of ``Schedule.static_assignment`` restricted to a range)."""
        if n_threads == 1:
            return b - a
        if self.schedule.kind is ScheduleKind.STATIC:
            base = n_iters // n_threads
            extra = n_iters % n_threads
            start = tid * base + min(tid, extra)
            end = start + base + (1 if tid < extra else 0)
            return max(0, min(b, end) - max(a, start))
        # static,c: chunk j belongs to tid j % n_threads; count owned
        # iterations below x via the period p = n_threads * c.
        c = self.schedule.chunk
        p = n_threads * c

        def below(x: int) -> int:
            return (x // p) * c + min(max(x % p - tid * c, 0), c)

        return below(b) - below(a)

    def _coalesced_member_body(
        self,
        share: tuple[float, float, float, float, int],
        mode: ReplayMode,
        ohmgr: _OverheadManager,
    ) -> Callable[[], Generator[Any, Any, None]]:
        work, instr, misses, overhead, n_disp = share
        dispatch = n_disp * self.overheads.omp_static_dispatch

        def body() -> Generator[Any, Any, None]:
            if mode is ReplayMode.FAKE and overhead > 0.0:
                me = yield GetCurrentThread()
                ohmgr.add(me.tid, overhead)
            if misses > 0.0:
                # Keep the demand-free dispatch cost out of the missy
                # segment so its mem-fraction matches the per-iteration
                # signature the eligibility check certified.
                if dispatch > 0.0:
                    yield Compute(cycles=dispatch)
                yield Compute(
                    cycles=work, instructions=instr, llc_misses=misses
                )
            else:
                total = dispatch + work + overhead
                if total > 0.0 or instr > 0.0:
                    yield Compute(cycles=total, instructions=instr)

        return body

    # ------------------------------------------------------------- lowering

    def _leaf_compute(self, node: Node, mode: ReplayMode, burden: float) -> Compute:
        if mode is ReplayMode.REAL:
            base = node.cpu_cycles + node.llc_misses * self.machine.base_miss_stall
            return Compute(
                cycles=base,
                instructions=node.instructions,
                llc_misses=node.llc_misses,
            )
        # FakeDelay(node.length * burden): spins without touching memory.
        return Compute(cycles=node.length * burden)

    def _node_visit_overhead(
        self, mode: ReplayMode, ohmgr: _OverheadManager, recursive: bool = False
    ) -> Generator[Any, Any, None]:
        if mode is not ReplayMode.FAKE:
            return
        cost = OVERHEAD_ACCESS_NODE + (OVERHEAD_RECURSIVE_CALL if recursive else 0.0)
        me = yield GetCurrentThread()
        ohmgr.add(me.tid, cost)
        yield Compute(cycles=cost)

    def _omp_bodies(
        self,
        sec: Node,
        omp: OmpRuntime,
        n_threads: int,
        locks: dict[int, SimMutex],
        mode: ReplayMode,
        burden: float,
        ohmgr: _OverheadManager,
    ) -> list[Callable[[], Generator[Any, Any, None]]]:
        bodies: list[Callable[[], Generator[Any, Any, None]]] = []
        for task in sec.children:
            factory = self._omp_task_body(task, omp, n_threads, locks, mode, burden, ohmgr)
            bodies.extend([factory] * task.repeat)
        return bodies

    def _omp_task_body(
        self,
        task: Node,
        omp: OmpRuntime,
        n_threads: int,
        locks: dict[int, SimMutex],
        mode: ReplayMode,
        burden: float,
        ohmgr: _OverheadManager,
    ) -> Callable[[], Generator[Any, Any, None]]:
        executor = self

        def body() -> Generator[Any, Any, None]:
            for node in task.children:
                yield from executor._node_visit_overhead(
                    mode, ohmgr, recursive=node.kind is NodeKind.SEC
                )
                if node.kind is NodeKind.U:
                    req = executor._leaf_compute(node, mode, burden)
                    yield Compute(
                        cycles=req.cycles * node.repeat,
                        instructions=req.instructions * node.repeat,
                        llc_misses=req.llc_misses * node.repeat,
                    )
                elif node.kind is NodeKind.L:
                    mutex = locks.setdefault(node.lock_id, SimMutex(f"lock{node.lock_id}"))
                    for _ in range(node.repeat):
                        yield Compute(cycles=executor.overheads.omp_lock_acquire)
                        yield Acquire(mutex)
                        yield executor._leaf_compute(node, mode, burden)
                        yield Release(mutex)
                        yield Compute(cycles=executor.overheads.omp_lock_release)
                elif node.kind is NodeKind.SEC:
                    sub = executor._omp_bodies(
                        node, omp, n_threads, locks, mode, burden, ohmgr
                    )
                    for _ in range(node.repeat):
                        yield from omp.parallel_for(
                            sub, n_threads=n_threads, schedule=executor.schedule
                        )
                else:  # pragma: no cover - validated trees
                    raise EmulationError(f"bad node inside task: {node!r}")

        return body

    def _pool_bodies(
        self,
        sec: Node,
        for_op: Callable[[Any, list], Generator[Any, Any, None]],
        locks: dict[int, SimMutex],
        mode: ReplayMode,
        burden: float,
        ohmgr: _OverheadManager,
    ) -> list[Callable[[Any], Generator[Any, Any, None]]]:
        """Task bodies for a task-pool paradigm (Cilk / OpenMP tasking).

        Bodies take the executing context; ``for_op(ctx, bodies)`` runs a
        group of bodies in parallel within that context (``cilk_for`` or an
        OpenMP task group).
        """
        bodies: list[Callable[[Any], Generator[Any, Any, None]]] = []
        for task in sec.children:
            factory = self._pool_task_body(task, for_op, locks, mode, burden, ohmgr)
            bodies.extend([factory] * task.repeat)
        return bodies

    def _pool_task_body(
        self,
        task: Node,
        for_op: Callable[[Any, list], Generator[Any, Any, None]],
        locks: dict[int, SimMutex],
        mode: ReplayMode,
        burden: float,
        ohmgr: _OverheadManager,
    ) -> Callable[[Any], Generator[Any, Any, None]]:
        executor = self

        def body(ctx) -> Generator[Any, Any, None]:
            for node in task.children:
                yield from executor._node_visit_overhead(
                    mode, ohmgr, recursive=node.kind is NodeKind.SEC
                )
                if node.kind is NodeKind.U:
                    req = executor._leaf_compute(node, mode, burden)
                    yield Compute(
                        cycles=req.cycles * node.repeat,
                        instructions=req.instructions * node.repeat,
                        llc_misses=req.llc_misses * node.repeat,
                    )
                elif node.kind is NodeKind.L:
                    mutex = locks.setdefault(node.lock_id, SimMutex(f"lock{node.lock_id}"))
                    for _ in range(node.repeat):
                        yield Acquire(mutex)
                        yield executor._leaf_compute(node, mode, burden)
                        yield Release(mutex)
                elif node.kind is NodeKind.SEC:
                    # Nested parallelism in the context of the worker
                    # actually executing this body: a nested cilk_for or an
                    # OpenMP task group — the pool schedules the rest (why
                    # these paradigms shine on Fig. 1(b) patterns).
                    sub = executor._pool_bodies(
                        node, for_op, locks, mode, burden, ohmgr
                    )
                    for _ in range(node.repeat):
                        yield from for_op(ctx, sub)
                else:  # pragma: no cover - validated trees
                    raise EmulationError(f"bad node inside task: {node!r}")

        return body
