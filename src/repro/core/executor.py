"""Program-tree replay on the simulated machine.

One replay engine serves two roles:

- ``ReplayMode.REAL`` — **ground truth**: each leaf re-runs its actual work
  (pure-CPU cycles + LLC misses), so DRAM contention, lock contention, OS
  preemption, and runtime overheads all interact exactly as they would in
  the actually-parallelized program.  This stands in for the paper's
  hand-parallelized OpenMP/Cilk code measured on real hardware ("Real" in
  Figs. 2, 11, 12).
- ``ReplayMode.FAKE`` — the **synthesizer's generated program**: each leaf
  becomes a burden-scaled pure delay (the paper's ``FakeDelay``), locks are
  real simulated mutexes, nested sections become recursive parallel
  constructs, and the per-node tree-traversal overhead is charged and
  tracked per worker so it can be subtracted afterwards (Section IV-E).

Crucially the FAKE path consumes only what the profiler can observe —
measured net lengths and per-section burden factors — never the leaves'
ground-truth work composition, so predictions are honest.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, Mapping, Optional

from repro.core.tree import Node, NodeKind, ProgramTree
from repro.errors import EmulationError
from repro.obs import get_metrics, get_tracer
from repro.runtime.cilk import CilkContext, CilkPool
from repro.runtime.openmp import OmpRuntime
from repro.runtime.overhead import DEFAULT_OVERHEADS, RuntimeOverheads
from repro.runtime.tasks import Schedule
from repro.simhw.machine import MachineConfig
from repro.simos import (
    Acquire,
    Compute,
    GetCurrentThread,
    Release,
    SimKernel,
    SimMutex,
)


class ReplayMode(enum.Enum):
    """REAL = ground-truth work replay; FAKE = synthesizer fake delays."""

    REAL = "real"
    FAKE = "fake"


#: Synthesizer per-node traversal costs (paper Section IV-E: "these two units
#: of overhead on our machine are both approximately 50 cycles").
OVERHEAD_ACCESS_NODE = 50.0
OVERHEAD_RECURSIVE_CALL = 50.0


class _OverheadManager:
    """Per-worker traversal overhead, as in the paper's Fig. 8 pseudo-code."""

    def __init__(self) -> None:
        self.per_thread: dict[int, float] = {}

    def add(self, tid: int, amount: float) -> None:
        self.per_thread[tid] = self.per_thread.get(tid, 0.0) + amount

    def longest(self) -> float:
        return max(self.per_thread.values(), default=0.0)


@dataclass
class SectionRun:
    """Result of emulating/executing one top-level parallel section."""

    name: str
    gross_cycles: float
    traversal_overhead: float
    preemptions: int
    steals: int

    @property
    def net_cycles(self) -> float:
        """Gross time minus the longest per-worker traversal overhead
        (Fig. 8 line 26); equals gross for REAL replays."""
        return max(0.0, self.gross_cycles - self.traversal_overhead)


@dataclass
class ReplayResult:
    """Whole-program replay outcome."""

    total_cycles: float
    serial_cycles: float
    sections: list[SectionRun] = field(default_factory=list)

    @property
    def speedup(self) -> float:
        if self.total_cycles <= 0:
            return 1.0
        return self.serial_cycles / self.total_cycles


class ParallelExecutor:
    """Replays program trees through the simulated runtimes.

    Parameters
    ----------
    machine:
        Target machine (``n_cores`` bounds real concurrency; thread counts
        above it oversubscribe, as on real hardware).
    paradigm:
        ``"omp"`` (fork/join teams; nested sections spawn nested *physical*
        teams — OpenMP 2.0's weakness on recursion), ``"cilk"`` (one
        work-stealing pool; nested sections become nested ``cilk_for``
        ranges), or ``"omp_task"`` (OpenMP 3.0 tasking: one team draining a
        shared task queue; nested sections become task groups).
    schedule:
        OpenMP loop schedule; ignored by the Cilk paradigm.
    overheads:
        Runtime overhead constants, shared with the FF emulator.
    """

    def __init__(
        self,
        machine: MachineConfig,
        paradigm: str = "omp",
        schedule: Schedule = Schedule.static(),
        overheads: RuntimeOverheads = DEFAULT_OVERHEADS,
        tracer=None,
    ) -> None:
        if paradigm not in ("omp", "cilk", "omp_task"):
            raise EmulationError(f"unknown paradigm {paradigm!r}")
        self.machine = machine
        self.paradigm = paradigm
        self.schedule = schedule
        self.overheads = overheads
        #: Tracer handed to every kernel this executor constructs; the
        #: executor advances ``obs.offset`` between top-level sections so
        #: all per-section kernel runs land on one program-wide timeline.
        self.obs = tracer if tracer is not None else get_tracer()

    def _bridge_kernel_metrics(self, kernel: SimKernel) -> None:
        """Fold one finished kernel run's counters into the process-wide
        metrics registry.  The DRAM memo hit/miss counters are read here
        (once per section) instead of incrementing the registry inside the
        per-timeslice solve path, keeping the hot loop free of dict lookups.
        """
        m = get_metrics()
        m.inc("replay.sections")
        if kernel.preemptions:
            m.inc("sim.preemptions", kernel.preemptions)
        stats = kernel.dram_cache_stats()
        if stats["hits"]:
            m.inc("dram.solve.hits", stats["hits"])
        if stats["misses"]:
            m.inc("dram.solve.misses", stats["misses"])

    # ----------------------------------------------------------------- API

    def execute_profile(
        self,
        tree: ProgramTree,
        n_threads: int,
        mode: ReplayMode = ReplayMode.REAL,
        burdens: Optional[Mapping[str, float]] = None,
    ) -> ReplayResult:
        """Replay a whole program: top-level sections are executed through
        the parallel runtime, top-level serial nodes pass through unchanged.

        ``burdens`` maps top-level section names to β factors; only FAKE
        replays consume them (REAL replays develop contention naturally).
        """
        burdens = burdens or {}
        total = 0.0
        sections: list[SectionRun] = []
        # The simulation is deterministic, so replaying the *same* section
        # node (dictionary-shared activations, compressed repeats) always
        # yields the same result — memoise per node object.
        cache: dict[int, SectionRun] = {}
        traced = self.obs.enabled
        # Sim-time origin of this program on the shared trace timeline.
        # Each per-section kernel starts its local clock at zero; advancing
        # ``obs.offset`` to the program-relative start of the section before
        # constructing its kernel stitches the runs end to end.
        origin = self.obs.offset
        try:
            for item in self._group_chains(tree.root.children):
                self.obs.offset = origin + total
                t0 = total
                if isinstance(item, Node):
                    if item.kind is NodeKind.U:
                        total += item.length * item.repeat
                        continue
                    beta = (
                        burdens.get(item.name, 1.0)
                        if mode is ReplayMode.FAKE
                        else 1.0
                    )
                    run = cache.get(id(item))
                    if run is None:
                        run = self.execute_section(
                            item, n_threads, mode, burden=beta
                        )
                        cache[id(item)] = run
                    else:
                        get_metrics().inc("replay.section_cache.hits")
                    sections.extend([run] * item.repeat)
                    total += run.net_cycles * item.repeat
                else:
                    # A nowait chain: one team runs the loops back to back.
                    run = self.execute_chain(item, n_threads, mode, burdens)
                    sections.append(run)
                    total += run.net_cycles
                if traced:
                    self.obs.span(
                        run.name,
                        ts=origin + t0,
                        dur=total - t0,
                        track="sections",
                        cat="replay",
                        args={
                            "mode": mode.value,
                            "preemptions": run.preemptions,
                        },
                    )
        finally:
            self.obs.offset = origin
        return ReplayResult(
            total_cycles=total,
            serial_cycles=tree.serial_cycles(),
            sections=sections,
        )

    def _group_chains(self, children: list[Node]) -> list:
        """Group ``nowait`` chains for the OpenMP paradigm; the task-pool
        paradigms keep per-section execution with implicit barriers."""
        if self.paradigm != "omp":
            return list(children)
        from repro.core.tree import group_nowait_chains

        return group_nowait_chains(children)

    def execute_chain(
        self,
        secs: list[Node],
        n_threads: int,
        mode: ReplayMode = ReplayMode.REAL,
        burdens: Optional[Mapping[str, float]] = None,
    ) -> SectionRun:
        """Execute a nowait chain of sections as one OpenMP parallel region
        with several worksharing loops (PAR_SEC_END(nowait) semantics)."""
        burdens = burdens or {}
        kernel = SimKernel(self.machine, tracer=self.obs)
        locks: dict[int, SimMutex] = {}
        ohmgr = _OverheadManager()
        omp = OmpRuntime(kernel, self.overheads)

        loops = []
        for sec in secs:
            beta = burdens.get(sec.name, 1.0) if mode is ReplayMode.FAKE else 1.0
            bodies = self._omp_bodies(sec, omp, n_threads, locks, mode, beta, ohmgr)
            loops.append((bodies, self.schedule, sec.nowait))

        def master() -> Generator[Any, Any, None]:
            yield from omp.parallel_loops(loops, n_threads=n_threads)

        kernel.spawn(master(), name="replay-master")
        gross = kernel.run()
        self._bridge_kernel_metrics(kernel)
        return SectionRun(
            name="+".join(sec.name for sec in secs),
            gross_cycles=gross,
            traversal_overhead=ohmgr.longest() if mode is ReplayMode.FAKE else 0.0,
            preemptions=kernel.preemptions,
            steals=0,
        )

    def execute_section(
        self,
        sec: Node,
        n_threads: int,
        mode: ReplayMode = ReplayMode.REAL,
        burden: float = 1.0,
    ) -> SectionRun:
        """Execute one top-level parallel section on a fresh kernel.

        Matches the paper's ``EmulTopLevelParSec``: sets the worker count,
        measures gross elapsed cycles, and (FAKE mode) subtracts the longest
        per-worker traversal overhead.
        """
        if sec.kind is not NodeKind.SEC:
            raise EmulationError(f"execute_section needs a SEC node, got {sec.kind}")
        kernel = SimKernel(self.machine, tracer=self.obs)
        locks: dict[int, SimMutex] = {}
        ohmgr = _OverheadManager()
        steals = 0

        if sec.pipeline:
            from repro.core.pipeline import replay_pipeline_section

            def master() -> Generator[Any, Any, None]:
                yield from replay_pipeline_section(
                    kernel,
                    sec,
                    n_threads,
                    self.machine,
                    real=mode is ReplayMode.REAL,
                    burden=burden,
                    overheads=self.overheads,
                    locks=locks,
                )

            kernel.spawn(master(), name="replay-master")
            gross = kernel.run()
            self._bridge_kernel_metrics(kernel)
            return SectionRun(
                name=sec.name,
                gross_cycles=gross,
                traversal_overhead=0.0,
                preemptions=kernel.preemptions,
                steals=0,
            )

        if self.paradigm == "omp":
            omp = OmpRuntime(kernel, self.overheads)

            def master() -> Generator[Any, Any, None]:
                bodies = self._omp_bodies(sec, omp, n_threads, locks, mode, burden, ohmgr)
                yield from omp.parallel_for(
                    bodies, n_threads=n_threads, schedule=self.schedule
                )

            kernel.spawn(master(), name="replay-master")
            gross = kernel.run()
        elif self.paradigm == "cilk":
            pool = CilkPool(kernel, n_workers=n_threads, overheads=self.overheads)

            def cilk_for_op(ctx, bodies):
                return pool.cilk_for(ctx, bodies)

            bodies = self._pool_bodies(sec, cilk_for_op, locks, mode, burden, ohmgr)

            def root(ctx: CilkContext) -> Generator[Any, Any, None]:
                yield from pool.cilk_for(ctx, bodies)

            def master() -> Generator[Any, Any, None]:
                yield from pool.run(root)

            kernel.spawn(master(), name="replay-master")
            gross = kernel.run()
            steals = pool.steals
        else:  # omp_task
            from repro.runtime.omptask import OmpTaskPool

            task_pool = OmpTaskPool(
                kernel, n_threads=n_threads, overheads=self.overheads
            )

            def task_for_op(ctx, bodies):
                # Bodies already take the executing context, matching
                # OmpTaskBody's signature.
                return ctx.task_loop(bodies)

            bodies = self._pool_bodies(sec, task_for_op, locks, mode, burden, ohmgr)

            def task_root(ctx) -> Generator[Any, Any, None]:
                yield from task_for_op(ctx, bodies)

            def master() -> Generator[Any, Any, None]:
                yield from task_pool.run(task_root)

            kernel.spawn(master(), name="replay-master")
            gross = kernel.run()

        self._bridge_kernel_metrics(kernel)
        return SectionRun(
            name=sec.name,
            gross_cycles=gross,
            traversal_overhead=ohmgr.longest() if mode is ReplayMode.FAKE else 0.0,
            preemptions=kernel.preemptions,
            steals=steals,
        )

    # ------------------------------------------------------------- lowering

    def _leaf_compute(self, node: Node, mode: ReplayMode, burden: float) -> Compute:
        if mode is ReplayMode.REAL:
            base = node.cpu_cycles + node.llc_misses * self.machine.base_miss_stall
            return Compute(
                cycles=base,
                instructions=node.instructions,
                llc_misses=node.llc_misses,
            )
        # FakeDelay(node.length * burden): spins without touching memory.
        return Compute(cycles=node.length * burden)

    def _node_visit_overhead(
        self, mode: ReplayMode, ohmgr: _OverheadManager, recursive: bool = False
    ) -> Generator[Any, Any, None]:
        if mode is not ReplayMode.FAKE:
            return
        cost = OVERHEAD_ACCESS_NODE + (OVERHEAD_RECURSIVE_CALL if recursive else 0.0)
        me = yield GetCurrentThread()
        ohmgr.add(me.tid, cost)
        yield Compute(cycles=cost)

    def _omp_bodies(
        self,
        sec: Node,
        omp: OmpRuntime,
        n_threads: int,
        locks: dict[int, SimMutex],
        mode: ReplayMode,
        burden: float,
        ohmgr: _OverheadManager,
    ) -> list[Callable[[], Generator[Any, Any, None]]]:
        bodies: list[Callable[[], Generator[Any, Any, None]]] = []
        for task in sec.children:
            factory = self._omp_task_body(task, omp, n_threads, locks, mode, burden, ohmgr)
            bodies.extend([factory] * task.repeat)
        return bodies

    def _omp_task_body(
        self,
        task: Node,
        omp: OmpRuntime,
        n_threads: int,
        locks: dict[int, SimMutex],
        mode: ReplayMode,
        burden: float,
        ohmgr: _OverheadManager,
    ) -> Callable[[], Generator[Any, Any, None]]:
        executor = self

        def body() -> Generator[Any, Any, None]:
            for node in task.children:
                yield from executor._node_visit_overhead(
                    mode, ohmgr, recursive=node.kind is NodeKind.SEC
                )
                if node.kind is NodeKind.U:
                    req = executor._leaf_compute(node, mode, burden)
                    yield Compute(
                        cycles=req.cycles * node.repeat,
                        instructions=req.instructions * node.repeat,
                        llc_misses=req.llc_misses * node.repeat,
                    )
                elif node.kind is NodeKind.L:
                    mutex = locks.setdefault(node.lock_id, SimMutex(f"lock{node.lock_id}"))
                    for _ in range(node.repeat):
                        yield Compute(cycles=executor.overheads.omp_lock_acquire)
                        yield Acquire(mutex)
                        yield executor._leaf_compute(node, mode, burden)
                        yield Release(mutex)
                        yield Compute(cycles=executor.overheads.omp_lock_release)
                elif node.kind is NodeKind.SEC:
                    sub = executor._omp_bodies(
                        node, omp, n_threads, locks, mode, burden, ohmgr
                    )
                    for _ in range(node.repeat):
                        yield from omp.parallel_for(
                            sub, n_threads=n_threads, schedule=executor.schedule
                        )
                else:  # pragma: no cover - validated trees
                    raise EmulationError(f"bad node inside task: {node!r}")

        return body

    def _pool_bodies(
        self,
        sec: Node,
        for_op: Callable[[Any, list], Generator[Any, Any, None]],
        locks: dict[int, SimMutex],
        mode: ReplayMode,
        burden: float,
        ohmgr: _OverheadManager,
    ) -> list[Callable[[Any], Generator[Any, Any, None]]]:
        """Task bodies for a task-pool paradigm (Cilk / OpenMP tasking).

        Bodies take the executing context; ``for_op(ctx, bodies)`` runs a
        group of bodies in parallel within that context (``cilk_for`` or an
        OpenMP task group).
        """
        bodies: list[Callable[[Any], Generator[Any, Any, None]]] = []
        for task in sec.children:
            factory = self._pool_task_body(task, for_op, locks, mode, burden, ohmgr)
            bodies.extend([factory] * task.repeat)
        return bodies

    def _pool_task_body(
        self,
        task: Node,
        for_op: Callable[[Any, list], Generator[Any, Any, None]],
        locks: dict[int, SimMutex],
        mode: ReplayMode,
        burden: float,
        ohmgr: _OverheadManager,
    ) -> Callable[[Any], Generator[Any, Any, None]]:
        executor = self

        def body(ctx) -> Generator[Any, Any, None]:
            for node in task.children:
                yield from executor._node_visit_overhead(
                    mode, ohmgr, recursive=node.kind is NodeKind.SEC
                )
                if node.kind is NodeKind.U:
                    req = executor._leaf_compute(node, mode, burden)
                    yield Compute(
                        cycles=req.cycles * node.repeat,
                        instructions=req.instructions * node.repeat,
                        llc_misses=req.llc_misses * node.repeat,
                    )
                elif node.kind is NodeKind.L:
                    mutex = locks.setdefault(node.lock_id, SimMutex(f"lock{node.lock_id}"))
                    for _ in range(node.repeat):
                        yield Acquire(mutex)
                        yield executor._leaf_compute(node, mode, burden)
                        yield Release(mutex)
                elif node.kind is NodeKind.SEC:
                    # Nested parallelism in the context of the worker
                    # actually executing this body: a nested cilk_for or an
                    # OpenMP task group — the pool schedules the rest (why
                    # these paradigms shine on Fig. 1(b) patterns).
                    sub = executor._pool_bodies(
                        node, for_op, locks, mode, burden, ohmgr
                    )
                    for _ in range(node.repeat):
                        yield from for_op(ctx, sub)
                else:  # pragma: no cover - validated trees
                    raise EmulationError(f"bad node inside task: {node!r}")

        return body
