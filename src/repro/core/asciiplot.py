"""Terminal line charts for speedup curves.

The paper's evaluation is figures; the bench harness regenerates their data
as tables *and* renders them as ASCII charts so the shapes (linearity,
saturation, crossovers) are visible at a glance in CI logs.  No plotting
dependency is available offline, so this is a tiny self-contained renderer.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

#: Series glyphs, assigned in insertion order.
_MARKS = "ox+*#@%&"


def speedup_chart(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[int],
    height: int = 12,
    width_per_point: int = 6,
    y_label: str = "speedup",
    ideal: bool = True,
) -> str:
    """Render speedup-vs-threads curves as an ASCII chart.

    ``series`` maps a label to one y-value per ``x_values`` entry (thread
    counts).  With ``ideal=True`` the y=x line is drawn with ``.`` as the
    reference the paper's figures all carry.
    """
    names = list(series)
    if not names or not x_values:
        return "(no data)"
    for name in names:
        if len(series[name]) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points, "
                f"expected {len(x_values)}"
            )

    y_max = max(max(v) for v in series.values())
    if ideal:
        y_max = max(y_max, float(max(x_values)))
    y_max = max(y_max, 1.0)

    n_cols = len(x_values) * width_per_point
    grid = [[" "] * n_cols for _ in range(height)]

    def row_of(y: float) -> int:
        frac = min(1.0, max(0.0, y / y_max))
        return int(round((height - 1) * (1.0 - frac)))

    def col_of(idx: int) -> int:
        return idx * width_per_point + width_per_point // 2

    if ideal:
        for i, x in enumerate(x_values):
            grid[row_of(float(x))][col_of(i)] = "."

    # Draw in reverse so the first-listed series (usually "Real") wins
    # cells where curves overlap.
    for mark, name in reversed(list(zip(_MARKS, names))):
        prev: Optional[tuple[int, int]] = None
        for i, y in enumerate(series[name]):
            r, c = row_of(y), col_of(i)
            # Light connecting segments (vertical interpolation midway).
            if prev is not None:
                pr, pc = prev
                mid_c = (pc + c) // 2
                mid_r = (pr + r) // 2
                if grid[mid_r][mid_c] == " ":
                    grid[mid_r][mid_c] = "-"
            grid[r][c] = mark
            prev = (r, c)

    lines = []
    for r, row in enumerate(grid):
        y_at = y_max * (1.0 - r / (height - 1))
        axis = f"{y_at:6.1f} |" if r % 2 == 0 else "       |"
        lines.append(axis + "".join(row))
    lines.append("       +" + "-" * n_cols)
    ticks = "".join(f"{x:^{width_per_point}}" for x in x_values)
    lines.append("        " + ticks + "  threads")
    legend = "   ".join(
        f"{mark}={name}" for mark, name in zip(_MARKS, names)
    )
    if ideal:
        legend += "   .=ideal"
    lines.append("        " + legend)
    return "\n".join(lines)
