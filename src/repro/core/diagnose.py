"""Bottleneck diagnosis per parallel section.

The paper's Table III positions the fast-forward emulator as "ideal for:
to see inherent scalability and diagnose bottleneck".  This module makes
that concrete: for each top-level section it attributes the gap between the
ideal speedup (t×) and the predicted speedup to four causes by knockout
emulation — re-emulating with one factor idealised at a time:

- **imbalance** — re-emulate with every task cost replaced by the mean;
- **lock contention** — re-emulate with L nodes converted to plain U work;
- **parallel overhead** — re-emulate with zero runtime overheads;
- **memory contention** — re-emulate with burden factor 1.

Each knockout's speedup gain is that factor's *attribution*; the residual
(work ≠ t·chunks quantisation, serial fractions) is reported as
``structure``.  Knockouts use the FF emulator, so a full diagnosis costs
five fast analytical passes per section.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ffemu import FastForwardEmulator
from repro.core.profiler import ProgramProfile
from repro.core.tree import Node, NodeKind
from repro.runtime.overhead import DEFAULT_OVERHEADS, RuntimeOverheads
from repro.runtime.tasks import Schedule


@dataclass
class SectionDiagnosis:
    """Loss attribution for one top-level section at one thread count."""

    name: str
    n_threads: int
    predicted_speedup: float
    ideal_speedup: float
    #: Speedup gained by idealising each factor, largest first.
    attributions: dict[str, float] = field(default_factory=dict)

    @property
    def lost_speedup(self) -> float:
        return max(0.0, self.ideal_speedup - self.predicted_speedup)

    def dominant_cause(self) -> str:
        """The factor whose knockout recovers the most speedup."""
        if not self.attributions:
            return "structure"
        name, gain = max(self.attributions.items(), key=lambda kv: kv[1])
        # Anything under 2% of ideal is noise: call it structural.
        if gain < 0.02 * self.ideal_speedup:
            return "structure"
        return name

    def summary(self) -> str:
        """One-line human-readable rendering of this diagnosis."""
        parts = ", ".join(
            f"{k}: +{v:.2f}x" for k, v in sorted(
                self.attributions.items(), key=lambda kv: -kv[1]
            )
        )
        return (
            f"{self.name}: {self.predicted_speedup:.2f}x of "
            f"{self.ideal_speedup:.0f}x ideal — dominant cause "
            f"{self.dominant_cause()} ({parts})"
        )


class BottleneckDiagnoser:
    """Knockout-based loss attribution over program profiles."""

    def __init__(
        self,
        overheads: RuntimeOverheads = DEFAULT_OVERHEADS,
        schedule: Schedule = Schedule.static(),
    ) -> None:
        self.overheads = overheads
        self.schedule = schedule

    # ------------------------------------------------------------------ API

    def diagnose(
        self, profile: ProgramProfile, n_threads: int
    ) -> list[SectionDiagnosis]:
        """Diagnose every top-level section of ``profile``.

        Sections sharing a name (repeated activations, e.g. LU's per-k
        inner loop) are aggregated into one diagnosis, weighted by their
        serial time, in first-appearance order.
        """
        per_name: dict[str, list[tuple[float, SectionDiagnosis]]] = {}
        order: list[str] = []
        seen_nodes: set[int] = set()
        for sec in profile.tree.top_level_sections():
            if id(sec) in seen_nodes:
                continue  # dictionary-shared activation: already diagnosed
            seen_nodes.add(id(sec))
            diag = self.diagnose_section(profile, sec, n_threads)
            weight = sec.subtree_length()
            if sec.name not in per_name:
                order.append(sec.name)
            per_name.setdefault(sec.name, []).append((weight, diag))

        out = []
        for name in order:
            entries = per_name[name]
            total_w = sum(w for w, _ in entries) or 1.0

            def wavg(get) -> float:
                return sum(w * get(d) for w, d in entries) / total_w

            merged = SectionDiagnosis(
                name=name,
                n_threads=n_threads,
                predicted_speedup=wavg(lambda d: d.predicted_speedup),
                ideal_speedup=float(n_threads),
                attributions={
                    cause: wavg(lambda d, c=cause: d.attributions[c])
                    for cause in entries[0][1].attributions
                },
            )
            out.append(merged)
        return out

    def diagnose_section(
        self, profile: ProgramProfile, sec: Node, n_threads: int
    ) -> SectionDiagnosis:
        """Diagnose one section activation via the four knockouts."""
        burden = profile.burden_for(sec.name, n_threads)
        base = self._speedup(sec, n_threads, self.overheads, burden)

        variants = {
            "imbalance": (self._balanced(sec), self.overheads, burden),
            "locks": (self._unlocked(sec), self.overheads, burden),
            "overhead": (sec, self.overheads.scaled(0.0), burden),
            "memory": (sec, self.overheads, 1.0),
        }
        attributions = {}
        for cause, (variant_sec, oh, beta) in variants.items():
            knocked = self._speedup(variant_sec, n_threads, oh, beta)
            attributions[cause] = max(0.0, knocked - base)

        return SectionDiagnosis(
            name=sec.name,
            n_threads=n_threads,
            predicted_speedup=base,
            ideal_speedup=float(n_threads),
            attributions=attributions,
        )

    # ------------------------------------------------------------- internals

    def _speedup(
        self, sec: Node, t: int, overheads: RuntimeOverheads, burden: float
    ) -> float:
        ff = FastForwardEmulator(overheads)
        cycles = ff.emulate_section(sec, t, self.schedule, burden=burden)
        serial = sec.subtree_length() / sec.repeat
        return serial / cycles if cycles > 0 else 1.0

    def _balanced(self, sec: Node) -> Node:
        """The section with every task's leaf lengths scaled so all tasks
        cost the mean — structure (locks, nesting) preserved, only the
        imbalance removed."""
        tasks = sec.children
        if not tasks:
            return sec
        total = sum(t.subtree_length() for t in tasks)
        n_logical = sum(t.repeat for t in tasks)
        mean = total / max(1, n_logical)

        def scaled(node: Node, factor: float) -> Node:
            clone = node.copy_shallow()
            if clone.is_leaf:
                clone.length *= factor
                clone.cpu_cycles *= factor
                clone.instructions *= factor
                clone.llc_misses *= factor
            clone.children = [scaled(c, factor) for c in node.children]
            return clone

        out = sec.copy_shallow()
        out.children = []
        for task in tasks:
            per_instance = task.subtree_length() / task.repeat
            factor = mean / per_instance if per_instance > 0 else 1.0
            out.children.append(scaled(task, factor))
        return out

    def _unlocked(self, sec: Node) -> Node:
        """The section with every L node demoted to lock-free U work."""

        def demote(node: Node) -> Node:
            if node.kind is NodeKind.L:
                u = Node(
                    NodeKind.U,
                    node.name,
                    length=node.length,
                    repeat=node.repeat,
                    cpu_cycles=node.cpu_cycles,
                    instructions=node.instructions,
                    llc_misses=node.llc_misses,
                )
                return u
            clone = node.copy_shallow()
            clone.children = [demote(c) for c in node.children]
            return clone

        return demote(sec)
