"""The burden-factor memory performance model (paper Section V).

The model predicts the slowdown a parallel section suffers purely from
memory-system contention.  Per top-level section it consumes only serial
hardware counters — instructions N, elapsed cycles T, LLC misses D — and the
machine calibration (Ψ, Φ from :mod:`repro.core.microbench`):

1. δ  = traffic of the serial section (from D, line size, T);
2. ω  = Φ(δ)  — serial stall cycles per miss;
3. CPI$ = (T − ω·D) / N  — Eq. 1 rearranged: the compute-only CPI;
4. δᵗ = Ψₜ(δ) — Eq. 4: per-thread achieved traffic at t threads;
5. ωᵗ = Φ(δᵗ) — Eq. 5: stall per miss under that contention;
6. βᵗ = (CPI$ + MPI·ωᵗ) / (CPI$ + MPI·ω) — Eq. 3.

Assumption 5 guard: βᵗ = 1 when MPI < 0.001 or δ is below the calibrated
validity threshold; βᵗ is clamped to ≥ 1 (no super-linear modelling).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.microbench import CalibrationResult
from repro.core.profiler import ProgramProfile, SectionCounters
from repro.errors import CalibrationError
from repro.simhw.machine import MachineConfig

#: MPI below which a section is treated as cache-resident (assumption 5).
MPI_THRESHOLD = 0.001

#: A burden table: thread count -> β.
BurdenTable = dict[int, float]


class TrafficLevel(enum.Enum):
    """Columns of the paper's Table IV."""

    LOW = "Low"
    MODERATE = "Moderate"
    HEAVY = "Heavy"


class MissVariation(enum.Enum):
    """Rows of the paper's Table IV (LLC miss/instr from serial → parallel)."""

    INCREASES = "Par >> Ser"
    UNCHANGED = "Par ~= Ser"
    DECREASES = "Par << Ser"


#: Table IV — expected speedup classification.  Only the UNCHANGED row is
#: predicted by the lightweight model (the paper's explicit scope).
EXPECTED_BEHAVIOR: dict[tuple[MissVariation, TrafficLevel], str] = {
    (MissVariation.INCREASES, TrafficLevel.LOW): "Likely scalable",
    (MissVariation.INCREASES, TrafficLevel.MODERATE): "Slowdown+",
    (MissVariation.INCREASES, TrafficLevel.HEAVY): "Slowdown++",
    (MissVariation.UNCHANGED, TrafficLevel.LOW): "Scalable",
    (MissVariation.UNCHANGED, TrafficLevel.MODERATE): "Slowdown",
    (MissVariation.UNCHANGED, TrafficLevel.HEAVY): "Slowdown++",
    (MissVariation.DECREASES, TrafficLevel.LOW): "Scalable or superlinear",
    (MissVariation.DECREASES, TrafficLevel.MODERATE): "-",
    (MissVariation.DECREASES, TrafficLevel.HEAVY): "-",
}


def classify_memory_behavior(
    traffic_mbs: float,
    machine: MachineConfig,
    miss_variation: MissVariation = MissVariation.UNCHANGED,
) -> tuple[TrafficLevel, str]:
    """Classify a section per Table IV given its serial DRAM traffic.

    Thresholds scale with the machine's peak bandwidth: "Low" below 10 % of
    peak (a full core complement cannot saturate), "Heavy" above 20 % (five
    threads fill the pipe — guaranteed saturation on a 12-core machine).
    """
    peak_mbs = machine.dram_peak_bytes_per_sec / 1e6
    if traffic_mbs < 0.10 * peak_mbs:
        level = TrafficLevel.LOW
    elif traffic_mbs < 0.20 * peak_mbs:
        level = TrafficLevel.MODERATE
    else:
        level = TrafficLevel.HEAVY
    return level, EXPECTED_BEHAVIOR[(miss_variation, level)]


@dataclass
class BurdenBreakdown:
    """Intermediate quantities of one burden computation (for reporting)."""

    section: str
    n_threads: int
    mpi: float
    delta_mbs: float
    omega_serial: float
    cpi_cache: float
    delta_t_mbs: float
    omega_t: float
    beta: float


class MemoryModel:
    """Computes burden factors from serial counters + machine calibration."""

    def __init__(self, calibration: CalibrationResult) -> None:
        self.calibration = calibration
        self.machine = calibration.machine
        #: Breakdown of every burden computed (diagnostics / benches).
        self.breakdowns: list[BurdenBreakdown] = []

    # ------------------------------------------------------------------ core

    def burden(self, section: SectionCounters, n_threads: int) -> float:
        """βₜ for one section (Eq. 3), ≥ 1, = 1 below the model's scope."""
        counters = section.total
        n = counters.instructions
        t_cycles = counters.cycles
        d = counters.llc_misses
        if n <= 0 or t_cycles <= 0:
            raise CalibrationError(
                f"section {section.name!r} has no counter data"
            )
        mpi = d / n
        delta = counters.traffic_mbs(self.machine)
        if (
            n_threads <= 1
            or mpi < MPI_THRESHOLD
            or delta < self.calibration.min_traffic_mbs
        ):
            beta = 1.0
            self.breakdowns.append(
                BurdenBreakdown(
                    section.name, n_threads, mpi, delta, 0.0, 0.0, delta, 0.0, beta
                )
            )
            return beta

        omega = self.calibration.predict_stall(delta)
        cpi_cache = (t_cycles - omega * d) / n
        # Guard against a Φ overestimate eating the whole measured time.
        cpi_cache = max(cpi_cache, 0.05)
        delta_t = self.calibration.predict_per_thread_traffic(delta, n_threads)
        omega_t = self.calibration.predict_stall(delta_t)
        beta = (cpi_cache + mpi * omega_t) / (cpi_cache + mpi * omega)
        beta = max(1.0, float(beta))
        self.breakdowns.append(
            BurdenBreakdown(
                section.name,
                n_threads,
                mpi,
                delta,
                omega,
                cpi_cache,
                delta_t,
                omega_t,
                beta,
            )
        )
        return beta

    def burden_table(
        self, section: SectionCounters, thread_counts: Sequence[int]
    ) -> BurdenTable:
        """β per thread count for one section."""
        return {t: self.burden(section, t) for t in thread_counts}

    def attach(
        self, profile: ProgramProfile, thread_counts: Sequence[int]
    ) -> Mapping[str, BurdenTable]:
        """Compute burden tables for every top-level section of ``profile``
        and store them on the profile (consumed by both emulators)."""
        for name, section in profile.sections.items():
            profile.burdens[name] = self.burden_table(section, thread_counts)
        return profile.burdens
