"""DRAM calibration microbenchmark and the Ψ/Φ fits (paper Section V-D).

The paper determines two empirical formulas on the target machine with a
"specially designed microbenchmark" that generates controlled DRAM traffic:

- ``Ψₜ`` (Eq. 6): per-thread *achieved* DRAM traffic when ``t`` identical
  threads run together, as a function of the single-thread traffic δ.  The
  paper fits a linear form for t = 2 and logarithmic forms for t ≥ 4.
- ``Φ`` (Eq. 7): CPU stall cycles per DRAM access as a function of achieved
  per-thread traffic, fit as a power law ``ω = a·δᵇ`` (the paper reports
  ``101481·δ^−0.964``).

This module reruns that methodology on the *simulated* machine: sweep the
LLC-miss intensity of a probe kernel, run it at each requested thread count,
measure traffic and stall-per-miss from the simulated counters, and fit the
same functional forms with least squares.  Below ``min_traffic_mbs`` the
formulas are not applied (paper assumption 5 / the δ ≥ 2000 MB/s guard) and
the burden factor is pinned to 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.errors import CalibrationError
from repro.obs import get_metrics
from repro.simhw.machine import MachineConfig
from repro.simos import Compute, Join, SimKernel, Spawn


@dataclass(frozen=True)
class MicrobenchSample:
    """One measured point of the calibration sweep."""

    n_threads: int
    mpi: float
    serial_traffic_mbs: float
    per_thread_traffic_mbs: float
    stall_per_miss: float


@dataclass
class PsiFit:
    """Ψₜ parameters: linear (t=2 style) or logarithmic (t≥4 style)."""

    n_threads: int
    form: str  # "linear" | "log"
    a: float
    b: float

    def total_traffic(self, delta: float) -> float:
        """Predicted *total* traffic of t threads given serial traffic δ."""
        if self.form == "linear":
            return self.a * delta + self.b
        return self.a * np.log(max(delta, 1e-9)) + self.b

    def per_thread(self, delta: float) -> float:
        """δᵗ — Eq. 6 divides the total by t."""
        value = self.total_traffic(delta) / self.n_threads
        # The formulas "may return nonsensical numbers when δ is small"
        # (paper); never predict more achieved traffic than demanded.
        return float(min(max(value, 1e-6), delta)) if delta > 0 else 0.0

    def formula(self) -> str:
        """The fitted Eq. 6 line, in the paper's notation."""
        if self.form == "linear":
            return (
                f"delta_{self.n_threads} = ({self.a:.3f} * delta + {self.b:.0f})"
                f" / {self.n_threads}"
            )
        return (
            f"delta_{self.n_threads} = ({self.a:.0f} * ln(delta) + {self.b:.0f})"
            f" / {self.n_threads}"
        )


@dataclass
class PhiFit:
    """Φ parameters: ω = a·δᵇ (stall cycles per miss vs per-thread MB/s)."""

    a: float
    b: float
    floor: float  # uncontended stall (never predict below it)

    #: Sanity ceiling on predicted stall (cycles per miss); degenerate fits
    #: cannot produce astronomical numbers.
    MAX_STALL = 1e7

    def stall_per_miss(self, delta_t: float) -> float:
        """ωₜ = Φ(δₜ), floored at the uncontended stall and sanity-capped."""
        if delta_t <= 0:
            return self.floor
        import math

        # Compute in log space to survive degenerate (near-vertical) fits.
        log_value = math.log(self.a) + self.b * math.log(delta_t)
        if log_value > math.log(self.MAX_STALL):
            return self.MAX_STALL
        return float(max(math.exp(log_value), self.floor))

    def formula(self) -> str:
        """The fitted Eq. 7 power law, in the paper's notation."""
        return f"omega_t = {self.a:.0f} * (delta_t)^{self.b:.3f}"


@dataclass
class CalibrationResult:
    """Fitted Ψ per thread count plus Φ and the validity threshold."""

    machine: MachineConfig
    psi: dict[int, PsiFit]
    phi: PhiFit
    min_traffic_mbs: float
    samples: list[MicrobenchSample] = field(default_factory=list)

    def predict_per_thread_traffic(self, delta: float, n_threads: int) -> float:
        """δᵗ = Ψₜ(δ) with interpolation for uncalibrated thread counts."""
        if n_threads <= 1:
            return delta
        if n_threads in self.psi:
            return self.psi[n_threads].per_thread(delta)
        keys = sorted(self.psi)
        if not keys:
            raise CalibrationError("no Ψ fits available")
        if n_threads < keys[0]:
            lo = 1
            lo_val = delta
        else:
            lo = max(k for k in keys if k <= n_threads)
            lo_val = self.psi[lo].per_thread(delta)
        his = [k for k in keys if k >= n_threads]
        if not his:
            return self.psi[keys[-1]].per_thread(delta)
        hi = min(his)
        hi_val = self.psi[hi].per_thread(delta)
        if hi == lo:
            return lo_val
        w = (n_threads - lo) / (hi - lo)
        return lo_val * (1 - w) + hi_val * w

    def predict_stall(self, delta_t: float) -> float:
        """ωₜ = Φ(δₜ) (Eq. 5)."""
        return self.phi.stall_per_miss(delta_t)

    def summary(self) -> str:
        """All fitted formulas, one per line."""
        lines = [f"Calibration on {self.machine.n_cores}-core machine "
                 f"(valid for delta >= {self.min_traffic_mbs:.0f} MB/s):"]
        for t in sorted(self.psi):
            lines.append("  " + self.psi[t].formula())
        lines.append("  " + self.phi.formula())
        return "\n".join(lines)


# ------------------------------------------------------------- measurement


def _run_probe(
    machine: MachineConfig, n_threads: int, mpi: float, instructions: float
) -> MicrobenchSample:
    """Run ``n_threads`` identical probe kernels and measure traffic/stalls.

    Each probe executes ``instructions`` at CPI$ = 1 with ``mpi``
    LLC misses per instruction (the paper's microbenchmark controls the LLC
    miss ratio while pinning L1/L2 behaviour).
    """
    cpu_cycles = instructions
    misses = instructions * mpi
    base = cpu_cycles + misses * machine.base_miss_stall

    kernel = SimKernel(machine)

    def probe():
        yield Compute(cycles=base, instructions=instructions, llc_misses=misses)

    def master():
        threads = []
        for i in range(n_threads):
            t = yield Spawn(probe(), name=f"probe{i}")
            threads.append(t)
        for t in threads:
            yield Join(t)

    kernel.spawn(master(), name="mb-master")
    elapsed = kernel.run()

    seconds = machine.cycles_to_seconds(elapsed)
    per_thread_traffic = misses * machine.line_size / seconds / 1e6
    stall = (elapsed - cpu_cycles) / misses if misses > 0 else 0.0
    serial_seconds = machine.cycles_to_seconds(base)
    serial_traffic = misses * machine.line_size / serial_seconds / 1e6
    return MicrobenchSample(
        n_threads=n_threads,
        mpi=mpi,
        serial_traffic_mbs=serial_traffic,
        per_thread_traffic_mbs=per_thread_traffic,
        stall_per_miss=stall,
    )


def calibrate_memory_model(
    machine: MachineConfig,
    thread_counts: Sequence[int] = (2, 4, 8, 12),
    mpi_points: Iterable[float] = (),
    instructions: float = 50_000_000.0,
    min_traffic_mbs: float = 2000.0,
    phi_min_serial_traffic_mbs: float = 2000.0,
) -> CalibrationResult:
    """Run the calibration sweep and fit Ψₜ and Φ (Eqs. 6 and 7).

    ``min_traffic_mbs`` is the paper's "only when δ ≥ 2000 MB/s" validity
    guard: sections below it get burden 1 and calibration points below it
    are excluded from the Ψ fits.  ``phi_min_serial_traffic_mbs`` applies
    the same guard to the Φ fit — below it the achieved-traffic/stall
    relation lives in the uncontended regime and would flatten the fit.
    """
    # Counted so sweep tests can assert the Ψ/Φ microbenchmark ran exactly
    # once per prophet (shared calibration on both the in-process and the
    # pooled sweep path), not once per grid point.
    get_metrics().inc("memmodel.calibrations")
    if not mpi_points:
        # Sweep miss intensity from light to streaming-bound.
        mpi_points = np.geomspace(5e-4, 0.12, 18)
    thread_counts = sorted({t for t in thread_counts if t >= 2})
    if not thread_counts:
        raise CalibrationError("need at least one thread count >= 2")

    samples: list[MicrobenchSample] = []
    serial_by_mpi: dict[float, MicrobenchSample] = {}
    for mpi in mpi_points:
        serial = _run_probe(machine, 1, float(mpi), instructions)
        serial_by_mpi[float(mpi)] = serial
        samples.append(serial)
        for t in thread_counts:
            samples.append(_run_probe(machine, t, float(mpi), instructions))

    # -- fit Ψ per thread count -------------------------------------------------
    psi: dict[int, PsiFit] = {}
    for t in thread_counts:
        xs, ys = [], []
        for s in samples:
            if s.n_threads != t:
                continue
            serial = serial_by_mpi[s.mpi]
            if serial.serial_traffic_mbs < min_traffic_mbs:
                continue
            xs.append(serial.serial_traffic_mbs)
            ys.append(s.per_thread_traffic_mbs * t)  # total achieved traffic
        if len(xs) < 3:
            raise CalibrationError(
                f"too few calibration points ({len(xs)}) for t={t}; "
                f"lower min_traffic_mbs or widen mpi_points"
            )
        x = np.asarray(xs)
        y = np.asarray(ys)
        if t == 2:
            a, b = np.polyfit(x, y, 1)
            psi[t] = PsiFit(n_threads=t, form="linear", a=float(a), b=float(b))
        else:
            a, b = np.polyfit(np.log(x), y, 1)
            psi[t] = PsiFit(n_threads=t, form="log", a=float(a), b=float(b))

    # -- fit Φ over the *contended* achieved-traffic/stall pairs -----------------
    # Single-thread points live in a different regime (stall grows mildly
    # with traffic); the burden model evaluates Φ at per-thread-under-
    # contention traffic, so the fit uses the multi-thread sweep, like the
    # paper's microbenchmark that "controls the number of threads".
    xs, ys = [], []
    for s in samples:
        if s.n_threads < 2 or s.stall_per_miss <= 0:
            continue
        serial = serial_by_mpi[s.mpi]
        if serial.serial_traffic_mbs < phi_min_serial_traffic_mbs:
            continue
        xs.append(s.per_thread_traffic_mbs)
        ys.append(s.stall_per_miss)
    if len(xs) < 4:
        raise CalibrationError("too few points to fit Φ")
    # Fit ln ω = m·ln δ + c, i.e. ω = e^c · δ^m.
    slope, intercept = np.polyfit(np.log(np.asarray(xs)), np.log(np.asarray(ys)), 1)
    phi = PhiFit(
        a=float(np.exp(intercept)),
        b=float(slope),
        floor=machine.base_miss_stall,
    )

    return CalibrationResult(
        machine=machine,
        psi=psi,
        phi=phi,
        min_traffic_mbs=min_traffic_mbs,
        samples=samples,
    )
