"""Top-level Parallel Prophet API (paper Fig. 3 workflow).

Typical use::

    prophet = ParallelProphet(machine=WESTMERE_12)
    profile = prophet.profile(program)              # interval + memory profiling
    report = prophet.predict(                        # emulation
        profile,
        threads=[2, 4, 6, 8, 10, 12],
        schedules=["static", "static,1", "dynamic,1"],
        methods=("ff", "syn"),
    )
    print(report.to_table())

Ground-truth measurement (replaying the tree as an actually-parallelized
program on the simulated machine) is exposed as :meth:`measure_real` so
benchmark harnesses can print Real-vs-Pred comparisons like the paper's
Figs. 2, 11, 12.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.annotations import AnnotationProgram
from repro.core.executor import ParallelExecutor, ReplayMode
from repro.core.ffemu import FastForwardEmulator
from repro.core.memmodel import MemoryModel
from repro.core.microbench import CalibrationResult, calibrate_memory_model
from repro.core.profiler import IntervalProfiler, ProgramProfile
from repro.core.report import SpeedupEstimate, SpeedupReport
from repro.core.synthesizer import Synthesizer
from repro.errors import ConfigurationError
from repro.obs import get_tracer
from repro.runtime.overhead import DEFAULT_OVERHEADS, RuntimeOverheads
from repro.runtime.tasks import Schedule
from repro.simhw.machine import WESTMERE_12, MachineConfig
from repro.validate.invariants import get_checker, has_nested_sections


class ParallelProphet:
    """Facade tying together profiling, the memory model, and the emulators."""

    def __init__(
        self,
        machine: MachineConfig = WESTMERE_12,
        overheads: RuntimeOverheads = DEFAULT_OVERHEADS,
        compress: bool = True,
        compression_tolerance: float = 0.05,
        overhead_subtraction_accuracy: float = 1.0,
        tracer=None,
    ) -> None:
        self.machine = machine
        self.overheads = overheads
        #: Tracer forwarded to every emulator/executor this facade builds.
        self.obs = tracer if tracer is not None else get_tracer()
        #: Runtime invariant checker: every estimate leaving this facade is
        #: bounds-checked against its machine's concurrency while enabled.
        self.inv = get_checker()
        self.profiler = IntervalProfiler(
            machine,
            compress=compress,
            tolerance=compression_tolerance,
            overhead_subtraction_accuracy=overhead_subtraction_accuracy,
        )
        self._calibration: Optional[CalibrationResult] = None

    # --------------------------------------------------------------- profiling

    def profile(self, program: AnnotationProgram) -> ProgramProfile:
        """Interval-profile an annotated serial program (Fig. 3 step 2)."""
        return self.profiler.profile(program)

    @staticmethod
    def replay_cache_info() -> dict[str, int]:
        """Hit/miss/size counters of the cross-grid section memo shared by
        every SYN/REAL replay this facade (and the batch sweeper) runs."""
        from repro.core.executor import section_memo_info

        return section_memo_info()

    def calibration_info(self) -> dict:
        """State of the Ψ/Φ calibration cache (the serve layer's costliest
        warmup): whether it exists and which thread counts it covers."""
        if self._calibration is None:
            return {"calibrated": False, "thread_counts": []}
        return {
            "calibrated": True,
            "thread_counts": sorted(self._calibration.psi),
        }

    # --------------------------------------------------------------- memory model

    def calibration(
        self, thread_counts: Sequence[int] = (2, 4, 8, 12)
    ) -> CalibrationResult:
        """The machine's Ψ/Φ calibration, computed once and cached.

        A spread of thread counts is always swept in addition to the
        requested ones — the Φ fit needs contention at several levels; a
        single thread count gives a degenerate (near-vertical) relation.
        """
        needed = sorted({t for t in thread_counts if t >= 2})
        if self._calibration is None or not all(
            t in self._calibration.psi for t in needed
        ):
            n = self.machine.n_cores
            spread = {t for t in (2, 4, max(2, n // 2), n) if t >= 2}
            merged = set(needed) | spread | (
                set(self._calibration.psi) if self._calibration else set()
            )
            self._calibration = calibrate_memory_model(
                self.machine, thread_counts=sorted(merged)
            )
        return self._calibration

    def attach_burdens(
        self, profile: ProgramProfile, thread_counts: Sequence[int]
    ) -> MemoryModel:
        """Compute and attach burden factors for every top-level section."""
        model = MemoryModel(self.calibration(thread_counts))
        model.attach(profile, thread_counts)
        return model

    # --------------------------------------------------------------- prediction

    def _make_engine(self, backend: str, profile: ProgramProfile):
        """Resolve a ``backend`` selector into a columnar engine or None.

        ``"auto"``/``"columnar"`` return an engine (consulted per grid
        point, with per-point eager fallback); ``"eager"`` returns None.
        Tracing forces the eager path — the analytic engine emits no
        events."""
        if backend not in ("auto", "columnar", "eager"):
            raise ConfigurationError(
                f"unknown backend {backend!r}; expected 'auto', 'columnar' "
                f"or 'eager'"
            )
        if backend == "eager" or self.obs.enabled:
            return None
        from repro.core.columnar import ColumnarEngine

        return ColumnarEngine(profile, self.overheads)

    def predict(
        self,
        profile: ProgramProfile,
        threads: Sequence[int],
        paradigm: str = "omp",
        schedules: Iterable[str | Schedule] = ("static",),
        methods: Sequence[str] = ("syn",),
        memory_model: bool = True,
        backend: str = "auto",
        tier: str = "exact",
        surrogate=None,
    ) -> SpeedupReport:
        """Predict speedups for every (method, schedule, thread count).

        ``methods``: any of ``"ff"`` (fast-forward) and ``"syn"``
        (program synthesis).  With ``memory_model=True`` burden factors are
        calibrated and applied; otherwise every β is 1.

        ``backend`` selects the evaluation strategy: ``"auto"`` (or its
        alias ``"columnar"``) consults the vectorized columnar engine per
        grid point and falls back to the eager emulators wherever the
        engine declines (locks, nesting, dynamic schedules, ...);
        ``"eager"`` forces the scalar per-point path everywhere.

        ``tier`` selects *who* answers (see ``docs/surrogate.md``):
        ``"exact"`` (default) runs the emulators; ``"surrogate"`` answers
        every supported grid point from the learned model (``surrogate``,
        or the process default); ``"auto"`` answers from the model only
        where its uncertainty is below the calibrated threshold and falls
        back to the exact path elsewhere.  Hits/fallbacks/abstains are
        recorded under ``surrogate.*`` in the metrics registry.
        """
        if tier not in ("exact", "surrogate", "auto"):
            raise ConfigurationError(
                f"unknown tier {tier!r}; expected 'exact', 'surrogate' "
                f"or 'auto'"
            )
        for m in methods:
            if m not in ("ff", "syn"):
                raise ConfigurationError(f"unknown prediction method {m!r}")
        scheds = [s if isinstance(s, Schedule) else Schedule.parse(s) for s in schedules]
        if tier != "exact":
            return self._predict_tiered(
                profile,
                threads,
                paradigm,
                scheds,
                methods,
                memory_model,
                backend,
                tier,
                surrogate,
            )
        engine = self._make_engine(backend, profile)
        if memory_model and profile.sections:
            self.attach_burdens(profile, threads)

        report = SpeedupReport()
        serial = profile.serial_cycles()
        # Burden tables depend only on the thread count, and the FF emulator
        # is stateless between runs: compute/construct each once for the
        # whole (schedule × threads) grid instead of per grid point.
        burden_tables: dict[int, dict[str, float]] = {
            t: (
                {name: profile.burden_for(name, t) for name in profile.sections}
                if memory_model
                else {}
            )
            for t in threads
        }
        ff = (
            FastForwardEmulator(self.overheads, tracer=self.obs)
            if "ff" in methods
            else None
        )
        for schedule in scheds:
            syn = (
                Synthesizer(
                    paradigm=paradigm,
                    schedule=schedule,
                    overheads=self.overheads,
                    tracer=self.obs,
                )
                if "syn" in methods
                else None
            )
            for t in threads:
                if ff is not None:
                    col = (
                        engine.ff_point(schedule, t, burden_tables[t])
                        if engine is not None
                        else None
                    )
                    if col is not None:
                        predicted, ff_sections = col
                    else:
                        predicted, ff_sections = ff.emulate_profile(
                            profile.tree, t, schedule, burden_tables[t]
                        )
                    report.add(
                        SpeedupEstimate(
                            method="ff",
                            paradigm=paradigm,
                            schedule=schedule.label,
                            n_threads=t,
                            speedup=serial / predicted if predicted > 0 else 1.0,
                            with_memory_model=memory_model,
                            sections={r.name: r.speedup for r in ff_sections},
                        )
                    )
                if syn is not None:
                    est = (
                        engine.syn_point(schedule, t, memory_model, paradigm)
                        if engine is not None
                        else None
                    )
                    if est is None:
                        run = syn.predict(
                            profile, t, use_memory_model=memory_model
                        )
                        est = run.estimate
                    report.add(est)
        if self.inv.enabled:
            self._check_estimates(profile, report, "predict")
        return report

    def _predict_tiered(
        self,
        profile: ProgramProfile,
        threads: Sequence[int],
        paradigm: str,
        scheds: Sequence[Schedule],
        methods: Sequence[str],
        memory_model: bool,
        backend: str,
        tier: str,
        surrogate,
    ) -> SpeedupReport:
        """The surrogate-first prediction path behind ``tier != "exact"``.

        Every grid point the model supports (and, under ``auto``, is
        confident about) is answered without touching an emulator — no
        burden calibration, no lowering; the rest are evaluated through the
        same per-point worker the batch sweeper uses, so a fallback answer
        is byte-identical to the exact path's.
        """
        from repro.core.batch import SweepTask, _predict_point
        from repro.obs import get_metrics
        from repro.surrogate import get_default_surrogate

        sur = surrogate if surrogate is not None else get_default_surrogate()
        metrics = get_metrics()
        answers: dict[tuple[str, int, str], SpeedupEstimate] = {}
        fallback: dict[tuple[str, int], list[str]] = {}
        for schedule in scheds:
            for t in threads:
                for method in methods:
                    ans = sur.answer(
                        profile,
                        self.machine,
                        method,
                        paradigm,
                        schedule,
                        t,
                        memory_model,
                    )
                    if ans is not None and tier == "auto" and not ans.confident:
                        metrics.inc("surrogate.abstains")
                        ans = None
                    if ans is None:
                        metrics.inc("surrogate.fallbacks")
                        fallback.setdefault((schedule.label, t), []).append(
                            method
                        )
                        continue
                    metrics.inc("surrogate.hits")
                    answers[(schedule.label, t, method)] = SpeedupEstimate(
                        method=method,
                        paradigm=paradigm,
                        schedule=schedule.label,
                        n_threads=t,
                        speedup=ans.speedup,
                        with_memory_model=memory_model,
                    )
        if fallback:
            if memory_model and profile.sections:
                self.attach_burdens(
                    profile, sorted({t for _label, t in fallback})
                )
            engine = self._make_engine(backend, profile)
            ff = FastForwardEmulator(self.overheads, tracer=self.obs)
            for (label, t), needed in fallback.items():
                task = SweepTask(
                    workload="workload",
                    schedule=label,
                    n_threads=t,
                    methods=tuple(needed),
                    paradigm=paradigm,
                    memory_model=memory_model,
                )
                for est in _predict_point(
                    profile, self.overheads, task, ff, None, engine
                ):
                    answers[(label, t, est.method)] = est
        report = SpeedupReport()
        for schedule in scheds:
            for t in threads:
                # ff before syn per point, matching the exact path's order.
                for method in ("ff", "syn"):
                    if method in methods:
                        report.add(answers[(schedule.label, t, method)])
        if self.inv.enabled:
            self._check_estimates(profile, report, "predict")
        return report

    def explore(
        self,
        profile: ProgramProfile,
        threads: Sequence[int],
        paradigm: str = "omp",
        schedules: Iterable[str] = ("static",),
        method: str = "syn",
        memory_model: bool = True,
        samples: int = 6,
        seed: int = 0,
        jobs: Optional[int] = 1,
    ) -> SpeedupReport:
        """Explore the lock-interleaving space of every grid point.

        Convenience wrapper over :class:`repro.explore.Explorer`: returns a
        report whose estimates are the default FIFO predictions
        (byte-identical to :meth:`predict` with the same grid) and whose
        ``envelopes`` carry one min/median/max
        :class:`~repro.core.report.SpeedupEnvelope` per grid point, sampled
        over ``samples`` handoff-policy variants.
        """
        from repro.explore import Explorer

        return Explorer(self, samples=samples, seed=seed, jobs=jobs).explore(
            {"workload": profile},
            threads=threads,
            schedules=schedules,
            paradigm=paradigm,
            method=method,
            memory_model=memory_model,
        )["workload"]

    # --------------------------------------------------------------- ground truth

    def measure_real(
        self,
        profile: ProgramProfile,
        threads: Sequence[int],
        paradigm: str = "omp",
        schedule: str | Schedule = "static",
    ) -> SpeedupReport:
        """Replay the tree as an actually-parallelized program (REAL mode) —
        the reproduction's stand-in for the paper's measured 'Real' bars."""
        sched = schedule if isinstance(schedule, Schedule) else Schedule.parse(schedule)
        executor = ParallelExecutor(
            machine=self.machine,
            paradigm=paradigm,
            schedule=sched,
            overheads=self.overheads,
            tracer=self.obs,
        )
        report = SpeedupReport()
        for t in threads:
            result = executor.execute_profile(profile.tree, t, ReplayMode.REAL)
            report.add(
                SpeedupEstimate(
                    method="real",
                    paradigm=paradigm,
                    schedule=sched.label,
                    n_threads=t,
                    speedup=result.speedup,
                )
            )
        if self.inv.enabled:
            self._check_estimates(profile, report, "measure_real")
        return report

    def _check_estimates(
        self, profile: ProgramProfile, report: SpeedupReport, where: str
    ) -> None:
        """Bounds-check every estimate of ``report`` (invariant checker on)."""
        nested = has_nested_sections(profile.tree)
        for e in report.estimates:
            self.inv.check_speedup(
                e.method,
                e.speedup,
                e.n_threads,
                self.machine.n_cores,
                nested,
                where=f"{where}:{e.method}/{e.schedule}/t={e.n_threads}",
            )
