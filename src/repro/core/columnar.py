"""Columnar sweep engine: numpy-vectorized analytic backend (ISSUE 6).

The FF fast path, the coalesced RLE replay, and the DRAM contention solve
are all *analytic* — each grid point of a sweep is a closed-form function
of the program's RLE runs, the schedule's ownership map, and the machine
constants.  The eager path nevertheless re-derives that function one grid
point at a time through scalar Python (and, for SYN/REAL, through the DES
kernel's fork/join machinery).  This module lowers a workload's program
tree **once** into flat numpy arrays and then evaluates grid points
against those arrays:

- per-run iteration counts become prefix-sum ``bounds``; static and
  static-chunk ownership is a clipped-interval intersection evaluated for
  all team members at once (``_ownership``);
- per-iteration FAKE/REAL cycle columns broadcast against the ownership
  matrix give every member's aggregated share in one reduction;
- the fork / thread-start / barrier / join skeleton of
  ``OpenMPRuntime.parallel_aggregated`` collapses to a closed form over
  the member totals (``_gross``);
- memory-demanding REAL sections are replayed by a miniature event walk
  whose DRAM solves are *batched*: every walk in flight yields its
  (mem-fraction, demand) multiset, and one
  :meth:`~repro.simhw.dram.DramModel.solve_batch` call bisects all of
  them with a shared convergence loop and per-lane early-exit masks.

The eager kernel remains the parity oracle: every closed form here
mirrors the corresponding eager code path (``ffemu._closed_form``,
``executor._coalesce_shares`` / ``_coalesced_member_body``,
``openmp.parallel_aggregated``, ``simos.kernel``'s segment rating) and is
property-tested to agree within 1e-9 relative.  Sections the analytic
model cannot represent exactly — locks, nested sections, pipelines,
nowait chains, dynamic-family schedules, oversubscribed teams, mixed
demand signatures — make the engine return ``None`` so callers fall back
per-point to the exact executor.  The ``columnar.hits`` /
``columnar.fallbacks`` counters record each decision.

Determinism: results are pure functions of (profile, schedule, t) — only
elementwise ops and per-row reductions are used (no BLAS), so a grid
point's value never depends on which other points share its batch.
"""

from __future__ import annotations

import heapq
from collections import OrderedDict
from typing import Optional

try:  # numpy is a declared dependency, but stay importable without it
    import numpy as np
except ImportError:  # pragma: no cover - exercised via _np_missing tests
    np = None

from repro.core.ffemu import FFSectionResult
from repro.core.report import SpeedupEstimate
from repro.core.tree import Node, NodeKind, ProgramTree, group_nowait_chains
from repro.obs import get_metrics
from repro.runtime.overhead import RuntimeOverheads
from repro.runtime.tasks import Schedule, ScheduleKind
from repro.simhw.dram import DramModel, _quantize
from repro.simhw.machine import MachineConfig
from repro.validate.invariants import get_checker

#: Per-node traversal cost of the FAKE replay (mirrors executor's value).
from repro.core.executor import OVERHEAD_ACCESS_NODE


class _SecCols:
    """One top-level section lowered to flat per-run columns."""

    __slots__ = (
        "node", "name", "repeat", "serial", "n_runs", "n_iters",
        "counts", "bounds", "unit", "oh", "rc", "rm",
        "rc_list", "rm_list", "total_misses", "real_ok", "sig_ok",
    )

    def __init__(self, node: Node, machine: MachineConfig) -> None:
        self.node = node
        self.name = node.name
        self.repeat = node.repeat
        self.serial = node.subtree_length()
        stall = machine.base_miss_stall
        counts: list[int] = []
        unit: list[float] = []
        oh: list[float] = []
        rc: list[float] = []
        rm: list[float] = []
        sigs: set = set()
        total_misses = 0.0
        real_ok = True
        for task in node.children:
            c_f = 0.0
            c_r = m_r = 0.0
            n_leaves = 0
            for leaf in task.children:
                # Leaf-only eligibility is checked by the caller.
                c_f += leaf.length * leaf.repeat
                n_leaves += 1
                cc = (leaf.cpu_cycles + leaf.llc_misses * stall) * leaf.repeat
                mm = leaf.llc_misses * leaf.repeat
                if mm > 0.0 and cc <= 0.0:
                    # Instant misses have no demand in the expanded
                    # lowering; fusing them would invent some (same rule
                    # as executor._coalesce_shares).
                    real_ok = False
                else:
                    c_r += cc
                    m_r += mm
                    if cc > 0.0:
                        sigs.add(_demand_sig(machine, cc, mm) if mm > 0.0 else None)
            counts.append(task.repeat)
            unit.append(c_f)
            oh.append(OVERHEAD_ACCESS_NODE * n_leaves)
            rc.append(c_r)
            rm.append(m_r)
            total_misses += m_r * task.repeat
        self.n_runs = len(counts)
        self.counts = np.asarray(counts, dtype=np.int64)
        self.bounds = np.concatenate(
            ([0], np.cumsum(self.counts))
        ).astype(np.int64)
        self.n_iters = int(self.bounds[-1])
        self.unit = np.asarray(unit, dtype=np.float64)
        self.oh = np.asarray(oh, dtype=np.float64)
        self.rc = np.asarray(rc, dtype=np.float64)
        self.rm = np.asarray(rm, dtype=np.float64)
        #: Plain-float copies for the bit-exact missy share accumulation.
        self.rc_list = rc
        self.rm_list = rm
        self.total_misses = total_misses
        self.real_ok = real_ok
        self.sig_ok = len(sigs) == 1 and None not in sigs


def _demand_sig(machine: MachineConfig, cycles: float, misses: float):
    """Quantized (mem-fraction, demand) — executor._demand_sig's formulas."""
    f = min(1.0, misses * machine.base_miss_stall / cycles)
    seconds = machine.cycles_to_seconds(cycles)
    d = misses * machine.line_size / seconds if seconds > 0 else 0.0
    return (float(f"{f:.12g}"), float(f"{d:.12g}"))


def _lane_fd(machine: MachineConfig, wc: float, wm: float) -> tuple[float, float]:
    """Raw (mem-fraction, demand) of one fused missy segment — the exact
    formulas of ``SimKernel._attach_segment`` (zero switch debt)."""
    miss_stall = wm * machine.base_miss_stall
    f = min(1.0, miss_stall / wc) if wc > 0 else 0.0
    seconds = machine.cycles_to_seconds(wc) if wc > 0 else 0.0
    d = (wm * machine.line_size / seconds) if seconds > 0 else 0.0
    return f, d


class ColumnarEngine:
    """Analytic evaluator for one profile's sweep grid points.

    Construct once per (profile, overheads) and consult per grid point:
    :meth:`ff_point`, :meth:`syn_point`, :meth:`real_point` each return a
    result or ``None`` (meaning: use the eager path).  The lowering and
    the per-(schedule, t) ownership matrices are cached on the engine, so
    a whole sweep column shares one tree walk.
    """

    def __init__(self, profile, overheads: RuntimeOverheads) -> None:
        self.profile = profile
        self.machine: MachineConfig = profile.machine
        self.overheads = overheads
        self._lowered = False
        #: Program as floats (serial U cycles) and _SecCols, in tree order;
        #: None when the tree is outside the analytic model.
        self._items: Optional[list] = None
        self._secs: list[_SecCols] = []
        self._serial = 0.0
        self._serial_by_name: dict[str, float] = {}
        self._own_cache: dict[tuple, tuple] = {}
        self._point_cache: dict[tuple, float] = {}

    def cache_info(self) -> dict[str, int]:
        """Sizes of this engine's per-point caches (serve-layer stats)."""
        return {
            "lowered": int(self._lowered),
            "ownership": len(self._own_cache),
            "points": len(self._point_cache),
        }

    # ------------------------------------------------------------- lowering

    def _lowering(self) -> Optional[list]:
        if self._lowered:
            return self._items
        self._lowered = True
        if np is None:
            return None
        tree: ProgramTree = self.profile.tree
        items: list = []
        secs: list[_SecCols] = []
        for item in group_nowait_chains(tree.root.children):
            if isinstance(item, list):  # nowait chain: exact path only
                return None
            if item.kind is NodeKind.U:
                items.append(item.length * item.repeat)
                continue
            if item.kind is not NodeKind.SEC or item.pipeline:
                return None
            for task in item.children:
                if task.kind is not NodeKind.TASK:
                    return None
                for leaf in task.children:
                    if leaf.kind is not NodeKind.U:
                        return None  # locks / nested sections
            sc = _SecCols(item, self.machine)
            items.append(sc)
            secs.append(sc)
        self._items = items
        self._secs = secs
        self._serial = tree.serial_cycles()
        by_name: dict[str, float] = {}
        for sec in tree.top_level_sections():
            by_name[sec.name] = by_name.get(sec.name, 0.0) + sec.subtree_length()
        self._serial_by_name = by_name
        return items

    def _ownership(self, sc: _SecCols, schedule: Schedule, t: int):
        """(K, owned, n_disp): iteration-ownership matrix of shape (t, runs),
        per-member owned-iteration counts, and per-member dispatch counts.
        Mirrors ``executor._owned_in`` / the dispatch-count rules of
        ``_coalesce_shares``; cached per (section, schedule, t)."""
        key = (id(sc), schedule.kind, schedule.chunk, t)
        cached = self._own_cache.get(key)
        if cached is not None:
            return cached
        b_lo = sc.bounds[:-1]
        b_hi = sc.bounds[1:]
        n = sc.n_iters
        if t == 1:
            K = sc.counts[None, :].astype(np.float64)
            owned = np.asarray([n], dtype=np.int64)
            # The degenerate inline team dispatches per iteration.
            n_disp = np.asarray([float(n)])
        elif schedule.kind is ScheduleKind.STATIC:
            base, extra = divmod(n, t)
            tids = np.arange(t, dtype=np.int64)
            s = tids * base + np.minimum(tids, extra)
            e = s + base + (tids < extra)
            K = np.clip(
                np.minimum(b_hi[None, :], e[:, None])
                - np.maximum(b_lo[None, :], s[:, None]),
                0,
                None,
            )
            owned = K.sum(axis=1)
            n_disp = (owned > 0).astype(np.float64)
            K = K.astype(np.float64)
        else:  # STATIC_CHUNK: chunks of c dealt round-robin
            c = schedule.chunk
            p = t * c
            tids = np.arange(t, dtype=np.int64)[:, None]

            def below(x):
                return (x // p) * c + np.clip(x % p - tids * c, 0, c)

            K = below(b_hi[None, :]) - below(b_lo[None, :])
            owned = K.sum(axis=1)
            n_disp = ((owned + c - 1) // c).astype(np.float64)
            K = K.astype(np.float64)
        result = (K, owned, n_disp)
        self._own_cache[key] = result
        return result

    # --------------------------------------------------------- fork/join form

    def _gross(self, totals, t: int, fork: float, ts: float, jb: float) -> float:
        """Closed form of ``parallel_aggregated``: master attaches its body
        at ``fork``, worker ``w`` at ``fork + thread_start``; the barrier
        releases at the latest arrival and the master then pays the join
        barrier.  A one-member team runs inline (no barrier, no join)."""
        if t == 1:
            return fork + float(totals[0])
        b = fork + float(totals[0])
        w = float(((fork + ts) + totals[1:]).max())
        if w > b:
            b = w
        return b + jb

    # -------------------------------------------------------------- FF point

    def ff_point(
        self, schedule: Schedule, t: int, burdens: dict
    ) -> Optional[tuple[float, list[FFSectionResult]]]:
        """Whole-program FF prediction, or None for the eager emulator.

        Mirrors ``FastForwardEmulator._closed_form`` plus the
        ``emulate_profile`` assembly (per-section repeat scaling, result
        records, invariant checks)."""
        m = get_metrics()
        if self._lowering() is None or schedule.is_dynamic_family:
            m.inc("columnar.fallbacks")
            return None
        m.inc("columnar.hits")
        oh = self.overheads
        fork = oh.omp_fork_base + oh.omp_fork_per_thread * (t - 1)
        jb = oh.omp_join_barrier
        disp = oh.omp_static_dispatch
        inv = get_checker()
        total = 0.0
        results: list[FFSectionResult] = []
        for item in self._items:
            if isinstance(item, float):
                total += item
                continue
            sc = item
            beta = burdens.get(sc.name, 1.0)
            key = ("ff", id(sc), schedule.kind, schedule.chunk, t, beta)
            cycles = self._point_cache.get(key)
            if cycles is None:
                if sc.n_iters == 0:
                    cycles = fork + jb
                else:
                    K, owned, n_disp = self._ownership(sc, schedule, t)
                    if t == 1:
                        # The FF abstract machine applies the schedule's
                        # dispatch formula even to a one-member team (unlike
                        # the replay's per-iteration inline team): one
                        # dispatch for static, one per chunk for static,N.
                        if schedule.kind is ScheduleKind.STATIC:
                            n_disp = (owned > 0).astype(np.float64)
                        else:
                            c = schedule.chunk
                            n_disp = ((owned + c - 1) // c).astype(np.float64)
                    work = (K * (sc.unit * beta)).sum(axis=1)
                    finishes = (fork + n_disp * disp) + work
                    end = float(finishes.max())
                    if fork > end:
                        end = fork
                    cycles = end + jb
                self._point_cache[key] = cycles
            total += cycles * sc.repeat
            results.append(
                FFSectionResult(
                    name=sc.name,
                    parallel_cycles=cycles * sc.repeat,
                    serial_cycles=sc.serial,
                )
            )
            if inv.enabled:
                inv.check_speedup(
                    "ff",
                    results[-1].speedup,
                    t,
                    t,
                    nested=False,
                    where=f"ff:{sc.name}",
                )
        return total, results

    # ------------------------------------------------------------- SYN point

    def _team_ok(self, schedule: Schedule, t: int, paradigm: str) -> bool:
        """Shared replay eligibility: an OpenMP static-family team that the
        DES kernel would run without preemption or core migration."""
        return (
            paradigm == "omp"
            and not schedule.is_dynamic_family
            and t <= self.machine.n_cores
            and (t == 1 or self.machine.context_switch_cycles == 0.0)
        )

    def syn_point(
        self, schedule: Schedule, t: int, memory_model: bool, paradigm: str
    ) -> Optional[SpeedupEstimate]:
        """Synthesizer (FAKE replay) estimate, or None for the eager path."""
        m = get_metrics()
        if self._lowering() is None or not self._team_ok(schedule, t, paradigm):
            m.inc("columnar.fallbacks")
            return None
        m.inc("syn.replays")
        m.inc("columnar.hits")
        profile = self.profile
        oh = self.overheads
        burdens = (
            {name: profile.burden_for(name, t) for name in profile.sections}
            if memory_model
            else {}
        )
        fork = oh.omp_fork_base + oh.omp_fork_per_thread * (t - 1)
        ts = oh.omp_thread_start
        jb = oh.omp_join_barrier
        disp = oh.omp_static_dispatch
        total = 0.0
        net_by_name: dict[str, float] = {}
        for item in self._items:
            if isinstance(item, float):
                total += item
                continue
            sc = item
            beta = burdens.get(sc.name, 1.0)
            key = ("syn", id(sc), schedule.kind, schedule.chunk, t, beta)
            net = self._point_cache.get(key)
            if net is None:
                K, owned, n_disp = self._ownership(sc, schedule, t)
                wc = (K * (sc.unit * beta)).sum(axis=1)
                woh = (K * sc.oh).sum(axis=1)
                totals = (n_disp * disp + wc) + woh
                gross = self._gross(totals, t, fork, ts, jb)
                # Fig. 8 line 26: subtract the longest per-worker traversal.
                net = gross - float(woh.max())
                if net < 0.0:
                    net = 0.0
                self._point_cache[key] = net
            total += net * sc.repeat
            net_by_name[sc.name] = net_by_name.get(sc.name, 0.0) + net * sc.repeat
        speedup = self._serial / total if total > 0 else 1.0
        sections = {
            name: (self._serial_by_name.get(name, 0.0) / net if net else 0.0)
            for name, net in net_by_name.items()
        }
        return SpeedupEstimate(
            method="syn",
            paradigm=paradigm,
            schedule=schedule.label,
            n_threads=t,
            speedup=speedup,
            with_memory_model=memory_model,
            sections=sections,
        )

    # ------------------------------------------------------------ REAL point

    def real_point(
        self, schedule: Schedule, t: int, paradigm: str
    ) -> Optional[SpeedupEstimate]:
        """Ground-truth (REAL replay) estimate, or None for the eager path.

        Demand-free sections collapse to the same closed form as SYN
        (with hardware-derived cycle columns); memory-demanding sections
        run the miniature event walk with batched DRAM solves."""
        m = get_metrics()
        ok = self._lowering() is not None and self._team_ok(schedule, t, paradigm)
        if ok:
            for sc in self._secs:
                if not sc.real_ok:
                    ok = False
                    break
                if sc.total_misses > 0.0 and (
                    schedule.kind is not ScheduleKind.STATIC
                    or not sc.sig_ok
                    or self.machine.n_sockets != 1
                ):
                    ok = False
                    break
        if not ok:
            m.inc("columnar.fallbacks")
            return None
        m.inc("columnar.hits")
        oh = self.overheads
        fork = oh.omp_fork_base + oh.omp_fork_per_thread * (t - 1)
        ts = oh.omp_thread_start
        jb = oh.omp_join_barrier
        disp = oh.omp_static_dispatch

        # Resolve every uncached missy section first so their walks share
        # one lockstep driver (batched DRAM bisection).
        walks = []
        walk_keys = []
        for sc in self._secs:
            if sc.total_misses <= 0.0:
                continue
            key = ("real", id(sc), schedule.kind, schedule.chunk, t)
            if key in self._point_cache:
                continue
            shares = self._member_shares(sc, schedule, t)
            walks.append(_missy_walk(self.machine, shares, fork, ts, jb, disp, t))
            walk_keys.append(key)
        if walks:
            for key, gross in zip(walk_keys, _drive_walks(walks, self.machine)):
                self._point_cache[key] = gross  # net == gross (no traversal)

        total = 0.0
        for item in self._items:
            if isinstance(item, float):
                total += item
                continue
            sc = item
            key = ("real", id(sc), schedule.kind, schedule.chunk, t)
            net = self._point_cache.get(key)
            if net is None:
                K, owned, n_disp = self._ownership(sc, schedule, t)
                wc = (K * sc.rc).sum(axis=1)
                totals = n_disp * disp + wc
                net = self._gross(totals, t, fork, ts, jb)
                self._point_cache[key] = net
            total += net * sc.repeat
        speedup = self._serial / total if total > 0 else 1.0
        return SpeedupEstimate(
            method="real",
            paradigm=paradigm,
            schedule=schedule.label,
            n_threads=t,
            speedup=speedup,
        )

    def _member_shares(
        self, sc: _SecCols, schedule: Schedule, t: int
    ) -> list[tuple[float, float, float]]:
        """Per-member (work_cycles, work_misses, n_dispatches) for a missy
        section, accumulated run by run in the exact float order of
        ``executor._coalesce_shares`` — the fused segment's (f, d) must be
        bitwise what the eager kernel attaches."""
        K, owned, n_disp = self._ownership(sc, schedule, t)
        shares = []
        for w in range(t):
            wc = wm = 0.0
            row = K[w]
            for r in range(sc.n_runs):
                k = int(row[r])
                if k:
                    wc += k * sc.rc_list[r]
                    wm += k * sc.rm_list[r]
            shares.append((wc, wm, float(n_disp[w])))
        return shares


# ----------------------------------------------------------- missy event walk


def _missy_walk(machine, shares, fork, ts, jb, disp, t):
    """Replay one memory-demanding section as a miniature event walk.

    A generator that yields the running missy multiset ``[(f, d), ...]``
    (tid order) whenever the eager kernel would re-solve DRAM contention,
    receives the solved stall multiplier ``k``, and finally returns the
    section's gross cycles.  Mirrors the kernel's semantics exactly:
    demand-free segments (fork, thread start, dispatch, zero-miss bodies)
    never trigger a solve; a missy attach or completion re-rates every
    running lane via the absolute-form anchor math of
    ``_advance_segment`` / ``_rerate_socket``.
    """
    chains: dict[int, list] = {}
    for tid in range(t):
        wc, wm, n_dispatch = shares[tid]
        dispatch = n_dispatch * disp
        ops: list = []
        if tid > 0 and ts > 0.0:
            ops.append(ts)
        if wm > 0.0:
            # Dispatch is kept out of the missy segment so its
            # mem-fraction matches the certified per-iteration signature.
            if dispatch > 0.0:
                ops.append(dispatch)
            f, d = _lane_fd(machine, wc, wm)
            ops.append(("lane", wc, f, d))
        else:
            tot = dispatch + wc
            if tot > 0.0:
                ops.append(tot)
        chains[tid] = ops

    arrival = [0.0] * t
    #: tid -> [anchor_time, anchor_remaining, slowdown|None, f, d, epoch]
    lanes: dict[int, list] = {}
    heap: list = []

    def attach(tid: int, now: float) -> bool:
        """Advance thread ``tid`` to its next blocking segment; True when
        a missy lane attached (a demand transition)."""
        if chains[tid]:
            op = chains[tid].pop(0)
            if isinstance(op, tuple):
                _, wc, f, d = op
                lanes[tid] = [now, wc, None, f, d, 0]
                return True
            heapq.heappush(heap, (now + op, tid, "cf", 0))
            return False
        arrival[tid] = now
        return False

    def pairs():
        return [(lanes[tid][3], lanes[tid][4]) for tid in sorted(lanes)]

    def rerate(now: float, k: float) -> None:
        for tid in sorted(lanes):
            lane = lanes[tid]
            anchor_t, anchor_rem, s_old, f, d, epoch = lane
            s_new = 1.0 - f + f * k
            if s_old is None:
                # Fresh segment: rate and schedule its completion.
                lane[0] = now
                lane[2] = s_new
                heapq.heappush(heap, (now + anchor_rem * s_new, tid, "lane", epoch))
            elif s_new != s_old:
                # Rate change: advance in absolute form, re-anchor.
                rem = anchor_rem - (now - anchor_t) / s_old
                if rem < 0.0:
                    rem = 0.0
                epoch += 1
                lane[0] = now
                lane[1] = rem
                lane[2] = s_new
                lane[5] = epoch
                heapq.heappush(heap, (now + rem * s_new, tid, "lane", epoch))
            # Unchanged rate: the in-heap completion event stays valid.

    if fork > 0.0:
        heapq.heappush(heap, (fork, 0, "spawn", 0))
    else:
        changed = attach(0, 0.0)
        for w in range(1, t):
            changed = attach(w, 0.0) or changed
        if changed and lanes:
            k = yield pairs()
            rerate(0.0, k)

    while heap:
        now, tid, kind, epoch = heapq.heappop(heap)
        if kind == "lane":
            lane = lanes.get(tid)
            if lane is None or lane[5] != epoch:
                continue  # stale event from a superseded rating
            del lanes[tid]
            arrival[tid] = now  # a lane is always a chain's last segment
            if lanes:
                k = yield pairs()
                rerate(now, k)
            continue
        if kind == "spawn":
            changed = attach(0, now)
            for w in range(1, t):
                changed = attach(w, now) or changed
        else:  # demand-free segment completion
            changed = attach(tid, now)
        if changed and lanes:
            k = yield pairs()
            rerate(now, k)

    if t == 1:
        # An inline team: no barrier, no join barrier.
        return arrival[0]
    return max(arrival) + jb


class _WalkState:
    __slots__ = ("gen", "memo", "warm_hi", "result", "hits", "misses")

    def __init__(self, gen) -> None:
        self.gen = gen
        self.memo: OrderedDict = OrderedDict()
        self.warm_hi = 0.0
        self.result = None
        self.hits = 0
        self.misses = 0


_START = object()


def _drive_walks(walks, machine: MachineConfig) -> list[float]:
    """Run missy walks in lockstep, batching their DRAM solves.

    Each walk keeps its own LRU memo and warm-start bracket (one eager
    kernel — hence one DRAM pool — per section replay); every round, all
    walks blocked on an unmemoised solve are answered by a single
    :meth:`DramModel.solve_batch` call."""
    dram = DramModel(
        machine,
        peak_bytes_per_sec=machine.dram_peak_bytes_per_sec_per_socket,
    )
    cap = machine.dram_solve_cache
    states = [_WalkState(gen) for gen in walks]

    def advance(st: _WalkState, value):
        """Returns the next solve request, or None when the walk finished."""
        try:
            if value is _START:
                return next(st.gen)
            return st.gen.send(value)
        except StopIteration as stop:
            st.result = stop.value
            return None

    runnable: list[tuple[_WalkState, object]] = [(st, _START) for st in states]
    blocked: list[tuple[_WalkState, Optional[tuple], list]] = []
    while runnable or blocked:
        while runnable:
            st, value = runnable.pop()
            prs = advance(st, value)
            if prs is None:
                continue
            total = sum(d for _, d in prs)
            if total <= 0.0:
                runnable.append((st, 1.0))
                continue
            key = None
            if cap > 0:
                key = tuple(
                    sorted(
                        (_quantize(f), _quantize(d)) for f, d in prs if d > 0.0
                    )
                )
                k = st.memo.get(key)
                if k is not None:
                    st.hits += 1
                    st.memo.move_to_end(key)
                    runnable.append((st, k))
                    continue
            st.misses += 1
            blocked.append((st, key, prs))
        if not blocked:
            break
        width = max(len(prs) for _, _, prs in blocked)
        fr = np.zeros((len(blocked), width))
        dm = np.zeros((len(blocked), width))
        wh = np.zeros(len(blocked))
        for i, (st, _, prs) in enumerate(blocked):
            for j, (f, d) in enumerate(prs):
                fr[i, j] = f
                dm[i, j] = d
            wh[i] = st.warm_hi
        ks, wh_out = dram.solve_batch(fr, dm, wh)
        for i, (st, key, _) in enumerate(blocked):
            k = float(ks[i])
            st.warm_hi = float(wh_out[i])
            if key is not None:
                st.memo[key] = k
                while len(st.memo) > cap:
                    st.memo.popitem(last=False)
            runnable.append((st, k))
        blocked = []
    m = get_metrics()
    hits = sum(st.hits for st in states)
    misses = sum(st.misses for st in states)
    if hits:
        m.inc("dram.solve.hits", float(hits))
    if misses:
        m.inc("dram.solve.misses", float(misses))
    return [st.result for st in states]


# --------------------------------------------------------------- verification


def verify_points(
    prophet,
    profile,
    threads,
    schedules=("static",),
    methods=("ff", "syn"),
    rel_tol: float = 1e-9,
) -> tuple[int, int, list[str]]:
    """Sampled columnar-vs-eager re-verification (``repro check --quick``).

    Evaluates every (method, schedule, t) grid point through the columnar
    engine and through the *uncached* eager path (fresh emulator /
    synthesizer, section memo cleared), returning ``(checked, skipped,
    mismatches)``.  A point the engine declines counts as skipped — the
    fallback contract makes it eager by construction."""
    from repro.core.executor import clear_section_memo
    from repro.core.ffemu import FastForwardEmulator
    from repro.core.synthesizer import Synthesizer

    engine = ColumnarEngine(profile, prophet.overheads)
    serial = profile.serial_cycles()
    checked = skipped = 0
    mismatches: list[str] = []
    for sched in schedules:
        schedule = sched if isinstance(sched, Schedule) else Schedule.parse(sched)
        for t in threads:
            burdens = {
                name: profile.burden_for(name, t) for name in profile.sections
            } if profile.burdens else {}
            memory_model = bool(profile.burdens)
            for method in methods:
                if method == "ff":
                    col = engine.ff_point(schedule, t, burdens)
                    if col is None:
                        skipped += 1
                        continue
                    predicted, _ = col
                    col_speedup = serial / predicted if predicted > 0 else 1.0
                    ff = FastForwardEmulator(prophet.overheads)
                    eager_time, _ = ff.emulate_profile(
                        profile.tree, t, schedule, burdens
                    )
                    eager_speedup = (
                        serial / eager_time if eager_time > 0 else 1.0
                    )
                else:
                    est = engine.syn_point(schedule, t, memory_model, "omp")
                    if est is None:
                        skipped += 1
                        continue
                    col_speedup = est.speedup
                    clear_section_memo()
                    syn = Synthesizer(
                        schedule=schedule, overheads=prophet.overheads
                    )
                    eager_speedup = syn.predict(
                        profile, t, use_memory_model=memory_model
                    ).estimate.speedup
                checked += 1
                ref = max(abs(eager_speedup), 1e-30)
                if abs(col_speedup - eager_speedup) / ref > rel_tol:
                    mismatches.append(
                        f"columnar {method}/{schedule.label}/t={t}: "
                        f"{col_speedup!r} vs eager {eager_speedup!r}"
                    )
    return checked, skipped, mismatches
