"""Pipeline-parallelism emulation (extension; paper Section VII-E, [23]).

The paper lists pipelining as an easy extension: "pipelining can be easily
supported by extending annotations [23] and the emulation algorithm".  This
module implements that extension for coarse-grained software pipelines in
the style of Thies et al. [23]:

- a *pipeline section*'s tasks (loop iterations) flow through a fixed
  sequence of stages; stage *s* of iteration *j* must run after both
  stage *s−1* of iteration *j* (dataflow) and stage *s* of iteration *j−1*
  (stages are stateful and internally serial);
- with ``t`` worker threads, stages are bound to threads: contiguous stages
  are grouped into ``t`` balanced clusters (the classic linear-partition
  problem, solved exactly by DP on average stage loads), one thread per
  cluster, iterations streaming through the clusters in order.

Two consumers:

- :func:`ff_pipeline_cycles` — the fast-forward (analytical) emulation:
  the exact completion-time recurrence
  ``finish(j,g) = max(finish(j,g−1), finish(j−1,g)) + len(j,g)``;
- :func:`replay_pipeline_section` — execution on the simulated machine
  (used for both REAL ground truth and FAKE synthesis): one simulated
  thread per cluster, handing iterations downstream through events.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

import numpy as np

from repro.core.tree import Node, NodeKind
from repro.errors import EmulationError
from repro.runtime.overhead import DEFAULT_OVERHEADS, RuntimeOverheads
from repro.simhw.machine import MachineConfig
from repro.simos import (
    Acquire,
    Compute,
    EventSet,
    EventWait,
    Join,
    Release,
    SimEvent,
    SimKernel,
    SimMutex,
    Spawn,
)


# ------------------------------------------------------------- structure


def expand_pipeline_tasks(sec: Node) -> list[list[Node]]:
    """Logical iterations of a pipeline section as per-iteration stage
    lists (repeats expanded; stage repeats expanded within iterations)."""
    if sec.kind is not NodeKind.SEC or not sec.pipeline:
        raise EmulationError(f"{sec!r} is not a pipeline section")
    iterations: list[list[Node]] = []
    for task in sec.children:
        stages: list[Node] = []
        for stage in task.children:
            if stage.kind is not NodeKind.STAGE:
                raise EmulationError(
                    f"pipeline task contains non-stage child {stage!r}"
                )
            stages.extend([stage] * stage.repeat)
        iterations.extend([stages] * task.repeat)
    return iterations


def stage_lengths(iterations: list[list[Node]]) -> np.ndarray:
    """Matrix L[j, s] of measured stage lengths."""
    if not iterations:
        return np.zeros((0, 0))
    n_stages = len(iterations[0])
    if any(len(it) != n_stages for it in iterations):
        raise EmulationError("pipeline iterations disagree on stage count")
    # Per-instance length: expansion already repeats compressed STAGE nodes,
    # and subtree_length() includes the node's own repeat factor.
    return np.array(
        [[stage.subtree_length() / stage.repeat for stage in it] for it in iterations]
    )


# ------------------------------------------------------------ partitioning


def partition_stages(avg_loads: list[float], n_threads: int) -> list[list[int]]:
    """Optimal contiguous partition of stages into ≤ ``n_threads`` clusters
    minimising the maximum cluster load (DP over prefix sums)."""
    s = len(avg_loads)
    if s == 0:
        return []
    k = min(n_threads, s)
    prefix = np.concatenate([[0.0], np.cumsum(avg_loads)])

    # dp[i][g]: minimal max-load partitioning stages[:i] into g clusters.
    inf = float("inf")
    dp = np.full((s + 1, k + 1), inf)
    cut = np.zeros((s + 1, k + 1), dtype=int)
    dp[0, 0] = 0.0
    for i in range(1, s + 1):
        for g in range(1, min(i, k) + 1):
            for j in range(g - 1, i):
                cost = max(dp[j, g - 1], prefix[i] - prefix[j])
                if cost < dp[i, g]:
                    dp[i, g] = cost
                    cut[i, g] = j
    best_g = int(np.argmin(dp[s, 1:])) + 1
    groups: list[list[int]] = []
    i, g = s, best_g
    while g > 0:
        j = int(cut[i, g])
        groups.append(list(range(j, i)))
        i, g = j, g - 1
    groups.reverse()
    return groups


# ---------------------------------------------------------------- analytical


def ff_pipeline_cycles(
    sec: Node,
    n_threads: int,
    burden: float = 1.0,
    overheads: RuntimeOverheads = DEFAULT_OVERHEADS,
) -> float:
    """Fast-forward emulation of one pipeline-section activation.

    Exact completion-time recurrence over thread clusters; per-iteration
    hand-off costs are charged like dynamic dispatch.
    """
    iterations = expand_pipeline_tasks(sec)
    if not iterations:
        return overheads.omp_fork_base + overheads.omp_join_barrier
    lengths = stage_lengths(iterations) * burden
    n_iters, n_stages = lengths.shape
    groups = partition_stages(list(lengths.mean(axis=0)), n_threads)
    # Cluster lengths per iteration (+ one hand-off cost per cluster).
    cluster = np.stack(
        [lengths[:, g].sum(axis=1) for g in groups], axis=1
    ) + overheads.omp_dynamic_dispatch

    finish = np.zeros(len(groups))
    for j in range(n_iters):
        for g in range(len(groups)):
            upstream = finish[g - 1] if g > 0 else 0.0
            finish[g] = max(upstream, finish[g]) + cluster[j, g]
    fork = overheads.omp_fork_base + overheads.omp_fork_per_thread * (
        len(groups) - 1
    )
    return fork + float(finish[-1]) + overheads.omp_join_barrier


# ------------------------------------------------------------------ replay


def replay_pipeline_section(
    kernel: SimKernel,
    sec: Node,
    n_threads: int,
    machine: MachineConfig,
    real: bool,
    burden: float = 1.0,
    overheads: RuntimeOverheads = DEFAULT_OVERHEADS,
    locks: Optional[dict[int, SimMutex]] = None,
) -> Generator[Any, Any, None]:
    """Run a pipeline section on the simulated machine.

    Must be driven with ``yield from`` by the master thread.  One worker
    thread per stage cluster; worker ``g`` processes iterations in order,
    parking on an event until worker ``g−1`` has released that iteration.
    """
    iterations = expand_pipeline_tasks(sec)
    if not iterations:
        return
    locks = locks if locks is not None else {}
    lengths = stage_lengths(iterations)
    groups = partition_stages(list(lengths.mean(axis=0)), n_threads)
    n_iters = len(iterations)
    n_groups = len(groups)

    # ready[g][j]: iteration j may enter cluster g.  Events double as the
    # inter-stage queues of a coarse-grained pipeline.
    ready = [[SimEvent(f"pipe-{g}-{j}") for j in range(n_iters)] for g in range(n_groups)]

    def leaf_compute(node: Node) -> Compute:
        if real:
            base = node.cpu_cycles + node.llc_misses * machine.base_miss_stall
            return Compute(
                cycles=base,
                instructions=node.instructions,
                llc_misses=node.llc_misses,
            )
        return Compute(cycles=node.length * burden)

    def run_stage(stage: Node) -> Generator[Any, Any, None]:
        for node in stage.children:
            if node.kind is NodeKind.U:
                req = leaf_compute(node)
                yield Compute(
                    cycles=req.cycles * node.repeat,
                    instructions=req.instructions * node.repeat,
                    llc_misses=req.llc_misses * node.repeat,
                )
            elif node.kind is NodeKind.L:
                mutex = locks.setdefault(node.lock_id, SimMutex(f"lock{node.lock_id}"))
                for _ in range(node.repeat):
                    yield Compute(cycles=overheads.omp_lock_acquire)
                    yield Acquire(mutex)
                    yield leaf_compute(node)
                    yield Release(mutex)
                    yield Compute(cycles=overheads.omp_lock_release)
            else:  # pragma: no cover - validated trees
                raise EmulationError(f"bad node inside stage: {node!r}")

    def worker(g: int) -> Generator[Any, Any, None]:
        yield Compute(cycles=overheads.omp_thread_start)
        for j in range(n_iters):
            if g > 0:
                yield EventWait(ready[g][j])
            yield Compute(cycles=overheads.omp_dynamic_dispatch)
            for stage_idx in groups[g]:
                yield from run_stage(iterations[j][stage_idx])
            if g + 1 < n_groups:
                yield EventSet(ready[g + 1][j])

    yield Compute(
        cycles=overheads.omp_fork_base
        + overheads.omp_fork_per_thread * (n_groups - 1)
    )
    workers = []
    for g in range(1, n_groups):
        w = yield Spawn(worker(g), name=f"pipe-w{g}")
        workers.append(w)
    # Master drives cluster 0.
    yield from worker(0)
    for w in workers:
        yield Join(w)
    yield Compute(cycles=overheads.omp_join_barrier)
