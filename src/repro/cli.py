"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the registered workloads with their paper inputs.
``profile <workload> [-o profile.json]``
    Interval-profile a workload; optionally save the profile.
``predict <workload|profile.json>``
    Predict speedups (FF + synthesizer, optional memory model) and compare
    against the simulated ground truth.
``calibrate``
    Run the memory-model calibration microbenchmark and print the fitted
    Ψ/Φ formulas (Eqs. 6-7).
``sweep``
    Batch-predict a full (workload × schedule × threads) grid, optionally
    fanned out over worker processes (``--jobs``); deterministic regardless
    of the worker count.  ``--explore N`` additionally samples N lock-handoff
    interleavings per grid point of each lock-bearing workload and prints
    [min, max] speedup envelopes (docs/exploration.md).
``trace``
    Replay a workload with the structured tracer enabled and export the
    simulated timeline as Chrome-trace/Perfetto JSON (one track per
    simulated core plus per-thread state tracks); open the file at
    https://ui.perfetto.dev.
``check``
    Validate the pipeline itself: run predictions with runtime invariant
    checks enabled, differential-compare FF/SYN against the simulated
    ground truth under the tolerance policy, and fuzz randomly generated
    programs.  Non-zero exit on any violation (see docs/validation.md).
``serve``
    Run the prediction daemon: predict/sweep/explore/check over HTTP+JSON
    with a bounded work queue, per-request budgets, and process-lifetime
    caches, so repeat traffic hits warm calibrations/profiles/replay memos
    instead of paying a cold start per invocation (see docs/serving.md).

``predict`` and ``sweep`` accept ``--metrics`` to print the process-wide
metrics registry (FF fast-path decisions, DRAM solves, preemptions, ...)
after the run, and ``--selfcheck`` to enable the runtime invariant
checker for the run (non-zero exit if anything trips).

Examples::

    python -m repro list
    python -m repro predict npb_ft --threads 2,4,6,8,10,12
    python -m repro profile ompscr_lu -o lu.json
    python -m repro predict lu.json --schedules static,1 --no-real
    python -m repro sweep npb_ft,npb_cg --jobs 4 --methods ff,syn,real
    python -m repro sweep npb_ep --explore 6 --threads 2,4
    python -m repro trace npb_ft --threads 4 --out ft-trace.json
    python -m repro check --quick
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro import ParallelProphet
from repro.core.report import error_ratio
from repro.core.serialize import load_profile, save_profile
from repro.obs import get_metrics
from repro.simhw.machine import MachineConfig
from repro.workloads import get_workload, workload_names


def _parse_threads(text: str) -> list[int]:
    return [int(t) for t in text.split(",") if t.strip()]


def _selfcheck_begin():
    """Enable the process-global invariant checker in record mode.

    Returns the checker and its previous state so in-process callers
    (tests, ``benchmarks/run_all.py``) get it restored afterwards.  The
    ``REPRO_VALIDATE`` environment variable is set too, so sweep worker
    processes come up with their checker enabled (in the default raise
    mode — a violation there surfaces as a structured task failure).
    """
    import os

    from repro.validate import get_checker

    checker = get_checker()
    prev = (checker.enabled, checker.mode, os.environ.get("REPRO_VALIDATE"))
    checker.enabled = True
    checker.mode = "record"
    checker.reset()
    os.environ["REPRO_VALIDATE"] = "1"
    return checker, prev


def _selfcheck_end(checker, prev) -> int:
    """Report recorded violations, restore checker state; 1 if any."""
    import os

    enabled, mode, env = prev
    violations = list(checker.violations)
    checks = checker.checks_run
    checker.enabled, checker.mode = enabled, mode
    checker.reset()
    if env is None:
        os.environ.pop("REPRO_VALIDATE", None)
    else:
        os.environ["REPRO_VALIDATE"] = env
    if violations:
        print(
            f"selfcheck: {len(violations)} invariant violation(s) "
            f"in {checks} check(s):",
            file=sys.stderr,
        )
        for v in violations:
            print(f"  {v}", file=sys.stderr)
        return 1
    print(f"selfcheck: {checks} invariant check(s), 0 violations")
    return 0


def _maybe_print_metrics(args: argparse.Namespace) -> None:
    if getattr(args, "metrics", False):
        print("\nmetrics:")
        print(get_metrics().render())


def _machine_from_args(args: argparse.Namespace) -> MachineConfig:
    return MachineConfig(n_cores=args.cores)


def _add_machine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cores", type=int, default=12, help="simulated core count (default 12)"
    )


def cmd_list(_args: argparse.Namespace) -> int:
    """``list``: print the registered workloads."""
    print(f"{'name':<16} {'paradigm':<9} {'input':<12} description")
    for name in workload_names():
        wl = get_workload(name)
        print(f"{name:<16} {wl.paradigm:<9} {wl.input_label:<12} {wl.description}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """``profile``: interval-profile a workload; optionally save JSON."""
    machine = _machine_from_args(args)
    prophet = ParallelProphet(machine=machine)
    wl = get_workload(args.workload)
    profile = prophet.profile(wl.program)
    print(f"profiled {wl.name}: {profile.serial_cycles() / 1e6:.2f} Mcycles serial, "
          f"{profile.tree.logical_nodes()} logical nodes "
          f"({profile.tree.unique_nodes()} stored), "
          f"slowdown {profile.stats.slowdown:.2f}x")
    for name, sc in profile.sections.items():
        print(f"  section {name:<14} MPI={sc.mpi:.5f} "
              f"traffic={sc.traffic_mbs(machine):7.0f} MB/s "
              f"x{sc.invocations}")
    if args.output:
        save_profile(profile, args.output)
        print(f"saved profile to {args.output}")
    return 0


def cmd_predict(args: argparse.Namespace) -> int:
    """``predict``: run the emulators and (optionally) the ground truth."""
    if args.metrics:
        get_metrics().reset()
    checker = prev = None
    if args.selfcheck:
        checker, prev = _selfcheck_begin()
    machine = _machine_from_args(args)
    prophet = ParallelProphet(machine=machine)
    threads = _parse_threads(args.threads)
    schedules = args.schedules.split(";")

    target = args.target
    if Path(target).suffix == ".json" and Path(target).exists():
        profile = load_profile(target)
        paradigm = args.paradigm or "omp"
        label = target
    else:
        wl = get_workload(target)
        profile = prophet.profile(wl.program)
        paradigm = args.paradigm or wl.paradigm
        if args.schedules == "static" and wl.schedule != "static":
            schedules = [wl.schedule]
        label = f"{wl.name} ({wl.input_label})"

    print(f"predicting {label} on {machine.n_cores} cores, "
          f"paradigm={paradigm}, schedules={schedules}")
    report = prophet.predict(
        profile,
        threads=threads,
        paradigm=paradigm,
        schedules=schedules,
        methods=tuple(args.methods.split(",")),
        memory_model=not args.no_memory_model,
        backend=args.backend,
        tier=args.tier,
    )
    print(report.to_table())

    if not args.no_real:
        real = prophet.measure_real(
            profile, threads, paradigm=paradigm, schedule=schedules[0]
        )
        print("\nsimulated ground truth vs synthesizer:")
        for t in threads:
            r = real.speedup(n_threads=t)
            candidates = report.get(method="syn", n_threads=t, schedule=schedules[0])
            if candidates:
                p = candidates[0].speedup
                print(f"  {t:2d} threads: real {r:5.2f}x, predicted {p:5.2f}x "
                      f"(error {error_ratio(p, r):.1%})")
    _maybe_print_metrics(args)
    if checker is not None:
        return _selfcheck_end(checker, prev)
    return 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    """``diagnose``: per-section bottleneck attribution."""
    from repro.core.diagnose import BottleneckDiagnoser
    from repro.runtime.tasks import Schedule

    machine = _machine_from_args(args)
    prophet = ParallelProphet(machine=machine)

    target = args.target
    if Path(target).suffix == ".json" and Path(target).exists():
        profile = load_profile(target)
        schedule = Schedule.parse(args.schedule)
        label = target
    else:
        wl = get_workload(target)
        profile = prophet.profile(wl.program)
        schedule = Schedule.parse(
            args.schedule if args.schedule != "static" else wl.schedule
        )
        label = f"{wl.name} ({wl.input_label})"

    t = args.threads_one
    prophet.attach_burdens(profile, [t])
    print(f"diagnosing {label} at {t} threads (schedule {schedule.label}):\n")
    diagnoser = BottleneckDiagnoser(schedule=schedule)
    for diag in diagnoser.diagnose(profile, t):
        print(diag.summary())
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """``sweep``: batch-predict a grid of workloads, schedules, threads."""
    from repro.core.batch import BatchPredictor

    if args.metrics:
        get_metrics().reset()
    checker = prev = None
    if args.selfcheck:
        checker, prev = _selfcheck_begin()
    machine = _machine_from_args(args)
    prophet = ParallelProphet(machine=machine)
    threads = _parse_threads(args.threads)
    schedules = args.schedules.split(";")
    methods = tuple(args.methods.split(","))

    profiles = {}
    for target in args.workloads.split(","):
        target = target.strip()
        if not target:
            continue
        if Path(target).suffix == ".json" and Path(target).exists():
            profiles[Path(target).stem] = load_profile(target)
        else:
            wl = get_workload(target)
            profiles[wl.name] = prophet.profile(wl.program)

    predictor = BatchPredictor(prophet, jobs=args.jobs, backend=args.backend)
    print(
        f"sweeping {len(profiles)} workload(s) × {len(schedules)} schedule(s) "
        f"× {len(threads)} thread count(s), methods={list(methods)}, "
        f"jobs={predictor.jobs}, backend={predictor.backend}"
    )
    reports = predictor.sweep(
        profiles,
        threads=threads,
        schedules=schedules,
        methods=methods,
        memory_model=not args.no_memory_model,
        on_error="collect",
        tier=args.tier,
    )
    if args.explore > 0:
        from repro.explore import Explorer
        from repro.validate.differential import _has_locks

        locky = {n: p for n, p in profiles.items() if _has_locks(p.tree)}
        skipped = sorted(set(profiles) - set(locky))
        if skipped:
            print(
                f"explore: skipping lock-free workload(s) {', '.join(skipped)} "
                "(single interleaving, envelope is a point)"
            )
        if locky:
            explored = Explorer(
                prophet,
                samples=args.explore,
                jobs=args.jobs,
                backend=args.backend,
            ).explore(
                locky,
                threads=threads,
                schedules=schedules,
                memory_model=not args.no_memory_model,
                on_error="collect",
            )
            for name, exp in explored.items():
                reports[name].envelopes.extend(exp.envelopes)
                reports[name].failures.extend(exp.failures)
    sections = []
    for name, report in reports.items():
        print(f"\n== {name} ==")
        print(report.to_table())
        sections.append(f"## {name}\n\n{report.to_markdown()}\n")
    if args.output:
        Path(args.output).write_text("# Sweep report\n\n" + "\n".join(sections))
        print(f"\nwrote {args.output}")
    _maybe_print_metrics(args)
    rc = 0
    n_failed = sum(len(r.failures) for r in reports.values())
    if n_failed:
        # A partially-failed sweep must not exit 0: scripts piping this into
        # reports would treat the (incomplete) grid as authoritative.
        print(
            f"warning: {n_failed} grid point(s) failed; "
            "tables above are incomplete (see per-report failure footnotes)",
            file=sys.stderr,
        )
        rc = 1
    if checker is not None:
        rc = max(rc, _selfcheck_end(checker, prev))
    return rc


def cmd_check(args: argparse.Namespace) -> int:
    """``check``: differential FF/SYN/REAL validation + invariant checks.

    Runs the full validation stack: the prediction pipeline with runtime
    invariant checks enabled (record mode), a differential comparison of
    every prediction method against the simulated ground truth under the
    tolerance policy, and a deterministic fuzz pass over randomly generated
    annotated programs.  Exits non-zero on any invariant violation or
    unexplained FF/SYN-vs-REAL divergence.
    """
    from repro.validate import DifferentialHarness, run_fuzz

    if args.quick:
        # EP's locked accumulation exercises the fallback paths; FT's
        # lock-free memory loops give the columnar re-verification below
        # real grid points to check.
        workload_list = ["npb_ep", "npb_ft"]
        threads = [2, 4]
        schedules = ["static"]
        n_fuzz = 4
        memory_model = False
    else:
        workload_list = [w.strip() for w in args.workloads.split(",") if w.strip()]
        threads = _parse_threads(args.threads)
        schedules = args.schedules.split(";")
        n_fuzz = args.fuzz
        memory_model = not args.no_memory_model

    checker, prev = _selfcheck_begin()
    try:
        machine = _machine_from_args(args)
        prophet = ParallelProphet(machine=machine)
        profiles = {}
        for target in workload_list:
            if Path(target).suffix == ".json" and Path(target).exists():
                profiles[Path(target).stem] = load_profile(target)
            else:
                wl = get_workload(target)
                profiles[wl.name] = prophet.profile(wl.program)
        harness = DifferentialHarness(prophet)
        print(
            f"differential-validating {len(profiles)} workload(s) × "
            f"{len(schedules)} schedule(s) × {len(threads)} thread count(s) ..."
        )
        report = harness.run(
            profiles,
            threads=threads,
            schedules=schedules,
            memory_model=memory_model,
        )
        if n_fuzz > 0:
            print(f"fuzzing {n_fuzz} random program(s) (seed {args.seed}) ...")
            report.merge(run_fuzz(n_programs=n_fuzz, seed=args.seed))
        print(report.summary())
        rc = 1 if report.violations else 0
        # Columnar backend: sampled re-verification against the *uncached*
        # eager path (same pattern as the section-memo invariant) — the
        # vectorized engine must agree within 1e-9 wherever it engages.
        from repro.core.columnar import verify_points

        col_checked = col_skipped = 0
        for name, profile in profiles.items():
            if memory_model and profile.sections:
                prophet.attach_burdens(profile, threads)
            checked, skipped, mismatches = verify_points(
                prophet, profile, threads, schedules
            )
            col_checked += checked
            col_skipped += skipped
            for msg in mismatches:
                print(f"columnar: {name}: {msg}", file=sys.stderr)
                rc = 1
        print(
            f"columnar backend: {col_checked} grid point(s) re-verified "
            f"against uncached eager replay, {col_skipped} fallback(s)"
        )
        # Surrogate tier: every confident answer of the default model on
        # this grid — exactly the answers tier="auto" would serve without
        # fallback — is compared against an uncached exact replay under
        # the surrogate tolerance class (docs/surrogate.md).
        from repro.validate import verify_surrogate

        sur_checked = sur_abstained = 0
        for name, profile in profiles.items():
            checked, abstained, sur_mismatches = verify_surrogate(
                prophet,
                profile,
                threads,
                schedules,
                memory_model=memory_model,
            )
            sur_checked += checked
            sur_abstained += abstained
            for msg in sur_mismatches:
                print(f"surrogate: {name}: {msg}", file=sys.stderr)
                rc = 1
        print(
            f"surrogate tier: {sur_checked} confident answer(s) verified "
            f"against uncached exact replay, {sur_abstained} abstention(s)"
        )
        if args.quick:
            # Sample one explored point and re-verify its envelope extremes
            # by uncached eager replay (same contract as the columnar
            # check): EP is lock-bearing, so its envelope is live.
            from repro.explore import verify_envelope

            env_checked, env_mismatches = verify_envelope(
                prophet,
                profiles["npb_ep"],
                n_threads=2,
                memory_model=memory_model,
            )
            print(
                f"explore: {env_checked} envelope extreme(s) of npb_ep/t=2 "
                f"re-verified by uncached eager replay, "
                f"{env_mismatches} mismatch(es)"
            )
            if env_mismatches:
                rc = 1
    finally:
        check_rc = _selfcheck_end(checker, prev)
    return max(rc, check_rc)


def cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: run the prediction daemon until interrupted.

    A long-lived process serving predict/sweep/explore/check over
    HTTP+JSON with process-lifetime caches (calibrations, profiles,
    section memo, columnar lowerings, whole responses) — repeat traffic
    hits warm state instead of recalibrating per invocation.  See
    docs/serving.md for the endpoint reference.
    """
    from repro.serve import RequestBudgets, ServeConfig, create_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        budgets=RequestBudgets(
            max_grid_points=args.max_grid_points,
            timeout_s=args.timeout,
        ),
        jobs=args.jobs,
        backend=args.backend,
        tier=args.tier,
        section_memo=args.section_memo,
        log_requests=args.log_requests,
    )
    server = create_server(config)
    # flush=True: supervisors and scripts watching a piped stdout need the
    # bound (possibly ephemeral) port before the blocking serve loop.
    print(
        f"repro serve listening on {server.address} "
        f"(workers={config.workers}, queue depth={config.queue_depth}, "
        f"jobs={config.jobs}, backend={config.backend})",
        flush=True,
    )
    print(
        "endpoints: GET /health /workloads /stats | "
        "POST /predict /sweep /explore /check /cache/clear /shutdown",
        flush=True,
    )
    server.serve_forever()
    print("repro serve: drained and stopped")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """``trace``: replay a workload with tracing on; export Perfetto JSON."""
    from repro.core.executor import ParallelExecutor, ReplayMode
    from repro.obs import Tracer, write_chrome_trace
    from repro.runtime.tasks import Schedule

    machine = _machine_from_args(args)
    prophet = ParallelProphet(machine=machine)

    target = args.target
    if Path(target).suffix == ".json" and Path(target).exists():
        profile = load_profile(target)
        paradigm = args.paradigm or "omp"
        schedule = Schedule.parse(args.schedule)
        label = target
    else:
        wl = get_workload(target)
        profile = prophet.profile(wl.program)
        paradigm = args.paradigm or wl.paradigm
        schedule = Schedule.parse(
            args.schedule if args.schedule != "static" else wl.schedule
        )
        label = f"{wl.name} ({wl.input_label})"

    tracer = Tracer(capacity=args.buffer, enabled=True)
    mode = ReplayMode.REAL if args.mode == "real" else ReplayMode.FAKE
    burdens = {}
    if mode is ReplayMode.FAKE:
        prophet.attach_burdens(profile, [args.threads])
        burdens = {
            name: profile.burden_for(name, args.threads)
            for name in profile.sections
        }
    executor = ParallelExecutor(
        machine=machine,
        paradigm=paradigm,
        schedule=schedule,
        overheads=prophet.overheads,
        tracer=tracer,
    )
    result = executor.execute_profile(
        profile.tree, args.threads, mode=mode, burdens=burdens
    )
    write_chrome_trace(tracer.events(), args.out, freq_ghz=machine.freq_ghz)
    print(
        f"traced {label}: {args.threads} threads, mode={args.mode}, "
        f"{result.total_cycles / 1e6:.2f} Mcycles simulated"
    )
    print(f"wrote {len(tracer)} events to {args.out} (open in ui.perfetto.dev)")
    if tracer.dropped:
        print(
            f"warning: ring buffer overflowed, {tracer.dropped} oldest "
            f"event(s) dropped — rerun with --buffer {2 * args.buffer}"
        )
    return 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    """``calibrate``: print the machine's fitted Eqs. 6-7."""
    machine = _machine_from_args(args)
    prophet = ParallelProphet(machine=machine)
    threads = _parse_threads(args.threads)
    cal = prophet.calibration(threads)
    print(cal.summary())
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Parallel Prophet: speedup prediction for annotated "
        "serial programs (IPDPS 2012 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered workloads")
    p_list.set_defaults(func=cmd_list)

    p_profile = sub.add_parser("profile", help="profile a workload")
    p_profile.add_argument("workload", help="workload name (see `list`)")
    p_profile.add_argument("-o", "--output", help="save profile JSON here")
    _add_machine_args(p_profile)
    p_profile.set_defaults(func=cmd_profile)

    p_predict = sub.add_parser("predict", help="predict speedups")
    p_predict.add_argument(
        "target", help="workload name or saved profile .json path"
    )
    p_predict.add_argument(
        "--threads", default="2,4,6,8,10,12", help="comma-separated counts"
    )
    p_predict.add_argument(
        "--schedules",
        default="static",
        help="semicolon-separated OpenMP schedules (e.g. 'static,1;dynamic,1')",
    )
    p_predict.add_argument(
        "--methods", default="ff,syn", help="comma-separated: ff,syn"
    )
    p_predict.add_argument("--paradigm", choices=("omp", "cilk", "omp_task"))
    p_predict.add_argument(
        "--no-memory-model", action="store_true", help="disable burden factors"
    )
    p_predict.add_argument(
        "--no-real", action="store_true", help="skip the ground-truth replay"
    )
    p_predict.add_argument(
        "--backend", choices=("auto", "columnar", "eager"), default="auto",
        help="evaluation backend: auto/columnar = vectorized engine with "
        "per-point eager fallback; eager = scalar path everywhere",
    )
    p_predict.add_argument(
        "--tier", choices=("exact", "surrogate", "auto"), default="exact",
        help="prediction tier: exact = emulators; surrogate = learned model "
        "wherever it has standing; auto = surrogate only where confident, "
        "exact fallback elsewhere (see docs/surrogate.md)",
    )
    p_predict.add_argument(
        "--metrics", action="store_true",
        help="print the process-wide metrics registry after predicting",
    )
    p_predict.add_argument(
        "--selfcheck", action="store_true",
        help="run with runtime invariant checks on; non-zero exit on violation",
    )
    _add_machine_args(p_predict)
    p_predict.set_defaults(func=cmd_predict)

    p_diag = sub.add_parser(
        "diagnose", help="attribute per-section speedup loss to causes"
    )
    p_diag.add_argument("target", help="workload name or saved profile .json")
    p_diag.add_argument(
        "--threads", dest="threads_one", type=int, default=8,
        help="thread count to diagnose at (default 8)",
    )
    p_diag.add_argument("--schedule", default="static")
    _add_machine_args(p_diag)
    p_diag.set_defaults(func=cmd_diagnose)

    p_sweep = sub.add_parser(
        "sweep", help="batch-predict a workload × schedule × threads grid"
    )
    p_sweep.add_argument(
        "workloads",
        help="comma-separated workload names and/or saved profile .json paths",
    )
    p_sweep.add_argument(
        "--threads", default="2,4,6,8,10,12", help="comma-separated counts"
    )
    p_sweep.add_argument(
        "--schedules",
        default="static",
        help="semicolon-separated OpenMP schedules (e.g. 'static,1;dynamic,1')",
    )
    p_sweep.add_argument(
        "--methods", default="syn", help="comma-separated: ff,syn,real"
    )
    p_sweep.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes (1 = in-process; results identical either way)",
    )
    p_sweep.add_argument(
        "--no-memory-model", action="store_true", help="disable burden factors"
    )
    p_sweep.add_argument(
        "--explore", type=int, default=0, metavar="N",
        help="explore N lock-handoff interleavings per grid point of each "
        "lock-bearing workload and print [min, max] speedup envelopes "
        "(0 disables; see docs/exploration.md)",
    )
    p_sweep.add_argument("-o", "--output", help="write a markdown report here")
    p_sweep.add_argument(
        "--backend", choices=("auto", "columnar", "eager"), default="auto",
        help="evaluation backend: auto/columnar = vectorized engine with "
        "per-point eager fallback; eager = scalar path everywhere",
    )
    p_sweep.add_argument(
        "--tier", choices=("exact", "surrogate", "auto"), default="exact",
        help="prediction tier: exact = emulators; surrogate = learned model "
        "wherever it has standing; auto = surrogate only where confident, "
        "exact fallback elsewhere (see docs/surrogate.md)",
    )
    p_sweep.add_argument(
        "--metrics", action="store_true",
        help="print the merged (parent + workers) metrics after the sweep",
    )
    p_sweep.add_argument(
        "--selfcheck", action="store_true",
        help="run with runtime invariant checks on (workers inherit via "
        "REPRO_VALIDATE); non-zero exit on violation",
    )
    _add_machine_args(p_sweep)
    p_sweep.set_defaults(func=cmd_sweep)

    p_check = sub.add_parser(
        "check",
        help="validate the pipeline: invariants + FF/SYN/REAL differential "
        "+ deterministic fuzz",
    )
    p_check.add_argument(
        "--workloads", default="npb_ep,ompscr_lu",
        help="comma-separated workload names and/or saved profile .json paths",
    )
    p_check.add_argument(
        "--threads", default="2,4,8", help="comma-separated counts"
    )
    p_check.add_argument(
        "--schedules", default="static",
        help="semicolon-separated OpenMP schedules",
    )
    p_check.add_argument(
        "--fuzz", type=int, default=8,
        help="number of random fuzz programs (0 disables; default 8)",
    )
    p_check.add_argument(
        "--seed", type=int, default=0, help="fuzz RNG seed (default 0)"
    )
    p_check.add_argument(
        "--no-memory-model", action="store_true", help="disable burden factors"
    )
    p_check.add_argument(
        "--quick", action="store_true",
        help="small fixed configuration (one workload, t=2,4, 4 fuzz "
        "programs, no memory model) for CI and benchmarks/run_all.py",
    )
    _add_machine_args(p_check)
    p_check.set_defaults(func=cmd_check)

    p_serve = sub.add_parser(
        "serve",
        help="run the prediction daemon (HTTP+JSON, process-lifetime caches)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8765,
        help="listen port (0 picks an ephemeral port; default 8765)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="compute worker threads draining the request queue (default 1)",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=16,
        help="pending-request bound; beyond it requests get 429 (default 16)",
    )
    p_serve.add_argument(
        "--max-grid-points", type=int, default=4096,
        help="per-request grid-size budget; beyond it 413 (default 4096)",
    )
    p_serve.add_argument(
        "--timeout", type=float, default=60.0,
        help="per-request wall-clock ceiling in seconds (default 60)",
    )
    p_serve.add_argument(
        "--jobs", type=int, default=1,
        help="sweep worker processes per cached predictor (default 1 — "
        "in-process, which is what keeps the replay caches warm)",
    )
    p_serve.add_argument(
        "--backend", choices=("auto", "columnar", "eager"), default="auto",
        help="evaluation backend baked into every cached predictor",
    )
    p_serve.add_argument(
        "--tier", choices=("exact", "surrogate", "auto"), default="exact",
        help="default prediction tier for requests that don't set \"tier\" "
        "themselves (see docs/surrogate.md)",
    )
    p_serve.add_argument(
        "--section-memo", type=int, default=None, metavar="N",
        help="rebound the process-wide section-replay memo to N entries",
    )
    p_serve.add_argument(
        "--log-requests", action="store_true",
        help="log one line per HTTP request to stderr",
    )
    p_serve.set_defaults(func=cmd_serve)

    p_trace = sub.add_parser(
        "trace",
        help="export a replay timeline as Chrome-trace/Perfetto JSON",
    )
    p_trace.add_argument(
        "target", help="workload name or saved profile .json path"
    )
    p_trace.add_argument(
        "--threads", type=int, default=4, help="thread count to replay at"
    )
    p_trace.add_argument("--schedule", default="static")
    p_trace.add_argument(
        "--mode", choices=("real", "syn"), default="real",
        help="real = ground-truth replay; syn = synthesizer fake-delay replay",
    )
    p_trace.add_argument("--paradigm", choices=("omp", "cilk", "omp_task"))
    p_trace.add_argument(
        "--out", default="trace.json", help="output path (default trace.json)"
    )
    p_trace.add_argument(
        "--buffer", type=int, default=1 << 18,
        help="tracer ring-buffer capacity in events (default 262144)",
    )
    _add_machine_args(p_trace)
    p_trace.set_defaults(func=cmd_trace)

    p_cal = sub.add_parser("calibrate", help="print fitted Psi/Phi formulas")
    p_cal.add_argument("--threads", default="2,4,8,12")
    _add_machine_args(p_cal)
    p_cal.set_defaults(func=cmd_calibrate)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
