"""Process-wide metrics registry: counters, gauges, histograms.

This unifies the previously ad-hoc stats surfaces — the FF emulator's
``fast_path_hits``/``fast_path_misses``, the DRAM model's
``cache_info()``, the kernel's ``preemptions`` — behind one API with a
``snapshot()``/``reset()``/``merge()`` contract:

- **snapshot()** returns a plain, JSON-serialisable, deterministically
  ordered dict (sorted keys everywhere), safe to pickle across process
  boundaries.
- **reset()** zeroes the registry; the worker-side convention is *reset at
  chunk start, snapshot at chunk end*, so a snapshot is exactly the delta
  produced by that chunk even when pool workers are reused.
- **merge(snapshot)** folds a snapshot into the registry: counters add,
  histograms combine (count/sum add, min/max extremise), gauges take the
  incoming value.  Counter and histogram merging is commutative, so the
  parent merging worker snapshots in *submission* order yields the same
  totals regardless of completion order — the batch engine's determinism
  guarantee extends to metrics.

Increments sit at section/task granularity in the instrumented code (never
in per-event inner loops), so the registry can stay always-on: a counter
bump is two dict operations.
"""

from __future__ import annotations

import math
from typing import Any, Optional


class Histogram:
    """Streaming summary of observed values: count, sum, min, max."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }

    def merge(self, snap: dict[str, float]) -> None:
        incoming = int(snap["count"])
        if incoming == 0:
            return
        self.count += incoming
        self.total += snap["sum"]
        if snap["min"] < self.min:
            self.min = snap["min"]
        if snap["max"] > self.max:
            self.max = snap["max"]


class MetricsRegistry:
    """Named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------ recording

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0.0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into histogram ``name``."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram()
        hist.observe(value)

    # ------------------------------------------------------------- reading

    def counter_value(self, name: str) -> float:
        return self._counters.get(name, 0.0)

    def counters(self, prefix: Optional[str] = None) -> dict[str, float]:
        """A sorted copy of the counters, optionally filtered by prefix.

        The serve daemon's ``GET /stats`` uses this to report exactly the
        registry's ``serve.*`` family, so the endpoint and ``--metrics``
        can never disagree about a counter's value."""
        return {
            name: self._counters[name]
            for name in sorted(self._counters)
            if prefix is None or name.startswith(prefix)
        }

    def gauge_value(self, name: str) -> Optional[float]:
        return self._gauges.get(name)

    def histogram(self, name: str) -> Optional[Histogram]:
        return self._histograms.get(name)

    # ----------------------------------------------------- snapshot contract

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict, deterministically ordered copy of the registry."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].snapshot()
                for k in sorted(self._histograms)
            },
        }

    def reset(self) -> None:
        """Zero every metric (drops the names too)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def merge(self, snapshot: dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` dict into this registry."""
        for name in sorted(snapshot.get("counters", {})):
            self.inc(name, snapshot["counters"][name])
        for name in sorted(snapshot.get("gauges", {})):
            self.gauge(name, snapshot["gauges"][name])
        for name in sorted(snapshot.get("histograms", {})):
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram()
            hist.merge(snapshot["histograms"][name])

    # ------------------------------------------------------------- rendering

    def hit_rates(self) -> dict[str, float]:
        """Derived ``<prefix>.hit_rate`` ratios for every counter pair
        ``<prefix>.hits`` / ``<prefix>.misses`` present in the registry.

        Computed from the merged counters, so after a pooled sweep these
        are the *aggregate* cache hit rates across all workers (DRAM-solve
        LRU, section memo, ...), not just the parent process's view.
        Display-only: :meth:`snapshot` stays raw counters."""
        rates: dict[str, float] = {}
        for name in self._counters:
            if not name.endswith(".hits"):
                continue
            prefix = name[: -len(".hits")]
            hits = self._counters[name]
            misses = self._counters.get(prefix + ".misses")
            if misses is None:
                continue
            total = hits + misses
            if total > 0:
                rates[prefix + ".hit_rate"] = hits / total
        return rates

    def render(self) -> str:
        """Plain-text dump (the ``--metrics`` CLI output)."""
        lines: list[str] = []
        if self._counters:
            lines.append("counters:")
            rates = self.hit_rates()
            for name in sorted(self._counters):
                value = self._counters[name]
                text = f"{value:.0f}" if value == int(value) else f"{value:.3f}"
                lines.append(f"  {name:<32} {text:>14}")
            for name in sorted(rates):
                lines.append(f"  {name:<32} {rates[name]:>13.1%}")
        if self._gauges:
            lines.append("gauges:")
            for name in sorted(self._gauges):
                lines.append(f"  {name:<32} {self._gauges[name]:>14.3f}")
        if self._histograms:
            lines.append("histograms:")
            for name in sorted(self._histograms):
                h = self._histograms[name]
                lines.append(
                    f"  {name:<32} n={h.count} mean={h.mean:.1f} "
                    f"min={h.min if h.count else 0:.1f} "
                    f"max={h.max if h.count else 0:.1f}"
                )
        return "\n".join(lines) if lines else "(no metrics recorded)"


#: Process-global registry, created lazily by :func:`get_metrics`.
_GLOBAL: Optional[MetricsRegistry] = None


def get_metrics() -> MetricsRegistry:
    """The process-global metrics registry (always on)."""
    global _GLOBAL
    if _GLOBAL is None:
        _GLOBAL = MetricsRegistry()
    return _GLOBAL


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-global registry; returns the previous one."""
    global _GLOBAL
    old = get_metrics()
    _GLOBAL = registry
    return old
