"""Timeline export in Chrome Trace Event Format (Perfetto-compatible).

:func:`to_chrome_trace` converts tracer events into the JSON object format
documented by the Trace Event Format spec and accepted verbatim by
``chrome://tracing`` and https://ui.perfetto.dev: a ``traceEvents`` array
of ``ph``-tagged records plus ``M``-phase metadata naming each track.

Mapping
-------
- Every distinct tracer *track* becomes one Chrome "thread" (``tid``)
  inside a single "process" (``pid`` 1).  Simulated CPU tracks (``cpu0``,
  ``cpu1``, …) sort first, in numeric order, so the per-core execution
  timeline — one row per simulated core, spans named after the simulated
  thread that occupied the core — reads top-down like a Gantt chart.
- Spans become ``"X"`` (complete) events, instants ``"i"``-scoped ``"I"``
  events, counter samples ``"C"`` events.
- Timestamps are converted from simulated cycles to microseconds with the
  machine frequency (``freq_ghz``); without it, one cycle maps to one
  microsecond, which preserves shape but not absolute scale.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Iterable, Union

from repro.obs.tracer import COUNTER, INSTANT, SPAN, TraceEvent

_CPU_TRACK = re.compile(r"^cpu(\d+)$")

#: The single simulated-machine "process" all tracks belong to.
_PID = 1


def _track_sort_key(track: str) -> tuple:
    m = _CPU_TRACK.match(track)
    if m:
        return (0, int(m.group(1)), track)
    return (1, 0, track)


def to_chrome_trace(
    events: Iterable[TraceEvent],
    freq_ghz: Union[float, None] = None,
    process_name: str = "repro-sim",
) -> dict[str, Any]:
    """Convert tracer events to a Chrome-trace JSON object (as a dict).

    The output is deterministic for a given event sequence: tracks are
    numbered in sorted order, events are emitted in (timestamp, arrival)
    order, and all dict keys are plain strings — ``json.dumps(...,
    sort_keys=True)`` of the result is byte-stable.
    """
    scale = 1.0 / (freq_ghz * 1e3) if freq_ghz else 1.0  # cycles -> us
    events = list(events)
    tracks = sorted({e.track for e in events}, key=_track_sort_key)
    tids = {track: i for i, track in enumerate(tracks)}

    records: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for track in tracks:
        records.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": _PID,
                "tid": tids[track],
                "args": {"name": track},
            }
        )
        records.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": _PID,
                "tid": tids[track],
                "args": {"sort_index": tids[track]},
            }
        )

    for _order, e in sorted(enumerate(events), key=lambda pair: (pair[1].ts, pair[0])):
        record: dict[str, Any] = {
            "name": e.name,
            "cat": e.cat or "repro",
            "ts": e.ts * scale,
            "pid": _PID,
            "tid": tids[e.track],
        }
        if e.kind == SPAN:
            record["ph"] = "X"
            record["dur"] = e.dur * scale
        elif e.kind == INSTANT:
            record["ph"] = "I"
            record["s"] = "t"  # thread-scoped instant
        elif e.kind == COUNTER:
            record["ph"] = "C"
        else:  # pragma: no cover - tracer only emits the three kinds
            continue
        if e.args:
            record["args"] = dict(e.args)
        records.append(record)

    return {"traceEvents": records, "displayTimeUnit": "ms"}


def write_chrome_trace(
    events: Iterable[TraceEvent],
    path: Union[str, Path],
    freq_ghz: Union[float, None] = None,
    process_name: str = "repro-sim",
) -> dict[str, Any]:
    """Write :func:`to_chrome_trace` output to ``path``; returns the dict."""
    data = to_chrome_trace(events, freq_ghz=freq_ghz, process_name=process_name)
    Path(path).write_text(json.dumps(data, sort_keys=True))
    return data
