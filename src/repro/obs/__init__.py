"""Observability: structured event tracing, metrics, and timeline export.

The paper's whole pitch is *explaining* where predicted speedup goes —
burden factors, scheduler overhead, DRAM saturation (§V–§VII) — yet final
speedup numbers alone cannot show *why* the FF and the synthesizer disagree
on a workload or why one sweep point looks wrong.  This package makes every
emulation inspectable:

- :mod:`repro.obs.tracer` — a ring-buffered structured event tracer.
  Spans and instants are stamped with monotonic *simulated* time (cycles),
  emitted by hooks threaded through the DES kernel, the scheduler, the DRAM
  model, the FF emulator, the synthesizer replays, and the batch engine.
  Disabled by default; a disabled tracer costs one attribute check per
  potential event (measured <2 % on the Fig. 11 bench path, see
  ``benchmarks/bench_tracer_overhead.py``).
- :mod:`repro.obs.metrics` — a process-wide registry of counters, gauges,
  and histograms with a ``snapshot()``/``reset()``/``merge()`` contract
  that works across ``ProcessPoolExecutor`` workers (each worker returns
  its snapshot with its result chunk; the parent merges deterministically).
  It unifies the previously ad-hoc stats: FF fast-path hit/miss counters,
  DRAM-solve cache hits/misses, preemption counts.
- :mod:`repro.obs.export` — Chrome-trace / Perfetto JSON timeline export
  (one track per simulated core plus per-thread state tracks) and a
  plain-text metrics dump.

Enable tracing for a whole process with the environment variable
``REPRO_TRACE=1`` (read once, when the default tracer is first created),
programmatically via ``get_tracer().enabled = True``, or per run with
``python -m repro trace <workload> --threads N --out trace.json``.
"""

from repro.obs.export import to_chrome_trace, write_chrome_trace
from repro.obs.metrics import MetricsRegistry, get_metrics, set_metrics
from repro.obs.tracer import TraceEvent, Tracer, get_tracer, set_tracer

__all__ = [
    "TraceEvent",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "MetricsRegistry",
    "get_metrics",
    "set_metrics",
    "to_chrome_trace",
    "write_chrome_trace",
]
