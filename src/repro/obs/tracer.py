"""Ring-buffered structured event tracer stamped with simulated time.

Every event carries a monotonic *simulated* timestamp in cycles (the DES
kernel's clock, offset by :attr:`Tracer.offset` so consecutive kernel runs
of one program land on a single timeline), a track name (``cpu3``,
``thread:omp-w1``, ``ff``, ``batch``, …), a category, and an optional args
mapping.  Events live in a bounded ring buffer (:class:`collections.deque`
with ``maxlen``): a runaway emulation overwrites its oldest events instead
of exhausting memory, and :attr:`Tracer.dropped` counts the overwritten
ones so exports can warn about truncation.

Overhead contract
-----------------
Instrumented code guards every emission with ``if tracer.enabled:`` — a
single attribute load and branch when tracing is off.  The emission methods
re-check ``enabled`` themselves so un-guarded call sites are still no-ops,
but hot paths should guard to skip argument construction entirely.  The
disabled-path cost is asserted <2 % of the Fig. 11 bench path by
``benchmarks/bench_tracer_overhead.py``.
"""

from __future__ import annotations

import os
from collections import deque
from typing import Any, Mapping, Optional

#: Event kinds, mirroring Chrome Trace Event Format phases:
#: ``"X"`` complete span, ``"I"`` instant, ``"C"`` counter sample.
SPAN = "X"
INSTANT = "I"
COUNTER = "C"

#: Default ring capacity — large enough for a full small-workload replay,
#: bounded enough that an always-on tracer cannot exhaust memory.
DEFAULT_CAPACITY = 1 << 16


class TraceEvent:
    """One trace record.  Plain slotted object, cheap to allocate."""

    __slots__ = ("kind", "name", "ts", "dur", "track", "cat", "args")

    def __init__(
        self,
        kind: str,
        name: str,
        ts: float,
        dur: float,
        track: str,
        cat: str,
        args: Optional[Mapping[str, Any]],
    ) -> None:
        self.kind = kind
        self.name = name
        self.ts = ts
        self.dur = dur
        self.track = track
        self.cat = cat
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceEvent({self.kind!r}, {self.name!r}, ts={self.ts:.0f}, "
            f"dur={self.dur:.0f}, track={self.track!r})"
        )


class Tracer:
    """Bounded, always-constructible event sink.

    Attributes
    ----------
    enabled:
        The master switch.  Instrumentation guards on it; flipping it at
        run time starts/stops collection immediately.
    offset:
        Sim-time origin (cycles) added to the local clock of the *next*
        :class:`~repro.simos.kernel.SimKernel` constructed against this
        tracer.  The replay executor advances it between top-level sections
        so a whole program's kernel runs share one timeline.
    dropped:
        Events overwritten by the ring buffer since the last :meth:`clear`.
    """

    __slots__ = ("enabled", "capacity", "offset", "dropped", "_events")

    def __init__(
        self, capacity: int = DEFAULT_CAPACITY, enabled: bool = False
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self.offset = 0.0
        self.dropped = 0
        self._events: deque[TraceEvent] = deque(maxlen=capacity)

    # ----------------------------------------------------------------- emit

    def _append(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def span(
        self,
        name: str,
        ts: float,
        dur: float,
        track: str = "main",
        cat: str = "",
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """A complete span: ``name`` occupied ``track`` from ``ts`` for
        ``dur`` simulated cycles."""
        if not self.enabled:
            return
        self._append(TraceEvent(SPAN, name, ts, dur, track, cat, args))

    def instant(
        self,
        name: str,
        ts: float,
        track: str = "main",
        cat: str = "",
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """A zero-duration marker at ``ts`` on ``track``."""
        if not self.enabled:
            return
        self._append(TraceEvent(INSTANT, name, ts, 0.0, track, cat, args))

    def counter(
        self,
        name: str,
        ts: float,
        value: float,
        track: str = "counters",
        cat: str = "",
    ) -> None:
        """A sampled counter value (rendered as a step graph in Perfetto)."""
        if not self.enabled:
            return
        self._append(
            TraceEvent(COUNTER, name, ts, 0.0, track, cat, {"value": value})
        )

    # ------------------------------------------------------------ inspection

    def events(self) -> list[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        """Drop all buffered events and reset the drop counter and offset."""
        self._events.clear()
        self.dropped = 0
        self.offset = 0.0

    def __len__(self) -> int:
        return len(self._events)


#: Process-global default tracer, created lazily by :func:`get_tracer`.
_GLOBAL: Optional[Tracer] = None


def get_tracer() -> Tracer:
    """The process-global tracer (lazily created, disabled by default).

    The first call reads the ``REPRO_TRACE`` environment variable: any
    value other than empty or ``0`` starts the tracer enabled, which is how
    the tier-1 test suite runs with every hook live
    (``REPRO_TRACE=1 pytest``).
    """
    global _GLOBAL
    if _GLOBAL is None:
        enabled = os.environ.get("REPRO_TRACE", "") not in ("", "0")
        _GLOBAL = Tracer(enabled=enabled)
    return _GLOBAL


def set_tracer(tracer: Tracer) -> Tracer:
    """Replace the process-global tracer; returns the previous one."""
    global _GLOBAL
    old = get_tracer()
    _GLOBAL = tracer
    return old
