"""Simulated threads and the request vocabulary they yield to the kernel.

A simulated thread is a Python generator.  It *yields* request objects to the
kernel and receives the request's result via ``send()`` — the standard
coroutine-style DES idiom (cf. SimPy), chosen over callbacks because parallel
runtime code (OpenMP worker bodies, Cilk workers) reads naturally as
sequential control flow.

Example::

    def body(kernel):
        yield Compute(cycles=1_000)
        yield Acquire(mutex)
        yield Compute(cycles=50)
        yield Release(mutex)

Every request is a tiny immutable-ish data object; the kernel owns all state
transitions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.simos.sync import SimBarrier, SimEvent, SimMutex


class ThreadState(enum.Enum):
    """Lifecycle states of a simulated thread."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    FINISHED = "finished"


class SimThread:
    """Kernel-side record of one simulated thread."""

    __slots__ = (
        "tid",
        "name",
        "gen",
        "state",
        "affinity",
        "core",
        "joiners",
        "segment",
        "result",
        "ready_stamp",
        "pending_value",
        "switch_debt",
        "seg_cache",
        "work_done",
    )

    def __init__(
        self,
        tid: int,
        gen: Generator[Any, Any, Any],
        name: str = "",
        affinity: Optional[frozenset[int]] = None,
    ) -> None:
        self.tid = tid
        self.name = name or f"thread-{tid}"
        self.gen = gen
        self.state = ThreadState.NEW
        #: Set of core ids this thread may run on; ``None`` means any core.
        self.affinity = affinity
        #: Core currently running this thread, if any.
        self.core: Optional[int] = None
        #: Threads blocked in ``Join`` on this thread.
        self.joiners: list["SimThread"] = []
        #: The in-flight compute segment when preempted mid-compute.
        self.segment: Optional["ComputeSegment"] = None
        #: Value returned by the generator (via ``return``), once finished.
        self.result: Any = None
        #: Monotone stamp for FIFO ready-queue ordering.
        self.ready_stamp: int = 0
        #: Value to send into the generator at the next resume.
        self.pending_value: Any = None
        #: Context-switch cost owed, paid by the next compute segment.
        self.switch_debt: float = 0.0
        #: Retired :class:`ComputeSegment` reused by the next attach (the
        #: kernel's epoch staleness checks make identity reuse safe).
        self.seg_cache: Optional["ComputeSegment"] = None
        #: Base compute cycles executed so far — the progress proxy behind
        #: the ``adversarial`` lock-handoff policy.  Accumulated only while
        #: that policy is active (kernels default to leaving it at 0).
        self.work_done: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimThread({self.tid}, {self.name!r}, {self.state.value})"


# ---------------------------------------------------------------------------
# Requests
# ---------------------------------------------------------------------------


@dataclass
class Compute:
    """Run on a core for ``cycles`` uncontended cycles.

    ``cycles`` is the *base* duration: pure execution plus LLC-miss stall at
    an idle memory system.  The kernel stretches the memory portion under
    DRAM contention.  ``instructions`` and ``llc_misses`` feed the simulated
    performance counters and the contention model; both may be zero for
    "fake delay" segments (the synthesizer's FakeDelay spins without touching
    memory — Section IV-E).
    """

    cycles: float
    instructions: float = 0.0
    llc_misses: float = 0.0

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ConfigurationError(f"Compute cycles must be >= 0, got {self.cycles!r}")
        if self.instructions < 0 or self.llc_misses < 0:
            raise ConfigurationError("instructions and llc_misses must be >= 0")


@dataclass
class Acquire:
    """Block until the mutex is owned by the calling thread."""

    mutex: "SimMutex"


@dataclass
class Release:
    """Release an owned mutex (FIFO handoff to the next waiter)."""

    mutex: "SimMutex"


@dataclass
class BarrierWait:
    """Block until ``barrier.parties`` threads have arrived."""

    barrier: "SimBarrier"


@dataclass
class Spawn:
    """Create a new thread from ``gen``; the spawned :class:`SimThread` is
    returned to the caller."""

    gen: Generator[Any, Any, Any]
    name: str = ""
    affinity: Optional[frozenset[int]] = None


@dataclass
class Join:
    """Block until ``thread`` finishes; returns its ``result``."""

    thread: SimThread


@dataclass
class YieldCpu:
    """Voluntarily move to the back of the ready queue."""


@dataclass
class GetTime:
    """Returns the current virtual time in cycles."""


@dataclass
class GetCurrentThread:
    """Returns the calling :class:`SimThread` (for per-worker accounting)."""


@dataclass
class EventWait:
    """Block until the event is set (level-triggered)."""

    event: "SimEvent"


@dataclass
class EventSet:
    """Set the event and wake waiters (``wake='all'`` or ``'one'``)."""

    event: "SimEvent"
    wake: str = "all"


@dataclass
class EventClear:
    """Clear the event."""

    event: "SimEvent"


@dataclass(slots=True)
class ComputeSegment:
    """Kernel-internal progress record for an in-flight :class:`Compute`.

    ``remaining`` counts *base* cycles still owed.  ``rate_epoch`` lazily
    invalidates stale completion events after a rate reconfiguration.

    ``switch_debt`` is context-switch cost added to ``remaining`` when a
    preempted segment resumes on a cold core.  It is *not* part of
    ``total``: counter attribution in ``_advance_segment`` pays the debt
    off first, so instruction/miss fractions are computed against real
    work only and sum to exactly 1 over the segment's life.
    """

    thread: SimThread
    total: float
    remaining: float
    instructions: float
    llc_misses: float
    mem_fraction: float
    demand_bytes_per_sec: float
    last_update: float = 0.0
    slowdown: float = 1.0
    rate_epoch: int = 0
    #: Wall cycles actually consumed so far (for counters/overhead checks).
    wall_consumed: float = 0.0
    #: Outstanding resume-switch cycles folded into ``remaining``.
    switch_debt: float = 0.0
    #: Rate anchor: time and remaining when ``slowdown`` was last *changed*
    #: (not merely re-confirmed).  Progress is always computed from the
    #: anchor in closed form, so any number of intermediate observations
    #: yields bitwise-identical ``remaining`` — the invariant that keeps
    #: the event-sparse and eager kernels' timestamps exactly equal.
    anchor_time: float = 0.0
    anchor_remaining: float = 0.0
    #: Completion time computed once per anchor; re-pushed verbatim.
    t_complete: float = 0.0
    #: Attribution-fraction accumulator for the invariant checker: the sum
    #: of per-advance ``work/total`` fractions, expected to reach exactly 1
    #: at completion.  −1.0 while the checker is disabled (the sentinel
    #: keeps a mid-run enable from producing false positives).
    inv_frac: float = -1.0

    def progress_fraction(self) -> float:
        """Fraction of the segment's base cycles already executed."""
        if self.total <= 0:
            return 1.0
        return 1.0 - self.remaining / self.total
