"""Preemptive round-robin CPU scheduler.

Models the relevant slice of a Linux-like scheduler: a FIFO ready queue,
per-core current threads, a fixed timeslice after which a running thread is
preempted *if* someone is waiting, and optional core affinity.  Fairness
under oversubscription is the property the paper's Fig. 7 depends on —
four runnable threads on two cores each make ~50 % progress per wall unit —
and round-robin time-sharing with a timeslice much shorter than task lengths
delivers exactly that.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional

from repro.errors import ConfigurationError, SimulationError
from repro.obs import get_tracer
from repro.simos.thread import SimThread, ThreadState


class CpuScheduler:
    """Ready-queue plus core-assignment bookkeeping.

    The scheduler is purely mechanical; the kernel decides *when* to call it
    (dispatch points, quantum expiry, wakeups).  It carries an observability
    hook — ready-queue entries are traced as instants so the exported
    timeline shows scheduler latency (ready → dispatch) per thread.
    """

    def __init__(
        self,
        n_cores: int,
        tracer=None,
        now: Optional[Callable[[], float]] = None,
    ) -> None:
        if n_cores < 1:
            raise ConfigurationError(f"n_cores must be >= 1, got {n_cores}")
        self.n_cores = n_cores
        self.ready: Deque[SimThread] = deque()
        self.running: list[Optional[SimThread]] = [None] * n_cores
        self._stamp = 0
        #: Ready threads with no affinity constraint.  Kept in sync by
        #: make_ready/pick_next so ``has_waiter_for`` is O(1) in the common
        #: all-unpinned case (it is called per core per dispatch round).
        self._unpinned_ready = 0
        #: Cores with no running thread; lets the kernel's dispatch loop
        #: bail out O(1) when every core is busy (the common steady state).
        self.idle_count = n_cores
        #: Tracer plus a clock accessor supplied by the owning kernel (the
        #: scheduler itself has no notion of time).
        self.obs = tracer if tracer is not None else get_tracer()
        self._now = now

    # -- ready queue ----------------------------------------------------------

    def make_ready(self, thread: SimThread, front: bool = False) -> None:
        """Append a runnable thread to the ready queue.

        ``front=True`` is used for direct mutex handoff so a woken lock
        owner reacquires a core before unrelated queued work.
        """
        if thread.state is ThreadState.FINISHED or thread.core is not None:
            raise SimulationError(
                f"cannot make {thread!r} ready from state {thread.state}"
            )
        self._stamp += 1
        thread.ready_stamp = self._stamp
        thread.state = ThreadState.READY
        if self.obs.enabled and self._now is not None:
            self.obs.instant(
                "ready",
                ts=self._now(),
                track=f"thread:{thread.name or f't{thread.tid}'}",
                cat="state",
                args={"front": front} if front else None,
            )
        if thread.affinity is None:
            self._unpinned_ready += 1
        if front:
            self.ready.appendleft(thread)
        else:
            self.ready.append(thread)

    def has_waiter_for(self, core: int) -> bool:
        """True if some ready thread may run on ``core``."""
        if self._unpinned_ready:
            return True
        if not self.ready:
            return False
        return any(self._allowed(t, core) for t in self.ready)

    @staticmethod
    def _allowed(thread: SimThread, core: int) -> bool:
        return thread.affinity is None or core in thread.affinity

    def pick_next(self, core: int) -> Optional[SimThread]:
        """Pop the oldest ready thread allowed on ``core``."""
        for i, t in enumerate(self.ready):
            if self._allowed(t, core):
                del self.ready[i]
                if t.affinity is None:
                    self._unpinned_ready -= 1
                return t
        return None

    # -- core assignment --------------------------------------------------------

    def assign(self, thread: SimThread, core: int) -> None:
        """Place ``thread`` on an idle ``core`` and mark it RUNNING."""
        if self.running[core] is not None:
            raise SimulationError(f"core {core} already running {self.running[core]!r}")
        if thread.core is not None:
            raise SimulationError(f"{thread!r} already on core {thread.core}")
        self.running[core] = thread
        thread.core = core
        thread.state = ThreadState.RUNNING
        self.idle_count -= 1

    def unassign(self, thread: SimThread) -> int:
        """Remove ``thread`` from its core; returns the freed core id."""
        core = thread.core
        if core is None or self.running[core] is not thread:
            raise SimulationError(f"{thread!r} is not running on a core")
        self.running[core] = None
        thread.core = None
        self.idle_count += 1
        return core

    def idle_cores(self) -> list[int]:
        """Core ids with no running thread."""
        return [c for c, t in enumerate(self.running) if t is None]

    def running_threads(self) -> list[SimThread]:
        """Threads currently assigned to cores."""
        return [t for t in self.running if t is not None]

    @property
    def n_ready(self) -> int:
        return len(self.ready)
