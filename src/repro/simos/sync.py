"""Synchronisation primitives for the simulated OS.

These are passive data holders; all state transitions happen inside the
kernel so that wakeups are ordered deterministically with the event queue.
Semantics:

- :class:`SimMutex` — wait queue with *direct handoff*: on release a waiter
  becomes the owner immediately, so lock convoys and contention delays are
  modelled faithfully (the paper emulates lock acquisition "by a real
  mutex" in the synthesizer; this is the simulated equivalent).  *Which*
  waiter is chosen is the kernel's **handoff policy** — ``fifo`` (the
  default, and the only order the seed kernel knew) picks the head of the
  queue; the other policies in :data:`HANDOFF_POLICIES` explore the
  interleaving space for ``repro.explore``'s speedup envelopes.
- :class:`SimBarrier` — classic counting barrier releasing all parties at
  once; used for OpenMP's implicit region barriers.
- :class:`SimEvent` — level-triggered event with wake-one/wake-all, used by
  the Cilk-style task pool for idle-worker parking.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simos.thread import SimThread

#: Lock handoff policies a kernel can run (see :meth:`SimMutex.pop_waiter`).
#: ``fifo`` is byte-identical to the seed kernel's single behaviour; the
#: rest exist to explore the schedule space (``repro.explore``).
HANDOFF_POLICIES = ("fifo", "lifo", "random", "adversarial")

#: Accepted aliases (the CLI/docs spell the seeded policy out).
_HANDOFF_ALIASES = {"seeded-random": "random"}


def normalize_handoff(policy: str) -> str:
    """Canonical handoff-policy name, or :class:`ConfigurationError`."""
    policy = _HANDOFF_ALIASES.get(policy, policy)
    if policy not in HANDOFF_POLICIES:
        raise ConfigurationError(
            f"unknown handoff policy {policy!r} "
            f"(expected one of {HANDOFF_POLICIES})"
        )
    return policy


class SimMutex:
    """A direct-handoff mutex with a pluggable wait-queue discipline."""

    _next_id = 0

    def __init__(self, name: str = "") -> None:
        SimMutex._next_id += 1
        self.mid = SimMutex._next_id
        self.name = name or f"mutex-{self.mid}"
        self.owner: Optional["SimThread"] = None
        self.waiters: Deque["SimThread"] = deque()
        #: Total number of acquisitions that had to wait (contention metric).
        self.contended_acquires: int = 0
        self.acquires: int = 0

    @property
    def locked(self) -> bool:
        return self.owner is not None

    def reset_counters(self) -> None:
        """Zero the per-run contention counters.

        Replays build fresh mutexes per section, so counters are per-run by
        construction; any harness that *does* reuse a mutex across seeded
        exploration replays must reset between them or the stats leak
        (the FF-counter bug class fixed in PR 2)."""
        self.contended_acquires = 0
        self.acquires = 0

    def pop_waiter(self, policy: str = "fifo", rng=None) -> "SimThread":
        """Remove and return the waiter the handoff ``policy`` selects.

        - ``fifo`` — head of the queue (arrival order; the seed behaviour).
        - ``lifo`` — most recent arrival, starving the head of the convoy.
        - ``random`` — a uniform draw from ``rng`` (the kernel's seeded
          stream, so replays stay bit-reproducible).
        - ``adversarial`` — longest-remaining-work-first: the waiter that
          has made the *least* progress so far (the kernel's per-thread
          executed-cycles proxy; static partitions hand workers comparable
          totals, so least-progressed ≈ longest-remaining).  Ties break in
          arrival order, keeping the choice deterministic.

        The caller must guarantee the queue is non-empty.
        """
        waiters = self.waiters
        if policy == "fifo":
            return waiters.popleft()
        if policy == "lifo":
            return waiters.pop()
        if policy == "random":
            index = rng.randrange(len(waiters))
        elif policy == "adversarial":
            index = min(
                range(len(waiters)), key=lambda i: (waiters[i].work_done, i)
            )
        else:
            raise ConfigurationError(
                f"unknown handoff policy {policy!r} "
                f"(expected one of {HANDOFF_POLICIES})"
            )
        chosen = waiters[index]
        del waiters[index]
        return chosen

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        o = self.owner.tid if self.owner else None
        return f"SimMutex({self.name!r}, owner={o}, waiting={len(self.waiters)})"


class SimBarrier:
    """A counting barrier for a fixed number of parties."""

    def __init__(self, parties: int, name: str = "") -> None:
        if parties < 1:
            raise ConfigurationError(f"barrier parties must be >= 1, got {parties}")
        self.parties = parties
        self.name = name or f"barrier({parties})"
        self.arrived: list["SimThread"] = []
        #: Completed barrier episodes (for tests).
        self.generations: int = 0

    def reset_counters(self) -> None:
        """Zero the per-run episode counter (see :meth:`SimMutex.reset_counters`)."""
        self.generations = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimBarrier({self.name!r}, {len(self.arrived)}/{self.parties})"


class SimEvent:
    """A level-triggered event flag."""

    def __init__(self, name: str = "") -> None:
        self.name = name or "event"
        self.is_set = False
        self.waiters: Deque["SimThread"] = deque()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimEvent({self.name!r}, set={self.is_set}, waiting={len(self.waiters)})"
