"""Synchronisation primitives for the simulated OS.

These are passive data holders; all state transitions happen inside the
kernel so that wakeups are ordered deterministically with the event queue.
Semantics:

- :class:`SimMutex` — FIFO wait queue with *direct handoff*: on release the
  head waiter becomes the owner immediately, so lock convoys and contention
  delays are modelled faithfully (the paper emulates lock acquisition "by a
  real mutex" in the synthesizer; this is the simulated equivalent).
- :class:`SimBarrier` — classic counting barrier releasing all parties at
  once; used for OpenMP's implicit region barriers.
- :class:`SimEvent` — level-triggered event with wake-one/wake-all, used by
  the Cilk-style task pool for idle-worker parking.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.simos.thread import SimThread


class SimMutex:
    """A FIFO mutex."""

    _next_id = 0

    def __init__(self, name: str = "") -> None:
        SimMutex._next_id += 1
        self.mid = SimMutex._next_id
        self.name = name or f"mutex-{self.mid}"
        self.owner: Optional["SimThread"] = None
        self.waiters: Deque["SimThread"] = deque()
        #: Total number of acquisitions that had to wait (contention metric).
        self.contended_acquires: int = 0
        self.acquires: int = 0

    @property
    def locked(self) -> bool:
        return self.owner is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        o = self.owner.tid if self.owner else None
        return f"SimMutex({self.name!r}, owner={o}, waiting={len(self.waiters)})"


class SimBarrier:
    """A counting barrier for a fixed number of parties."""

    def __init__(self, parties: int, name: str = "") -> None:
        if parties < 1:
            raise ConfigurationError(f"barrier parties must be >= 1, got {parties}")
        self.parties = parties
        self.name = name or f"barrier({parties})"
        self.arrived: list["SimThread"] = []
        #: Completed barrier episodes (for tests).
        self.generations: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimBarrier({self.name!r}, {len(self.arrived)}/{self.parties})"


class SimEvent:
    """A level-triggered event flag."""

    def __init__(self, name: str = "") -> None:
        self.name = name or "event"
        self.is_set = False
        self.waiters: Deque["SimThread"] = deque()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimEvent({self.name!r}, set={self.is_set}, waiting={len(self.waiters)})"
