"""The discrete-event simulation kernel.

Executes simulated threads (generator coroutines, see
:mod:`repro.simos.thread`) over ``n_cores`` simulated CPUs with:

- **fluid-rate compute**: running compute segments progress at a rate set by
  the DRAM contention model; rates are piecewise-constant and recomputed
  whenever the set of running segments changes (completion, dispatch, block,
  preemption).  Completion events are lazily invalidated via per-segment
  epochs — the standard fluid-DES technique;
- **preemptive round-robin scheduling** with a configurable timeslice, which
  yields fair time-sharing under oversubscription (the OS behaviour behind
  the paper's Fig. 7);
- **deterministic ordering**: the event heap is tie-broken by a sequence
  number and the ready queue is FIFO, so every run is exactly reproducible.

Zero-duration operations (lock handoff, spawning, event flips) are free;
all runtime costs are modelled *explicitly* by the parallel runtimes in
:mod:`repro.runtime` as Compute requests, keeping overhead assumptions
visible and configurable rather than buried in the kernel.
"""

from __future__ import annotations

import heapq
from typing import Any, Generator, Optional

from repro.errors import DeadlockError, SimulationError
from repro.obs import get_metrics, get_tracer
from repro.simhw.clock import VirtualClock
from repro.simhw.counters import CounterSet, PerfCounters
from repro.simhw.dram import DramModel, SegmentDemand
from repro.simhw.machine import MachineConfig
from repro.simos.scheduler import CpuScheduler
from repro.simos.sync import SimBarrier, SimEvent, SimMutex
from repro.simos.thread import (
    Acquire,
    BarrierWait,
    Compute,
    ComputeSegment,
    EventClear,
    EventSet,
    EventWait,
    GetCurrentThread,
    GetTime,
    Join,
    Release,
    SimThread,
    Spawn,
    ThreadState,
    YieldCpu,
)

#: Relative tolerance below which a segment's remaining work counts as done.
_DONE_TOL = 1e-7


class SimKernel:
    """A deterministic multicore discrete-event kernel."""

    def __init__(
        self,
        config: MachineConfig,
        record_trace: bool = False,
        tracer=None,
    ) -> None:
        self.config = config
        self.clock = VirtualClock()
        #: Structured event tracer (``repro.obs``).  Defaults to the
        #: process-global tracer, which is disabled unless opted in; hooks
        #: guard on ``obs.enabled`` so the disabled cost is one branch.
        self.obs = tracer if tracer is not None else get_tracer()
        #: Sim-time origin: the tracer's offset at construction, so several
        #: kernel runs of one program share a single exported timeline.
        self._obs_t0 = self.obs.offset
        #: (core, dispatch time) per running thread tid, for span emission.
        self._obs_running: dict[int, tuple[int, float]] = {}
        self.scheduler = CpuScheduler(
            config.n_cores, tracer=self.obs, now=self._obs_now
        )
        #: One DRAM pool per socket (one pool total on UMA machines).
        self.dram_pools = [
            DramModel(config, peak_bytes_per_sec=config.dram_peak_bytes_per_sec_per_socket)
            for _ in range(config.n_sockets)
        ]
        #: Back-compat alias: the first pool (the only one on UMA configs).
        self.dram = self.dram_pools[0]
        #: Global performance-counter accumulator (all cores).
        self.counters = CounterSet()
        self._heap: list[tuple[float, int, str, Any]] = []
        self._seq = 0
        self._next_tid = 0
        self._live = 0
        self._quantum_arm = [0] * config.n_cores
        self._last_tid: list[Optional[int]] = [None] * config.n_cores
        self._epoch = 0
        #: Optional schedule trace for tests: (time, event, thread name, core).
        self.trace: Optional[list[tuple[float, str, str, Optional[int]]]] = (
            [] if record_trace else None
        )
        #: Total context switches performed (preemptions only).
        self.preemptions = 0

    # ------------------------------------------------------------------ API

    def spawn(
        self,
        gen: Generator[Any, Any, Any],
        name: str = "",
        affinity: Optional[frozenset[int]] = None,
    ) -> SimThread:
        """Create a thread and place it on the ready queue."""
        self._next_tid += 1
        t = SimThread(self._next_tid, gen, name=name, affinity=affinity)
        t.pending_value = None  # type: ignore[attr-defined]
        self._live += 1
        self.scheduler.make_ready(t)
        self._trace("spawn", t)
        return t

    def perf_counters(self) -> PerfCounters:
        """A start/stop view over the global counter accumulator."""
        return PerfCounters(self.counters)

    def dram_cache_stats(self) -> dict[str, int]:
        """Aggregated DRAM-solve memo counters across all socket pools.

        The kernel calls :meth:`DramModel.slowdowns` on every running-set
        change; the hit ratio here is the fraction of those contention solves
        answered from the LRU memo instead of the bisection."""
        stats = {"hits": 0, "misses": 0, "size": 0, "maxsize": 0}
        for pool in self.dram_pools:
            info = pool.cache_info()
            for field in stats:
                stats[field] += info[field]
        return stats

    def run(self) -> float:
        """Run until every spawned thread has finished; returns final time."""
        self._dispatch_and_reconfigure()
        while self._live > 0:
            if not self._heap:
                self._raise_deadlock()
            t, _seq, kind, data = heapq.heappop(self._heap)
            if kind == "seg":
                segment, epoch = data
                thread = segment.thread
                if thread.segment is not segment or segment.rate_epoch != epoch:
                    continue  # stale completion event
                self.clock.advance_to(t)
                self._advance_segment(segment)
                if segment.remaining > _DONE_TOL * max(segment.total, 1.0):
                    raise SimulationError(
                        f"segment completion fired early: {segment.remaining!r} left"
                    )
                self._complete_segment(thread)
            elif kind == "quantum":
                core, arm = data
                if self._quantum_arm[core] != arm:
                    continue  # stale quantum event
                self.clock.advance_to(t)
                self._quantum_expired(core)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind!r}")
        return self.clock.now

    # ------------------------------------------------------------- internals

    def _obs_now(self) -> float:
        """Current simulated time on the shared (offset) trace timeline."""
        return self.clock.now + self._obs_t0

    def _obs_event(self, event: str, thread: SimThread) -> None:
        """Emit tracer records for one lifecycle event.

        Dispatch opens a per-core occupancy window; preempt/yield/block/
        finish close it as a span on the ``cpu<N>`` track (one track per
        simulated core — the Perfetto Gantt view), and every state change
        lands as an instant on the thread's own track.
        """
        obs = self.obs
        now = self._obs_now()
        label = thread.name or f"t{thread.tid}"
        if event == "dispatch":
            assert thread.core is not None
            self._obs_running[thread.tid] = (thread.core, now)
        else:
            window = self._obs_running.pop(thread.tid, None)
            if window is not None:
                core, t0 = window
                obs.span(
                    label, ts=t0, dur=now - t0, track=f"cpu{core}", cat="sched"
                )
        obs.instant(event, ts=now, track=f"thread:{label}", cat="state")

    def _trace(self, event: str, thread: SimThread) -> None:
        if self.trace is not None:
            self.trace.append((self.clock.now, event, thread.name, thread.core))
        if self.obs.enabled:
            self._obs_event(event, thread)

    def _push(self, time: float, kind: str, data: Any) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, kind, data))

    def _raise_deadlock(self) -> None:
        blocked = [
            t.name
            for t in self._all_live_threads()
            if t.state is ThreadState.BLOCKED
        ]
        raise DeadlockError(
            f"no events pending but {self._live} thread(s) alive; "
            f"blocked: {blocked}"
        )

    def _all_live_threads(self) -> list[SimThread]:
        # Reconstructed from scheduler structures; blocked threads are found
        # through sync objects only for error reporting, so this best-effort
        # view lists ready + running ones.
        return list(self.scheduler.ready) + self.scheduler.running_threads()

    # -- segment/rate machinery -------------------------------------------------

    def _running_segments(self) -> list[ComputeSegment]:
        return [
            t.segment
            for t in self.scheduler.running_threads()
            if t.segment is not None
        ]

    def _advance_segment(self, seg: ComputeSegment) -> None:
        """Advance one segment's progress to the current time and accumulate
        its proportional share of instructions/misses into the counters."""
        now = self.clock.now
        dt = now - seg.last_update
        if dt < 0:
            raise SimulationError("segment updated backwards in time")
        if dt == 0:
            return
        base_progress = dt / seg.slowdown
        base_progress = min(base_progress, seg.remaining)
        frac = base_progress / seg.total if seg.total > 0 else 1.0
        self.counters.instructions += seg.instructions * frac
        self.counters.llc_misses += seg.llc_misses * frac
        self.counters.cycles += dt
        seg.remaining -= base_progress
        seg.wall_consumed += dt
        seg.last_update = now

    def _reconfigure(self) -> None:
        """Advance all running segments, recompute contention rates (per
        socket pool), and reschedule completion events."""
        segs = self._running_segments()
        for seg in segs:
            self._advance_segment(seg)
        self._epoch += 1
        # Group segments by the socket of the core they run on; each socket
        # pool solves its own bandwidth cap.
        by_socket: dict[int, list[ComputeSegment]] = {}
        for seg in segs:
            core = seg.thread.core
            socket = self.config.socket_of(core) if core is not None else 0
            by_socket.setdefault(socket, []).append(seg)
        for socket, group in by_socket.items():
            demands = [
                SegmentDemand(seg.mem_fraction, seg.demand_bytes_per_sec)
                for seg in group
            ]
            slowdowns = self.dram_pools[socket].slowdowns(demands)
            if self.obs.enabled:
                # Demanded vs achievable bandwidth as a counter track: the
                # Perfetto step graph shows exactly when DRAM saturates.
                self.obs.counter(
                    f"dram{socket}.demand_gbs",
                    ts=self._obs_now(),
                    value=sum(d.demand_bytes_per_sec for d in demands) / 1e9,
                    track=f"dram{socket}",
                    cat="dram",
                )
            for seg, s in zip(group, slowdowns):
                seg.slowdown = s
                seg.rate_epoch = self._epoch
                eta = self.clock.now + seg.remaining * s
                self._push(eta, "seg", (seg, self._epoch))

    def _dispatch_and_reconfigure(self) -> None:
        self._dispatch()
        self._reconfigure()

    def _dispatch(self) -> None:
        """Fill idle cores from the ready queue until no assignment is
        possible.  Stepping a dispatched thread can wake or block others, so
        iterate to a fixed point."""
        while True:
            assigned = False
            for core in self.scheduler.idle_cores():
                thread = self.scheduler.pick_next(core)
                if thread is None:
                    continue
                self.scheduler.assign(thread, core)
                self._arm_quantum(core)
                self._trace("dispatch", thread)
                assigned = True
                # Context-switch cost: the core picks up a different thread
                # than it last ran (register state + cache warmup).
                switch_cost = 0.0
                if (
                    self.config.context_switch_cycles > 0
                    and self._last_tid[core] is not None
                    and self._last_tid[core] != thread.tid
                ):
                    switch_cost = self.config.context_switch_cycles
                    if self.obs.enabled:
                        self.obs.instant(
                            "context_switch",
                            ts=self._obs_now(),
                            track=f"cpu{core}",
                            cat="sched",
                            args={"cost": switch_cost},
                        )
                self._last_tid[core] = thread.tid
                if thread.segment is not None and thread.segment.remaining > 0:
                    # Resuming a preempted compute: reattach, rates fixed in
                    # the caller's reconfigure pass.
                    thread.segment.last_update = self.clock.now
                    thread.segment.remaining += switch_cost
                else:
                    thread.switch_debt = switch_cost  # type: ignore[attr-defined]
                    self._step(thread, thread.pending_value)  # type: ignore[attr-defined]
            if not assigned:
                return

    def _arm_quantum(self, core: int) -> None:
        self._quantum_arm[core] += 1
        self._push(
            self.clock.now + self.config.timeslice_cycles,
            "quantum",
            (core, self._quantum_arm[core]),
        )

    def _quantum_expired(self, core: int) -> None:
        thread = self.scheduler.running[core]
        if thread is None:
            return
        if not self.scheduler.has_waiter_for(core):
            self._arm_quantum(core)
            return
        # Preempt: bank compute progress, requeue at the tail.
        if thread.segment is not None:
            self._advance_segment(thread.segment)
            # A detached segment is invisible to _reconfigure, so its pending
            # completion event must be invalidated here.
            self._epoch += 1
            thread.segment.rate_epoch = self._epoch
        self.scheduler.unassign(thread)
        self.preemptions += 1
        self._trace("preempt", thread)
        self.scheduler.make_ready(thread)
        self._dispatch_and_reconfigure()

    def _complete_segment(self, thread: SimThread) -> None:
        thread.segment = None
        self._step(thread, None)
        self._dispatch_and_reconfigure()

    # -- request handling ---------------------------------------------------------

    def _step(self, thread: SimThread, send_value: Any) -> None:
        """Drive ``thread`` until it computes, blocks, or finishes.

        The thread must be RUNNING on a core.  Zero-time requests are handled
        inline in a loop.
        """
        if thread.state is not ThreadState.RUNNING:
            raise SimulationError(f"stepping non-running thread {thread!r}")
        thread.pending_value = None  # type: ignore[attr-defined]
        while True:
            try:
                req = thread.gen.send(send_value)
            except StopIteration as stop:
                self._finish(thread, stop.value)
                return
            send_value = None

            if isinstance(req, Compute):
                if req.cycles <= 0:
                    self.counters.instructions += req.instructions
                    self.counters.llc_misses += req.llc_misses
                    continue
                self._attach_segment(thread, req)
                return
            if isinstance(req, GetTime):
                send_value = self.clock.now
                continue
            if isinstance(req, GetCurrentThread):
                send_value = thread
                continue
            if isinstance(req, Spawn):
                send_value = self.spawn(req.gen, name=req.name, affinity=req.affinity)
                continue
            if isinstance(req, Acquire):
                if self._acquire(thread, req.mutex):
                    continue
                return  # blocked
            if isinstance(req, Release):
                self._release(thread, req.mutex)
                continue
            if isinstance(req, Join):
                target = req.thread
                if target.state is ThreadState.FINISHED:
                    send_value = target.result
                    continue
                target.joiners.append(thread)
                self._block(thread)
                return
            if isinstance(req, BarrierWait):
                if self._barrier_wait(thread, req.barrier):
                    continue
                return  # blocked
            if isinstance(req, EventWait):
                if req.event.is_set:
                    continue
                req.event.waiters.append(thread)
                self._block(thread)
                return
            if isinstance(req, EventSet):
                self._event_set(req.event, req.wake)
                continue
            if isinstance(req, EventClear):
                req.event.is_set = False
                continue
            if isinstance(req, YieldCpu):
                self.scheduler.unassign(thread)
                self._trace("yield", thread)
                self.scheduler.make_ready(thread)
                return
            raise SimulationError(f"unknown request {req!r} from {thread!r}")

    def _attach_segment(self, thread: SimThread, req: Compute) -> None:
        cfg = self.config
        # Outstanding context-switch debt is paid as pure compute prepended
        # to the first segment after the switch.
        debt = getattr(thread, "switch_debt", 0.0)
        if debt:
            thread.switch_debt = 0.0  # type: ignore[attr-defined]
        cycles = req.cycles + debt
        miss_stall = req.llc_misses * cfg.base_miss_stall
        if cycles > 0:
            mem_fraction = min(1.0, miss_stall / cycles)
        else:
            mem_fraction = 0.0
        seconds = cfg.cycles_to_seconds(cycles) if cycles > 0 else 0.0
        demand = (req.llc_misses * cfg.line_size / seconds) if seconds > 0 else 0.0
        thread.segment = ComputeSegment(
            thread=thread,
            total=cycles,
            remaining=cycles,
            instructions=req.instructions,
            llc_misses=req.llc_misses,
            mem_fraction=mem_fraction,
            demand_bytes_per_sec=demand,
            last_update=self.clock.now,
        )

    def _finish(self, thread: SimThread, result: Any) -> None:
        thread.result = result
        thread.state = ThreadState.FINISHED
        if thread.core is not None:
            self.scheduler.unassign(thread)
        self._live -= 1
        self._trace("finish", thread)
        for joiner in thread.joiners:
            joiner.pending_value = result  # type: ignore[attr-defined]
            self.scheduler.make_ready(joiner)
        thread.joiners.clear()

    def _block(self, thread: SimThread) -> None:
        self.scheduler.unassign(thread)
        thread.state = ThreadState.BLOCKED
        self._trace("block", thread)

    # -- sync primitives ------------------------------------------------------------

    def _acquire(self, thread: SimThread, mutex: SimMutex) -> bool:
        """Returns True if acquired immediately, False if the thread blocked."""
        mutex.acquires += 1
        if mutex.owner is None:
            mutex.owner = thread
            return True
        if mutex.owner is thread:
            raise SimulationError(f"{thread!r} recursively acquiring {mutex!r}")
        mutex.contended_acquires += 1
        if self.obs.enabled:
            self.obs.instant(
                "lock_contended",
                ts=self._obs_now(),
                track=f"thread:{thread.name or f't{thread.tid}'}",
                cat="lock",
                args={"lock": mutex.name, "owner": mutex.owner.name},
            )
        get_metrics().inc("sim.lock.contended")
        mutex.waiters.append(thread)
        self._block(thread)
        return False

    def _release(self, thread: SimThread, mutex: SimMutex) -> None:
        if mutex.owner is not thread:
            raise SimulationError(
                f"{thread!r} releasing {mutex!r} owned by {mutex.owner!r}"
            )
        if mutex.waiters:
            # Direct handoff: the head waiter owns the lock while it waits
            # for a core, modelling lock-convoy behaviour.
            next_owner = mutex.waiters.popleft()
            mutex.owner = next_owner
            next_owner.pending_value = None  # type: ignore[attr-defined]
            self.scheduler.make_ready(next_owner, front=True)
        else:
            mutex.owner = None

    def _barrier_wait(self, thread: SimThread, barrier: SimBarrier) -> bool:
        """Returns True if the barrier released immediately (last arrival)."""
        barrier.arrived.append(thread)
        if len(barrier.arrived) < barrier.parties:
            self._block(thread)
            return False
        barrier.generations += 1
        for waiter in barrier.arrived:
            if waiter is not thread:
                waiter.pending_value = None  # type: ignore[attr-defined]
                self.scheduler.make_ready(waiter)
        barrier.arrived.clear()
        return True

    def _event_set(self, event: SimEvent, wake: str) -> None:
        event.is_set = True
        if wake == "one":
            if event.waiters:
                waiter = event.waiters.popleft()
                waiter.pending_value = None  # type: ignore[attr-defined]
                self.scheduler.make_ready(waiter)
        elif wake == "all":
            while event.waiters:
                waiter = event.waiters.popleft()
                waiter.pending_value = None  # type: ignore[attr-defined]
                self.scheduler.make_ready(waiter)
        else:
            raise SimulationError(f"unknown wake mode {wake!r}")
