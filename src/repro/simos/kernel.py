"""The discrete-event simulation kernel.

Executes simulated threads (generator coroutines, see
:mod:`repro.simos.thread`) over ``n_cores`` simulated CPUs with:

- **fluid-rate compute**: running compute segments progress at a rate set by
  the DRAM contention model; rates are piecewise-constant and recomputed
  whenever the set of running segments changes (completion, dispatch, block,
  preemption).  Completion events are lazily invalidated via per-segment
  epochs — the standard fluid-DES technique;
- **preemptive round-robin scheduling** with a configurable timeslice, which
  yields fair time-sharing under oversubscription (the OS behaviour behind
  the paper's Fig. 7);
- **deterministic ordering**: same-time heap events are tie-broken by a
  mode-independent key (quantum expiries before segment completions, then
  core/thread id) and the ready queue is FIFO, so every run is exactly
  reproducible — in the event-sparse fast path and the eager mode alike.

Zero-duration operations (lock handoff, spawning, event flips) are free;
all runtime costs are modelled *explicitly* by the parallel runtimes in
:mod:`repro.runtime` as Compute requests, keeping overhead assumptions
visible and configurable rather than buried in the kernel.
"""

from __future__ import annotations

import heapq
import random
from typing import Any, Generator, Optional

from repro.errors import DeadlockError, SimulationError
from repro.obs import get_tracer
from repro.simhw.clock import VirtualClock
from repro.simhw.counters import CounterSet, PerfCounters
from repro.simhw.dram import DramModel, SegmentDemand
from repro.simhw.machine import MachineConfig
from repro.simos.scheduler import CpuScheduler
from repro.simos.sync import SimBarrier, SimEvent, SimMutex, normalize_handoff
from repro.validate.invariants import get_checker
from repro.simos.thread import (
    Acquire,
    BarrierWait,
    Compute,
    ComputeSegment,
    EventClear,
    EventSet,
    EventWait,
    GetCurrentThread,
    GetTime,
    Join,
    Release,
    SimThread,
    Spawn,
    ThreadState,
    YieldCpu,
)

#: Relative tolerance below which a segment's remaining work counts as done.
_DONE_TOL = 1e-7

#: Sentinel returned by request handlers when the thread stopped being
#: runnable (computing, blocked, yielded) — never a valid send value.
_SUSPEND = object()


class SimKernel:
    """A deterministic multicore discrete-event kernel."""

    def __init__(
        self,
        config: MachineConfig,
        record_trace: bool = False,
        tracer=None,
        optimize: bool = True,
        handoff: str = "fifo",
        handoff_seed: int = 0,
    ) -> None:
        self.config = config
        self.clock = VirtualClock()
        #: Lock handoff policy (``repro.simos.sync.HANDOFF_POLICIES``).
        #: ``fifo`` reproduces the seed kernel's schedule bit for bit; the
        #: others explore the interleaving space for ``repro.explore``.
        self.handoff = normalize_handoff(handoff)
        self.handoff_seed = handoff_seed
        self._handoff_fifo = self.handoff == "fifo"
        #: Seeded stream for the ``random`` policy.  Draws happen in
        #: simulation order, which is itself deterministic, so a (policy,
        #: seed) pair fully determines the schedule — across processes too.
        self._handoff_rng = (
            random.Random(handoff_seed) if self.handoff == "random" else None
        )
        #: The ``adversarial`` policy ranks waiters by executed cycles; the
        #: per-thread accumulation is paid only when that policy is active.
        self._track_progress = self.handoff == "adversarial"
        #: Event-sparse fast paths (lazy quantum arming + incremental
        #: reconfigure).  ``optimize=False`` restores the eager seed
        #: behaviour event for event; both modes are parity-tested.
        self._optimize = optimize
        #: Structured event tracer (``repro.obs``).  Defaults to the
        #: process-global tracer, which is disabled unless opted in; hooks
        #: guard on ``obs.enabled`` so the disabled cost is one branch.
        self.obs = tracer if tracer is not None else get_tracer()
        #: Sim-time origin: the tracer's offset at construction, so several
        #: kernel runs of one program share a single exported timeline.
        self._obs_t0 = self.obs.offset
        #: (core, dispatch time) per running thread tid, for span emission.
        self._obs_running: dict[int, tuple[int, float]] = {}
        #: Runtime invariant checker (``repro.validate``); same discipline
        #: as the tracer — every hook is one attribute test when disabled.
        self.inv = get_checker()
        #: Base compute cycles handed to this kernel (attach totals plus
        #: resume-switch costs), for the end-of-run conservation check.
        self._inv_cycles_in = 0.0
        #: True once any segment carried memory demand: slowdowns may then
        #: exceed 1, so conservation becomes a lower bound, not an equality.
        self._inv_any_demand = False
        self.scheduler = CpuScheduler(
            config.n_cores, tracer=self.obs, now=self._obs_now
        )
        #: One DRAM pool per socket (one pool total on UMA machines).
        self.dram_pools = [
            DramModel(config, peak_bytes_per_sec=config.dram_peak_bytes_per_sec_per_socket)
            for _ in range(config.n_sockets)
        ]
        #: Back-compat alias: the first pool (the only one on UMA configs).
        self.dram = self.dram_pools[0]
        #: Global performance-counter accumulator (all cores).
        self.counters = CounterSet()
        self._heap: list[tuple] = []
        self._seq = 0
        self._next_tid = 0
        self._live = 0
        self._quantum_arm = [0] * config.n_cores
        self._last_tid: list[Optional[int]] = [None] * config.n_cores
        self._epoch = 0
        # Lazy-quantum state (optimize mode): the next round-robin boundary
        # per core and whether an expiry event is currently in the heap.
        # Boundaries advance by repeated ``+= timeslice`` from the dispatch
        # anchor — the same float accumulation the eager re-arm performs —
        # so preemption times are bitwise identical in both modes.
        self._q_next = [0.0] * config.n_cores
        self._q_armed = [False] * config.n_cores
        # Incremental-reconfigure state: per-socket demand-multiset
        # signature and the stall factor it solved to, plus segments
        # attached since the last reconfigure (they need a completion
        # event even when their socket's rates are unchanged).
        self._socket_sig: dict[int, tuple] = {}
        self._socket_k: dict[int, float] = {}
        # Segments with no completion event yet (rate_epoch == -1), attached
        # or reattached since the last reconfigure pass consumed the list.
        self._fresh_segs: list[ComputeSegment] = []
        # False when every busy core's quantum is known to be armed (or no
        # waiter exists): lets _ensure_quanta bail out O(1) per dispatch.
        self._quanta_dirty = True
        # Running segments with nonzero memory demand.  While zero, every
        # running segment's slowdown is identically 1.0 (f == 0), so
        # reconfigure needs no grouping, no signature, and no solve.
        self._demand_running = 0
        # Monotone per-socket demand-set version, bumped whenever a segment
        # with nonzero demand starts or stops running on that socket, and
        # the version each socket's cached signature was computed at.  An
        # unchanged version lets _reconfigure skip building the signature
        # at all — the common case on steady-state passes.
        self._demand_ver = [0] * config.n_sockets
        self._socket_ver: dict[int, int] = {}
        #: Optional schedule trace for tests: (time, event, thread name, core).
        self.trace: Optional[list[tuple[float, str, str, Optional[int]]]] = (
            [] if record_trace else None
        )
        #: Total context switches performed (preemptions only).
        self.preemptions = 0
        #: Lock acquisitions that blocked (bridged to the metrics registry
        #: once per replayed section, never from this hot path).
        self.lock_contended = 0
        #: Total lock acquisitions, contended or not.  Both counters are
        #: per-kernel (one kernel per section replay), so exploration
        #: replays report per-run contention stats with nothing carried
        #: over between seeds.
        self.lock_acquires = 0
        #: Quantum expiry events pushed (both modes; lazy mode arms only
        #: when a core actually has a waiter).
        self.quantum_arms = 0
        #: Reconfigure passes that re-rated at least one socket vs. passes
        #: answered entirely from the per-socket signature cache.
        self.reconfig_solves = 0
        self.reconfig_skips = 0

    # ------------------------------------------------------------------ API

    def spawn(
        self,
        gen: Generator[Any, Any, Any],
        name: str = "",
        affinity: Optional[frozenset[int]] = None,
    ) -> SimThread:
        """Create a thread and place it on the ready queue."""
        self._next_tid += 1
        t = SimThread(self._next_tid, gen, name=name, affinity=affinity)
        t.pending_value = None  # type: ignore[attr-defined]
        self._live += 1
        self.scheduler.make_ready(t)
        self._trace("spawn", t)
        return t

    def perf_counters(self) -> PerfCounters:
        """A start/stop view over the global counter accumulator."""
        return PerfCounters(self.counters)

    def dram_cache_stats(self) -> dict[str, int]:
        """Aggregated DRAM-solve memo counters across all socket pools.

        The kernel calls :meth:`DramModel.slowdowns` on every running-set
        change; the hit ratio here is the fraction of those contention solves
        answered from the LRU memo instead of the bisection."""
        stats = {"hits": 0, "misses": 0, "size": 0, "maxsize": 0}
        for pool in self.dram_pools:
            info = pool.cache_info()
            for field in stats:
                stats[field] += info[field]
        return stats

    @property
    def events_pushed(self) -> int:
        """Total events ever pushed onto the heap (work metric for benches)."""
        return self._seq

    def run(self) -> float:
        """Run until every spawned thread has finished; returns final time."""
        self._dispatch_and_reconfigure()
        heap = self._heap
        heappop = heapq.heappop
        advance_to = self.clock.advance_to
        inv = self.inv
        while self._live > 0:
            if not heap:
                self._raise_deadlock()
            t, _rank, _stable, _seq, kind, data = heappop(heap)
            if inv.enabled:
                inv.check_event_time(t, self.clock.now)
            if kind == "seg":
                segment, epoch = data
                thread = segment.thread
                if thread.segment is not segment or segment.rate_epoch != epoch:
                    continue  # stale completion event
                advance_to(t)
                self._advance_segment(segment)
                if segment.remaining > _DONE_TOL * max(segment.total, 1.0):
                    raise SimulationError(
                        f"segment completion fired early: {segment.remaining!r} left"
                    )
                self._complete_segment(thread)
            elif kind == "quantum":
                core, arm = data
                if self._quantum_arm[core] != arm:
                    continue  # stale quantum event
                advance_to(t)
                self._quantum_expired(core)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown event kind {kind!r}")
        if inv.enabled:
            inv.check_work_conservation(
                self._inv_cycles_in,
                self.counters.cycles,
                exact=not self._inv_any_demand,
                where="kernel.run",
            )
        return self.clock.now

    # ------------------------------------------------------------- internals

    def _obs_now(self) -> float:
        """Current simulated time on the shared (offset) trace timeline."""
        return self.clock.now + self._obs_t0

    def _obs_event(self, event: str, thread: SimThread) -> None:
        """Emit tracer records for one lifecycle event.

        Dispatch opens a per-core occupancy window; preempt/yield/block/
        finish close it as a span on the ``cpu<N>`` track (one track per
        simulated core — the Perfetto Gantt view), and every state change
        lands as an instant on the thread's own track.
        """
        obs = self.obs
        now = self._obs_now()
        label = thread.name or f"t{thread.tid}"
        if event == "dispatch":
            assert thread.core is not None
            self._obs_running[thread.tid] = (thread.core, now)
        else:
            window = self._obs_running.pop(thread.tid, None)
            if window is not None:
                core, t0 = window
                obs.span(
                    label, ts=t0, dur=now - t0, track=f"cpu{core}", cat="sched"
                )
        obs.instant(event, ts=now, track=f"thread:{label}", cat="state")

    def _trace(self, event: str, thread: SimThread) -> None:
        if self.trace is not None:
            self.trace.append((self.clock.now, event, thread.name, thread.core))
        if self.obs.enabled:
            self._obs_event(event, thread)

    def _push(self, time: float, kind: str, data: Any) -> None:
        """Queue an event under a deterministic, mode-independent key.

        Same-time events order by (kind rank, core): quantum expiries
        before segment completions, then by the core involved.  Keying ties
        by push sequence instead would leak the *history* of pushes into
        the schedule — the eager and lazy modes push different event sets,
        so exact-tie timestamps would replay differently between them.
        This canonical order matches the seed kernel's dominant case: the
        eager reconfigure re-pushed every completion in core order after
        each quantum was armed.
        """
        self._seq += 1
        if kind == "seg":
            core = data[0].thread.core
            key = (time, 1, core if core is not None else -1)
        else:  # quantum: data = (core, arm)
            key = (time, 0, data[0])
        heapq.heappush(self._heap, (*key, self._seq, kind, data))

    def _raise_deadlock(self) -> None:
        blocked = [
            t.name
            for t in self._all_live_threads()
            if t.state is ThreadState.BLOCKED
        ]
        raise DeadlockError(
            f"no events pending but {self._live} thread(s) alive; "
            f"blocked: {blocked}"
        )

    def _all_live_threads(self) -> list[SimThread]:
        # Reconstructed from scheduler structures; blocked threads are found
        # through sync objects only for error reporting, so this best-effort
        # view lists ready + running ones.
        return list(self.scheduler.ready) + self.scheduler.running_threads()

    # -- segment/rate machinery -------------------------------------------------

    def _running_segments(self) -> list[ComputeSegment]:
        return [
            t.segment
            for t in self.scheduler.running_threads()
            if t.segment is not None
        ]

    def _advance_segment(self, seg: ComputeSegment) -> None:
        """Advance one segment's progress to the current time and accumulate
        its proportional share of instructions/misses into the counters."""
        now = self.clock.now
        dt = now - seg.last_update
        if dt < 0:
            raise SimulationError("segment updated backwards in time")
        if dt == 0:
            return
        # Absolute-form progress: remaining at ``now`` is a closed-form
        # expression over the rate anchor, never an accumulated subtraction,
        # so sparse and eager advance histories agree bit for bit.
        new_remaining = seg.anchor_remaining - (now - seg.anchor_time) / seg.slowdown
        if new_remaining < 0.0:
            new_remaining = 0.0
        base_progress = seg.remaining - new_remaining
        if base_progress < 0.0:
            base_progress = 0.0
        # Resume-switch debt is folded into ``remaining`` but is not work:
        # pay it off first (the switch happens at the head of the interval)
        # so instruction/miss attribution fractions sum to exactly 1 over
        # the segment's life even under repeated preemption.
        work = base_progress
        if seg.switch_debt > 0.0:
            paid = min(seg.switch_debt, base_progress)
            seg.switch_debt -= paid
            work = base_progress - paid
        if self._track_progress:
            seg.thread.work_done += work
        frac = work / seg.total if seg.total > 0 else 1.0
        if self.inv.enabled and seg.inv_frac >= 0.0:
            seg.inv_frac += frac
        self.counters.instructions += seg.instructions * frac
        self.counters.llc_misses += seg.llc_misses * frac
        self.counters.cycles += dt
        seg.remaining = new_remaining
        seg.wall_consumed += dt
        seg.last_update = now

    def _demand_transition(self, thread: SimThread, delta: int) -> None:
        """A segment with nonzero demand started (+1) or stopped (-1)
        running on ``thread``'s core: keep the global count and the core's
        socket demand-set version in sync."""
        self._demand_running += delta
        if self.config.n_sockets == 1 or thread.core is None:
            self._demand_ver[0] += 1
        else:
            self._demand_ver[self.config.socket_of(thread.core)] += 1

    def _group_by_socket(
        self, segs: list[ComputeSegment]
    ) -> dict[int, list[ComputeSegment]]:
        """Group running segments by the socket of the core they run on;
        each socket pool solves its own bandwidth cap."""
        if self.config.n_sockets == 1:
            return {0: segs} if segs else {}
        by_socket: dict[int, list[ComputeSegment]] = {}
        for seg in segs:
            core = seg.thread.core
            socket = self.config.socket_of(core) if core is not None else 0
            by_socket.setdefault(socket, []).append(seg)
        return by_socket

    def _rerate_socket(
        self, socket: int, group: list[ComputeSegment], sig: tuple
    ) -> None:
        """Full re-rate of one socket: advance, solve, re-push everything."""
        for seg in group:
            self._advance_segment(seg)
        pool = self.dram_pools[socket]
        demands = [
            SegmentDemand(seg.mem_fraction, seg.demand_bytes_per_sec)
            for seg in group
        ]
        # Same math as DramModel.slowdowns (1 - f + f*k), inlined so the
        # solved stall factor can be cached alongside the signature.
        k = pool.stall_multiplier(demands)
        if self.inv.enabled:
            self.inv.check_dram_cap(pool, demands, k)
        if self.obs.enabled:
            # Demanded vs achievable bandwidth as a counter track: the
            # Perfetto step graph shows exactly when DRAM saturates.
            self.obs.counter(
                f"dram{socket}.demand_gbs",
                ts=self._obs_now(),
                value=sum(d.demand_bytes_per_sec for d in demands) / 1e9,
                track=f"dram{socket}",
                cat="dram",
            )
        self._epoch += 1
        epoch = self._epoch
        now = self.clock.now
        for seg in group:
            f = seg.mem_fraction
            s = 1.0 - f + f * k
            if seg.rate_epoch == -1 or s != seg.slowdown:
                # The rate really changed: re-anchor and fix the completion
                # time once.  An unchanged rate keeps the anchor and the
                # stored completion time verbatim, so re-pushing (eager
                # mode) lands on the exact event the sparse mode kept.
                seg.slowdown = s
                seg.anchor_time = now
                seg.anchor_remaining = seg.remaining
                seg.t_complete = now + seg.remaining * s
            seg.rate_epoch = epoch
            self._push(seg.t_complete, "seg", (seg, epoch))
        self._socket_sig[socket] = sig
        self._socket_k[socket] = k

    def _reconfigure(self) -> None:
        """Recompute contention rates (per socket pool) and reschedule
        completion events.

        In optimize mode a socket whose demand multiset is unchanged keeps
        its solved stall factor and its in-heap completion events: only
        segments attached since the last pass get an event, rated with the
        cached factor.  This skips the DRAM solve *and* the O(running)
        re-push entirely for the common cases — zero-demand FAKE replays
        and steady-state homogeneous REAL sections."""
        fresh = self._fresh_segs
        if fresh:
            self._fresh_segs = []
        if (
            self._optimize
            and self._demand_running == 0
            and not self.obs.enabled
        ):
            # Every running segment is demand-free: slowdowns are all 1.0
            # by construction, continuing completion events stay valid, and
            # only fresh segments need an event.  O(fresh), no solve.
            if fresh:
                now = self.clock.now
                epoch = self._epoch
                for seg in fresh:
                    if seg.rate_epoch == -1 and seg.thread.core is not None:
                        seg.slowdown = 1.0
                        seg.anchor_time = now
                        seg.anchor_remaining = seg.remaining
                        seg.t_complete = now + seg.remaining * 1.0
                        epoch += 1
                        seg.rate_epoch = epoch
                        self._push(seg.t_complete, "seg", (seg, epoch))
                self._epoch = epoch
            self.reconfig_skips += 1
            return
        if not self._optimize or self.obs.enabled:
            # Eager seed path: advance + re-rate + re-push every pass.
            # Tracing forces it so exported DRAM counter tracks keep one
            # sample per running-set change, exactly as documented.
            segs = self._running_segments()
            for seg in segs:
                self._advance_segment(seg)
            for socket, group in self._group_by_socket(segs).items():
                self._rerate_socket(socket, group, ())
            self.reconfig_solves += 1
            return
        segs = self._running_segments()
        solved = False
        now = self.clock.now
        for socket, group in self._group_by_socket(segs).items():
            ver = self._demand_ver[socket]
            if ver != self._socket_ver.get(socket):
                # The demand set transitioned since the cached signature
                # was taken: rebuild it (the multiset may still match,
                # e.g. one missy segment swapped for an identical one).
                sig = tuple(
                    sorted(
                        (seg.mem_fraction, seg.demand_bytes_per_sec)
                        for seg in group
                        if seg.demand_bytes_per_sec > 0.0
                    )
                )
                self._socket_ver[socket] = ver
                if sig != self._socket_sig.get(socket):
                    self._rerate_socket(socket, group, sig)
                    solved = True
                    continue
            # Unchanged multiset: continuing segments keep their rates and
            # their pending completion events; only fresh ones need both.
            if fresh:
                k = self._socket_k[socket]
                for seg in group:
                    if seg.rate_epoch == -1:
                        f = seg.mem_fraction
                        s = 1.0 - f + f * k
                        seg.slowdown = s
                        seg.anchor_time = now
                        seg.anchor_remaining = seg.remaining
                        seg.t_complete = now + seg.remaining * s
                        self._epoch += 1
                        seg.rate_epoch = self._epoch
                        self._push(seg.t_complete, "seg", (seg, self._epoch))
        if solved:
            self.reconfig_solves += 1
        else:
            self.reconfig_skips += 1

    def _dispatch_and_reconfigure(self) -> None:
        self._dispatch()
        self._reconfigure()

    def _dispatch(self) -> None:
        """Fill idle cores from the ready queue until no assignment is
        possible.  Stepping a dispatched thread can wake or block others, so
        iterate to a fixed point."""
        sched = self.scheduler
        while True:
            if sched.idle_count == 0 or not sched.ready:
                # Nothing to assign; still check for newly armed quanta
                # (a waiter may have appeared for a busy core).
                if self._optimize:
                    self._ensure_quanta()
                return
            assigned = False
            for core in self.scheduler.idle_cores():
                thread = self.scheduler.pick_next(core)
                if thread is None:
                    continue
                self.scheduler.assign(thread, core)
                if self._optimize:
                    # Re-anchor the round-robin boundary; the expiry event
                    # itself is armed lazily (only if a waiter shows up).
                    self._quantum_arm[core] += 1
                    self._q_armed[core] = False
                    self._q_next[core] = (
                        self.clock.now + self.config.timeslice_cycles
                    )
                    self._quanta_dirty = True
                else:
                    self._arm_quantum(core)
                self._trace("dispatch", thread)
                assigned = True
                # Context-switch cost: the core picks up a different thread
                # than it last ran (register state + cache warmup).
                switch_cost = 0.0
                if (
                    self.config.context_switch_cycles > 0
                    and self._last_tid[core] is not None
                    and self._last_tid[core] != thread.tid
                ):
                    switch_cost = self.config.context_switch_cycles
                    if self.obs.enabled:
                        self.obs.instant(
                            "context_switch",
                            ts=self._obs_now(),
                            track=f"cpu{core}",
                            cat="sched",
                            args={"cost": switch_cost},
                        )
                self._last_tid[core] = thread.tid
                if thread.segment is not None and thread.segment.remaining > 0:
                    # Resuming a preempted compute: reattach, rates fixed in
                    # the caller's reconfigure pass.  The switch cost extends
                    # the segment but is tracked as debt, not work, so
                    # counter attribution stays exact.
                    seg = thread.segment
                    seg.last_update = self.clock.now
                    seg.remaining += switch_cost
                    seg.switch_debt += switch_cost
                    if self.inv.enabled:
                        # Resume-switch cost is real busy time the kernel
                        # will account; count it as cycles-in so the
                        # conservation check stays an equality.
                        self._inv_cycles_in += switch_cost
                    seg.rate_epoch = -1
                    self._fresh_segs.append(seg)
                    if seg.demand_bytes_per_sec > 0.0:
                        self._demand_transition(thread, +1)
                else:
                    thread.switch_debt = switch_cost
                    self._step(thread, thread.pending_value)
            if not assigned:
                if self._optimize:
                    self._ensure_quanta()
                return

    def _arm_quantum(self, core: int) -> None:
        self._quantum_arm[core] += 1
        self.quantum_arms += 1
        self._push(
            self.clock.now + self.config.timeslice_cycles,
            "quantum",
            (core, self._quantum_arm[core]),
        )

    def _ensure_quanta(self) -> None:
        """Lazily arm quantum expiry events for busy cores with waiters.

        Called after every dispatch fixed point (the only place waiters can
        appear).  Boundaries skipped while a core ran uncontended advance by
        repeated ``+= timeslice`` — the identical float accumulation the
        eager mode's re-arm chain performs — so when contention does appear
        the next preemption lands on the same boundary bit for bit.
        """
        if not self._quanta_dirty:
            return
        sched = self.scheduler
        if not sched.ready:
            return
        q = self.config.timeslice_cycles
        now = self.clock.now
        armed = self._q_armed
        q_next = self._q_next
        for core, thread in enumerate(sched.running):
            if thread is None or armed[core]:
                continue
            if not sched.has_waiter_for(core):
                continue
            nxt = q_next[core]
            while nxt <= now:
                nxt += q
            q_next[core] = nxt
            armed[core] = True
            self._quantum_arm[core] += 1
            self.quantum_arms += 1
            self._push(nxt, "quantum", (core, self._quantum_arm[core]))
        if sched._unpinned_ready:
            # Every busy core is now armed; stay clean until a dispatch or
            # an expiry unarms one (pinned-only waiters stay conservative).
            self._quanta_dirty = False

    def _quantum_expired(self, core: int) -> None:
        if self._optimize:
            self._q_armed[core] = False
            self._quanta_dirty = True
        thread = self.scheduler.running[core]
        if thread is None:
            return
        if not self.scheduler.has_waiter_for(core):
            if self._optimize:
                # Keep the boundary phase; re-arm happens lazily if a
                # waiter ever appears.
                self._q_next[core] = self.clock.now + self.config.timeslice_cycles
            else:
                self._arm_quantum(core)
            return
        # Preempt: bank compute progress, requeue at the tail.
        if thread.segment is not None:
            self._advance_segment(thread.segment)
            # A detached segment is invisible to _reconfigure, so its pending
            # completion event must be invalidated here.
            self._epoch += 1
            thread.segment.rate_epoch = self._epoch
            if thread.segment.demand_bytes_per_sec > 0.0:
                self._demand_transition(thread, -1)
        self.scheduler.unassign(thread)
        self.preemptions += 1
        self._trace("preempt", thread)
        self.scheduler.make_ready(thread)
        self._dispatch_and_reconfigure()

    def _complete_segment(self, thread: SimThread) -> None:
        seg = thread.segment
        if self.inv.enabled:
            self.inv.check_segment_complete(seg)
        if seg.demand_bytes_per_sec > 0.0:
            self._demand_transition(thread, -1)
        thread.segment = None
        # Retire the object for reuse by the thread's next attach: stale
        # heap events still referencing it die on the epoch check (epochs
        # are globally monotone and never reissued).
        thread.seg_cache = seg
        self._step(thread, None)
        self._dispatch()
        self._reconfigure()

    # -- request handling ---------------------------------------------------------

    def _step(self, thread: SimThread, send_value: Any) -> None:
        """Drive ``thread`` until it computes, blocks, or finishes.

        The thread must be RUNNING on a core.  Zero-time requests are handled
        inline in a loop; requests dispatch through a type-keyed handler
        table (one dict hit instead of an isinstance chain).  A handler
        returns ``_SUSPEND`` when the thread stops being runnable here,
        otherwise the value to send into the generator next.
        """
        if thread.state is not ThreadState.RUNNING:
            raise SimulationError(f"stepping non-running thread {thread!r}")
        thread.pending_value = None
        handlers = self._HANDLERS
        while True:
            try:
                req = thread.gen.send(send_value)
            except StopIteration as stop:
                self._finish(thread, stop.value)
                return
            handler = handlers.get(req.__class__)
            if handler is None:
                raise SimulationError(f"unknown request {req!r} from {thread!r}")
            send_value = handler(self, thread, req)
            if send_value is _SUSPEND:
                return

    # Request handlers: one per request type, keyed by exact class in
    # ``_HANDLERS``.  Each returns the generator's next send value or
    # ``_SUSPEND`` when the thread computed, blocked, or yielded.

    def _h_compute(self, thread: SimThread, req: Compute):
        if req.cycles <= 0:
            self.counters.instructions += req.instructions
            self.counters.llc_misses += req.llc_misses
            return None
        self._attach_segment(thread, req)
        return _SUSPEND

    def _h_get_time(self, thread: SimThread, req: GetTime):
        return self.clock.now

    def _h_get_current(self, thread: SimThread, req: GetCurrentThread):
        return thread

    def _h_spawn(self, thread: SimThread, req: Spawn):
        return self.spawn(req.gen, name=req.name, affinity=req.affinity)

    def _h_acquire(self, thread: SimThread, req: Acquire):
        return None if self._acquire(thread, req.mutex) else _SUSPEND

    def _h_release(self, thread: SimThread, req: Release):
        self._release(thread, req.mutex)
        return None

    def _h_join(self, thread: SimThread, req: Join):
        target = req.thread
        if target.state is ThreadState.FINISHED:
            return target.result
        target.joiners.append(thread)
        self._block(thread)
        return _SUSPEND

    def _h_barrier(self, thread: SimThread, req: BarrierWait):
        return None if self._barrier_wait(thread, req.barrier) else _SUSPEND

    def _h_event_wait(self, thread: SimThread, req: EventWait):
        if req.event.is_set:
            return None
        req.event.waiters.append(thread)
        self._block(thread)
        return _SUSPEND

    def _h_event_set(self, thread: SimThread, req: EventSet):
        self._event_set(req.event, req.wake)
        return None

    def _h_event_clear(self, thread: SimThread, req: EventClear):
        req.event.is_set = False
        return None

    def _h_yield(self, thread: SimThread, req: YieldCpu):
        self.scheduler.unassign(thread)
        self._trace("yield", thread)
        self.scheduler.make_ready(thread)
        return _SUSPEND

    _HANDLERS = {
        Compute: _h_compute,
        GetTime: _h_get_time,
        GetCurrentThread: _h_get_current,
        Spawn: _h_spawn,
        Acquire: _h_acquire,
        Release: _h_release,
        Join: _h_join,
        BarrierWait: _h_barrier,
        EventWait: _h_event_wait,
        EventSet: _h_event_set,
        EventClear: _h_event_clear,
        YieldCpu: _h_yield,
    }

    def _attach_segment(self, thread: SimThread, req: Compute) -> None:
        cfg = self.config
        # Outstanding context-switch debt is paid as pure compute prepended
        # to the first segment after the switch.
        debt = thread.switch_debt
        if debt:
            thread.switch_debt = 0.0
        cycles = req.cycles + debt
        if req.llc_misses == 0.0:
            # Demand-free segment (fake delays, dispatch overhead, pure
            # compute): skip the stall/bandwidth math entirely.
            mem_fraction = 0.0
            demand = 0.0
        else:
            miss_stall = req.llc_misses * cfg.base_miss_stall
            if cycles > 0:
                mem_fraction = min(1.0, miss_stall / cycles)
            else:
                mem_fraction = 0.0
            seconds = cfg.cycles_to_seconds(cycles) if cycles > 0 else 0.0
            demand = (req.llc_misses * cfg.line_size / seconds) if seconds > 0 else 0.0
        seg = thread.seg_cache
        if seg is not None:
            thread.seg_cache = None
            seg.total = cycles
            seg.remaining = cycles
            seg.instructions = req.instructions
            seg.llc_misses = req.llc_misses
            seg.mem_fraction = mem_fraction
            seg.demand_bytes_per_sec = demand
            seg.last_update = self.clock.now
            seg.slowdown = 1.0
            seg.rate_epoch = -1
            seg.wall_consumed = 0.0
            seg.switch_debt = 0.0
            seg.anchor_time = self.clock.now
            seg.anchor_remaining = cycles
            seg.t_complete = 0.0
            seg.inv_frac = -1.0
            thread.segment = seg
        else:
            thread.segment = seg = ComputeSegment(
                thread=thread,
                total=cycles,
                remaining=cycles,
                instructions=req.instructions,
                llc_misses=req.llc_misses,
                mem_fraction=mem_fraction,
                demand_bytes_per_sec=demand,
                last_update=self.clock.now,
                rate_epoch=-1,
                anchor_time=self.clock.now,
                anchor_remaining=cycles,
            )
        if self.inv.enabled:
            seg.inv_frac = 0.0
            self._inv_cycles_in += cycles
            if demand > 0.0:
                self._inv_any_demand = True
        self._fresh_segs.append(seg)
        if demand > 0.0:
            self._demand_transition(thread, +1)

    def _finish(self, thread: SimThread, result: Any) -> None:
        thread.result = result
        thread.state = ThreadState.FINISHED
        if thread.core is not None:
            self.scheduler.unassign(thread)
        self._live -= 1
        self._trace("finish", thread)
        for joiner in thread.joiners:
            joiner.pending_value = result  # type: ignore[attr-defined]
            self.scheduler.make_ready(joiner)
        thread.joiners.clear()

    def _block(self, thread: SimThread) -> None:
        self.scheduler.unassign(thread)
        thread.state = ThreadState.BLOCKED
        self._trace("block", thread)

    # -- sync primitives ------------------------------------------------------------

    def _acquire(self, thread: SimThread, mutex: SimMutex) -> bool:
        """Returns True if acquired immediately, False if the thread blocked."""
        mutex.acquires += 1
        self.lock_acquires += 1
        if mutex.owner is None:
            mutex.owner = thread
            return True
        if mutex.owner is thread:
            raise SimulationError(f"{thread!r} recursively acquiring {mutex!r}")
        mutex.contended_acquires += 1
        if self.obs.enabled:
            self.obs.instant(
                "lock_contended",
                ts=self._obs_now(),
                track=f"thread:{thread.name or f't{thread.tid}'}",
                cat="lock",
                args={"lock": mutex.name, "owner": mutex.owner.name},
            )
        self.lock_contended += 1
        mutex.waiters.append(thread)
        self._block(thread)
        return False

    def _release(self, thread: SimThread, mutex: SimMutex) -> None:
        if mutex.owner is not thread:
            raise SimulationError(
                f"{thread!r} releasing {mutex!r} owned by {mutex.owner!r}"
            )
        if mutex.waiters:
            # Direct handoff: the selected waiter owns the lock while it
            # waits for a core, modelling lock-convoy behaviour.  The
            # handoff policy decides *which* waiter; fifo keeps the seed
            # kernel's popleft() verbatim on its own branch.
            if self._handoff_fifo:
                next_owner = mutex.waiters.popleft()
            else:
                next_owner = mutex.pop_waiter(self.handoff, self._handoff_rng)
            mutex.owner = next_owner
            next_owner.pending_value = None  # type: ignore[attr-defined]
            self.scheduler.make_ready(next_owner, front=True)
        else:
            mutex.owner = None

    def _barrier_wait(self, thread: SimThread, barrier: SimBarrier) -> bool:
        """Returns True if the barrier released immediately (last arrival)."""
        barrier.arrived.append(thread)
        if len(barrier.arrived) < barrier.parties:
            self._block(thread)
            return False
        barrier.generations += 1
        for waiter in barrier.arrived:
            if waiter is not thread:
                waiter.pending_value = None  # type: ignore[attr-defined]
                self.scheduler.make_ready(waiter)
        barrier.arrived.clear()
        return True

    def _event_set(self, event: SimEvent, wake: str) -> None:
        event.is_set = True
        if wake == "one":
            if event.waiters:
                waiter = event.waiters.popleft()
                waiter.pending_value = None  # type: ignore[attr-defined]
                self.scheduler.make_ready(waiter)
        elif wake == "all":
            while event.waiters:
                waiter = event.waiters.popleft()
                waiter.pending_value = None  # type: ignore[attr-defined]
                self.scheduler.make_ready(waiter)
        else:
            raise SimulationError(f"unknown wake mode {wake!r}")
