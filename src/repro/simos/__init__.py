"""Simulated operating system.

A deterministic discrete-event kernel that time-shares simulated threads over
the cores of a :class:`repro.simhw.machine.MachineConfig` machine, with
preemptive round-robin scheduling, direct-handoff mutexes (FIFO by default,
with pluggable handoff policies for ``repro.explore``'s schedule-space
exploration), barriers, events, and
fluid-rate compute segments whose speed responds to DRAM contention
(:mod:`repro.simhw.dram`).

This is the substitute for the Linux scheduler + real hardware in the paper's
testbed.  The phenomena the paper attributes to the OS — preemption and
oversubscription making nested parallelism faster than the fast-forward
emulator predicts (Fig. 7) — emerge from this kernel rather than being
hard-coded.
"""

from repro.simos.thread import (
    SimThread,
    ThreadState,
    Compute,
    Acquire,
    Release,
    BarrierWait,
    Spawn,
    Join,
    YieldCpu,
    GetTime,
    GetCurrentThread,
    EventWait,
    EventSet,
    EventClear,
)
from repro.simos.sync import (
    HANDOFF_POLICIES,
    SimMutex,
    SimBarrier,
    SimEvent,
    normalize_handoff,
)
from repro.simos.scheduler import CpuScheduler
from repro.simos.kernel import SimKernel

__all__ = [
    "SimThread",
    "ThreadState",
    "Compute",
    "Acquire",
    "Release",
    "BarrierWait",
    "Spawn",
    "Join",
    "YieldCpu",
    "GetTime",
    "GetCurrentThread",
    "EventWait",
    "EventSet",
    "EventClear",
    "HANDOFF_POLICIES",
    "SimMutex",
    "SimBarrier",
    "SimEvent",
    "CpuScheduler",
    "SimKernel",
    "normalize_handoff",
]
