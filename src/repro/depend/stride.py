"""Strided address sets with exact intersection tests (SD3's core idea).

A dependence profiler that stores every accessed address exhausts memory on
real programs; SD3 [20] observes that most access streams are *strided* and
keeps ``(start, stride, count)`` descriptors instead, checking dependences
directly on the compressed form.  This module implements that representation
and the exact overlap test:

    does  {s₁ + i·d₁ : 0 ≤ i < n₁}  ∩  {s₂ + j·d₂ : 0 ≤ j < n₂}  ≠ ∅ ?

Solved with the extended Euclidean algorithm: the linear Diophantine
equation ``i·d₁ − j·d₂ = s₂ − s₁`` has solutions iff ``gcd(d₁, d₂)`` divides
the offset; the solution family is then intersected with the index
rectangle ``[0, n₁) × [0, n₂)`` (a one-dimensional interval problem after
parameterisation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class StrideRange:
    """The address set ``{start + i * stride : 0 <= i < count}``.

    ``stride == 0`` with any count collapses to the single address
    ``start`` (and is normalised to count 1).
    """

    start: int
    stride: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigurationError(f"count must be >= 1, got {self.count}")
        if self.stride < 0:
            # Normalise negative strides to positive direction.
            object.__setattr__(
                self, "start", self.start + self.stride * (self.count - 1)
            )
            object.__setattr__(self, "stride", -self.stride)
        if self.stride == 0 and self.count != 1:
            object.__setattr__(self, "count", 1)

    @staticmethod
    def single(address: int) -> "StrideRange":
        return StrideRange(address, 0, 1)

    @staticmethod
    def block(start: int, size: int, element: int = 1) -> "StrideRange":
        """A contiguous block of ``size`` elements of ``element`` bytes."""
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        return StrideRange(start, element, size)

    @property
    def last(self) -> int:
        return self.start + self.stride * (self.count - 1)

    def addresses(self) -> list[int]:
        """Materialise the set (testing/debugging only)."""
        return [self.start + i * self.stride for i in range(self.count)]

    def contains(self, address: int) -> bool:
        """True if ``address`` is a member of the set."""
        if self.stride == 0:
            return address == self.start
        offset = address - self.start
        return 0 <= offset <= self.stride * (self.count - 1) and offset % self.stride == 0

    def __len__(self) -> int:
        return self.count


def ranges_intersect(a: StrideRange, b: StrideRange) -> bool:
    """Exact non-empty-intersection test for two strided sets."""
    # Quick interval rejection.
    if a.last < b.start or b.last < a.start:
        return False
    if a.stride == 0:
        return b.contains(a.start)
    if b.stride == 0:
        return a.contains(b.start)

    # Solve i*da - j*db = b.start - a.start with 0<=i<na, 0<=j<nb.
    da, db = a.stride, b.stride
    offset = b.start - a.start
    g = math.gcd(da, db)
    if offset % g != 0:
        return False
    # Particular solution of i*da ≡ offset (mod db): i0 = (offset/g) * inv(da/g, db/g)
    da_g, db_g = da // g, db // g
    inv = pow(da_g % db_g, -1, db_g) if db_g > 1 else 0
    i0 = ((offset // g) % db_g) * inv % db_g if db_g > 1 else 0
    # General solution: i = i0 + t*db_g (t integer); j follows from i.
    # Find any t with 0 <= i < a.count and the induced j within [0, b.count).
    # i ranges over an arithmetic progression; j = (i*da - offset)/db.
    # Constraints on i from j-bounds:
    #   0 <= (i*da - offset)/db < b.count
    #   offset/da <= i  (j >= 0)  and  i*da < offset + db*b.count.
    # Work in t-space: i(t) = i0 + t*db_g.
    #   t_min from i >= max(0, ceil(offset/da))   [j >= 0 requires i*da >= offset]
    #   t_max from i <= min(a.count-1, floor((offset + db*(b.count-1)) / da))
    lo_i = max(0, -(-offset // da) if offset > 0 else 0)
    hi_i = min(a.count - 1, (offset + db * (b.count - 1)) // da)
    if lo_i > hi_i:
        return False
    # Smallest i >= lo_i congruent to i0 (mod db_g).
    delta = (i0 - lo_i) % db_g
    first_i = lo_i + delta
    return first_i <= hi_i


def total_addresses(ranges: list[StrideRange]) -> int:
    """Sum of set sizes (an upper bound on distinct addresses)."""
    return sum(r.count for r in ranges)
