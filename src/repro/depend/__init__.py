"""Dynamic data-dependence analysis for annotation assistance.

Paper Section IV-A: "The annotation is currently a manual process.  However,
this step can be made fully or semi-automatic by several techniques: (1)
traditional static analyses from compilers, (2) dynamic dependence analyses
[20, 21, 24, 25, 27], ..." — reference [20] being SD3 (Kim, Kim, Luk,
MICRO-43), the same first author's dependence profiler.

This package implements that assistance path in SD3's spirit:

- :mod:`repro.depend.stride` — the memory-efficient representation: strided
  address sets (start/stride/count) with exact intersection tests, instead
  of materialised address lists (SD3's central idea);
- :mod:`repro.depend.profiler` — a loop dependence profiler that records
  per-iteration read/write sets and classifies cross-iteration flow (RAW),
  anti (WAR), and output (WAW) dependences, with reduction-pattern
  detection;
- :mod:`repro.depend.suggest` — turns a dependence report into annotation
  advice: DOALL (wrap in PAR_SEC/PAR_TASK), reduction (protect with
  LOCK_BEGIN/END), privatizable (rename per-iteration temporaries), or
  serial (loop-carried flow dependence).
"""

from repro.depend.stride import StrideRange, ranges_intersect
from repro.depend.profiler import (
    AccessKind,
    Dependence,
    DependenceKind,
    DependenceReport,
    LoopDependenceProfiler,
)
from repro.depend.suggest import AnnotationAdvice, Parallelizability, suggest

__all__ = [
    "StrideRange",
    "ranges_intersect",
    "AccessKind",
    "Dependence",
    "DependenceKind",
    "DependenceReport",
    "LoopDependenceProfiler",
    "AnnotationAdvice",
    "Parallelizability",
    "suggest",
]
