"""Loop dependence profiling over strided access sets.

Usage::

    dp = LoopDependenceProfiler("outer_loop")
    for i in range(n):
        with dp.iteration():
            dp.read(StrideRange.block(base_a + 8 * i, 8))
            dp.write(StrideRange.single(base_sum))     # reduction cell
    report = dp.finish()

The profiler records each iteration's read and write sets and, at
:meth:`finish`, classifies every *cross-iteration* dependence:

- **flow (RAW)** — a later iteration reads what an earlier one wrote: the
  true parallelization blocker;
- **anti (WAR)** — a later iteration overwrites what an earlier one read;
- **output (WAW)** — two iterations write the same location.

Anti/output dependences on the same address in *every* iteration combined
with a read of that address (read-modify-write) are flagged as **reduction
candidates** — parallelizable with a critical section, exactly the pattern
the paper's LOCK annotations protect.

Checking is pairwise over compressed stride descriptors (SD3-style), not
expanded addresses; consecutive iterations are compared against a running
summary so cost stays O(iterations × descriptors²) with small constants.
"""

from __future__ import annotations

import enum
import contextlib
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.depend.stride import StrideRange, ranges_intersect
from repro.errors import ConfigurationError


class AccessKind(enum.Enum):
    """Read or write."""

    READ = "read"
    WRITE = "write"


class DependenceKind(enum.Enum):
    """Cross-iteration dependence classes (flow/anti/output)."""

    FLOW = "flow"  # RAW
    ANTI = "anti"  # WAR
    OUTPUT = "output"  # WAW


@dataclass(frozen=True)
class Dependence:
    """One detected cross-iteration dependence (witness pair)."""

    kind: DependenceKind
    src_iteration: int
    dst_iteration: int
    src_range: StrideRange
    dst_range: StrideRange

    @property
    def distance(self) -> int:
        return self.dst_iteration - self.src_iteration


@dataclass
class DependenceReport:
    """Classification of a loop's cross-iteration dependences."""

    loop_name: str
    n_iterations: int
    dependences: list[Dependence] = field(default_factory=list)
    #: Addresses written by (essentially) every iteration AND read by the
    #: same iterations: read-modify-write accumulator cells.
    reduction_ranges: list[StrideRange] = field(default_factory=list)

    def of_kind(self, kind: DependenceKind) -> list[Dependence]:
        """All witnesses of one dependence kind."""
        return [d for d in self.dependences if d.kind is kind]

    @property
    def has_flow(self) -> bool:
        return any(d.kind is DependenceKind.FLOW for d in self.dependences)

    def flow_outside_reductions(self) -> list[Dependence]:
        """Flow dependences not explained by a reduction accumulator."""
        out = []
        for d in self.of_kind(DependenceKind.FLOW):
            if not any(
                ranges_intersect(d.src_range, r) for r in self.reduction_ranges
            ):
                out.append(d)
        return out

    @property
    def is_doall(self) -> bool:
        """True when no cross-iteration dependence of any kind exists."""
        return not self.dependences


class _IterationLog:
    __slots__ = ("index", "reads", "writes")

    def __init__(self, index: int) -> None:
        self.index = index
        self.reads: list[StrideRange] = []
        self.writes: list[StrideRange] = []


class LoopDependenceProfiler:
    """Records per-iteration access sets and derives a dependence report."""

    def __init__(self, loop_name: str = "loop", max_witnesses: int = 64) -> None:
        self.loop_name = loop_name
        self.max_witnesses = max_witnesses
        self._iterations: list[_IterationLog] = []
        self._current: Optional[_IterationLog] = None
        self._finished = False

    # -------------------------------------------------------------- recording

    @contextlib.contextmanager
    def iteration(self) -> Iterator[None]:
        """``with dp.iteration():`` — bracket one loop iteration."""
        if self._finished:
            raise ConfigurationError("profiler already finished")
        if self._current is not None:
            raise ConfigurationError("iterations cannot nest")
        self._current = _IterationLog(len(self._iterations))
        try:
            yield
        finally:
            self._iterations.append(self._current)
            self._current = None

    def read(self, r: StrideRange) -> None:
        """Record a read of the strided address set ``r``."""
        self._record(AccessKind.READ, r)

    def write(self, r: StrideRange) -> None:
        """Record a write of the strided address set ``r``."""
        self._record(AccessKind.WRITE, r)

    def _record(self, kind: AccessKind, r: StrideRange) -> None:
        if self._current is None:
            raise ConfigurationError("access recorded outside an iteration")
        if kind is AccessKind.READ:
            self._current.reads.append(r)
        else:
            self._current.writes.append(r)

    # -------------------------------------------------------------- analysis

    def finish(self) -> DependenceReport:
        """Close the loop and classify all cross-iteration dependences."""
        if self._current is not None:
            raise ConfigurationError("finish() called inside an iteration")
        self._finished = True
        report = DependenceReport(
            loop_name=self.loop_name, n_iterations=len(self._iterations)
        )

        # Running summaries of everything earlier iterations read/wrote:
        # (range, iteration) pairs — the SD3-style compressed history.
        past_writes: list[tuple[StrideRange, int]] = []
        past_reads: list[tuple[StrideRange, int]] = []

        for it in self._iterations:
            if len(report.dependences) < self.max_witnesses:
                for w, src in past_writes:
                    for r in it.reads:
                        if ranges_intersect(w, r):
                            report.dependences.append(
                                Dependence(DependenceKind.FLOW, src, it.index, w, r)
                            )
                            break
                for r, src in past_reads:
                    for w in it.writes:
                        if ranges_intersect(r, w):
                            report.dependences.append(
                                Dependence(DependenceKind.ANTI, src, it.index, r, w)
                            )
                            break
                for w, src in past_writes:
                    for w2 in it.writes:
                        if ranges_intersect(w, w2):
                            report.dependences.append(
                                Dependence(
                                    DependenceKind.OUTPUT, src, it.index, w, w2
                                )
                            )
                            break
            for w in it.writes:
                past_writes.append((w, it.index))
            for r in it.reads:
                past_reads.append((r, it.index))

        report.reduction_ranges = self._find_reductions()
        return report

    def _find_reductions(self) -> list[StrideRange]:
        """Ranges written AND read by every iteration (read-modify-write):
        the accumulator pattern a critical section makes parallel-safe."""
        if len(self._iterations) < 2:
            return []
        candidates = list(self._iterations[0].writes)
        for it in self._iterations[1:]:
            candidates = [
                c
                for c in candidates
                if any(ranges_intersect(c, w) for w in it.writes)
            ]
            if not candidates:
                return []
        # Must also be read in (all) iterations: read-modify-write.
        return [
            c
            for c in candidates
            if all(
                any(ranges_intersect(c, r) for r in it.reads)
                for it in self._iterations
            )
        ]
