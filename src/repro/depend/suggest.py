"""Annotation advice from dependence reports (the paper's semi-automatic
annotation path, Section IV-A).

Maps a :class:`~repro.depend.profiler.DependenceReport` to one of four
verdicts and the matching Parallel Prophet annotations:

- ``DOALL`` — no cross-iteration dependences: wrap the loop in
  ``PAR_SEC_BEGIN/END`` with one ``PAR_TASK`` per iteration.
- ``REDUCTION`` — the only flow dependences are read-modify-write
  accumulators: parallelizable with ``LOCK_BEGIN/END`` around the update
  (the paper's multiple-critical-sections support exists for exactly this).
- ``PRIVATIZABLE`` — only anti/output dependences: per-iteration temporaries
  can be renamed (privatised), after which the loop is DOALL.
- ``SERIAL`` — genuine loop-carried flow dependences: do not annotate; the
  loop would need restructuring (or pipelining).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.depend.profiler import DependenceKind, DependenceReport


class Parallelizability(enum.Enum):
    """The suggester's four verdicts."""

    DOALL = "doall"
    REDUCTION = "reduction"
    PRIVATIZABLE = "privatizable"
    SERIAL = "serial"


@dataclass(frozen=True)
class AnnotationAdvice:
    """The suggester's output for one loop."""

    loop_name: str
    verdict: Parallelizability
    #: Human-readable annotation instructions.
    instructions: tuple[str, ...]
    #: Number of distinct lock ids the suggestion needs (reductions).
    locks_needed: int = 0

    def summary(self) -> str:
        """Multi-line human-readable rendering of the advice."""
        lines = [f"loop {self.loop_name!r}: {self.verdict.value}"]
        lines += [f"  - {step}" for step in self.instructions]
        return "\n".join(lines)


def suggest(report: DependenceReport) -> AnnotationAdvice:
    """Annotation advice for one profiled loop."""
    name = report.loop_name

    if report.is_doall:
        return AnnotationAdvice(
            loop_name=name,
            verdict=Parallelizability.DOALL,
            instructions=(
                f"PAR_SEC_BEGIN(\"{name}\") before the loop",
                "PAR_TASK_BEGIN/END around each iteration body",
                f"PAR_SEC_END(true) after the loop",
            ),
        )

    blocking_flow = report.flow_outside_reductions()
    if not blocking_flow and report.reduction_ranges:
        return AnnotationAdvice(
            loop_name=name,
            verdict=Parallelizability.REDUCTION,
            instructions=(
                f"PAR_SEC_BEGIN(\"{name}\") / PAR_TASK pairs as for a DOALL loop",
                "LOCK_BEGIN(1)/LOCK_END(1) around each accumulator update "
                f"({len(report.reduction_ranges)} accumulator cell(s) found)",
            ),
            locks_needed=1,
        )

    if not report.has_flow:
        # Only anti/output dependences: privatise, then DOALL.
        conflicted = {
            (d.src_range.start, d.src_range.stride, d.src_range.count)
            for d in report.dependences
            if d.kind in (DependenceKind.ANTI, DependenceKind.OUTPUT)
        }
        return AnnotationAdvice(
            loop_name=name,
            verdict=Parallelizability.PRIVATIZABLE,
            instructions=(
                f"privatise {len(conflicted)} per-iteration temporary "
                "location(s) (one copy per task)",
                "then annotate as a DOALL loop",
            ),
        )

    return AnnotationAdvice(
        loop_name=name,
        verdict=Parallelizability.SERIAL,
        instructions=(
            f"{len(blocking_flow)} loop-carried flow dependence(s) detected "
            f"(e.g. iteration {blocking_flow[0].src_iteration} -> "
            f"{blocking_flow[0].dst_iteration})",
            "do not annotate as parallel; consider restructuring or a "
            "pipeline (section(..., pipeline=True))",
        ),
    )
