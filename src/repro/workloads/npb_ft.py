"""NPB ``FT`` — 3-D FFT PDE solver (paper Figs. 2 and 12(f), "NPB-FT:
B/850MB").

FT is the paper's flagship memory-limited case (Fig. 2): each timestep runs
FFT passes along the three dimensions, and every pass streams the whole
850 MB complex array through the cache hierarchy.  Per-task work is uniform,
so without a memory model every tool predicts near-linear scaling — but the
measured speedup saturates around 4-4.5× as DRAM bandwidth fills (the paper
reports burden factors of 1.0-1.45 across 2-12 cores and shows Kismet and
Suitability overestimating).

Per-task memory fraction here is ≈0.45, matching an out-of-cache
stride-1/stride-N FFT sweep on Westmere-class memory.
"""

from __future__ import annotations

from repro.core.annotations import Tracer
from repro.workloads.base import WorkloadSpec, streaming


def build(
    scale: float = 1.0,
    timesteps: int = 2,
    planes: int = 48,
    footprint_mb: float = 850.0,
    cycles_per_plane: float = 10_000_000.0,
) -> WorkloadSpec:
    """FT; each of 3 per-step passes streams the array across ``planes`` tasks."""
    p = max(4, int(planes * scale))
    footprint = footprint_mb * 1e6
    bytes_per_task = footprint / p

    def program(tracer: Tracer) -> None:
        # evolve(): pointwise exponential factors, one streaming pass.
        for step in range(timesteps):
            for dim in ("x", "y", "z"):
                with tracer.section(f"fft_{dim}"):
                    for plane in range(p):
                        with tracer.task(f"pl{plane}"):
                            tracer.compute(
                                cycles_per_plane,
                                mem=streaming(bytes_per_task),
                            )
            # Serial checksum between steps.
            tracer.compute(100_000.0)

    return WorkloadSpec(
        name="npb_ft",
        program=program,
        paradigm="omp",
        description=(
            "NPB FT: 3-D FFT, streams an 850 MB array every pass — "
            "bandwidth-saturated beyond ~6 cores"
        ),
        input_label=f"B/{footprint_mb:.0f}MB",
        footprint_mb=footprint_mb,
        schedule="static",
    )
