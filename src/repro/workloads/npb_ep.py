"""NPB ``EP`` — embarrassingly parallel (paper Fig. 12(e), "NPB-EP: B/7MB").

EP generates pairs of Gaussian deviates and tallies them: perfectly balanced
independent batches, a 7 MB footprint that lives in cache, and one tiny
reduction at the end.  It is the control benchmark — any predictor should
get it right (the paper's Fig. 12(e) shows all tools near the ideal line;
real speedup ≈ 11-12× on 12 cores).
"""

from __future__ import annotations

from repro.core.annotations import Tracer
from repro.workloads.base import WorkloadSpec, resident


def build(
    scale: float = 1.0,
    batches: int = 192,
    cycles_per_batch: float = 400_000.0,
) -> WorkloadSpec:
    """EP; ``batches`` is the number of independent random-number batches."""
    m = max(8, int(batches * scale))
    footprint = 7e6

    def program(tracer: Tracer) -> None:
        with tracer.section("ep_batches"):
            for b in range(m):
                with tracer.task(f"b{b}"):
                    # The RNG state and per-batch tallies are a few KB; the
                    # 7 MB table is shared and stays cache-hot, so per-batch
                    # traffic is tiny (EP's MPI is ~0).
                    tracer.compute(
                        cycles_per_batch,
                        mem=resident(bytes_touched=4096, working_set=footprint),
                    )
                    # Tiny tallying critical section (the sum reduction).
                    with tracer.lock(1):
                        tracer.compute(300.0)
        # Serial verification of the tallies.
        tracer.compute(20_000.0)

    return WorkloadSpec(
        name="npb_ep",
        program=program,
        paradigm="omp",
        description="NPB EP: embarrassingly parallel Gaussian-deviate batches",
        input_label="B/7MB",
        footprint_mb=7.0,
        schedule="static",
    )
