"""NPB ``CG`` — conjugate gradient (paper Fig. 12(g), "NPB-CG: B/400MB").

CG estimates the smallest eigenvalue of a sparse symmetric matrix with
inverse power iteration; each outer step runs ``cgitmax = 25`` inner CG
iterations.  The annotated structure follows the real kernel's phases:

- ``cg_matvec`` — ``q = A·p``: the dominant phase; irregular gathers over
  the ~400 MB sparse matrix (random-pattern rows), substantial DRAM traffic;
- ``cg_dot``    — the two reductions per iteration (``d = p·q``,
  ``rho = r·r``), tiny streaming plus a critical-section accumulation;
- ``cg_axpy``   — the vector updates ``x += α·p``, ``r −= α·q``,
  ``p = r + β·p``: light streaming over the dense vectors.

The matvec's traffic is moderate-heavy (not FT-grade streaming), so the
measured speedup climbs well past FT's plateau before flattening — the
paper's in-between curve.  CG is also the paper's compression example
(Section VI-B): its per-iteration sections are identical, so the tree
collapses by >90 %.
"""

from __future__ import annotations

from repro.core.annotations import Tracer
from repro.workloads.base import WorkloadSpec, random_access, streaming


def build(
    scale: float = 1.0,
    outer_steps: int = 2,
    inner_iterations: int = 5,
    row_blocks: int = 64,
    footprint_mb: float = 400.0,
    matvec_cycles_per_block: float = 4_800_000.0,
) -> WorkloadSpec:
    """CG; ``outer_steps × inner_iterations`` CG iterations over
    ``row_blocks``-way row-decomposed parallel loops."""
    blocks = max(8, int(row_blocks * scale))
    footprint = footprint_mb * 1e6
    # The sparse matrix (a[], colidx[], rowstr[]) IS the footprint; the
    # dense vectors (n = 75k rows x 8 B) are a few megabytes at most and
    # stay cache-warm, so the vector phases carry little DRAM traffic.
    matrix_bytes_per_block = footprint / blocks
    vector_bytes_per_block = 4e6 / blocks

    def matvec(tracer: Tracer) -> None:
        with tracer.section("cg_matvec"):
            for b in range(blocks):
                with tracer.task(f"b{b}"):
                    tracer.compute(
                        matvec_cycles_per_block,
                        mem=random_access(
                            bytes_touched=matrix_bytes_per_block,
                            working_set=footprint,
                        ),
                    )

    def dot(tracer: Tracer) -> None:
        with tracer.section("cg_dot"):
            for b in range(blocks):
                with tracer.task(f"b{b}"):
                    tracer.compute(
                        30_000.0,
                        mem=streaming(vector_bytes_per_block * 0.05),
                    )
                    with tracer.lock(1):
                        tracer.compute(400.0)

    def axpy(tracer: Tracer) -> None:
        with tracer.section("cg_axpy"):
            for b in range(blocks):
                with tracer.task(f"b{b}"):
                    tracer.compute(
                        120_000.0,
                        mem=streaming(vector_bytes_per_block),
                    )

    def program(tracer: Tracer) -> None:
        for _step in range(outer_steps):
            for _it in range(inner_iterations):
                matvec(tracer)  # q = A p
                dot(tracer)  # d = p.q ; alpha = rho/d
                axpy(tracer)  # x += alpha p ; r -= alpha q
                dot(tracer)  # rho' = r.r ; beta
                axpy(tracer)  # p = r + beta p
            # Outer step: ||r|| norm + eigenvalue shift update (serial).
            tracer.compute(25_000.0)

    return WorkloadSpec(
        name="npb_cg",
        program=program,
        paradigm="omp",
        description=(
            "NPB CG: inverse power iteration — sparse matvec with irregular "
            "gathers plus dot-product reductions and vector updates"
        ),
        input_label=f"B/{footprint_mb:.0f}MB",
        footprint_mb=footprint_mb,
        schedule="static",
    )
