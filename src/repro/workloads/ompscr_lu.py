"""OmpSCR ``c_lu`` — LU reduction (paper Figs. 1(a) and 12(b), "LU-OMP:
3072/54MB").

The paper's motivating example for *workload imbalance* and *inner-loop
parallelism* (Fig. 1(a))::

    for (k = 0; k < size - 1; k++)                      // serial outer loop
      #pragma omp parallel for schedule(static,1)
      for (i = k + 1; i < size; i++) {                  // parallel inner loop
        L[i][k] = M[i][k] / M[k][k];
        for (j = k + 1; j < size; j++)                  // O(size − k) work
          M[i][j] -= L[i][k] * M[k][j];
      }

Each outer iteration opens a fresh top-level parallel section whose tasks
shrink with ``k`` ("the shape of work for threads is regular diagonal"), so
the schedule choice matters and the per-section fork/join overhead recurs
``size − 1`` times — which is exactly what made Suitability overestimate the
parallel overhead (Section VII-C).  The matrix gets strong reuse per k-step
(row ``k`` is shared), so the model's burden factors stay at 1.
"""

from __future__ import annotations

from repro.core.annotations import Tracer
from repro.workloads.base import WorkloadSpec, resident


def build(
    scale: float = 1.0,
    size: int = 128,
    cycles_per_element: float = 220.0,
) -> WorkloadSpec:
    """LU reduction; ``size`` is the matrix dimension."""
    n = max(16, int(size * scale))
    footprint = 54e6 * (n / 3072) ** 2  # 54 MB at the paper's 3072

    def program(tracer: Tracer) -> None:
        for k in range(n - 1):
            row_bytes = 8.0 * (n - k)
            with tracer.section("lu_inner"):
                for i in range(k + 1, n):
                    with tracer.task(f"i{i}"):
                        # Row update: O(n − k) multiply-subtracts reading the
                        # shared pivot row (resident) and writing row i.
                        tracer.compute(
                            cycles_per_element * (n - k),
                            mem=resident(
                                bytes_touched=2.0 * row_bytes,
                                working_set=min(footprint, 2.0 * row_bytes * (n - k)),
                            ),
                        )

    return WorkloadSpec(
        name="ompscr_lu",
        program=program,
        paradigm="omp",
        description=(
            "OmpSCR LU reduction: diagonal workload imbalance with a "
            "frequent parallel inner loop"
        ),
        input_label=f"{n}/{footprint / 1e6:.0f}MB",
        footprint_mb=footprint / 1e6,
        schedule="static,1",
    )
