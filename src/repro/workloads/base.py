"""Workload protocol and authoring helpers.

A *workload* is an annotated serial program (paper Section IV-A) plus
metadata: the paradigm it targets, its memory footprint, and the input label
used in the paper's figure captions.  Workloads express their computation
declaratively through :meth:`~repro.core.annotations.Tracer.compute` with
per-segment :class:`~repro.simhw.memtrace.MemSpec` memory behaviour — the
substitution for executing real kernels, sized so the cost *shape*
(imbalance, recursion, traffic) matches the original benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.annotations import AnnotationProgram
from repro.errors import ConfigurationError
from repro.simhw.machine import MachineConfig, WESTMERE_12
from repro.simhw.memtrace import AccessPattern, MemSpec


@dataclass(frozen=True)
class WorkloadSpec:
    """One runnable workload."""

    name: str
    program: AnnotationProgram
    paradigm: str  # "omp" | "cilk"
    description: str
    input_label: str  # e.g. "B/850MB", matching the paper's captions
    footprint_mb: float
    #: Default schedule label for OMP workloads (paper used various).
    schedule: str = "static"

    def __post_init__(self) -> None:
        if self.paradigm not in ("omp", "cilk"):
            raise ConfigurationError(f"unknown paradigm {self.paradigm!r}")


#: A factory producing a workload at a given scale (1.0 = default size;
#: benchmarks may raise it, tests may lower it).
WorkloadFactory = Callable[..., WorkloadSpec]


def streaming(bytes_touched: float, working_set: Optional[float] = None) -> MemSpec:
    """A streaming sweep over ``bytes_touched`` bytes."""
    return MemSpec(
        AccessPattern.STREAMING,
        bytes_touched=int(bytes_touched),
        working_set=int(working_set if working_set is not None else bytes_touched),
    )


def resident(bytes_touched: float, working_set: float) -> MemSpec:
    """Repeated access within an LLC-resident working set."""
    return MemSpec(
        AccessPattern.RESIDENT,
        bytes_touched=int(bytes_touched),
        working_set=int(working_set),
    )


def random_access(bytes_touched: float, working_set: float) -> MemSpec:
    """Uniform random accesses over ``working_set`` bytes (sparse codes)."""
    return MemSpec(
        AccessPattern.RANDOM,
        bytes_touched=int(bytes_touched),
        working_set=int(working_set),
    )


def bytes_for_mem_fraction(
    cpu_cycles: float,
    mem_fraction: float,
    machine: MachineConfig = WESTMERE_12,
) -> float:
    """Bytes a streaming segment must touch so its uncontended duration is
    ``mem_fraction`` memory-stall time.

    From base = cpu + misses·ω₀ and f = misses·ω₀/base:
    misses = f·cpu / (ω₀·(1 − f)).
    Authoring helper for matching a kernel's compute/memory balance.
    """
    if not 0.0 <= mem_fraction < 1.0:
        raise ConfigurationError(
            f"mem_fraction must be in [0, 1), got {mem_fraction!r}"
        )
    if mem_fraction == 0.0:
        return 0.0
    misses = (
        mem_fraction
        * cpu_cycles
        / (machine.base_miss_stall * (1.0 - mem_fraction))
    )
    return misses * machine.line_size
