"""OmpSCR ``c_fft`` — recursive FFT, Cilk Plus flavour (paper Figs. 1(b)
and 12(c), "FFT-Cilk 2048/118MB").

The paper's motivating example for *recursive and nested parallelism*
(Fig. 1(b))::

    void FFT(...) {
      cilk_spawn FFT(D, a, W, n, strd/2, A);     // first half, spawned
      FFT(D+n, a+strd, W, n, strd/2, A+n);       // second half, inline
      cilk_sync;
      cilk_for (i = 0; i <= n - 1; i++) { ... }  // combine pass
    }

Naive OpenMP 2.0 nesting spawns a physical team per level and collapses
under oversubscription; Cilk's work stealing handles it, so the paper
re-parallelised this benchmark with Cilk Plus.  Each recursion level streams
the whole working array once (combine pass), so with a >100 MB footprint the
benchmark is memory-limited: the paper's burden factors exceed 1 and the
measured speedup tops out near 3.5× on 12 cores.

In annotation form the spawn/sync pair is a 2-task section and the
``cilk_for`` is a section of chunk tasks — one top-level section per
transform wrapping the recursion.
"""

from __future__ import annotations

from repro.core.annotations import Tracer
from repro.workloads.base import WorkloadSpec, streaming


def build(
    scale: float = 1.0,
    n_points: int = 4096,
    base_points: int = 256,
    chunk_points: int = 64,
    cycles_per_point: float = 25_000.0,
) -> WorkloadSpec:
    """Recursive FFT; ``n_points`` halves per level down to ``base_points``."""
    n = max(base_points, int(n_points * scale))
    footprint = 118e6 * (n / 2048 / 2)  # ~118 MB at the paper's input
    bytes_per_point = footprint / n

    def combine_loop(tracer: Tracer, m: int, depth: int) -> None:
        # cilk_for over m points in chunks; each chunk streams its slice.
        with tracer.section(f"fft_combine_d{depth}"):
            for c in range(0, m, chunk_points):
                count = min(chunk_points, m - c)
                with tracer.task(f"c{c}"):
                    tracer.compute(
                        cycles_per_point * count,
                        mem=streaming(bytes_per_point * count * 2),
                    )

    def fft(tracer: Tracer, m: int, depth: int) -> None:
        if m <= base_points:
            tracer.compute(
                cycles_per_point * m * 1.5,
                mem=streaming(bytes_per_point * m),
            )
            return
        with tracer.section(f"fft_rec_d{depth}"):
            with tracer.task("lo"):
                fft(tracer, m // 2, depth + 1)
            with tracer.task("hi"):
                fft(tracer, m // 2, depth + 1)
        combine_loop(tracer, m, depth)

    def program(tracer: Tracer) -> None:
        # One top-level section wraps the whole transform so recursion is
        # nested parallelism inside a single parallel root, as in cilk code
        # whose main() spawns the first FFT call.
        with tracer.section("fft"):
            with tracer.task("root"):
                fft(tracer, n, 0)

    return WorkloadSpec(
        name="ompscr_fft",
        program=program,
        paradigm="cilk",
        description=(
            "OmpSCR recursive FFT (Cilk Plus): spawn/sync recursion plus "
            "per-level cilk_for combine passes, memory-limited"
        ),
        input_label=f"{n}/{footprint / 1e6:.0f}MB",
        footprint_mb=footprint / 1e6,
        schedule="static",
    )
