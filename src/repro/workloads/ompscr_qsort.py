"""OmpSCR ``c_qsort`` — parallel quicksort, Cilk Plus flavour (paper
Fig. 12(d), "QSort-Cilk: 2048/4MB").

Recursive divide-and-conquer with *data-dependent imbalance*: each partition
splits at a random pivot, the partition pass itself is serial within its
subproblem, and recursion stops at a small threshold where an insertion-sort
leaf runs.  The serial top-level partition bounds the speedup well below
linear (the paper measures ≈3.5-4× on 12 cores), while the 4 MB footprint
fits the LLC, so burden factors stay at 1 — scheduling, not memory, is the
limiter.  Like FFT, this recursion pattern needs work stealing (Cilk).
"""

from __future__ import annotations

import numpy as np

from repro.core.annotations import Tracer
from repro.workloads.base import WorkloadSpec, resident


def build(
    scale: float = 1.0,
    elements: int = 200_000,
    leaf_elements: int = 2_500,
    cycles_per_element: float = 14.0,
    seed: int = 2012,
) -> WorkloadSpec:
    """Quicksort; pivots drawn from a seeded RNG for reproducible imbalance."""
    n = max(leaf_elements, int(elements * scale))
    footprint = 4e6 * (n / 2048 / 1000)  # ~4 MB at the paper's input

    def program(tracer: Tracer) -> None:
        rng = np.random.default_rng(seed)

        def qsort(m: int, depth: int) -> None:
            if m <= leaf_elements:
                # Insertion-sort-ish leaf: slightly super-linear in m.
                tracer.compute(
                    cycles_per_element * m * 1.6,
                    mem=resident(bytes_touched=8.0 * m, working_set=8.0 * m),
                )
                return
            # Serial partition pass over the whole subrange.
            tracer.compute(
                cycles_per_element * m,
                mem=resident(bytes_touched=8.0 * m, working_set=footprint),
            )
            # Random pivot on random data: split point ~ uniform, clamped so
            # both sides recurse.
            frac = float(rng.uniform(0.2, 0.8))
            left = max(1, int(m * frac))
            right = max(1, m - left)
            with tracer.section(f"qsort_d{depth}"):
                with tracer.task("lo"):
                    qsort(left, depth + 1)
                with tracer.task("hi"):
                    qsort(right, depth + 1)

        with tracer.section("qsort"):
            with tracer.task("root"):
                qsort(n, 0)

    return WorkloadSpec(
        name="ompscr_qsort",
        program=program,
        paradigm="cilk",
        description=(
            "OmpSCR quicksort (Cilk Plus): recursive parallelism with "
            "random-pivot imbalance and serial partition passes"
        ),
        input_label=f"{n // 1000}k/{footprint / 1e6:.0f}MB",
        footprint_mb=footprint / 1e6,
        schedule="static",
    )
