"""Annotated serial workloads mirroring the paper's benchmarks.

Eight OmpSCR/NPB benchmarks (paper Section VII-A) plus the Test1/Test2
random-program generators used for validation (Section VII-B).  Each
workload reproduces the cost *shape* of the original kernel — imbalance,
recursion structure, memory traffic and footprint — which is everything the
profiler and emulators consume.
"""

from repro.workloads.base import (
    WorkloadSpec,
    bytes_for_mem_fraction,
    random_access,
    resident,
    streaming,
)
from repro.workloads.registry import PAPER_ORDER, get_workload, workload_names
from repro.workloads.synthetic import (
    Test1Params,
    Test2Params,
    compute_overhead,
    random_test1,
    random_test2,
    test1_program,
    test2_program,
)

__all__ = [
    "WorkloadSpec",
    "bytes_for_mem_fraction",
    "streaming",
    "resident",
    "random_access",
    "get_workload",
    "workload_names",
    "PAPER_ORDER",
    "Test1Params",
    "Test2Params",
    "compute_overhead",
    "test1_program",
    "test2_program",
    "random_test1",
    "random_test2",
]
