"""OmpSCR ``c_md`` — molecular dynamics (paper Fig. 12(a), "MD-OMP: 8192/20MB").

The MD kernel's parallel loop computes forces for each particle against all
others: per-iteration work is uniform and proportional to the particle
count, and the position/velocity arrays (~20 MB for 8192 particles) enjoy
heavy reuse, so the benchmark is compute-bound (the paper measures burden
factors of 1 and near-linear speedups, even slightly super-linear on 6-12
cores from cache-size growth, which Prophet deliberately does not model).

Structure per timestep: a parallel ``forces`` loop (one task per particle
block) followed by a serial ``update`` sweep.
"""

from __future__ import annotations

from repro.core.annotations import Tracer
from repro.workloads.base import WorkloadSpec, resident


def build(
    scale: float = 1.0,
    particles: int = 512,
    steps: int = 2,
    cycles_per_pair: float = 40.0,
) -> WorkloadSpec:
    """MD workload; ``particles`` scales both trip count and per-task cost."""
    n = max(8, int(particles * scale))
    footprint = 20e6 * (n / 8192)  # proportional to the paper's 20 MB @ 8192

    def program(tracer: Tracer) -> None:
        for _step in range(steps):
            with tracer.section("md_forces"):
                for i in range(n):
                    with tracer.task(f"p{i}"):
                        # Force on particle i vs all j: O(n) work, resident
                        # reads of the positions array.
                        tracer.compute(
                            cycles_per_pair * n,
                            mem=resident(
                                bytes_touched=24.0 * n / 16,
                                working_set=footprint,
                            ),
                        )
            # Serial position/velocity update (outside any section).
            tracer.compute(8.0 * n)

    return WorkloadSpec(
        name="ompscr_md",
        program=program,
        paradigm="omp",
        description="OmpSCR molecular dynamics: balanced parallel force loop",
        input_label=f"{n}/{footprint / 1e6:.0f}MB",
        footprint_mb=footprint / 1e6,
        schedule="static",
    )
