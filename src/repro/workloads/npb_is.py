"""NPB ``IS`` — integer (bucket) sort.

IS is not one of the paper's eight evaluated benchmarks, but it stars in
Section VI-B: "IS in the NPB benchmark consumes 10 GB to build a program
tree" — its per-iteration work depends on random key distributions, so
run-length encoding finds no runs and the tree stays huge unless lossy
compression is applied.

This workload reproduces that pathology: per-bucket counting/ranking costs
are drawn from a seeded heavy-tailed distribution, making adjacent
iterations dissimilar beyond any small lossless tolerance.  Pair it with
:func:`repro.core.compress.compress_tree_lossy` to reproduce the paper's
"last resort" discussion (see ``benchmarks/bench_compression.py``).
"""

from __future__ import annotations

import numpy as np

from repro.core.annotations import Tracer
from repro.workloads.base import WorkloadSpec, streaming


def build(
    scale: float = 1.0,
    iterations: int = 4,
    buckets: int = 256,
    mean_cycles: float = 120_000.0,
    footprint_mb: float = 134.0,
    seed: int = 1998,  # NPB 2.3's release year
) -> WorkloadSpec:
    """IS; each iteration ranks keys into ``buckets`` uneven buckets."""
    b = max(16, int(buckets * scale))
    footprint = footprint_mb * 1e6
    rng = np.random.default_rng(seed)
    # Heavy-tailed bucket sizes, resampled per iteration: the reason IS
    # trees resist lossless RLE.
    costs = mean_cycles * rng.lognormal(mean=0.0, sigma=0.7, size=(iterations, b))
    bytes_per_bucket = footprint / b

    def program(tracer: Tracer) -> None:
        for it in range(iterations):
            with tracer.section("is_rank"):
                for bucket in range(b):
                    with tracer.task(f"b{bucket}"):
                        tracer.compute(
                            float(costs[it, bucket]),
                            mem=streaming(
                                bytes_per_bucket * costs[it, bucket] / mean_cycles
                            ),
                        )
            # Serial key verification between iterations.
            tracer.compute(30_000.0)

    return WorkloadSpec(
        name="npb_is",
        program=program,
        paradigm="omp",
        description=(
            "NPB IS: bucket sort with random per-bucket work — the paper's "
            "hard-to-compress program tree (Section VI-B)"
        ),
        input_label=f"B/{footprint_mb:.0f}MB",
        footprint_mb=footprint_mb,
        schedule="dynamic,1",
    )
