"""Test1 and Test2 validation generators (paper Section VII-B, Figs. 9-10).

The paper validates Parallel Prophet on 300 randomly generated samples of
two serial program patterns:

- **Test1** (Fig. 9): a parallel loop whose iteration *i* computes
  ``overhead = ComputeOverhead(i, i_max, M, m, s)`` split across up to three
  unlocked delays and up to two critical sections — exercising load
  imbalance, multiple locks with arbitrary contention, and high parallel
  overhead.
- **Test2** (Fig. 10): an outer parallel loop whose iterations optionally
  invoke a whole Test1 instance as a *nested* parallel loop — adding
  frequent inner-loop parallelism and nested parallelism.

``ComputeOverhead`` generates "various workload patterns, from a randomly
distributed workload to a regular form of workload, or a mix of several
cases"; here the same role is played by four shapes (uniform-random, linear
ramp à la LU's diagonal, sawtooth, and flat) selected per sample.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.annotations import AnnotationProgram, Tracer
from repro.errors import ConfigurationError

#: Workload shapes that ComputeOverhead can generate.
SHAPES = ("random", "ramp", "sawtooth", "flat")


@dataclass(frozen=True)
class Test1Params:
    """Parameters of one Test1 sample (Fig. 9's i_max, M, m, s, ratios)."""

    __test__ = False  # not a pytest class, despite the name

    i_max: int
    mean_cycles: float
    spread: float  # relative variation of per-iteration work
    shape: str
    ratio_delay_1: float
    ratio_delay_lock_1: float
    ratio_delay_2: float
    ratio_delay_lock_2: float
    ratio_delay_3: float
    do_lock1: bool
    do_lock2: bool
    seed: int

    def __post_init__(self) -> None:
        if self.i_max < 1:
            raise ConfigurationError("i_max must be >= 1")
        if self.shape not in SHAPES:
            raise ConfigurationError(f"unknown shape {self.shape!r}")
        total = (
            self.ratio_delay_1
            + (self.ratio_delay_lock_1 if self.do_lock1 else 0.0)
            + self.ratio_delay_2
            + (self.ratio_delay_lock_2 if self.do_lock2 else 0.0)
            + self.ratio_delay_3
        )
        if total <= 0:
            raise ConfigurationError("at least one delay ratio must be > 0")


@dataclass(frozen=True)
class Test2Params:
    """Parameters of one Test2 sample (Fig. 10)."""

    __test__ = False  # not a pytest class, despite the name

    k_max: int
    mean_cycles: float
    spread: float
    shape: str
    ratio_delay_a: float
    ratio_delay_b: float
    nested_probability: float
    inner: Test1Params
    seed: int

    def __post_init__(self) -> None:
        if self.k_max < 1:
            raise ConfigurationError("k_max must be >= 1")
        if self.shape not in SHAPES:
            raise ConfigurationError(f"unknown shape {self.shape!r}")
        if not 0.0 <= self.nested_probability <= 1.0:
            raise ConfigurationError("nested_probability must be in [0, 1]")


def compute_overhead(
    i: int, i_max: int, mean: float, spread: float, shape: str, rng: np.random.Generator
) -> float:
    """The paper's ``ComputeOverhead``: per-iteration work for iteration i."""
    if shape == "flat":
        factor = 1.0
    elif shape == "ramp":
        # Regular diagonal shape, as in LUreduction (Fig. 1(a)).
        factor = 1.0 + spread * (2.0 * i / max(1, i_max - 1) - 1.0)
    elif shape == "sawtooth":
        factor = 1.0 + spread * (2.0 * ((i % 8) / 7.0) - 1.0)
    elif shape == "random":
        factor = 1.0 + spread * float(rng.uniform(-1.0, 1.0))
    else:  # pragma: no cover - validated in params
        raise ConfigurationError(f"unknown shape {shape!r}")
    return max(100.0, mean * factor)


def test1_program(
    params: Test1Params, section_name: str = "test1"
) -> AnnotationProgram:
    """Build the Fig. 9 annotated serial program for ``params``."""

    def program(tracer: Tracer) -> None:
        rng = np.random.default_rng(params.seed)
        tracer.par_sec_begin(section_name)
        for i in range(params.i_max):
            overhead = compute_overhead(
                i, params.i_max, params.mean_cycles, params.spread, params.shape, rng
            )
            tracer.par_task_begin(f"i{i}")
            tracer.compute(overhead * params.ratio_delay_1)
            if params.do_lock1:
                tracer.lock_begin(1)
                tracer.compute(overhead * params.ratio_delay_lock_1)
                tracer.lock_end(1)
            tracer.compute(overhead * params.ratio_delay_2)
            if params.do_lock2:
                tracer.lock_begin(2)
                tracer.compute(overhead * params.ratio_delay_lock_2)
                tracer.lock_end(2)
            tracer.compute(overhead * params.ratio_delay_3)
            tracer.par_task_end()
        tracer.par_sec_end(barrier=True)

    return program


def _test1_body(tracer: Tracer, params: Test1Params, name: str) -> None:
    # Inline re-use of the Test1 structure as a nested section (Fig. 10
    # line 6 calls Test1 from inside a Test2 iteration).
    test1_program(params, section_name=name)(tracer)


def test2_program(params: Test2Params) -> AnnotationProgram:
    """Build the Fig. 10 annotated serial program for ``params``."""

    def program(tracer: Tracer) -> None:
        rng = np.random.default_rng(params.seed)
        nested_draws = rng.uniform(0.0, 1.0, size=params.k_max)
        tracer.par_sec_begin("test2")
        for k in range(params.k_max):
            overhead = compute_overhead(
                k, params.k_max, params.mean_cycles, params.spread, params.shape, rng
            )
            tracer.par_task_begin(f"k{k}")
            tracer.compute(overhead * params.ratio_delay_a)
            if nested_draws[k] < params.nested_probability:
                _test1_body(tracer, params.inner, name=f"inner{k}")
            tracer.compute(overhead * params.ratio_delay_b)
            tracer.par_task_end()
        tracer.par_sec_end(barrier=True)

    return program


# ------------------------------------------------------------ random sampling


def random_test1(rng: np.random.Generator, scale: float = 1.0) -> Test1Params:
    """Draw one Test1 sample "by randomly selecting the arguments"."""
    do_lock1 = bool(rng.uniform() < 0.6)
    do_lock2 = bool(rng.uniform() < 0.3)
    # Lock ratios span quiet to heavily contended critical sections.
    return Test1Params(
        i_max=int(rng.integers(16, 96) * max(scale, 0.1)) or 1,
        mean_cycles=float(rng.uniform(3e4, 6e5)) * scale,
        spread=float(rng.uniform(0.0, 0.9)),
        shape=str(rng.choice(SHAPES)),
        ratio_delay_1=float(rng.uniform(0.05, 0.5)),
        ratio_delay_lock_1=float(rng.uniform(0.01, 0.35)) if do_lock1 else 0.0,
        ratio_delay_2=float(rng.uniform(0.05, 0.5)),
        ratio_delay_lock_2=float(rng.uniform(0.01, 0.2)) if do_lock2 else 0.0,
        ratio_delay_3=float(rng.uniform(0.0, 0.4)),
        do_lock1=do_lock1,
        do_lock2=do_lock2,
        seed=int(rng.integers(0, 2**31)),
    )


def random_test2(rng: np.random.Generator, scale: float = 1.0) -> Test2Params:
    """Draw one Test2 sample; inner loops are smaller Test1 instances."""
    inner = random_test1(rng, scale=scale * 0.3)
    # Frequent inner-loop parallelism: modest outer trip counts, fairly
    # likely nesting (the paper's "high parallel overhead" case).
    return Test2Params(
        k_max=int(rng.integers(6, 32)),
        mean_cycles=float(rng.uniform(5e4, 4e5)) * scale,
        spread=float(rng.uniform(0.0, 0.9)),
        shape=str(rng.choice(SHAPES)),
        ratio_delay_a=float(rng.uniform(0.1, 0.6)),
        ratio_delay_b=float(rng.uniform(0.1, 0.6)),
        nested_probability=float(rng.uniform(0.3, 1.0)),
        inner=inner,
        seed=int(rng.integers(0, 2**31)),
    )
