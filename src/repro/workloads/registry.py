"""Workload registry: name → factory, mirroring the paper's Section VII-A
benchmark list ("eight benchmarks in OmpSCR and NPB")."""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.workloads import (
    npb_cg,
    npb_ep,
    npb_ft,
    npb_is,
    npb_mg,
    ompscr_fft,
    ompscr_lu,
    ompscr_md,
    ompscr_qsort,
)
from repro.workloads.base import WorkloadSpec

_REGISTRY: dict[str, Callable[..., WorkloadSpec]] = {
    "ompscr_md": ompscr_md.build,
    "ompscr_lu": ompscr_lu.build,
    "ompscr_fft": ompscr_fft.build,
    "ompscr_qsort": ompscr_qsort.build,
    "npb_ep": npb_ep.build,
    "npb_ft": npb_ft.build,
    "npb_mg": npb_mg.build,
    "npb_cg": npb_cg.build,
    # Extra (not in the paper's Fig. 12 evaluation): the Section VI-B
    # compression pathology.
    "npb_is": npb_is.build,
}

#: Order used by Fig. 12's panels (a)-(h).
PAPER_ORDER = [
    "ompscr_md",
    "ompscr_lu",
    "ompscr_fft",
    "ompscr_qsort",
    "npb_ep",
    "npb_ft",
    "npb_cg",
    "npb_mg",
]


def workload_names(include_extras: bool = False) -> list[str]:
    """Workload names in the paper's figure order; ``include_extras`` adds
    workloads outside the Fig. 12 evaluation (currently ``npb_is``)."""
    names = list(PAPER_ORDER)
    if include_extras:
        names.extend(sorted(set(_REGISTRY) - set(PAPER_ORDER)))
    return names


def get_workload(name: str, **kwargs) -> WorkloadSpec:
    """Build a registered workload (``scale`` and per-workload kwargs pass
    through to its ``build`` function)."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown workload {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return factory(**kwargs)
