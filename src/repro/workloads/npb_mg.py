"""NPB ``MG`` — multigrid V-cycle (paper Fig. 12(h), "NPB-MG: B/470MB").

MG applies V-cycles of the multigrid method to a 3-D Poisson system.  The
annotated structure follows the real benchmark's operators:

- ``resid``  — residual computation on the finest grid (27-point stencil,
  streams the full arrays: the memory-heavy phase);
- ``rprj3``  — restriction to the next-coarser grid (downward leg);
- ``psinv``  — smoother applied per level (upward leg);
- ``interp`` — prolongation back to the finer grid;
- a serial coarsest-grid solve at the bottom of the V.

Grid *l* has ``8^l``-fold less data than the finest, so fine levels are
bandwidth-bound (streaming several hundred MB per sweep) while coarse levels
have so little work that per-section fork/join overhead dominates — the
combination behind the paper's measured shape: good scaling to ~6 cores,
flattening near 5×, with burden factors between FT's and EP's.
"""

from __future__ import annotations

from repro.core.annotations import Tracer
from repro.workloads.base import WorkloadSpec, streaming


#: Relative stencil cost per byte for each operator (resid's 27-point
#: stencil does roughly twice the flops/byte of the simpler transfers).
OPERATOR_INTENSITY = {
    "resid": 0.75,
    "rprj3": 0.55,
    "psinv": 0.70,
    "interp": 0.55,
}


def build(
    scale: float = 1.0,
    cycles_count: int = 2,
    levels: int = 5,
    fine_planes: int = 48,
    footprint_mb: float = 470.0,
) -> WorkloadSpec:
    """MG; level ``l`` sweeps ``footprint/8^l`` bytes over ``planes >> l``
    tasks (plane-decomposed loops, as the OpenMP NPB parallelizes them)."""
    p0 = max(8, int(fine_planes * scale))
    footprint = footprint_mb * 1e6

    def level_sweep(tracer: Tracer, operator: str, level: int) -> None:
        planes = max(2, p0 >> level)
        level_bytes = footprint / (8.0**level)
        bytes_per_task = level_bytes / planes
        intensity = OPERATOR_INTENSITY[operator]
        with tracer.section(f"mg_{operator}_l{level}"):
            for plane in range(planes):
                with tracer.task(f"pl{plane}"):
                    tracer.compute(
                        intensity * bytes_per_task,
                        mem=streaming(bytes_per_task),
                    )

    def program(tracer: Tracer) -> None:
        for _cycle in range(cycles_count):
            # Residual on the finest grid starts the V.
            level_sweep(tracer, "resid", 0)
            # Downward leg: restrict to coarser grids.
            for level in range(1, levels):
                level_sweep(tracer, "rprj3", level)
            # Coarsest-grid solve is serial (a handful of points).
            tracer.compute(60_000.0)
            # Upward leg: interpolate up and smooth at each level.
            for level in reversed(range(levels - 1)):
                level_sweep(tracer, "interp", level)
                level_sweep(tracer, "psinv", level)
            # Residual norm check (serial reduction).
            tracer.compute(40_000.0)

    return WorkloadSpec(
        name="npb_mg",
        program=program,
        paradigm="omp",
        description=(
            "NPB MG: multigrid V-cycles (resid/rprj3/psinv/interp) — "
            "bandwidth-heavy fine grids, overhead-bound coarse grids"
        ),
        input_label=f"B/{footprint_mb:.0f}MB",
        footprint_mb=footprint_mb,
        schedule="static",
    )
