"""Comparison predictors (paper Sections II and III, Table I).

- :mod:`repro.baselines.amdahl` — analytical models: Amdahl's law,
  Gustafson's law, the Karp-Flatt metric, and the Eyerman-Eeckhout critical
  section extension.
- :mod:`repro.baselines.kismet` — a Kismet-style hierarchical critical-path
  upper bound ("estimates only an upper bound of the speedup, so it cannot
  predict speedup saturation").
- :mod:`repro.baselines.suitability` — a Suitability-style emulator: the
  fast-forward approach with the limitations the paper observes in Intel
  Parallel Advisor's out-of-the-box tool (schedule fixed near ``dynamic,1``,
  power-of-two thread counts with interpolation, inflated inner-loop region
  overhead, no memory model, no recursion support).
"""

from repro.baselines.amdahl import (
    amdahl_speedup,
    gustafson_speedup,
    hill_marty_speedup,
    karp_flatt_metric,
    eyerman_eeckhout_speedup,
)
from repro.baselines.cilkview import CilkviewAnalyzer, ScalabilityProfile
from repro.baselines.kismet import KismetEstimator
from repro.baselines.suitability import SuitabilityAnalysis

__all__ = [
    "amdahl_speedup",
    "gustafson_speedup",
    "hill_marty_speedup",
    "karp_flatt_metric",
    "eyerman_eeckhout_speedup",
    "KismetEstimator",
    "SuitabilityAnalysis",
    "CilkviewAnalyzer",
    "ScalabilityProfile",
]
