"""Cilkview-style scalability analysis (paper Section II-B, Table I row 1).

Cilkview [13] differs from every other tool in Table I: it takes an
*already-parallelized* Cilk program and reports its scalability envelope
from work/span analysis — it does not predict speedups from serial code.
This reimplementation makes the same measurement on a program tree (which
encodes the parallel structure the annotations describe, i.e. the program
*after* parallelization):

- **work** T₁ — total instructions/cycles;
- **span** T∞ — the longest dependence chain, treating a section's tasks as
  parallel and a task's children as sequential;
- **parallelism** T₁/T∞ — the speedup ceiling;
- **burdened span** — the span with per-spawn/steal overhead added, giving
  Cilkview's characteristic *lower* bound on expected speedup;
- speedup estimate range on P processors:
  ``[T₁ / (burdened_T₁/P + burdened_span), min(P, T₁/T∞)]``.

Like the original, it knows nothing about memory contention — the "x" in
Table I's memory column.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profiler import ProgramProfile
from repro.core.tree import Node, NodeKind
from repro.errors import EmulationError
from repro.runtime.overhead import DEFAULT_OVERHEADS, RuntimeOverheads


@dataclass(frozen=True)
class ScalabilityProfile:
    """Cilkview's headline numbers for one program."""

    work: float
    span: float
    burdened_span: float
    spawns: int

    @property
    def parallelism(self) -> float:
        return self.work / self.span if self.span > 0 else 1.0

    @property
    def burdened_parallelism(self) -> float:
        return self.work / self.burdened_span if self.burdened_span > 0 else 1.0

    def speedup_upper_bound(self, n_workers: int) -> float:
        """min(P, T1/T∞) — the work and span laws."""
        return min(float(n_workers), self.parallelism)

    def speedup_lower_bound(self, n_workers: int) -> float:
        """Cilkview's burdened-dag estimate: T1 / (T1/P + burdened span)."""
        if self.work <= 0:
            return 1.0
        return self.work / (self.work / n_workers + self.burdened_span)

    def estimate_range(self, n_workers: int) -> tuple[float, float]:
        """Cilkview's (lower, upper) speedup estimate band."""
        return (
            self.speedup_lower_bound(n_workers),
            self.speedup_upper_bound(n_workers),
        )


class CilkviewAnalyzer:
    """Work/span analysis over program trees."""

    def __init__(self, overheads: RuntimeOverheads = DEFAULT_OVERHEADS) -> None:
        self.overheads = overheads
        self._spawns = 0

    def analyze(self, profile: ProgramProfile) -> ScalabilityProfile:
        """Scalability numbers for a whole program (tree = the parallelized
        program's dag, which is what Cilkview instruments at run time)."""
        self._spawns = 0
        work = profile.tree.serial_cycles()
        span = 0.0
        burdened = 0.0
        for child in profile.tree.root.children:
            if child.kind is NodeKind.U:
                span += child.length * child.repeat
                burdened += child.length * child.repeat
            elif child.kind is NodeKind.SEC:
                s, b = self._section_span(child)
                span += s * child.repeat
                burdened += b * child.repeat
            else:  # pragma: no cover - validated trees
                raise EmulationError(f"unexpected top-level node {child!r}")
        return ScalabilityProfile(
            work=work, span=span, burdened_span=burdened, spawns=self._spawns
        )

    # -- spans ------------------------------------------------------------

    def _section_span(self, sec: Node) -> tuple[float, float]:
        """(span, burdened span) of one section activation: parallel tasks
        -> max over children; each spawned task charges a spawn burden."""
        if not sec.children:
            return 0.0, 0.0
        spans, burdens = [], []
        per_spawn = self.overheads.cilk_spawn + self.overheads.cilk_steal
        n_logical = 0
        for task in sec.children:
            s, b = self._task_span(task)
            spans.append(s)
            burdens.append(b)
            self._spawns += task.repeat
            n_logical += task.repeat
        # The burdened dag charges the spawn/steal chain on the critical
        # path: binary range splitting makes it ~log2(n) spawns deep.
        depth = max(1, n_logical - 1).bit_length()
        return max(spans), max(burdens) + per_spawn * depth

    def _task_span(self, node: Node) -> tuple[float, float]:
        """(span, burdened span) of a task/stage: children sequential."""
        span = 0.0
        burdened = 0.0
        for child in node.children:
            if child.is_leaf:
                span += child.length * child.repeat
                burdened += child.length * child.repeat
            elif child.kind is NodeKind.SEC:
                s, b = self._section_span(child)
                span += s * child.repeat
                burdened += b * child.repeat
            elif child.kind is NodeKind.STAGE:
                s, b = self._task_span(child)
                span += s * child.repeat
                burdened += b * child.repeat
            else:  # pragma: no cover - validated trees
                raise EmulationError(f"unexpected node {child!r}")
        return span, burdened
