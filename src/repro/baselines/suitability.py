"""Suitability-style emulator (paper Sections II-B, III, VII).

Intel Parallel Advisor's Suitability analysis is the closest prior tool: it
also consumes an annotated serial program and emulates a model of the
parallel-region tree with a priority-queue interpreter.  The paper observes
four out-of-the-box limitations, all reproduced here:

1. *No schedule modelling*: "Suitability does not provide speedup
   predictions for a specific scheduling.  Our experience shows that the
   emulator of Suitability is close to the OpenMP's (dynamic,1)" — so this
   emulator always runs ``dynamic,1`` regardless of the schedule requested.
2. *Power-of-two thread counts*: the tool predicts for 2^N CPUs only;
   "the predictions of Suitability for 6/10/12 cores are interpolated"
   (Fig. 12 caption).
3. *Inflated inner-loop overhead*: for LU "a reason would be the fact that
   LU-OMP has a frequent parallelized inner loop, overestimating the
   parallel overhead" — nested region fork/join costs are multiplied by
   :data:`INNER_LOOP_OVERHEAD_FACTOR`.
4. *No recursion support and no memory model*: recursion deeper than
   :data:`MAX_NESTING` yields no meaningful prediction (FFT-Cilk in the
   paper), and burden factors are never applied.

Like the FF (Section IV-D), it maps nested tasks to logical CPUs
non-preemptively, so it shares the Fig. 7 misprediction.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.ffemu import FastForwardEmulator
from repro.core.profiler import ProgramProfile
from repro.core.report import SpeedupEstimate, SpeedupReport
from repro.core.tree import Node, NodeKind
from repro.runtime.overhead import DEFAULT_OVERHEADS, RuntimeOverheads
from repro.runtime.tasks import Schedule

#: Multiplier applied to region fork/join overheads (limitation 3).
INNER_LOOP_OVERHEAD_FACTOR = 6.0

#: Maximum supported section-nesting depth (limitation 4); the paper found
#: Suitability "unable to provide meaningful predictions" for recursive FFT.
MAX_NESTING = 3


class SuitabilityAnalysis:
    """A Suitability-like speedup predictor over program profiles."""

    def __init__(self, overheads: RuntimeOverheads = DEFAULT_OVERHEADS) -> None:
        self.overheads = overheads.with_(
            omp_fork_base=overheads.omp_fork_base * INNER_LOOP_OVERHEAD_FACTOR,
            omp_fork_per_thread=(
                overheads.omp_fork_per_thread * INNER_LOOP_OVERHEAD_FACTOR
            ),
            omp_join_barrier=overheads.omp_join_barrier * INNER_LOOP_OVERHEAD_FACTOR,
        )

    # ------------------------------------------------------------------ API

    def supports(self, profile: ProgramProfile) -> bool:
        """False when the tree nests deeper than the tool can emulate."""
        return self._section_depth(profile.tree.root) <= MAX_NESTING

    def predict(
        self, profile: ProgramProfile, threads: Sequence[int]
    ) -> SpeedupReport:
        """Predict speedups; non-power-of-two thread counts are linearly
        interpolated between the neighbouring 2^N predictions.

        Returns an empty report when the program is unsupported (deep
        recursion), matching the tool yielding no meaningful prediction.
        """
        report = SpeedupReport()
        if not self.supports(profile):
            return report
        cache: dict[int, float] = {1: 1.0}

        def predicted(p2: int) -> float:
            if p2 not in cache:
                cache[p2] = self._emulate(profile, p2)
            return cache[p2]

        for t in threads:
            if t >= 1 and (t & (t - 1)) == 0:
                speedup = predicted(t)
            else:
                lo = 2 ** int(math.floor(math.log2(t)))
                hi = lo * 2
                w = (t - lo) / (hi - lo)
                speedup = predicted(lo) * (1 - w) + predicted(hi) * w
            report.add(
                SpeedupEstimate(
                    method="suit",
                    paradigm="omp",
                    schedule="(tool)",
                    n_threads=t,
                    speedup=speedup,
                )
            )
        return report

    # ------------------------------------------------------------- internals

    def _emulate(self, profile: ProgramProfile, n_threads: int) -> float:
        ff = FastForwardEmulator(self.overheads)
        predicted, _ = ff.emulate_profile(
            profile.tree, n_threads, Schedule.dynamic(1), burdens=None
        )
        serial = profile.serial_cycles()
        return serial / predicted if predicted > 0 else 1.0

    def _section_depth(self, node: Node, depth: int = 0) -> int:
        here = depth + (1 if node.kind is NodeKind.SEC else 0)
        if not node.children:
            return here
        return max(self._section_depth(c, here) for c in node.children)
