"""Analytical speedup models (paper Section II-A).

These closed-form models are the classical comparison points the paper cites:
"effective in obtaining an ideal limit to parallelization benefit" but "not
explicitly designed to predict parallel speedup practically".  They are used
by the Table I bench and as sanity bounds in the test suite.
"""

from __future__ import annotations

from repro.errors import ConfigurationError


def _check_fraction(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value!r}")


def _check_threads(n_threads: int) -> None:
    if n_threads < 1:
        raise ConfigurationError(f"n_threads must be >= 1, got {n_threads}")


def amdahl_speedup(serial_fraction: float, n_threads: int) -> float:
    """Amdahl's law [5]: S = 1 / (s + (1 − s)/t)."""
    _check_fraction("serial_fraction", serial_fraction)
    _check_threads(n_threads)
    return 1.0 / (serial_fraction + (1.0 - serial_fraction) / n_threads)


def gustafson_speedup(serial_fraction: float, n_threads: int) -> float:
    """Gustafson's law [12]: scaled speedup S = s + (1 − s)·t, where s is
    the serial fraction *of the parallel execution*."""
    _check_fraction("serial_fraction", serial_fraction)
    _check_threads(n_threads)
    return serial_fraction + (1.0 - serial_fraction) * n_threads


def karp_flatt_metric(speedup: float, n_threads: int) -> float:
    """Karp-Flatt experimentally determined serial fraction [19]:
    e = (1/S − 1/t) / (1 − 1/t).  Undefined at t = 1."""
    _check_threads(n_threads)
    if n_threads == 1:
        raise ConfigurationError("Karp-Flatt metric is undefined for t = 1")
    if speedup <= 0:
        raise ConfigurationError(f"speedup must be > 0, got {speedup!r}")
    return (1.0 / speedup - 1.0 / n_threads) / (1.0 - 1.0 / n_threads)


def hill_marty_speedup(
    serial_fraction: float,
    n_bces: int,
    core_size: int,
) -> float:
    """Hill-Marty "Amdahl's law in the multicore era" [14], symmetric case.

    A chip budget of ``n_bces`` base-core equivalents is spent on
    ``n_bces / core_size`` cores, each of ``core_size`` BCEs with single-
    thread performance ``perf(r) = sqrt(r)``:

        S = 1 / ( s / perf(r) + (1 − s) · r / (perf(r) · n) )
    """
    _check_fraction("serial_fraction", serial_fraction)
    if n_bces < 1 or core_size < 1:
        raise ConfigurationError("n_bces and core_size must be >= 1")
    if core_size > n_bces:
        raise ConfigurationError("core_size cannot exceed the BCE budget")
    s = serial_fraction
    r = float(core_size)
    perf = r**0.5
    time = s / perf + (1.0 - s) * r / (perf * n_bces)
    return 1.0 / time


def eyerman_eeckhout_speedup(
    serial_fraction: float,
    critical_fraction: float,
    contention_probability: float,
    n_threads: int,
) -> float:
    """Eyerman-Eeckhout extension of Amdahl's law for critical sections [10].

    The model splits the parallel part into non-critical work and critical
    sections.  A fraction ``critical_fraction`` (f_cs) of total work executes
    inside critical sections, and with probability ``contention_probability``
    (p_ctn) a critical-section entry contends and serialises.  Following the
    paper's formulation, the critical-section time behaves as

        f_cs · (1 − p_ctn) / t  +  f_cs · p_ctn

    i.e. contended critical work is fully serialised while uncontended
    critical work scales.  Total time relative to serial = 1:

        T(t) = s + (1 − s − f_cs)/t + f_cs·(1 − p_ctn)/t + f_cs·p_ctn
    """
    _check_fraction("serial_fraction", serial_fraction)
    _check_fraction("critical_fraction", critical_fraction)
    _check_fraction("contention_probability", contention_probability)
    _check_threads(n_threads)
    if serial_fraction + critical_fraction > 1.0 + 1e-12:
        raise ConfigurationError(
            "serial_fraction + critical_fraction must not exceed 1"
        )
    s = serial_fraction
    f_cs = critical_fraction
    p = contention_probability
    t = float(n_threads)
    time = s + (1.0 - s - f_cs) / t + f_cs * (1.0 - p) / t + f_cs * p
    return 1.0 / time
