"""Kismet-style upper-bound estimator (paper Section II-B).

Kismet [17] performs hierarchical critical path analysis [11] on an
*unmodified* serial program and "estimates only an upper bound of the
speedup, so it cannot predict speedup saturation".  This reimplementation
applies the same idea to the program tree: per parallel section the
achievable parallel time is bounded below by both the critical path (the
longest chain of work that cannot be split) and the work law (total work
divided by the number of processors); no scheduling, runtime-overhead, or
memory effects are modelled, so the estimate is optimistic by construction —
which is what Table I and Fig. 12's comparisons rely on.
"""

from __future__ import annotations

from repro.core.profiler import ProgramProfile
from repro.core.report import SpeedupEstimate, SpeedupReport
from repro.core.tree import Node, NodeKind
from repro.errors import EmulationError


class KismetEstimator:
    """Work/critical-path upper bound over a program tree."""

    #: Kismet instruments memory instructions; the paper reports "100+×"
    #: slowdowns.  Exposed as a constant so the Table I bench can report it.
    TYPICAL_SLOWDOWN = 100.0

    def predict(self, profile: ProgramProfile, threads: list[int]) -> SpeedupReport:
        """Upper-bound speedups for each thread count."""
        report = SpeedupReport()
        for t in threads:
            total = 0.0
            for child in profile.tree.root.children:
                if child.kind is NodeKind.U:
                    total += child.length * child.repeat
                elif child.kind is NodeKind.SEC:
                    total += child.repeat * self._section_bound(child, t)
                else:  # pragma: no cover - validated trees
                    raise EmulationError(f"unexpected top-level node {child!r}")
            serial = profile.tree.serial_cycles()
            report.add(
                SpeedupEstimate(
                    method="kismet",
                    paradigm="any",
                    schedule="-",
                    n_threads=t,
                    speedup=serial / total if total > 0 else 1.0,
                )
            )
        return report

    # -- bounds ---------------------------------------------------------------

    def _section_bound(self, sec: Node, n_threads: int) -> float:
        """Lower bound on the parallel time of one section activation:
        max(work / t, critical path)."""
        work = sec.subtree_length() / sec.repeat
        cp = self._critical_path(sec, n_threads)
        return max(work / n_threads, cp)

    def _critical_path(self, node: Node, n_threads: int) -> float:
        """Length of one activation's critical path, treating every task of
        a section as perfectly parallel (self-parallelism à la Kismet)."""
        if node.is_leaf:
            return node.length
        if node.kind is NodeKind.SEC:
            # Tasks run concurrently: the path is the longest task; but the
            # section cannot beat its own work law on t processors.
            longest = max(
                (self._task_path(task, n_threads) for task in node.children),
                default=0.0,
            )
            work_law = (node.subtree_length() / node.repeat) / n_threads
            return max(longest, work_law)
        if node.kind in (NodeKind.TASK, NodeKind.ROOT, NodeKind.STAGE):
            # STAGE children run sequentially, like a task's (Kismet knows
            # nothing of pipelines; its bound stays an upper bound).
            return self._task_path(node, n_threads)
        raise EmulationError(f"unexpected node {node!r}")  # pragma: no cover

    def _task_path(self, task: Node, n_threads: int) -> float:
        """A task's children run sequentially: paths add (× their repeats)."""
        return sum(
            self._critical_path(child, n_threads) * child.repeat
            for child in task.children
        )
