"""Table I — capability matrix of dynamic speedup-prediction tools.

The paper grades four tools on five pattern categories (simple loops/locks,
imbalance, inner-loop, recursive, memory-limited).  This bench *measures*
the grades instead of asserting them: each tool predicts each pattern's
speedup against the simulated ground truth and earns

- ``O``  (predicts well)      error < 15 %
- ``^``  (limited)            error < 50 %
- ``x``  (not modeled)        otherwise, or no prediction at all

Cilkview is not reproduced as a predictor (it requires already-parallel
code — the paper's point); its row is shown for completeness with the
paper's grades.
"""

from __future__ import annotations


from _common import banner, prophet
from repro.baselines import (
    CilkviewAnalyzer,
    KismetEstimator,
    SuitabilityAnalysis,
)
from repro.core.report import error_ratio
from repro.workloads import get_workload

T = 8


def _patterns():
    """One representative annotated program per Table I column."""

    def simple(tr):
        # A balanced parallel loop with a short, lightly contended critical
        # section — the "simple loops/locks" every tool handles.
        with tr.section("simple"):
            for _ in range(32):
                with tr.task():
                    tr.compute(200_000)
                    with tr.lock(1):
                        tr.compute(2_000)

    def imbalance(tr):
        with tr.section("ramp"):
            for i in range(32):
                with tr.task():
                    tr.compute((i + 1) * 40_000)

    lu = get_workload("ompscr_lu", size=48)
    # QSort keeps the recursive column orthogonal: pure recursion, cache
    # resident (FFT would conflate recursion with memory-boundedness).
    qsort = get_workload("ompscr_qsort")
    ft = get_workload("npb_ft", planes=24, timesteps=1)

    return {
        "simple": ("omp", "static,1", simple),
        "imbalance": ("omp", "static,1", imbalance),
        "inner-loop": ("omp", lu.schedule, lu.program),
        "recursive": ("cilk", "static", qsort.program),
        "memory": ("omp", "static", ft.program),
    }


def _grade(err):
    if err is None:
        return "x"
    if err < 0.15:
        return "O"
    if err < 0.50:
        return "^"
    return "x"


def run_matrix():
    p = prophet()
    grades: dict[str, dict[str, str]] = {
        "cilkview": {},
        "kismet": {},
        "suit": {},
        "prophet": {},
    }
    for pattern, (paradigm, schedule, program) in _patterns().items():
        profile = p.profile(program)
        real = p.measure_real(
            profile, [T], paradigm=paradigm, schedule=schedule
        ).speedup(n_threads=T)

        # Cilkview gets the *parallelized* program (the tree encodes the
        # parallel structure); grade its estimate-range midpoint.
        lo, hi = CilkviewAnalyzer().analyze(profile).estimate_range(T)
        grades["cilkview"][pattern] = _grade(error_ratio((lo + hi) / 2, real))

        kis = KismetEstimator().predict(profile, [T]).speedup(n_threads=T)
        grades["kismet"][pattern] = _grade(error_ratio(kis, real))

        suit_rep = SuitabilityAnalysis().predict(profile, [T])
        suit_err = (
            error_ratio(suit_rep.speedup(n_threads=T), real)
            if len(suit_rep)
            else None
        )
        grades["suit"][pattern] = _grade(suit_err)

        mine = p.predict(
            profile, [T], paradigm=paradigm, schedules=[schedule],
            methods=("syn",), memory_model=True,
        ).speedup(method="syn", n_threads=T)
        grades["prophet"][pattern] = _grade(error_ratio(mine, real))
    return grades


def test_table1_capabilities(benchmark):
    grades = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    patterns = ["simple", "imbalance", "inner-loop", "recursive", "memory"]

    print(banner("Table I — measured tool capabilities (O good, ^ limited, x none)"))
    header = f"{'tool':<16}" + "".join(f"{c:>12}" for c in patterns)
    print(header)
    for tool, label in (
        ("cilkview", "Cilkview*"),
        ("kismet", "Kismet"),
        ("suit", "Suitability"),
        ("prophet", "Prophet"),
    ):
        print(f"{label:<16}" + "".join(f"{grades[tool][c]:>12}" for c in patterns))
    print("* Cilkview is graded on already-parallelized input (its design).")

    # Prophet predicts every category well (the paper's bottom row).
    assert all(g == "O" for g in grades["prophet"].values())
    # Cilkview handles recursion but has no memory model (paper row 1).
    assert grades["cilkview"]["recursive"] in ("O", "^")
    assert grades["cilkview"]["memory"] in ("^", "x")
    # Suitability cannot handle recursion and lacks a memory model.
    assert grades["suit"]["recursive"] == "x"
    assert grades["suit"]["memory"] in ("^", "x")
    # Kismet's upper bound misses memory saturation.
    assert grades["kismet"]["memory"] in ("^", "x")
