"""Section VI-B — program-tree compression.

The paper: "the program tree of CG in NPB (with 'B' input) can be
compressed into 950 MB from 13.5 GB (a 93 % reduction)"; with lossless
compression "3 GB of memory is sufficient for all evaluated benchmarks".
This bench measures compression on every workload's tree and asserts the
CG-style repetitive trees hit the >90 % band.
"""

from __future__ import annotations

from _common import BENCH_SCALES, MACHINE, banner, prophet
from repro.core.compress import compress_tree, compress_tree_lossy
from repro.core.profiler import IntervalProfiler
from repro.workloads import PAPER_ORDER, get_workload


def _measure(name, lossy=False, **build_kwargs):
    wl = get_workload(name, **build_kwargs)
    profile = IntervalProfiler(MACHINE, compress=False).profile(wl.program)
    tree = profile.tree
    serial_before = tree.serial_cycles()
    if lossy:
        stats = compress_tree_lossy(tree, lossy_tolerance=0.20)
    else:
        stats = compress_tree(tree, tolerance=0.05)
    serial_after = tree.serial_cycles()
    return {
        "logical": stats.logical_nodes,
        "before": stats.nodes_before,
        "after": stats.nodes_after,
        "reduction": stats.reduction,
        "mb_before": stats.bytes_before / 1e6,
        "mb_after": stats.bytes_after / 1e6,
        "length_drift": abs(serial_after - serial_before)
        / max(serial_before, 1.0),
    }


def run_compression():
    rows = {}
    for name in PAPER_ORDER:
        rows[name] = _measure(name, **BENCH_SCALES[name])
    # The Section VI-B pathology: IS resists lossless RLE; lossy compression
    # is the paper's "last resort".
    rows["npb_is"] = _measure("npb_is")
    rows["npb_is lossy"] = _measure("npb_is", lossy=True)
    return rows


def test_compression(benchmark):
    rows = benchmark.pedantic(run_compression, rounds=1, iterations=1)

    print(banner("Section VI-B — tree compression (RLE + dictionary, 5% tol)"))
    print(f"{'benchmark':<14} {'nodes':>8} {'stored':>8} {'reduction':>10} "
          f"{'MB':>7} -> {'MB':>6}")
    for name, r in rows.items():
        print(
            f"{name:<14} {r['before']:>8} {r['after']:>8} "
            f"{r['reduction']:>10.1%} {r['mb_before']:>7.3f} -> "
            f"{r['mb_after']:>6.3f}"
        )

    # Lossless compression never drifts total recorded time.
    for name in PAPER_ORDER + ["npb_is"]:
        assert rows[name]["length_drift"] < 1e-9, name
    # CG's repetitive iteration structure compresses >90% (paper: 93%).
    assert rows["npb_cg"]["reduction"] > 0.90
    # The uniform loops (MD, EP, FT) compress massively too.
    for name in ("ompscr_md", "npb_ep", "npb_ft"):
        assert rows[name]["reduction"] > 0.90, name
    # IS resists lossless compression (the paper's 10 GB case)...
    assert rows["npb_is"]["reduction"] < 0.30
    # ...but lossy quantisation rescues it within a bounded length drift.
    assert rows["npb_is lossy"]["reduction"] > 0.60
    assert rows["npb_is lossy"]["length_drift"] < 0.20
