"""Figure 7 — the two-level nested loop the FF cannot predict.

Paper: a nested parallel loop on a dual core whose real speedup is 2.0×,
while the FF (and Suitability) predict 1.5× because neither models OS
preemption/oversubscription.  The synthesizer, which executes through the
real (simulated) runtime and OS, recovers the 2.0×.
"""

from __future__ import annotations

from _common import banner, fmt_row
from repro import ParallelProphet
from repro.baselines import SuitabilityAnalysis
from repro.runtime import RuntimeOverheads
from repro.simhw import MachineConfig

M2 = MachineConfig(n_cores=2, timeslice_cycles=20_000.0)
UNIT = 1e6


def fig7_program(tr):
    with tr.section("Loop1"):
        with tr.task("I0"):
            with tr.section("LoopA"):
                with tr.task():
                    tr.compute(10 * UNIT)
                with tr.task():
                    tr.compute(5 * UNIT)
        with tr.task("I1"):
            with tr.section("LoopB"):
                with tr.task():
                    tr.compute(5 * UNIT)
                with tr.task():
                    tr.compute(10 * UNIT)


def run_fig7() -> dict[str, float]:
    p = ParallelProphet(machine=M2, overheads=RuntimeOverheads().scaled(0.0))
    profile = p.profile(fig7_program)
    ff = p.predict(
        profile, threads=[2], methods=("ff",), memory_model=False
    ).speedup(method="ff", n_threads=2)
    syn = p.predict(
        profile, threads=[2], methods=("syn",), memory_model=False
    ).speedup(method="syn", n_threads=2)
    real = p.measure_real(profile, threads=[2]).speedup(n_threads=2)
    suit_report = SuitabilityAnalysis(RuntimeOverheads().scaled(0.0)).predict(
        profile, [2]
    )
    suit = suit_report.speedup(n_threads=2)
    return {"real": real, "ff": ff, "syn": syn, "suit": suit}


def test_fig07_nested_misprediction(benchmark):
    results = benchmark.pedantic(run_fig7, rounds=3, iterations=1)

    print(banner("Figure 7 — nested loop, dual core (paper: real 2.0, FF 1.5)"))
    print(fmt_row("method", ["speedup", "paper"]))
    print(fmt_row("real", [results["real"], 2.0]))
    print(fmt_row("FF", [results["ff"], 1.5]))
    print(fmt_row("Suitability", [results["suit"], 1.5]))
    print(fmt_row("synthesizer", [results["syn"], 2.0]))

    assert abs(results["real"] - 2.0) < 0.1
    assert abs(results["ff"] - 1.5) < 0.05
    assert abs(results["suit"] - 1.5) < 0.1
    assert abs(results["syn"] - 2.0) < 0.1
