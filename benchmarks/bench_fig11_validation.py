"""Figure 11 — validation of the prediction model on random Test1/Test2
samples.

The paper generates 300 random samples of each pattern (Figs. 9-10),
parallelizes them with OpenMP under three schedules, and scatter-plots
predicted vs real speedups on 8 and 12 cores.  Reported accuracy:

- Test1 + FF:  <4 % average error, 23 % max (Fig. 11 a-b);
- Test2 + FF:  ~7 % average, up to 68 %, worst for ``static`` (c-d);
- Test2 + SYN: ~3 % average, 19 % max (e);
- Test2 + Suitability: poor (f).

This bench regenerates the same statistics (sample count via
``REPRO_BENCH_SAMPLES``, default 30) and asserts the *relationships*: FF is
accurate on Test1, degrades on Test2, and the synthesizer repairs Test2.
"""

from __future__ import annotations

import numpy as np

from _common import banner, bench_jobs, fmt_row, sample_count
from repro import ParallelProphet
from repro.baselines import SuitabilityAnalysis
from repro.core.batch import BatchPredictor, SweepTask
from repro.core.report import error_ratio
from repro.simhw import MachineConfig
from repro.workloads import random_test1, random_test2
from repro.workloads import test1_program as make_test1
from repro.workloads import test2_program as make_test2

SCHEDULES = ["static,1", "static", "dynamic,1"]


def _sample_profiles(pattern: str, n_threads: int, n_samples: int):
    """Profile ``n_samples`` random programs; returns (profiles, schedules)."""
    machine = MachineConfig(n_cores=n_threads)
    p = ParallelProphet(machine=machine)
    rng = np.random.default_rng(20120521)  # IPDPS 2012
    profiles, schedules = {}, {}
    for i in range(n_samples):
        if pattern == "test1":
            program = make_test1(random_test1(rng, scale=0.4))
        else:
            program = make_test2(random_test2(rng, scale=0.4))
        name = f"sample{i:04d}"
        profiles[name] = p.profile(program)
        schedules[name] = SCHEDULES[i % len(SCHEDULES)]
    return p, profiles, schedules


def _validate(
    pattern: str, method: str, n_threads: int, n_samples: int, jobs: int = 0
):
    p, profiles, schedules = _sample_profiles(pattern, n_threads, n_samples)
    errors = []
    if method == "suit":
        for name, profile in profiles.items():
            real = p.measure_real(
                profile, [n_threads], schedule=schedules[name]
            ).speedup(n_threads=n_threads)
            report = SuitabilityAnalysis().predict(profile, [n_threads])
            if not len(report):
                continue
            errors.append(error_ratio(report.speedup(n_threads=n_threads), real))
    else:
        # The per-sample emulation + ground-truth replay grid is independent
        # across samples: fan it out through the batch predictor (the merge
        # is deterministic, so job count never changes the statistics).
        predictor = BatchPredictor(p, jobs=jobs or bench_jobs())
        tasks = [
            SweepTask(
                workload=name,
                schedule=schedules[name],
                n_threads=n_threads,
                methods=(method, "real"),
                memory_model=False,
            )
            for name in profiles
        ]
        for task, estimates in predictor.run(tasks, profiles):
            by_method = {e.method: e.speedup for e in estimates}
            errors.append(error_ratio(by_method[method], by_method["real"]))
    return float(np.mean(errors)), float(np.max(errors))


def run_validation():
    n = sample_count()
    grid = {}
    for panel, (pattern, method, t) in {
        "(a) Test1/8c/FF": ("test1", "ff", 8),
        "(b) Test1/12c/FF": ("test1", "ff", 12),
        "(c) Test2/8c/FF": ("test2", "ff", 8),
        "(d) Test2/12c/FF": ("test2", "ff", 12),
        "(e) Test2/12c/SYN": ("test2", "syn", 12),
        "(f) Test2/4c/SUIT": ("test2", "suit", 4),
    }.items():
        grid[panel] = _validate(pattern, method, t, n)
    return grid


def test_fig11_validation(benchmark):
    grid = benchmark.pedantic(run_validation, rounds=1, iterations=1)

    print(banner(f"Figure 11 — validation ({sample_count()} samples/panel)"))
    print(f"{'panel':<22} {'avg err':>8} {'max err':>8}")
    for panel, (avg, worst) in grid.items():
        print(f"{panel:<22} {avg:>8.1%} {worst:>8.1%}")

    avg = {k: v[0] for k, v in grid.items()}
    # Test1 with the FF is highly accurate (paper: <4% average).
    assert avg["(a) Test1/8c/FF"] < 0.06
    assert avg["(b) Test1/12c/FF"] < 0.06
    # The synthesizer is accurate on Test2 (paper: ~3% average, <=19% max).
    assert avg["(e) Test2/12c/SYN"] < 0.06
    assert grid["(e) Test2/12c/SYN"][1] < 0.25
    # FF degrades on Test2 relative to the synthesizer (paper: ~7% average
    # with large outliers), and Suitability is clearly worse.
    assert avg["(d) Test2/12c/FF"] >= avg["(e) Test2/12c/SYN"]
    assert avg["(f) Test2/4c/SUIT"] > avg["(e) Test2/12c/SYN"]
