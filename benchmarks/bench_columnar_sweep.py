"""Columnar sweep engine vs the eager per-point path.

Not a paper artifact: this bench tracks the vectorized analytic backend
(``repro.core.columnar``) behind ``repro sweep``.  It evaluates the same
FF/SYN sweep columns — an RLE-rich static loop across thread counts ×
schedules — through the eager scalar path and through the columnar engine,
asserts report-precision parity (the engine's ≤1e-9 contract), and times
both.  The wall-clock ratio feeds docs/performance.md §5 and is recorded
machine-readably in ``BENCH_sweep.json`` by ``run_all.py``.

The eager baseline clears the cross-grid section memo before every sample
so it really re-evaluates each grid point, matching what a cold sweep
pays; the columnar engine gets no warm state either (each ``predict`` call
constructs a fresh engine).
"""

from __future__ import annotations

import time

from _common import MACHINE, THREADS

from repro import ParallelProphet
from repro.core.executor import clear_section_memo

#: Sweep columns: the Fig. 12 thread axis × two static-family schedules.
SCHEDULES = ["static", "static,4"]

#: Regression floor asserted by the pytest wrapper and checked (softly) by
#: run_all.py.  Measured ~40-80x on the dev container; 10x is the ISSUE 6
#: acceptance target with headroom for slower machines.
SPEEDUP_FLOOR = 10.0


def _rle_rich(tr):
    """A static loop whose tasks defeat run-length compression: ~1000
    distinct RLE runs, the regime where per-point scalar evaluation is
    O(runs × threads) per grid point."""
    with tr.section("grid"):
        for i in range(1_000):
            with tr.task():
                tr.compute(4_000.0 + 900.0 * (i % 41) + 13.0 * (i % 7))


def _time(fn, repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn()`` in seconds, after one untimed
    warmup run (numpy ufunc dispatch and bytecode caches would otherwise
    dominate a single quick-mode sample)."""
    fn()
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_columnar_sweep(quick: bool = False) -> dict:
    """Time the FF/SYN sweep columns under both backends; verify parity."""
    repeats = 1 if quick else 3
    prophet = ParallelProphet(machine=MACHINE)
    profile = prophet.profile(_rle_rich)
    n_runs = len(profile.tree.top_level_sections()[0].children)

    reports = {}
    results = {}
    for backend in ("eager", "columnar"):
        def run():
            clear_section_memo()
            return prophet.predict(
                profile,
                threads=THREADS,
                schedules=SCHEDULES,
                methods=("ff", "syn"),
                memory_model=False,
                backend=backend,
            )

        secs = _time(run, repeats)
        reports[backend] = run()
        results[backend] = dict(secs=secs)

    eager = reports["eager"].estimates
    columnar = reports["columnar"].estimates
    assert len(eager) == len(columnar) == 2 * len(SCHEDULES) * len(THREADS)
    max_rel = 0.0
    for e, c in zip(eager, columnar):
        assert (e.method, e.schedule, e.n_threads) == (
            c.method,
            c.schedule,
            c.n_threads,
        )
        rel = abs(c.speedup - e.speedup) / max(abs(e.speedup), 1e-30)
        max_rel = max(max_rel, rel)
        assert rel <= 1e-9, f"{e.method}/{e.schedule}/t={e.n_threads}: {rel}"

    speedup = results["eager"]["secs"] / results["columnar"]["secs"]
    return {
        "workload": {"section_runs": n_runs, "n_iters": 1_000},
        "grid": {
            "threads": list(THREADS),
            "schedules": list(SCHEDULES),
            "methods": ["ff", "syn"],
            "points": 2 * len(SCHEDULES) * len(THREADS),
        },
        "eager_s": results["eager"]["secs"],
        "columnar_s": results["columnar"]["secs"],
        "speedup": speedup,
        "parity_max_rel": max_rel,
        "threshold": SPEEDUP_FLOOR,
    }


# ------------------------------------------------------- pytest-benchmark


def test_columnar_sweep_speedup(benchmark):
    """Columnar vs eager on the same sweep columns: parity + the 10x floor."""
    r = benchmark.pedantic(run_columnar_sweep, kwargs=dict(quick=True), rounds=1)
    assert r["parity_max_rel"] <= 1e-9
    assert r["speedup"] >= SPEEDUP_FLOOR, (
        f"columnar sweep regressed: {r['speedup']:.1f}x < {SPEEDUP_FLOOR}x "
        f"(eager {r['eager_s'] * 1e3:.1f} ms, "
        f"columnar {r['columnar_s'] * 1e3:.1f} ms)"
    )


if __name__ == "__main__":
    r = run_columnar_sweep()
    print(
        f"columnar sweep: eager {r['eager_s'] * 1e3:.1f} ms, "
        f"columnar {r['columnar_s'] * 1e3:.1f} ms -> {r['speedup']:.1f}x "
        f"(parity max rel {r['parity_max_rel']:.2e})"
    )
