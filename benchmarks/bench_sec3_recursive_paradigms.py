"""Section III — recursive parallelism across threading paradigms.

The paper's motivation for supporting multiple paradigms (Fig. 1(b)):
"a naive implementation by OpenMP's nested parallelism mostly yields poor
speedups in these patterns because of too many spawned physical threads.
For such recursive parallelism, TBB, Cilk Plus, and OpenMP 3.0's task are
much more effective."

This bench runs a fine-grained recursive quicksort on the simulated machine
under all three implemented paradigms — OpenMP 2.0 nested teams, OpenMP 3.0
tasks (shared team queue), and Cilk work stealing — with realistic
context-switch costs enabled, and checks the paper's ordering.  It also
shows that Parallel Prophet's synthesizer predicts each paradigm's real
speedup (the practical payoff: pick the paradigm *before* parallelizing).
"""

from __future__ import annotations

from _common import banner, fmt_row
from repro import ParallelProphet
from repro.core.report import error_ratio
from repro.simhw import MachineConfig
from repro.workloads import get_workload

#: Realistic switch cost (~1.4 us at 2.8 GHz) and Linux-scale timeslice.
MACHINE = MachineConfig(
    n_cores=8, context_switch_cycles=4_000.0, timeslice_cycles=500_000.0
)
T = 8
PARADIGMS = ("omp", "omp_task", "cilk")


def run_comparison():
    prophet = ParallelProphet(machine=MACHINE)
    wl = get_workload("ompscr_qsort", elements=120_000, leaf_elements=500)
    profile = prophet.profile(wl.program)
    rows = {}
    for paradigm in PARADIGMS:
        real = prophet.measure_real(profile, [T], paradigm=paradigm).speedup(
            n_threads=T
        )
        pred = prophet.predict(
            profile, [T], paradigm=paradigm, methods=("syn",), memory_model=True
        ).speedup(method="syn", n_threads=T)
        rows[paradigm] = {"real": real, "pred": pred}
    return rows


def test_sec3_recursive_paradigms(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    print(banner(
        "Section III — fine-grained recursion, 8 threads, "
        "context switches 4k cycles"
    ))
    print(fmt_row("paradigm", ["real", "pred", "err"]))
    for paradigm in PARADIGMS:
        r = rows[paradigm]
        print(fmt_row(
            paradigm, [r["real"], r["pred"], error_ratio(r["pred"], r["real"])]
        ))

    # The paper's claim: task-based paradigms beat nested physical teams.
    assert rows["omp_task"]["real"] > 1.2 * rows["omp"]["real"]
    assert rows["cilk"]["real"] > 1.2 * rows["omp"]["real"]
    # And the synthesizer predicts each paradigm well enough to choose by.
    for paradigm in PARADIGMS:
        assert error_ratio(rows[paradigm]["pred"], rows[paradigm]["real"]) < 0.20, (
            paradigm
        )
