"""Section VII-D — the overhead of Parallel Prophet itself.

The paper reports: profiling + emulation costs "generally a 1.1× to 3.5×
slowdown per each estimate"; the synthesizer's cost per estimate is about
``1 + 1/S`` of the serial time (it *runs* the generated parallel program);
worst memory overhead 3 GB with lossless compression; Suitability shows
200× slowdowns on FFT where the synthesizer stays near 3.5×.

This bench reproduces the cost model in simulated time: per workload it
reports the profiling slowdown (gross tracer time / net serial time), the
synthesizer's per-estimate slowdown, and the total predicted cost of a
6-thread-count sweep via the paper's T_SYN formula.
"""

from __future__ import annotations

from _common import BENCH_SCALES, MACHINE, THREADS, banner, prophet
from repro.core.synthesizer import Synthesizer
from repro.runtime.tasks import Schedule
from repro.workloads import PAPER_ORDER, get_workload


def run_overheads():
    p = prophet()
    rows = {}
    for name in PAPER_ORDER:
        wl = get_workload(name, **BENCH_SCALES[name])
        profile = p.profile(wl.program)
        serial = profile.serial_cycles()
        syn = Synthesizer(
            paradigm=wl.paradigm, schedule=Schedule.parse(wl.schedule)
        )
        per_estimate = []
        total_emulated = 0.0
        for t in THREADS:
            run = syn.predict(profile, t, use_memory_model=False)
            per_estimate.append(run.slowdown_per_estimate)
            total_emulated += run.emulation_cycles
        rows[name] = {
            "profiling": profile.stats.slowdown,
            "per_estimate_min": min(per_estimate),
            "per_estimate_max": max(per_estimate),
            # T_SYN ≈ T_P + Σ (T_T + T/S_i), normalised by T.
            "sweep_total": (profile.stats.gross_tracer_cycles + total_emulated)
            / serial,
            "tree_mb": profile.tree.estimated_bytes() / 1e6,
        }
    return rows


def test_overhead(benchmark):
    rows = benchmark.pedantic(run_overheads, rounds=1, iterations=1)

    print(banner("Section VII-D — profiling & emulation overhead (simulated)"))
    print(f"{'benchmark':<14} {'profiling':>10} {'est (min)':>10} "
          f"{'est (max)':>10} {'sweep':>7} {'tree MB':>8}")
    for name, r in rows.items():
        print(
            f"{name:<14} {r['profiling']:>9.2f}x {r['per_estimate_min']:>9.2f}x"
            f" {r['per_estimate_max']:>9.2f}x {r['sweep_total']:>6.2f}x"
            f" {r['tree_mb']:>8.3f}"
        )

    for name, r in rows.items():
        # Profiling slowdown in the paper's 1.1-10x band.
        assert 1.0 <= r["profiling"] < 10.0, name
        # One synthesizer estimate costs at most ~1x serial (it runs the
        # parallelized program: 1/S of the serial time, plus overheads).
        assert r["per_estimate_max"] <= 1.5, name
        # The full 6-point sweep stays within the paper's "small" budget.
        assert r["sweep_total"] < 10.0, name
        # Compressed trees are tiny (paper: <=3 GB even for NPB inputs; our
        # scaled runs are far below that).
        assert r["tree_mb"] < 50.0, name
