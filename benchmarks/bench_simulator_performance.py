"""Simulator performance — events/sec, emulated nodes/sec, profiling rate.

Not a paper artifact: these benches track the cost of the reproduction's own
machinery (the substituted substrate), so regressions in kernel dispatch,
DRAM-solve, or FF traversal cost are caught.  They are also the honest
denominator behind "the synthesizer is cheap": the paper's overhead numbers
are *simulated-time*; these are the *wall-clock* costs of simulating.
"""

from __future__ import annotations

from _common import MACHINE
from repro.core.ffemu import FastForwardEmulator
from repro.core.profiler import IntervalProfiler
from repro.runtime import OmpRuntime, RuntimeOverheads, Schedule
from repro.simhw import MachineConfig
from repro.simos import Compute, Join, SimKernel, Spawn


def _flat_profile(n_tasks=400):
    def program(tr):
        with tr.section("loop"):
            for i in range(n_tasks):
                with tr.task():
                    tr.compute(10_000 + (i % 13) * 700)

    return IntervalProfiler(MACHINE).profile(program)


def test_kernel_event_throughput(benchmark):
    """Spawn/compute/join churn through the DES kernel."""
    machine = MachineConfig(n_cores=8, timeslice_cycles=5_000.0)

    def run():
        kernel = SimKernel(machine)

        def worker(n):
            for _ in range(20):
                yield Compute(cycles=1_000 + n)

        def master():
            ts = []
            for n in range(64):
                ts.append((yield Spawn(worker(n))))
            for t in ts:
                yield Join(t)

        kernel.spawn(master())
        return kernel.run()

    result = benchmark(run)
    assert result > 0


def test_omp_replay_throughput(benchmark):
    """A full OpenMP parallel_for through the simulated runtime."""
    machine = MachineConfig(n_cores=8)

    def run():
        kernel = SimKernel(machine)
        omp = OmpRuntime(kernel, RuntimeOverheads())

        def body():
            yield Compute(cycles=5_000)

        def master():
            yield from omp.parallel_for(
                [body] * 256, n_threads=8, schedule=Schedule.dynamic(1)
            )

        kernel.spawn(master())
        return kernel.run()

    result = benchmark(run)
    assert result > 0


def _homogeneous_profile(n_tasks=400):
    """Identical tasks: RLE collapses the loop to one stored child."""

    def program(tr):
        with tr.section("loop"):
            for _ in range(n_tasks):
                with tr.task():
                    tr.compute(12_000)

    return IntervalProfiler(MACHINE).profile(program)


def test_ff_emulation_throughput(benchmark):
    """Fast-forward emulation over a 400-task tree."""
    profile = _flat_profile(400)
    ff = FastForwardEmulator()

    def run():
        time, _ = ff.emulate_profile(profile.tree, 8, Schedule.static_chunk(1))
        return time

    result = benchmark(run)
    assert result > 0


def test_ff_fast_path_throughput(benchmark):
    """Closed-form fast path on an RLE-compressed homogeneous 400-task loop.

    The exact heap walk rematerializes all 400 tasks; the closed form visits
    the stored (compressed) children only.  Assert the >=5x node reduction
    and that the fast path is not slower, then benchmark the fast path.
    """
    import time as _time

    profile = _homogeneous_profile(400)
    sched = Schedule.static_chunk(1)
    fast = FastForwardEmulator()
    exact = FastForwardEmulator(fast_path=False)

    t_fast, _ = fast.emulate_profile(profile.tree, 8, sched)
    t_exact, _ = exact.emulate_profile(profile.tree, 8, sched)
    assert abs(t_fast - t_exact) <= 1e-9 * max(t_fast, t_exact)
    assert fast.fast_path_hits >= 1 and fast.fast_path_misses == 0
    assert exact.nodes_visited >= 5 * fast.nodes_visited, (
        exact.nodes_visited,
        fast.nodes_visited,
    )

    def _wall(emu, reps=20):
        best = float("inf")
        for _ in range(reps):
            t0 = _time.perf_counter()
            emu.emulate_profile(profile.tree, 8, sched)
            best = min(best, _time.perf_counter() - t0)
        return best

    assert _wall(fast) < _wall(exact)

    def run():
        time, _ = fast.emulate_profile(profile.tree, 8, sched)
        return time

    result = benchmark(run)
    assert result > 0


def test_profiling_throughput(benchmark):
    """Interval profiling + compression of a 400-task program."""

    def run():
        return _flat_profile(400).serial_cycles()

    result = benchmark(run)
    assert result > 0


def test_dram_solve_throughput(benchmark):
    """The bandwidth-cap bisection under a saturated 12-segment set."""
    from repro.simhw import DramModel, SegmentDemand

    model = DramModel(MACHINE)
    segs = [
        SegmentDemand(mem_fraction=0.3 + 0.05 * (i % 8), demand_bytes_per_sec=2.5e9)
        for i in range(12)
    ]

    def run():
        return model.stall_multiplier(segs)

    result = benchmark(run)
    assert result >= 1.0


def test_dram_solve_cached_throughput(benchmark):
    """Repeated identical segment sets hit the memoized solve."""
    from repro.simhw import DramModel, SegmentDemand

    model = DramModel(MACHINE)
    segs = [
        SegmentDemand(mem_fraction=0.3 + 0.05 * (i % 8), demand_bytes_per_sec=2.5e9)
        for i in range(12)
    ]
    model.stall_multiplier(segs)  # warm the cache

    def run():
        return model.stall_multiplier(segs)

    result = benchmark(run)
    assert result >= 1.0
    info = model.cache_info()
    assert info["hits"] >= 1 and info["size"] >= 1
