"""Table III — comparing the fast-forwarding and synthesis emulators.

The paper's comparison: the FF is an analytical model, mostly accurate but
wrong on nested/recursive parallelism and much slower on large trees (30×+
slowdown on FFT from tree traversal + heap pressure); the synthesizer is
"very accurate", handles any paradigm, and costs roughly serial_time/S per
estimate.  This bench measures both emulators on a flat loop and on the
recursive FFT and reports accuracy and cost side by side.
"""

from __future__ import annotations

import time

from _common import BENCH_SCALES, banner, prophet
from repro.core.report import error_ratio
from repro.workloads import get_workload

T = 8


def _flat_program(tr):
    with tr.section("flat"):
        for i in range(64):
            with tr.task():
                tr.compute(40_000 + (i % 7) * 5_000)


def run_comparison():
    p = prophet()
    rows = {}
    cases = {
        "flat-loop": ("omp", "static,1", _flat_program),
        "fft-recursive": (
            "cilk",
            "static",
            get_workload("ompscr_fft", **BENCH_SCALES["ompscr_fft"]).program,
        ),
    }
    for case, (paradigm, schedule, program) in cases.items():
        profile = p.profile(program)
        real = p.measure_real(
            profile, [T], paradigm=paradigm, schedule=schedule
        ).speedup(n_threads=T)

        t0 = time.perf_counter()
        ff = p.predict(
            profile, [T], paradigm=paradigm, schedules=[schedule],
            methods=("ff",), memory_model=True,
        ).speedup(method="ff", n_threads=T)
        ff_wall = time.perf_counter() - t0

        t0 = time.perf_counter()
        syn = p.predict(
            profile, [T], paradigm=paradigm, schedules=[schedule],
            methods=("syn",), memory_model=True,
        ).speedup(method="syn", n_threads=T)
        syn_wall = time.perf_counter() - t0

        rows[case] = {
            "real": real,
            "ff": ff,
            "ff_err": error_ratio(ff, real),
            "ff_wall": ff_wall,
            "syn": syn,
            "syn_err": error_ratio(syn, real),
            "syn_wall": syn_wall,
        }
    return rows


def test_table3_ff_vs_syn(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    print(banner("Table III — FF vs synthesizer (8 threads)"))
    print(
        f"{'case':<16} {'real':>6} {'FF':>6} {'err':>7} {'wall(s)':>8}"
        f" {'SYN':>6} {'err':>7} {'wall(s)':>8}"
    )
    for case, r in rows.items():
        print(
            f"{case:<16} {r['real']:>6.2f} {r['ff']:>6.2f} {r['ff_err']:>7.1%}"
            f" {r['ff_wall']:>8.3f} {r['syn']:>6.2f} {r['syn_err']:>7.1%}"
            f" {r['syn_wall']:>8.3f}"
        )

    # Both accurate on the flat loop.
    assert rows["flat-loop"]["ff_err"] < 0.10
    assert rows["flat-loop"]["syn_err"] < 0.10
    # On the recursive case the synthesizer is accurate while the FF's
    # naive nested mapping degrades (Table III: "accurate, except for some
    # cases" vs "very accurate").
    assert rows["fft-recursive"]["syn_err"] < 0.30
    assert rows["fft-recursive"]["ff_err"] > rows["fft-recursive"]["syn_err"]
