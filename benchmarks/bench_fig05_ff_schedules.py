"""Figure 5 — fast-forward emulation of OpenMP scheduling policies.

The paper's worked example: a parallel loop of three unequal iterations
(650/600/250 cycles, each with a critical section) on a dual core.  The FF
predicts (with the paper's overhead ε): ``static,1`` ≈ 1.30×, ``static`` ≈
1.20×, ``dynamic,1`` ≈ 1.58×.  This bench regenerates all three speedups
with the FF and cross-checks them against the simulated-machine ground
truth; the *ordering* (dynamic,1 > static,1 > static) and approximate
magnitudes are the reproduction target.
"""

from __future__ import annotations

from _common import banner, fmt_row, prophet
from repro.runtime import RuntimeOverheads
from repro.simhw import MachineConfig

#: Overheads scaled down so ε stays small relative to the few-hundred-cycle
#: iterations, like the paper's illustration.
SMALL_OH = RuntimeOverheads().scaled(0.001)

M2 = MachineConfig(n_cores=2, timeslice_cycles=10_000.0)

#: Paper's predicted speedups for the three schedules.
PAPER = {"static,1": 1.30, "static": 1.20, "dynamic,1": 1.58}


def fig5_program(tr):
    # Iteration 0: 150 U, 450 L, 50 U  (650 total)
    # Iteration 1: 100 U, 300 L, 200 U (600 total)
    # Iteration 2: 150 U, 100 U(=50+50 merged) (250 total)
    with tr.section("loop"):
        with tr.task("I0"):
            tr.compute(150)
            with tr.lock(1):
                tr.compute(450)
            tr.compute(50)
        with tr.task("I1"):
            tr.compute(100)
            with tr.lock(1):
                tr.compute(300)
            tr.compute(200)
        with tr.task("I2"):
            tr.compute(150)
            tr.compute(50)
            tr.compute(50)


def run_fig5() -> dict[str, dict[str, float]]:
    from repro import ParallelProphet

    p = ParallelProphet(machine=M2, overheads=SMALL_OH)
    profile = p.profile(fig5_program)
    out: dict[str, dict[str, float]] = {}
    for sched in ("static,1", "static", "dynamic,1"):
        ff = p.predict(
            profile, threads=[2], schedules=[sched], methods=("ff",),
            memory_model=False,
        ).speedup(method="ff", n_threads=2)
        real = p.measure_real(profile, threads=[2], schedule=sched).speedup(
            n_threads=2
        )
        out[sched] = {"ff": ff, "real": real, "paper": PAPER[sched]}
    return out


def test_fig05_ff_schedules(benchmark):
    results = benchmark.pedantic(run_fig5, rounds=3, iterations=1)

    print(banner("Figure 5 — FF speedups per OpenMP schedule (2 cores)"))
    print(fmt_row("schedule", ["FF", "Real", "Paper"]))
    for sched, row in results.items():
        print(fmt_row(sched, [row["ff"], row["real"], row["paper"]]))

    # The reproduction target: schedule ordering and rough magnitudes.
    assert results["dynamic,1"]["ff"] > results["static,1"]["ff"] > results["static"]["ff"]
    for sched, row in results.items():
        assert abs(row["ff"] - row["paper"]) / row["paper"] < 0.15
        assert abs(row["ff"] - row["real"]) / row["real"] < 0.15
