"""Interleaving exploration: envelope coverage, spread, and memo reuse.

Not a paper artifact: this bench tracks the schedule-space explorer
(``repro.explore``) that closes the lock-interleaving blind spot.  Over a
deterministic lock-heavy fuzz corpus it

- explores every grid point into a [min, max] SYN speedup envelope over
  the handoff-policy variants,
- measures REAL at the same points and reports the coverage fraction
  (the acceptance bar is 1.0 — REAL never escapes its envelope),
- reports the envelope spread (how much uncertainty the single FIFO
  prediction used to hide on these programs), and
- times a cold vs a warm exploration pass: replays recur through the
  section memo keyed by (policy, seed), so re-exploring the same grid
  should be much cheaper than the first pass.

``run_all.py`` records the result under ``benchmarks/out/`` and as the
``explore`` entry of ``BENCH_sweep.json``.
"""

from __future__ import annotations

import random
import time

from repro.core.executor import clear_section_memo
from repro.core.profiler import IntervalProfiler
from repro.core.prophet import ParallelProphet
from repro.explore import Explorer
from repro.runtime.overhead import RuntimeOverheads
from repro.simhw import MachineConfig
from repro.validate import ENVELOPE_SLACK, build_program, generate_locky_program

#: Fuzz corpus machine: modest core count so contention is real.
MACHINE = MachineConfig(n_cores=4)

#: Grid per program.  static,1 round-robins tasks across workers — the
#: schedule where the documented 25% FAKE-vs-REAL lock divergence was found.
THREADS = [2, 4]
SCHEDULE = "static,1"

#: Handoff variants per grid point.
SAMPLES = 6


def _convoy(tr):
    """A deliberately interleaving-sensitive program: every task funnels
    through one lock with strongly asymmetric critical sections, so which
    waiter the mutex hands off to genuinely moves the makespan."""
    with tr.section("convoy"):
        for i in range(8):
            with tr.task():
                tr.compute(8_000.0 + 3_000.0 * i)
                with tr.lock(1):
                    tr.compute(30_000.0 + 20_000.0 * (i % 4))
                tr.compute(6_000.0)


def _corpus(n_programs: int, seed: int = 2026):
    rng = random.Random(seed)
    profiler = IntervalProfiler(MACHINE)
    profiles = {"convoy": profiler.profile(_convoy)}
    for i in range(n_programs):
        profiles[f"locky-{seed}-{i}"] = profiler.profile(
            build_program(generate_locky_program(rng))
        )
    return profiles


def run_explore(quick: bool = False) -> dict:
    """Explore a lock-heavy corpus; report coverage, spread, and timings."""
    n_programs = 4 if quick else 10
    overheads = RuntimeOverheads().scaled(0.0)
    prophet = ParallelProphet(machine=MACHINE, overheads=overheads)
    profiles = _corpus(n_programs)
    explorer = Explorer(prophet, samples=SAMPLES, jobs=1)

    def explore_all():
        return explorer.explore(
            profiles,
            threads=THREADS,
            schedules=[SCHEDULE],
            memory_model=False,
        )

    clear_section_memo()
    t0 = time.perf_counter()
    reports = explore_all()
    cold_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    explore_all()
    warm_s = time.perf_counter() - t0

    points = covered = degenerate = 0
    widths = []
    for name, profile in profiles.items():
        real = prophet.measure_real(profile, THREADS, schedule=SCHEDULE)
        for t in THREADS:
            env = reports[name].envelope(n_threads=t)
            points += 1
            widths.append(env.width)
            if env.width == 0.0:
                degenerate += 1
            if env.contains(real.speedup(n_threads=t), slack=ENVELOPE_SLACK):
                covered += 1

    return {
        "programs": n_programs,
        "points": points,
        "samples_per_point": SAMPLES,
        "coverage": covered / points,
        "degenerate_points": degenerate,
        "mean_width": sum(widths) / len(widths),
        "max_width": max(widths),
        "cold_s": cold_s,
        "warm_s": warm_s,
        "memo_speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
    }


# ------------------------------------------------------- pytest-benchmark


def test_explore_envelopes(benchmark):
    r = benchmark.pedantic(run_explore, kwargs=dict(quick=True), rounds=1)
    # The acceptance bar: REAL lies inside every reported envelope.
    assert r["coverage"] == 1.0
    # Warm re-exploration must benefit from the (policy, seed)-keyed memo.
    assert r["warm_s"] < r["cold_s"]


if __name__ == "__main__":
    import json

    print(json.dumps(run_explore(), indent=2))
