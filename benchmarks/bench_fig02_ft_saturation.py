"""Figure 2 — NPB-FT speedup saturation from memory traffic.

Paper: FT (input B, 850 MB footprint) saturates near 4-4.5× beyond ~6 cores;
"Kismet and Suitability overestimate speedups" because neither models memory
contention, while Parallel Prophet's burden factors track the saturation.
This bench regenerates the Real / Pred(+memory) series of Fig. 2 plus the
memory-blind predictions of the two comparison tools.
"""

from __future__ import annotations

from _common import THREADS, banner, fmt_row, prophet
from repro.baselines import KismetEstimator, SuitabilityAnalysis
from repro.core.report import error_ratio
from repro.workloads import get_workload


def run_fig2():
    p = prophet()
    wl = get_workload("npb_ft", planes=48, timesteps=2)
    profile = p.profile(wl.program)
    real = p.measure_real(profile, THREADS)
    pred_m = p.predict(profile, THREADS, methods=("syn",), memory_model=True)
    pred = p.predict(profile, THREADS, methods=("syn",), memory_model=False)
    kismet = KismetEstimator().predict(profile, THREADS)
    suit = SuitabilityAnalysis().predict(profile, THREADS)
    rows = {}
    for label, report, kwargs in (
        ("Real", real, {}),
        ("Pred", pred_m, dict(method="syn")),
        ("Pred-noMem", pred, dict(method="syn")),
        ("Kismet", kismet, {}),
        ("Suitability", suit, {}),
    ):
        rows[label] = [report.speedup(n_threads=t, **kwargs) for t in THREADS]
    rows["burden"] = [
        profile.burden_for("fft_x", t) for t in THREADS
    ]
    return rows


def test_fig02_ft_saturation(benchmark):
    rows = benchmark.pedantic(run_fig2, rounds=1, iterations=1)

    print(banner("Figure 2 — NPB-FT (B/850MB): real vs predicted speedup"))
    print(fmt_row("series", [f"{t}-core" for t in THREADS]))
    for label in ("Real", "Pred", "Pred-noMem", "Kismet", "Suitability", "burden"):
        print(fmt_row(label, rows[label]))

    from repro.core.asciiplot import speedup_chart

    print()
    print(
        speedup_chart(
            {
                "Real": rows["Real"],
                "Pred": rows["Pred"],
                "Pred-noMem": rows["Pred-noMem"],
            },
            THREADS,
        )
    )

    real12 = rows["Real"][-1]
    # Saturation: 12-core real speedup well below linear and roughly flat
    # from 6 cores (the Fig. 2 shape).
    assert real12 < 6.0
    assert rows["Real"][-1] < rows["Real"][2] * 1.25
    # Prophet with the memory model lands within ~30%; the memory-blind
    # baselines overestimate by >2x (the paper's headline claim).
    assert error_ratio(rows["Pred"][-1], real12) < 0.30
    assert rows["Kismet"][-1] > 2 * real12
    assert rows["Suitability"][-1] > 2 * real12
    # Burden factors in the paper's reported 1.0-1.45-ish band at low t,
    # growing with t.
    assert rows["burden"][0] < 1.3
    assert rows["burden"][-1] > rows["burden"][0]
