"""Warm single-point latency and abstain rate of the surrogate tier.

Not a paper artifact: this bench tracks `repro.surrogate` (the learned
prediction tier behind ``--tier surrogate|auto``).  It trains a model
against the exact oracle, then measures

- **warm single-point latency** — one ``Surrogate.answer`` on an
  already-seen profile (base features cached) versus one exact
  single-point ``ParallelProphet.predict`` against warm
  calibration/burden state but an *uncached replay* (section memo
  cleared per call — a memo hit is a repeat of an identical point,
  which the serve layer's response cache already covers; the surrogate
  competes with genuine emulation).  The ratio is the acceptance floor
  (≥100x): the surrogate turns a per-point emulation into a feature
  lookup plus a matrix-vector product;
- **abstain rate** — the fraction of the acceptance grid (the
  registered-workload grid ``repro check --quick`` verifies) the
  ``auto`` tier would route to the exact fallback.  A model that
  abstains everywhere is useless however fast it is, so the ceiling
  guards the uncertainty calibration, not just the arithmetic.
"""

from __future__ import annotations

import time

from repro.core.executor import clear_section_memo
from repro.core.prophet import ParallelProphet
from repro.runtime.tasks import Schedule
from repro.simhw.machine import WESTMERE_12
from repro.surrogate.train import TrainConfig, quick_config, train
from repro.workloads import get_workload

#: Acceptance floor for the exact/surrogate warm single-point ratio.
#: Measured ~3000x+ on the dev container: the exact path replays the
#: program tree per point, the surrogate does one (d+1)-dot-product.
SPEEDUP_FLOOR = 100.0

#: Ceiling on the auto-tier abstain rate over the acceptance grid.  The
#: confident strata must cover a useful share of real queries.
ABSTAIN_CEILING = 0.9

#: The acceptance grid: the registered workloads and thread counts the
#: differential harness checks (``repro check --quick``), both methods.
GRID_WORKLOADS = ("npb_ep", "npb_ft")
GRID_THREADS = (2, 4, 8, 12)
GRID_SCHEDULE = "static"


def _time_point(fn, repeats: int) -> float:
    """Median wall time of ``fn()`` over ``repeats`` calls."""
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return samples[len(samples) // 2]


def run_surrogate(quick: bool = False) -> dict:
    """Train, then measure warm point latency and acceptance abstain rate."""
    cfg = quick_config() if quick else TrainConfig()
    t0 = time.perf_counter()
    result = train(cfg)
    train_s = time.perf_counter() - t0
    surrogate = result.surrogate

    prophet = ParallelProphet(machine=WESTMERE_12)
    profile = prophet.profile(get_workload("npb_ep").program)
    schedule = Schedule.parse(GRID_SCHEDULE)

    # Warm both paths before timing: the exact path attaches burdens and
    # builds its engine on first use, the surrogate caches base features.
    point = dict(threads=[8], schedules=[GRID_SCHEDULE], methods=("syn",))
    prophet.predict(profile, **point)
    surrogate.answer(profile, WESTMERE_12, "syn", "omp", schedule, 8)

    def exact_point() -> None:
        # An uncached replay: clearing the memo costs ~us against the
        # ~ms emulation and keeps repeats honest.
        clear_section_memo()
        prophet.predict(profile, **point)

    repeats = 5 if quick else 15
    exact_point_s = _time_point(exact_point, repeats)
    surrogate_point_s = _time_point(
        lambda: surrogate.answer(
            profile, WESTMERE_12, "syn", "omp", schedule, 8
        ),
        repeats * 20,
    )

    # Abstain rate over the acceptance grid, exactly as the auto tier
    # would gate it: unsupported or unconfident → exact fallback.
    confident = total = 0
    for name in GRID_WORKLOADS:
        wl_profile = prophet.profile(get_workload(name).program)
        for t in GRID_THREADS:
            for method in ("ff", "syn"):
                total += 1
                ans = surrogate.answer(
                    wl_profile, WESTMERE_12, method, "omp", schedule, t
                )
                if ans is not None and ans.confident:
                    confident += 1

    return {
        "train_s": train_s,
        "labelled": result.labelled,
        "pool": result.pool,
        "exact_point_s": exact_point_s,
        "surrogate_point_s": surrogate_point_s,
        "speedup": (
            exact_point_s / surrogate_point_s
            if surrogate_point_s > 0
            else float("inf")
        ),
        "threshold": SPEEDUP_FLOOR,
        "grid_points": total,
        "confident_points": confident,
        "abstain_rate": 1.0 - confident / total if total else 1.0,
        "abstain_ceiling": ABSTAIN_CEILING,
    }


# ------------------------------------------------------- pytest-benchmark


def test_surrogate_point_speedup(benchmark):
    """A warm surrogate point answers ≥100x faster than the exact path,
    and the auto tier answers a useful share of the acceptance grid."""
    r = benchmark.pedantic(run_surrogate, kwargs=dict(quick=True), rounds=1)
    assert r["speedup"] >= SPEEDUP_FLOOR, (
        f"surrogate point latency regressed: {r['speedup']:.0f}x < "
        f"{SPEEDUP_FLOOR:.0f}x (exact {r['exact_point_s'] * 1e3:.2f} ms, "
        f"surrogate {r['surrogate_point_s'] * 1e6:.1f} us)"
    )
    assert r["abstain_rate"] <= ABSTAIN_CEILING, (
        f"auto tier abstains on {r['abstain_rate']:.0%} of the acceptance "
        f"grid (ceiling {ABSTAIN_CEILING:.0%})"
    )


if __name__ == "__main__":
    for key, value in run_surrogate().items():
        print(f"{key}: {value}")
