"""Equations 6-7 — the memory-model calibration microbenchmark.

The paper derives two empirical formulas on its machine:

    δ²  = (1.35·δ + 1758) / 2                 (linear, t = 2)
    δᵗ  = (a·ln δ + b) / t,  t ∈ {4, 8, 12}    (logarithmic)
    ωᵗ  = 101481 · (δᵗ)^−0.964                (power law)

This bench reruns the same methodology on the simulated machine, prints the
fitted formulas, validates their functional forms and fit quality (R² on
the calibration points), and spot-checks the burden-factor pipeline the
fits feed ("we were able to predict the speedups mostly within a 30 % error
bound", Section VII-C).
"""

from __future__ import annotations

import numpy as np

from _common import MACHINE, banner
from repro.core.microbench import calibrate_memory_model


def run_calibration():
    return calibrate_memory_model(MACHINE, thread_counts=(2, 4, 6, 8, 10, 12))


def _psi_rel_rmse(cal, t):
    """Relative RMSE of Ψₜ on its own calibration points.  (Plain R² is
    meaningless at high t where every point sits at the saturated plateau
    B/t — zero variance — although the fit is essentially exact.)"""
    xs, ys = [], []
    serial = {s.mpi: s for s in cal.samples if s.n_threads == 1}
    for s in cal.samples:
        if s.n_threads != t:
            continue
        base = serial[s.mpi]
        if base.serial_traffic_mbs < cal.min_traffic_mbs:
            continue
        xs.append(base.serial_traffic_mbs)
        ys.append(s.per_thread_traffic_mbs)
    ys = np.asarray(ys)
    pred = np.asarray([cal.psi[t].per_thread(x) for x in xs])
    return float(np.sqrt(np.mean((ys - pred) ** 2)) / np.mean(ys))


def test_eq67_calibration(benchmark):
    cal = benchmark.pedantic(run_calibration, rounds=1, iterations=1)

    print(banner("Eqs. 6-7 — fitted Ψ/Φ on the simulated machine"))
    print(cal.summary())
    print(f"\npaper forms:  δ² linear;  δ⁴/δ⁸/δ¹² logarithmic;  "
          f"ωᵗ = 101481·δ^-0.964")
    for t in sorted(cal.psi):
        print(f"Ψ_{t} relative RMSE = {_psi_rel_rmse(cal, t):.4f}")

    # Functional forms match Eq. 6.
    assert cal.psi[2].form == "linear"
    for t in (4, 6, 8, 10, 12):
        assert cal.psi[t].form == "log"
    # Φ is a decreasing power law like Eq. 7.
    assert cal.phi.b < 0
    # Fits are tight on their own calibration points (the t=4 transition
    # region is the loosest, as in the paper's piecewise forms).
    for t in sorted(cal.psi):
        assert _psi_rel_rmse(cal, t) < 0.10, t
    # Ψ respects physics: per-thread achieved traffic falls with t and the
    # implied totals stay below peak bandwidth (plus fit slack).
    peak_mbs = MACHINE.dram_peak_bytes_per_sec / 1e6
    for delta in (2500.0, 3500.0, 4500.0):
        per_thread = [cal.predict_per_thread_traffic(delta, t) for t in (2, 4, 8, 12)]
        assert per_thread == sorted(per_thread, reverse=True)
        assert 12 * per_thread[-1] < 1.4 * peak_mbs
