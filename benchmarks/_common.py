"""Shared infrastructure for the reproduction benches.

Every bench regenerates one of the paper's tables or figures as text and is
also a ``pytest-benchmark`` target timing the underlying experiment.  Run::

    pytest benchmarks/ --benchmark-only -s

(``-s`` shows the regenerated tables; without it only timings appear.)

Environment knobs:

- ``REPRO_BENCH_SAMPLES`` — validation sample count for the Fig. 11 bench
  (default 30; the paper uses 300 — set it for a full run).
- ``REPRO_BENCH_JOBS`` — worker processes for the batch-predictor-powered
  benches (default 1; results are identical at any job count).
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro import ParallelProphet
from repro.simhw import MachineConfig

#: The paper's experimental platform (Section VII-A).
MACHINE = MachineConfig(n_cores=12)

#: Thread counts of Figs. 2 and 12.
THREADS = [2, 4, 6, 8, 10, 12]

#: Workload scales for bench runs: large enough for stable shapes, small
#: enough that the whole harness finishes in minutes.
BENCH_SCALES: dict[str, dict] = {
    "ompscr_md": dict(particles=512, steps=2),
    "ompscr_lu": dict(size=96),
    "ompscr_fft": dict(n_points=4096),
    "ompscr_qsort": dict(elements=200_000),
    "npb_ep": dict(batches=192),
    "npb_ft": dict(planes=48, timesteps=2),
    "npb_mg": dict(fine_planes=48, cycles_count=2),
    "npb_cg": dict(outer_steps=2, inner_iterations=5, row_blocks=64),
}


def sample_count(default: int = 30) -> int:
    """Number of random validation samples (paper: 300)."""
    return int(os.environ.get("REPRO_BENCH_SAMPLES", default))


def bench_jobs(default: int = 1) -> int:
    """Worker processes for sweep-style benches (``run_all.py --jobs``)."""
    return max(1, int(os.environ.get("REPRO_BENCH_JOBS", default)))


@lru_cache(maxsize=1)
def prophet() -> ParallelProphet:
    """One calibrated prophet shared across benches (calibration cached)."""
    p = ParallelProphet(machine=MACHINE)
    p.calibration(THREADS)
    return p


def fmt_row(label: str, values, width: int = 6) -> str:
    cells = " ".join(
        f"{v:>{width}.2f}" if isinstance(v, (int, float)) else f"{v:>{width}}"
        for v in values
    )
    return f"{label:<14} {cells}"


def banner(title: str) -> str:
    line = "=" * max(60, len(title) + 4)
    return f"\n{line}\n  {title}\n{line}"
