"""Figure 4 — building a program tree from an annotated program.

Regenerates the paper's worked example: a parallel loop with a critical
section and a conditional nested parallel loop, profiled into a tree of
Sec/Task/U/L nodes with burden factors attached to the top-level section.
The bench also times interval profiling itself (the paper's "lightweight"
claim: profiling is annotation-proportional, not instruction-proportional).
"""

from __future__ import annotations

from _common import banner, prophet
from repro.core.tree import NodeKind


def fig4_program(tr):
    """The code of the paper's Fig. 4: for-i loop with a lock and an inner
    parallel for-j loop executed when p3 holds (here: for even i)."""
    with tr.section("loop1"):
        for i in range(4):
            with tr.task(f"t1_{i}"):
                tr.compute(10_000)  # Compute(p1)
                with tr.lock(1):
                    tr.compute(2_500)  # Compute(p2), protected
                if i % 2 == 0:  # if (p3)
                    with tr.section("loop2"):
                        for j in range(4):
                            with tr.task(f"t2_{j}"):
                                tr.compute(5_000 - 1_000 * (j % 2))
                tr.compute(2_000)  # Compute(p5)


def run_fig4():
    p = prophet()
    profile = p.profile(fig4_program)
    p.attach_burdens(profile, [2, 4])
    return profile


def test_fig04_program_tree(benchmark):
    profile = benchmark.pedantic(run_fig4, rounds=5, iterations=1)

    print(banner("Figure 4 — program tree from the annotated example"))
    print(profile.tree.pretty())
    print(f"\nburden factors: "
          f"beta_2={profile.burden_for('loop1', 2):.3f}, "
          f"beta_4={profile.burden_for('loop1', 4):.3f}")
    print(f"logical nodes: {profile.tree.logical_nodes()}, "
          f"stored nodes: {profile.tree.unique_nodes()} "
          f"(compression {profile.compression.reduction:.0%})")
    print(f"profiling slowdown: {profile.stats.slowdown:.3f}x "
          f"({profile.stats.annotation_events} annotation events)")

    # Structure of Fig. 4: one top-level section of 4 tasks; even tasks
    # contain U, L, Sec, U; odd tasks contain U, L, U.
    sec = profile.tree.top_level_sections()[0]
    assert sec.name == "loop1"
    tasks = []
    for t in sec.children:
        tasks.extend([t] * t.repeat)
    assert len(tasks) == 4
    even_kinds = [c.kind for c in tasks[0].children]
    assert even_kinds == [NodeKind.U, NodeKind.L, NodeKind.SEC, NodeKind.U]
    odd_kinds = [c.kind for c in tasks[1].children]
    assert odd_kinds == [NodeKind.U, NodeKind.L, NodeKind.U]
    # The tiny example has negligible traffic: burdens are 1.
    assert profile.burden_for("loop1", 2) == 1.0
    # Profiling is lightweight (paper: 1.2-10x; this example is tiny).
    assert profile.stats.slowdown < 1.2
