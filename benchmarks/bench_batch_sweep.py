"""Batch-sweep throughput — the Fig. 11-style grid through ``BatchPredictor``.

Not a paper artifact: this bench times the sweep engine itself on a
Fig. 11-shaped workload — ``REPRO_BENCH_SWEEP_SAMPLES`` random Test1
programs (default 50) × three OpenMP schedules × three thread counts — and
asserts the engine's two contracts:

- **Determinism** — the report produced with ``jobs > 1`` is byte-identical
  to the serial one (always asserted, even on a single-core host).
- **Scaling** — with >=4 host cores, two workers finish the grid at least
  2x faster than one (skipped on smaller hosts, where the fork overhead
  dominates and the comparison is meaningless).

``REPRO_BENCH_JOBS`` (or ``run_all.py --jobs``) sets the worker count for
the timed run.
"""

from __future__ import annotations

import os
import time

import numpy as np

from _common import bench_jobs
from repro import ParallelProphet
from repro.core.batch import BatchPredictor
from repro.simhw import MachineConfig
from repro.workloads import random_test1
from repro.workloads import test1_program as make_test1

SCHEDULES = ["static", "static,1", "dynamic,1"]
THREAD_GRID = [4, 8, 12]


def sweep_samples(default: int = 50) -> int:
    return int(os.environ.get("REPRO_BENCH_SWEEP_SAMPLES", default))


def _sweep_profiles(n_samples: int):
    p = ParallelProphet(machine=MachineConfig(n_cores=12))
    rng = np.random.default_rng(20120521)  # IPDPS 2012
    profiles = {
        f"sample{i:04d}": p.profile(make_test1(random_test1(rng, scale=0.4)))
        for i in range(n_samples)
    }
    return p, profiles


def _run_sweep(p, profiles, jobs: int):
    return BatchPredictor(p, jobs=jobs).sweep(
        profiles,
        threads=THREAD_GRID,
        schedules=SCHEDULES,
        methods=("syn",),
        memory_model=False,
    )


def _reports_identical(a, b) -> bool:
    return list(a) == list(b) and all(
        a[name].estimates == b[name].estimates for name in a
    )


def run_sweep_stats(jobs: int = 0):
    """Run the grid serially and with workers; return (stats, timings)."""
    n = sweep_samples()
    p, profiles = _sweep_profiles(n)

    t0 = time.perf_counter()
    serial = _run_sweep(p, profiles, jobs=1)
    t_serial = time.perf_counter() - t0

    jobs = jobs or max(2, bench_jobs())
    t0 = time.perf_counter()
    parallel = _run_sweep(p, profiles, jobs=jobs)
    t_parallel = time.perf_counter() - t0

    assert _reports_identical(serial, parallel)
    n_estimates = sum(len(r) for r in serial.values())
    assert n_estimates == n * len(SCHEDULES) * len(THREAD_GRID)
    return {
        "samples": n,
        "grid_points": n_estimates,
        "jobs": jobs,
        "serial_s": t_serial,
        "parallel_s": t_parallel,
    }


def test_batch_sweep(benchmark):
    stats = benchmark.pedantic(run_sweep_stats, rounds=1, iterations=1)
    print(
        f"\nbatch sweep: {stats['samples']} samples x {len(SCHEDULES)} "
        f"schedules x {len(THREAD_GRID)} thread counts "
        f"({stats['grid_points']} grid points); serial {stats['serial_s']:.2f}s, "
        f"{stats['jobs']} jobs {stats['parallel_s']:.2f}s"
    )
    # Scaling is only observable with real parallelism on the host.
    if (os.cpu_count() or 1) >= 4:
        assert stats["parallel_s"] * 2.0 <= stats["serial_s"], stats
