#!/usr/bin/env python
"""Gate CI on the regression floors recorded in ``BENCH_sweep.json``.

``run_all.py`` already exits nonzero when a floor is breached during the
run that produced the record; this checker re-asserts the committed (or
freshly generated) record itself, so a bench job can fail fast on an
artifact regression without re-running the benches::

    python benchmarks/check_floors.py [path/to/BENCH_sweep.json]

Floors checked:

- columnar sweep speedup ≥ its recorded ``threshold`` (10x);
- exploration envelope coverage == 100%;
- serve cold/warm speedup ≥ its recorded ``threshold`` (5x);
- surrogate warm point speedup ≥ its recorded ``threshold`` (100x) and
  acceptance-grid abstain rate ≤ its recorded ``abstain_ceiling``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def check(record: dict) -> list[str]:
    """Every floor violation in ``record``, as human-readable lines."""
    failures = []
    speedup, floor = record["speedup"], record["threshold"]
    if speedup < floor:
        failures.append(f"columnar sweep speedup {speedup:.1f}x < floor {floor:.0f}x")
    coverage = record["explore"]["coverage"]
    if coverage != 1.0:
        failures.append(f"envelope coverage {coverage:.0%} != 100%")
    serve = record.get("serve")
    if serve is None:
        failures.append("no 'serve' record; regenerate with benchmarks/run_all.py")
    elif serve["speedup"] < serve["threshold"]:
        failures.append(
            f"serve warm speedup {serve['speedup']:.1f}x "
            f"< floor {serve['threshold']:.0f}x"
        )
    surrogate = record.get("surrogate")
    if surrogate is None:
        failures.append(
            "no 'surrogate' record; regenerate with benchmarks/run_all.py"
        )
    else:
        if surrogate["speedup"] < surrogate["threshold"]:
            failures.append(
                f"surrogate point speedup {surrogate['speedup']:.0f}x "
                f"< floor {surrogate['threshold']:.0f}x"
            )
        if surrogate["abstain_rate"] > surrogate["abstain_ceiling"]:
            failures.append(
                f"surrogate abstain rate {surrogate['abstain_rate']:.0%} "
                f"> ceiling {surrogate['abstain_ceiling']:.0%}"
            )
    return failures


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    default = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
    path = Path(argv[0]) if argv else default
    record = json.loads(path.read_text())
    failures = check(record)
    for line in failures:
        print(f"FLOOR BREACH: {line}", file=sys.stderr)
    if not failures:
        print(f"{path.name}: all regression floors hold")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
