"""Section VII-C — validating burden-factor predictions on saturating
samples.

The paper: "We also verified the burden factor prediction by using the
microbenchmark used in Eqs. (6) and (7).  In more than 300 samples that show
speedup saturation, we were able to predict the speedups mostly within a
30 % error bound."

This bench draws random memory-intensive loop workloads (varying MPI,
compute/memory balance, task count, thread count), keeps those that
actually saturate (real speedup < 70 % of linear), predicts them with the
synthesizer + burden factors, and reports the error distribution.  Sample
count scales with ``REPRO_BENCH_SAMPLES``.
"""

from __future__ import annotations

import numpy as np

from _common import MACHINE, banner, prophet, sample_count
from repro.core.report import error_ratio
from repro.simhw.memtrace import AccessPattern, MemSpec


def _random_memory_workload(rng: np.random.Generator):
    n_tasks = int(rng.integers(12, 48))
    cpu = float(rng.uniform(2e6, 2e7))
    mem_fraction = float(rng.uniform(0.25, 0.9))
    misses = mem_fraction * cpu / (
        MACHINE.base_miss_stall * (1.0 - mem_fraction)
    )
    nbytes = misses * MACHINE.line_size

    def program(tr):
        with tr.section("mem_loop"):
            for _ in range(n_tasks):
                with tr.task():
                    tr.compute(
                        cpu,
                        mem=MemSpec(AccessPattern.STREAMING, bytes_touched=int(nbytes)),
                    )

    return program


def run_validation():
    p = prophet()
    rng = np.random.default_rng(67)  # Eqs. (6) and (7)
    n_target = max(10, sample_count())
    errors = []
    tried = 0
    while len(errors) < n_target and tried < n_target * 4:
        tried += 1
        t = int(rng.choice([6, 8, 10, 12]))
        profile = p.profile(_random_memory_workload(rng))
        real = p.measure_real(profile, [t]).speedup(n_threads=t)
        if real > 0.7 * t:
            continue  # not saturating; out of scope for this claim
        pred = p.predict(
            profile, [t], methods=("syn",), memory_model=True
        ).speedup(method="syn", n_threads=t)
        errors.append(error_ratio(pred, real))
    return errors


def test_burden_validation(benchmark):
    errors = benchmark.pedantic(run_validation, rounds=1, iterations=1)
    errors = np.asarray(errors)
    within_30 = float((errors < 0.30).mean())

    print(banner(f"Section VII-C — burden validation on {len(errors)} "
                 "saturating samples"))
    print(f"mean error:   {errors.mean():.1%}")
    print(f"median error: {np.median(errors):.1%}")
    print(f"max error:    {errors.max():.1%}")
    print(f"within 30%:   {within_30:.0%}  (paper: 'mostly within a 30% "
          f"error bound')")

    assert len(errors) >= 10
    assert within_30 >= 0.9
    assert errors.mean() < 0.20
