"""Figure 12 — predictions for the eight OmpSCR/NPB benchmarks.

Regenerates every panel: Real (simulated ground truth), Pred (synthesizer,
no memory model), PredM (synthesizer + burden factors), and Suit
(Suitability-like, interpolated at non-power-of-two cores, no memory model,
unsupported for the recursive Cilk benchmarks — shown as ``-``), for 2-12
cores.  The reproduction targets are the paper's qualitative findings:

- MD/LU/QSort/EP: good predictions without the memory model; burden ≈ 1;
- FT/CG/MG (and FFT): saturation captured only by PredM;
- Suitability underestimates LU (inner-loop overhead) and cannot predict
  the recursive FFT/QSort at all.
"""

from __future__ import annotations

from _common import BENCH_SCALES, THREADS, banner, bench_jobs, fmt_row, prophet
from repro.baselines import SuitabilityAnalysis
from repro.core.batch import BatchPredictor, SweepTask
from repro.core.report import SpeedupReport, error_ratio
from repro.workloads import PAPER_ORDER, get_workload


def run_workload(name: str, jobs: int = 0):
    p = prophet()
    wl = get_workload(name, **BENCH_SCALES[name])
    profile = p.profile(wl.program)
    # Real / Pred / PredM across all thread counts are independent grid
    # points — evaluate them through the (deterministic) batch predictor.
    predictor = BatchPredictor(p, jobs=jobs or bench_jobs())
    tasks = [
        SweepTask(name, wl.schedule, t, methods, wl.paradigm, memory_model)
        for methods, memory_model in (
            (("real",), False),
            (("syn",), True),
            (("syn",), False),
        )
        for t in THREADS
    ]
    report = SpeedupReport()
    for _task, estimates in predictor.run(tasks, {name: profile}):
        report.extend(estimates)
    suit_report = SuitabilityAnalysis().predict(profile, THREADS)
    rows = {
        "Real": [report.speedup(method="real", n_threads=t) for t in THREADS],
        "PredM": [
            report.speedup(method="syn", n_threads=t, with_memory_model=True)
            for t in THREADS
        ],
        "Pred": [
            report.speedup(method="syn", n_threads=t, with_memory_model=False)
            for t in THREADS
        ],
        "Suit": (
            [suit_report.speedup(n_threads=t) for t in THREADS]
            if len(suit_report)
            else ["-"] * len(THREADS)
        ),
    }
    return wl, rows


def _print_panel(idx: int, wl, rows) -> None:
    from repro.core.asciiplot import speedup_chart

    print(banner(f"Fig. 12({chr(ord('a') + idx)}) {wl.name}: {wl.input_label}"))
    print(fmt_row("series", [f"{t}-core" for t in THREADS]))
    for label in ("Real", "Pred", "PredM", "Suit"):
        print(fmt_row(label, rows[label]))
    plottable = {
        k: rows[k]
        for k in ("Real", "Pred", "PredM")
        if all(isinstance(v, (int, float)) for v in rows[k])
    }
    print()
    print(speedup_chart(plottable, THREADS, height=10))


def test_fig12_all_benchmarks(benchmark):
    def run_all():
        return {name: run_workload(name) for name in PAPER_ORDER}

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    for idx, name in enumerate(PAPER_ORDER):
        wl, rows = results[name]
        _print_panel(idx, wl, rows)

    # --- cross-benchmark assertions (the paper's qualitative findings) ----
    def real12(name):
        return results[name][1]["Real"][-1]

    def predm12(name):
        return results[name][1]["PredM"][-1]

    # PredM within ~30% of Real everywhere (paper's accuracy band).
    for name in PAPER_ORDER:
        assert error_ratio(predm12(name), real12(name)) < 0.30, name

    # Compute-bound benchmarks scale near-linearly; memory-bound saturate.
    assert real12("ompscr_md") > 10.0
    assert real12("npb_ep") > 10.0
    assert real12("npb_ft") < 6.0
    assert real12("npb_mg") < 6.5
    assert real12("npb_cg") < 7.0

    # Pred (no memory model) overestimates the memory-bound trio badly.
    for name in ("npb_ft", "npb_cg", "npb_mg"):
        assert results[name][1]["Pred"][-1] > 1.8 * real12(name), name

    # Suitability: no prediction for the recursive Cilk benchmarks...
    assert results["ompscr_fft"][1]["Suit"][0] == "-"
    assert results["ompscr_qsort"][1]["Suit"][0] == "-"
    # ...and a strong underestimate for LU (frequent inner loops).
    lu = results["ompscr_lu"][1]
    assert lu["Suit"][-1] < 0.75 * lu["Real"][-1]
