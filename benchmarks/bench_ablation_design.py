"""Ablation study — what each modelling choice buys.

DESIGN.md calls out four load-bearing design decisions of Parallel Prophet;
this bench knocks each one out and measures the resulting prediction error
against the simulated ground truth:

1. **Parallel-overhead modelling** (Section IV-C: fork/join, dispatch, lock
   costs in the FF) — ablated by zeroing the FF's overhead constants while
   the real runtime keeps paying them.  Matters most for fine-grained and
   frequently-forked loops (LU).
2. **Schedule modelling** (Fig. 5) — ablated by forcing the FF to emulate
   ``dynamic,1`` whatever the target schedule (what the paper observed
   Suitability doing).  Matters for imbalanced static loops.
3. **Synthesizer traversal-overhead subtraction** (Section IV-E, Fig. 8
   line 26) — ablated by *not* subtracting the per-worker traversal cost
   from the gross measurement.  Matters for large trees of tiny nodes.
4. **The memory model** (Section V) — ablated by β = 1.  Matters for
   bandwidth-saturated workloads (FT).

Each assertion checks the ablated variant is strictly worse where the
design choice is supposed to matter.
"""

from __future__ import annotations

from _common import BENCH_SCALES, MACHINE, banner, prophet
from repro.core.executor import ParallelExecutor, ReplayMode
from repro.core.ffemu import FastForwardEmulator
from repro.core.report import error_ratio
from repro.runtime import RuntimeOverheads, Schedule
from repro.runtime.overhead import DEFAULT_OVERHEADS
from repro.workloads import get_workload

T = 8


def _real(profile, schedule, threads=T):
    ex = ParallelExecutor(MACHINE, schedule=Schedule.parse(schedule))
    return ex.execute_profile(profile.tree, threads, ReplayMode.REAL).speedup


def _ff(profile, schedule, overheads=DEFAULT_OVERHEADS, threads=T):
    ff = FastForwardEmulator(overheads)
    t, _ = ff.emulate_profile(profile.tree, threads, Schedule.parse(schedule))
    return profile.serial_cycles() / t


def ablate_overheads():
    """FF accuracy with vs without overhead modelling on LU."""
    p = prophet()
    wl = get_workload("ompscr_lu", size=64)
    profile = p.profile(wl.program)
    real = _real(profile, wl.schedule)
    with_oh = error_ratio(_ff(profile, wl.schedule), real)
    without_oh = error_ratio(
        _ff(profile, wl.schedule, RuntimeOverheads().scaled(0.0)), real
    )
    return {"real": real, "with": with_oh, "without": without_oh}


def ablate_schedules():
    """FF accuracy with schedule modelling vs forced dynamic,1 on an
    imbalanced static loop."""

    def ramp(tr):
        with tr.section("ramp"):
            for i in range(24):
                with tr.task():
                    tr.compute((i + 1) * 50_000)

    p = prophet()
    profile = p.profile(ramp)
    real = _real(profile, "static")
    with_sched = error_ratio(_ff(profile, "static"), real)
    forced = error_ratio(_ff(profile, "dynamic,1"), real)
    return {"real": real, "with": with_sched, "without": forced}


def ablate_traversal_subtraction():
    """Synthesizer accuracy with vs without traversal-overhead subtraction
    on a large tree of tiny nodes."""

    def fine_grained(tr):
        with tr.section("fine"):
            for _ in range(600):
                with tr.task():
                    tr.compute(800)

    p = prophet()
    profile = p.profile(fine_grained)
    real = _real(profile, "static,1", threads=4)
    ex = ParallelExecutor(MACHINE, schedule=Schedule.static_chunk(1))
    replay = ex.execute_profile(profile.tree, 4, ReplayMode.FAKE)
    serial = profile.serial_cycles()
    gross_total = sum(r.gross_cycles for r in replay.sections)
    net_total = sum(r.net_cycles for r in replay.sections)
    with_sub = error_ratio(serial / net_total, real)
    without_sub = error_ratio(serial / gross_total, real)
    return {"real": real, "with": with_sub, "without": without_sub}


def ablate_memory_model():
    """Synthesizer accuracy with vs without burden factors on FT."""
    p = prophet()
    wl = get_workload("npb_ft", **BENCH_SCALES["npb_ft"])
    profile = p.profile(wl.program)
    real = _real(profile, wl.schedule, threads=12)
    with_mem = p.predict(
        profile, [12], schedules=[wl.schedule], methods=("syn",), memory_model=True
    ).speedup(method="syn", n_threads=12)
    without_mem = p.predict(
        profile, [12], schedules=[wl.schedule], methods=("syn",), memory_model=False
    ).speedup(method="syn", n_threads=12)
    return {
        "real": real,
        "with": error_ratio(with_mem, real),
        "without": error_ratio(without_mem, real),
    }


def run_ablations():
    return {
        "overhead modelling (LU)": ablate_overheads(),
        "schedule modelling (ramp/static)": ablate_schedules(),
        "traversal subtraction (fine tree)": ablate_traversal_subtraction(),
        "memory model (FT @12)": ablate_memory_model(),
    }


def test_ablation_design(benchmark):
    rows = benchmark.pedantic(run_ablations, rounds=1, iterations=1)

    print(banner("Ablations — prediction error with / without each design choice"))
    print(f"{'design choice':<34} {'real':>6} {'with':>8} {'without':>8}")
    for name, r in rows.items():
        print(f"{name:<34} {r['real']:>6.2f} {r['with']:>8.1%} {r['without']:>8.1%}")

    for name, r in rows.items():
        assert r["with"] < r["without"], name
        assert r["with"] < 0.12, name
    # The big guns: schedule modelling and the memory model each avoid
    # multi-x mispredictions.
    assert rows["schedule modelling (ramp/static)"]["without"] > 0.25
    assert rows["memory model (FT @12)"]["without"] > 1.0
