"""Observability cost — the disabled tracer must be (near) free.

The contract in ``docs/observability.md``: every instrumentation hook is a
single attribute check when tracing is off, so leaving the hooks compiled
into the replay/emulation hot paths costs well under 2% of the Fig. 11
bench path.  This bench measures that three ways:

1. wall-clock A/B — the same REAL replay with the tracer disabled vs a
   fully detached baseline (they share code, so this is the noise floor);
2. hook census — an enabled run counts how many hook sites actually fire;
3. guard micro-cost — the per-call price of the ``if not self.enabled``
   early-out, measured on a tight loop.

The reported estimate is ``hooks x guard_cost / disabled_runtime`` — an
upper bound that is robust to scheduler noise, unlike raw A/B deltas.
"""

from __future__ import annotations

import time

from _common import BENCH_SCALES, MACHINE, banner, prophet
from repro.core.executor import ParallelExecutor, ReplayMode
from repro.obs import Tracer
from repro.workloads import get_workload

#: Replay thread count — matches the Fig. 11 panel's densest grid point.
N_THREADS = 8

#: Overhead budget for the disabled tracer (ISSUE acceptance: < 2%).
BUDGET = 0.02


def _time_replay(profile, tracer, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        ex = ParallelExecutor(MACHINE, tracer=tracer)
        t0 = time.perf_counter()
        ex.execute_profile(profile.tree, N_THREADS, ReplayMode.REAL)
        best = min(best, time.perf_counter() - t0)
    return best


def _guard_cost_ns(calls=200_000):
    tr = Tracer(enabled=False)
    span = tr.span
    t0 = time.perf_counter()
    for _ in range(calls):
        span("x", ts=0.0, dur=1.0, track="t")
    return (time.perf_counter() - t0) / calls * 1e9


def run_tracer_overhead():
    p = prophet()
    wl = get_workload("npb_ep", **BENCH_SCALES["npb_ep"])
    profile = p.profile(wl.program)

    disabled_s = _time_replay(profile, Tracer(enabled=False))

    loud = Tracer(enabled=True)
    enabled_s = _time_replay(profile, loud, repeats=1)
    hooks = len(loud) + loud.dropped

    guard_ns = _guard_cost_ns()
    est_overhead = hooks * guard_ns * 1e-9 / disabled_s

    return {
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "hooks": hooks,
        "guard_ns": guard_ns,
        "est_overhead": est_overhead,
    }


def test_tracer_overhead(benchmark):
    r = benchmark.pedantic(run_tracer_overhead, rounds=1, iterations=1)

    print(banner("Observability — disabled-tracer overhead"))
    print(f"replay (tracer off)   {r['disabled_s'] * 1e3:>8.1f} ms")
    print(f"replay (tracer on)    {r['enabled_s'] * 1e3:>8.1f} ms")
    print(f"hook sites fired      {r['hooks']:>8d}")
    print(f"guard cost            {r['guard_ns']:>8.0f} ns/call")
    print(f"est. disabled cost    {r['est_overhead']:>8.2%}  (budget {BUDGET:.0%})")

    assert r["hooks"] > 0, "enabled run recorded no events"
    assert r["est_overhead"] < BUDGET
    # Sanity on the direct A/B: enabled tracing itself stays cheap (the ring
    # append is O(1)); 2x is a very loose bound that only trips if a hook
    # starts doing real work inline.
    assert r["enabled_s"] < 2.0 * r["disabled_s"] + 0.05
