"""Validation cost — the disabled invariant checker must be (near) free.

The contract in ``docs/validation.md`` mirrors the tracer's
(``bench_tracer_overhead.py``): every invariant hook is a single attribute
test (``if checker.enabled:``) when checking is off, so leaving the hooks
compiled into the kernel/replay hot paths costs well under 2%.  Measured
three ways:

1. wall-clock A/B — the same REAL replay with the checker disabled vs
   enabled (the enabled run includes the checks themselves);
2. hook census — an enabled run counts how many checks actually evaluate
   (``checker.checks_run``), an upper bound on guarded sites fired since
   several hooks guard more work than one check;
3. guard micro-cost — the per-site price of the attribute-test early-out.

The reported estimate is ``hooks x guard_cost / disabled_runtime``.
Replays run with ``memoize=False``: the cross-grid section memo would
short-circuit repeat replays straight past the kernel, and it is exactly
the kernel hot path whose hook cost is being bounded here.
"""

from __future__ import annotations

import time

from _common import BENCH_SCALES, MACHINE, banner, prophet
from repro.core.executor import ParallelExecutor, ReplayMode
from repro.validate import InvariantChecker, get_checker
from repro.workloads import get_workload

#: Replay thread count — matches the Fig. 11 panel's densest grid point.
N_THREADS = 8

#: Overhead budget for the disabled checker (ISSUE acceptance: < 2%).
BUDGET = 0.02


def _time_replay(profile, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        ex = ParallelExecutor(MACHINE, memoize=False)
        t0 = time.perf_counter()
        ex.execute_profile(profile.tree, N_THREADS, ReplayMode.REAL)
        best = min(best, time.perf_counter() - t0)
    return best


def _guard_cost_ns(calls=200_000):
    checker = InvariantChecker(enabled=False)
    fired = 0
    t0 = time.perf_counter()
    for _ in range(calls):
        if checker.enabled:
            fired += 1
    elapsed = time.perf_counter() - t0
    assert fired == 0
    return elapsed / calls * 1e9


def run_validate_overhead():
    p = prophet()
    wl = get_workload("npb_ep", **BENCH_SCALES["npb_ep"])
    profile = p.profile(wl.program)

    checker = get_checker()
    prev = (checker.enabled, checker.mode)
    try:
        checker.enabled = False
        disabled_s = _time_replay(profile)

        checker.enabled, checker.mode = True, "raise"
        checker.reset()
        enabled_s = _time_replay(profile, repeats=1)
        hooks = checker.checks_run
    finally:
        checker.enabled, checker.mode = prev
        checker.reset()

    guard_ns = _guard_cost_ns()
    est_overhead = hooks * guard_ns * 1e-9 / disabled_s

    return {
        "disabled_s": disabled_s,
        "enabled_s": enabled_s,
        "hooks": hooks,
        "guard_ns": guard_ns,
        "est_overhead": est_overhead,
    }


def test_validate_overhead(benchmark):
    r = benchmark.pedantic(run_validate_overhead, rounds=1, iterations=1)

    print(banner("Validation — disabled-checker overhead"))
    print(f"replay (checks off)   {r['disabled_s'] * 1e3:>8.1f} ms")
    print(f"replay (checks on)    {r['enabled_s'] * 1e3:>8.1f} ms")
    print(f"checks evaluated      {r['hooks']:>8d}")
    print(f"guard cost            {r['guard_ns']:>8.0f} ns/site")
    print(f"est. disabled cost    {r['est_overhead']:>8.2%}  (budget {BUDGET:.0%})")

    assert r["hooks"] > 0, "enabled run evaluated no checks"
    assert r["est_overhead"] < BUDGET
    # Direct A/B sanity: even with every check evaluating, the replay must
    # not collapse — checks are O(1) arithmetic, no allocation on the hot
    # path.  3x is a loose tripwire for accidentally-quadratic checks.
    assert r["enabled_s"] < 3.0 * r["disabled_s"] + 0.05
