"""Table IV — expected-speedup classification from memory behaviour.

The paper classifies applications by serial DRAM traffic (Low / Moderate /
Heavy) and by how LLC misses-per-instruction change from serial to parallel;
the lightweight model covers the "unchanged" row.  This bench classifies all
eight benchmarks from their serial profiles and validates the verdicts
against the measured 12-core speedups: "Scalable" workloads exceed 8x,
"Slowdown++" ones stay below half-linear.
"""

from __future__ import annotations

from _common import BENCH_SCALES, MACHINE, banner, prophet
from repro.core.memmodel import TrafficLevel, classify_memory_behavior
from repro.workloads import PAPER_ORDER, get_workload


def run_classification():
    p = prophet()
    out = {}
    for name in PAPER_ORDER:
        wl = get_workload(name, **BENCH_SCALES[name])
        profile = p.profile(wl.program)
        # Traffic-weighted classification over top-level sections: use the
        # section carrying the most traffic (the one that limits scaling).
        peak_traffic = max(
            (sc.traffic_mbs(MACHINE) for sc in profile.sections.values()),
            default=0.0,
        )
        level, verdict = classify_memory_behavior(peak_traffic, MACHINE)
        real12 = p.measure_real(
            profile, [12], paradigm=wl.paradigm, schedule=wl.schedule
        ).speedup(n_threads=12)
        p.attach_burdens(profile, [12])
        worst_burden = max(
            (table.get(12, 1.0) for table in profile.burdens.values()),
            default=1.0,
        )
        out[name] = (peak_traffic, level, verdict, real12, worst_burden)
    return out


def test_table4_classification(benchmark):
    rows = benchmark.pedantic(run_classification, rounds=1, iterations=1)

    print(banner("Table IV — memory-behaviour classification (Par ~= Ser row)"))
    print(f"{'benchmark':<14} {'traffic MB/s':>12} {'level':>10} "
          f"{'verdict':>12} {'real @12':>9} {'beta @12':>9}")
    for name, (traffic, level, verdict, real12, burden) in rows.items():
        print(
            f"{name:<14} {traffic:>12.0f} {level.value:>10} "
            f"{verdict:>12} {real12:>9.2f} {burden:>9.2f}"
        )

    # Table IV classifies *memory* behaviour only: "Scalable" means memory
    # does not cap the speedup (burden stays at 1), not that the program
    # scales — QSort is Scalable memory-wise yet structure-limited.
    for name, (traffic, level, verdict, real12, burden) in rows.items():
        if verdict == "Scalable":
            assert burden < 1.1, name
        if verdict == "Slowdown++":
            assert burden > 1.2, name
            assert real12 < 6.5, name

    # The suite covers at least two distinct classes (EP vs FT at minimum).
    levels = {level for _, level, _, _, _ in rows.values()}
    assert TrafficLevel.LOW in levels
    assert TrafficLevel.HEAVY in levels
