"""Cold vs warm request latency of the ``repro serve`` daemon.

Not a paper artifact: this bench tracks the process-lifetime cache layer
(``repro.serve.cachelayer``) behind the prediction daemon.  One server is
started in-process on an ephemeral port and the same ``/predict`` request
is sent three ways over real HTTP:

- **cold** — empty caches: the request pays Ψ/Φ calibration, interval
  profiling, and the full grid evaluation;
- **warm** — byte-identical repeat: served from the ``response`` cache
  class without touching the compute queue;
- **recompute** — response class cleared but predictor/profile classes
  kept: the grid is re-evaluated against warm calibration, burden tables,
  executors, and columnar lowerings.

The cold/warm ratio is the ISSUE 9 acceptance floor (≥5x) recorded in
``BENCH_sweep.json`` by ``run_all.py``; the recompute ratio shows what the
promoted pipeline caches buy beyond whole-response memoisation.
"""

from __future__ import annotations

import json
import time
import urllib.request

from repro.serve import ServeConfig, create_server

#: Acceptance floor for the cold/warm ratio (checked by run_all.py and the
#: pytest wrapper).  Measured ~100x+ on the dev container: a warm repeat
#: is one LRU lookup, while a cold request calibrates the memory model.
SPEEDUP_FLOOR = 5.0

#: The repeated request: a real workload with the memory model on, so the
#: cold path includes the calibration warmup a daemon exists to amortise.
PAYLOAD = {
    "workload": "npb_ep",
    "threads": [2, 4, 8],
    "schedules": ["static"],
    "methods": ["ff", "syn"],
    "memory_model": True,
}


def _post(port: int, path: str, payload: dict) -> dict:
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(payload).encode(),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=300) as resp:
        return json.loads(resp.read())


def _timed(port: int, payload: dict) -> tuple[float, dict]:
    t0 = time.perf_counter()
    body = _post(port, "/predict", payload)
    return time.perf_counter() - t0, body


def run_serve(quick: bool = False) -> dict:
    """Measure cold, warm, and recompute latency of one daemon."""
    payload = dict(PAYLOAD)
    if quick:
        payload["threads"] = [2, 4]
    server = create_server(ServeConfig(port=0)).start()
    try:
        cold_s, cold = _timed(server.port, payload)
        assert cold["cached"] is False
        warm_s, warm = _timed(server.port, payload)
        assert warm["cached"] is True
        assert warm["reports"] == cold["reports"]
        # Drop only the response class: the repeat below re-runs the grid
        # against warm calibration/profile/executor/engine caches.
        server.state.cache.responses.clear()
        recompute_s, recomputed = _timed(server.port, payload)
        assert recomputed["cached"] is False
        assert recomputed["reports"] == cold["reports"]
    finally:
        server.stop()
    grid = len(payload["threads"]) * len(payload["schedules"]) * 2
    return {
        "grid_points": grid,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "recompute_s": recompute_s,
        "speedup": cold_s / warm_s if warm_s > 0 else float("inf"),
        "recompute_speedup": cold_s / recompute_s if recompute_s > 0 else float("inf"),
        "threshold": SPEEDUP_FLOOR,
    }


# ------------------------------------------------------- pytest-benchmark


def test_serve_warm_speedup(benchmark):
    """A warm daemon answers the repeated request ≥5x faster than cold."""
    r = benchmark.pedantic(run_serve, kwargs=dict(quick=True), rounds=1)
    assert r["speedup"] >= SPEEDUP_FLOOR, (
        f"serve cache layer regressed: {r['speedup']:.1f}x < {SPEEDUP_FLOOR}x "
        f"(cold {r['cold_s'] * 1e3:.1f} ms, warm {r['warm_s'] * 1e3:.2f} ms)"
    )
    assert r["recompute_speedup"] >= 1.0


if __name__ == "__main__":
    for key, value in run_serve().items():
        print(f"{key}: {value}")
