"""Kernel hot-path microbenches — event sparsity and replay coalescing.

Not a paper artifact: these benches track the three fast-path layers behind
``repro sweep`` (lazy quantum arming + incremental reconfigure in the DES
kernel, RLE-aware coalesced OpenMP lowering, and the cross-grid section
memo).  Each bench runs the eager/exact variant and the optimized variant
of the *same* workload and asserts the deterministic wins (event counts,
solve counts, identical results); the wall-clock speedups feed the numbers
recorded in docs/performance.md §4.
"""

from __future__ import annotations

import time

from repro.core.executor import ParallelExecutor, ReplayMode, clear_section_memo
from repro.core.tree import Node, NodeKind, ProgramTree
from repro.simhw import MachineConfig
from repro.simos import Compute, Join, SimKernel, Spawn

#: Quantum-churn machine: a short timeslice makes the eager kernel pay one
#: heap event per slice per core even when nobody is waiting.
CHURN_MACHINE = MachineConfig(n_cores=4, timeslice_cycles=5_000.0)

#: Replay machine for the coalescing bench (the paper's 12-core platform).
REPLAY_MACHINE = MachineConfig(n_cores=12)


def _time(fn, repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn()`` in seconds."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


# ------------------------------------------------------------ quantum churn


def _churn_kernel(optimize: bool, cycles: float = 25_000_000.0) -> SimKernel:
    """One long uncontended compute per core — pure quantum churn."""
    kernel = SimKernel(CHURN_MACHINE, optimize=optimize)

    def worker():
        yield Compute(cycles=cycles)

    def master():
        ts = []
        for _ in range(CHURN_MACHINE.n_cores):
            ts.append((yield Spawn(worker())))
        for t in ts:
            yield Join(t)

    kernel.spawn(master())
    return kernel


def run_churn(quick: bool = False) -> dict:
    """Uncontended long computes: eager arms a quantum per slice, the sparse
    kernel arms none (no waiter) and finishes on O(1) events."""
    cycles = 2_500_000.0 if quick else 25_000_000.0
    repeats = 1 if quick else 3

    results = {}
    for label, optimize in (("eager", False), ("sparse", True)):
        kernels = []

        def run():
            k = _churn_kernel(optimize, cycles)
            k.run()
            kernels.append(k)

        secs = _time(run, repeats)
        k = kernels[-1]
        results[label] = dict(
            secs=secs,
            events=k.events_pushed,
            quantum_arms=k.quantum_arms,
            final=k.clock.now,
        )
    eager, sparse = results["eager"], results["sparse"]
    # The whole point: pending-event count is O(1) in compute duration.
    assert sparse["quantum_arms"] == 0
    assert sparse["events"] * 20 <= eager["events"]
    assert sparse["final"] == eager["final"]
    results["speedup"] = eager["secs"] / sparse["secs"]
    return results


# ------------------------------------------------- zero-demand reconfigure


def _spawn_churn_kernel(optimize: bool, n_tasks: int) -> SimKernel:
    """Oversubscribed spawn/join churn, all demand-free: every dispatch and
    completion triggers a reconfigure pass, none of which needs a solve."""
    kernel = SimKernel(CHURN_MACHINE, optimize=optimize)

    def worker(n):
        for _ in range(4):
            yield Compute(cycles=1_000.0 + n)

    def master():
        ts = []
        for n in range(n_tasks):
            ts.append((yield Spawn(worker(n))))
        for t in ts:
            yield Join(t)

    kernel.spawn(master())
    return kernel


def run_zero_demand(quick: bool = False) -> dict:
    """Demand-free replay churn: the sparse kernel answers every reconfigure
    from the zero-demand fast path — no DRAM solve at all."""
    n_tasks = 64 if quick else 512
    results = {}
    for label, optimize in (("eager", False), ("sparse", True)):
        k = _spawn_churn_kernel(optimize, n_tasks)
        secs = _time(lambda: k.run(), repeats=1)
        results[label] = dict(
            secs=secs,
            solves=k.reconfig_solves,
            skips=k.reconfig_skips,
            final=k.clock.now,
        )
    eager, sparse = results["eager"], results["sparse"]
    assert sparse["solves"] == 0
    assert sparse["skips"] > 0
    assert eager["solves"] > 0
    assert sparse["final"] == eager["final"]
    return results


# --------------------------------------------------- coalesced replay


def _repeat_tree(repeat: int) -> ProgramTree:
    """One section of four RLE-compressed tasks, ``repeat`` iterations each."""
    root = Node(NodeKind.ROOT)
    sec = root.add(Node(NodeKind.SEC, name="loop"))
    for _ in range(4):
        task = sec.add(Node(NodeKind.TASK, repeat=repeat))
        task.add(
            Node(
                NodeKind.U,
                length=10_000.0,
                cpu_cycles=10_000.0,
                instructions=20_000.0,
            )
        )
    return ProgramTree(root)


def run_coalesce(quick: bool = False) -> dict:
    """Exact per-iteration lowering vs the aggregated-member fast path on a
    high-trip-count static loop."""
    repeat = 500 if quick else 5_000
    tree = _repeat_tree(repeat)
    n_bodies = 4 * repeat
    results = {}
    for label, coalesce in (("exact", False), ("coalesced", True)):
        clear_section_memo()
        ex = ParallelExecutor(
            REPLAY_MACHINE, paradigm="omp", coalesce=coalesce, memoize=False
        )

        def run():
            return ex.execute_profile(tree, 8, ReplayMode.REAL)

        secs = _time(run, repeats=1)
        res = run()
        results[label] = dict(
            secs=secs,
            total=res.total_cycles,
            coalesced=ex.coalesced_sections,
            exact=ex.exact_sections,
        )
    exact, co = results["exact"], results["coalesced"]
    assert co["coalesced"] >= 1 and exact["coalesced"] == 0
    assert abs(co["total"] - exact["total"]) <= 1e-9 * exact["total"]
    results["speedup"] = exact["secs"] / co["secs"]
    results["bodies_per_s"] = n_bodies / co["secs"]
    return results


def run_hotpath(quick: bool = False) -> dict:
    """All three layers, for ``run_all.py``'s report table."""
    return {
        "churn": run_churn(quick),
        "zero_demand": run_zero_demand(quick),
        "coalesce": run_coalesce(quick),
    }


# ------------------------------------------------------- pytest-benchmark


def test_churn_event_sparsity(benchmark):
    """Quantum churn through the sparse kernel; asserts the event-count win."""
    r = benchmark.pedantic(run_churn, kwargs=dict(quick=True), rounds=1)
    assert r["sparse"]["events"] * 20 <= r["eager"]["events"]


def test_zero_demand_skips(benchmark):
    """Demand-free churn: zero DRAM solves on the sparse path."""
    r = benchmark.pedantic(run_zero_demand, kwargs=dict(quick=True), rounds=1)
    assert r["sparse"]["solves"] == 0


def test_coalesced_replay_throughput(benchmark):
    """Aggregated-member lowering vs exact expansion, identical results."""
    r = benchmark.pedantic(run_coalesce, kwargs=dict(quick=True), rounds=1)
    assert r["coalesced"]["coalesced"] >= 1
