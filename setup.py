"""Setup shim for legacy editable installs (offline environment without the
``wheel`` package; ``pip install -e . --no-build-isolation`` uses this)."""
from setuptools import setup

setup()
