"""Quickstart: predict the speedup of an annotated serial program.

The workflow of the paper's Fig. 3 in five steps:

1. annotate a serial program (PAR_SEC / PAR_TASK / LOCK pairs);
2. interval-profile it into a program tree;
3. calibrate the machine's memory model (cached per machine);
4. emulate parallel execution (fast-forward and synthesizer);
5. read the speedup report.

Run:  python examples/quickstart.py
"""

from repro import ParallelProphet, WESTMERE_12


def my_program(tracer):
    """A serial program with a parallelizable loop and a critical section.

    The loop is imbalanced (iteration i costs ~i) and every iteration
    appends to a shared result under a lock — a typical candidate loop.
    """
    tracer.compute(200_000)  # serial setup
    with tracer.section("hot_loop"):
        for i in range(32):
            with tracer.task(f"iter{i}"):
                tracer.compute(50_000 + i * 8_000)  # imbalanced work
                with tracer.lock(1):
                    tracer.compute(2_000)  # shared accumulation
    tracer.compute(100_000)  # serial teardown


def main() -> None:
    prophet = ParallelProphet(machine=WESTMERE_12)

    print("profiling the annotated serial program...")
    profile = prophet.profile(my_program)
    print(f"  serial time: {profile.serial_cycles() / 1e6:.2f} Mcycles")
    print(f"  parallel sections: {list(profile.sections)}")
    print(f"  Amdahl serial fraction: {profile.tree.serial_fraction():.1%}")
    print(f"  profiling slowdown: {profile.stats.slowdown:.2f}x")

    threads = [2, 4, 6, 8, 10, 12]
    print("\npredicting with both emulators, three OpenMP schedules...")
    report = prophet.predict(
        profile,
        threads=threads,
        schedules=["static", "static,1", "dynamic,1"],
        methods=("ff", "syn"),
    )
    print(report.to_table())

    print("\ncross-checking against the simulated ground truth (static,1):")
    real = prophet.measure_real(profile, threads, schedule="static,1")
    predicted = [
        report.speedup(method="syn", schedule="static,1", n_threads=t)
        for t in threads
    ]
    for t, p in zip(threads, predicted):
        r = real.speedup(n_threads=t)
        print(f"  {t:2d} threads: predicted {p:5.2f}x, real {r:5.2f}x "
              f"(error {abs(p - r) / r:.1%})")


if __name__ == "__main__":
    main()
