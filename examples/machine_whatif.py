"""What-if analysis: how does the prediction change with the machine?

Because the memory model is calibrated per machine (Eqs. 6-7 run on
whatever machine you give it), Parallel Prophet can answer procurement-style
questions before buying hardware: *would doubling DRAM bandwidth fix FT's
saturation?  How many cores are worth paying for at each bandwidth?*

This example sweeps peak DRAM bandwidth, recalibrates, and re-predicts the
FT speedup curve — the serial profile is reused; only the machine changes.

Run:  python examples/machine_whatif.py
"""

from repro import ParallelProphet
from repro.core.asciiplot import speedup_chart
from repro.simhw import MachineConfig
from repro.workloads import get_workload

THREADS = [2, 4, 6, 8, 10, 12]
BANDWIDTHS = [8.0, 12.0, 24.0, 48.0]  # GB/s


def main() -> None:
    curves = {}
    for gbs in BANDWIDTHS:
        machine = MachineConfig(n_cores=12, dram_peak_gbs=gbs)
        prophet = ParallelProphet(machine=machine)
        wl = get_workload("npb_ft", planes=24, timesteps=1)
        profile = prophet.profile(wl.program)
        report = prophet.predict(
            profile, THREADS, methods=("syn",), memory_model=True
        )
        curves[f"{gbs:.0f}GB/s"] = [
            report.speedup(method="syn", n_threads=t) for t in THREADS
        ]

    print("NPB-FT predicted speedup vs DRAM peak bandwidth "
          "(memory model recalibrated per machine):\n")
    print(speedup_chart(curves, THREADS, height=14))

    print("\nuseful-core count (fewest cores within 95% of the curve's max):")
    for label, ys in curves.items():
        best = max(ys)
        useful = next(t for t, y in zip(THREADS, ys) if y >= 0.95 * best)
        print(f"  {label:>8}: {useful:2d} cores "
              f"(12-core speedup {ys[-1]:.1f}x)")

    twelve = curves["12GB/s"][-1]
    fat = curves["48GB/s"][-1]
    print(f"\n4x the bandwidth buys {fat / twelve:.1f}x the 12-core speedup "
          "on this workload — the kind of answer the paper's tool exists "
          "to provide before any parallel code is written.")


if __name__ == "__main__":
    main()
