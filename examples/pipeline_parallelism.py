"""Pipeline parallelism (the paper's Section VII-E extension).

The paper notes that "pipelining can be easily supported by extending
annotations [23] and the emulation algorithm" — this reproduction implements
it.  A video-transcoder-like loop (decode -> filter -> encode) cannot be
parallelized as independent iterations (the encoder is stateful), but it
*can* be pipelined: stages bound to threads, iterations streaming through.

The predictor answers the two questions that matter before writing the
pipeline: what's the steady-state speedup (bounded by the bottleneck
stage), and how many threads are worth using (no more than the number of
stage clusters)?

Run:  python examples/pipeline_parallelism.py
"""

from repro import ParallelProphet, WESTMERE_12

FRAMES = 48
STAGES = {  # cycles per frame
    "decode": 180_000,
    "filter1": 240_000,
    "filter2": 120_000,
    "encode": 300_000,  # the stateful bottleneck
}


def transcoder(tr):
    with tr.section("frames", pipeline=True):
        for _f in range(FRAMES):
            with tr.task():
                for _name, cost in STAGES.items():
                    with tr.stage(_name):
                        tr.compute(cost)


def main() -> None:
    prophet = ParallelProphet(machine=WESTMERE_12)
    profile = prophet.profile(transcoder)

    serial_per_frame = sum(STAGES.values())
    bottleneck = max(STAGES.values())
    print(f"serial cost per frame: {serial_per_frame / 1e3:.0f} kcycles; "
          f"bottleneck stage (encode): {bottleneck / 1e3:.0f} kcycles")
    print(f"theoretical steady-state ceiling: "
          f"{serial_per_frame / bottleneck:.2f}x\n")

    threads = [1, 2, 3, 4, 6, 8]
    report = prophet.predict(
        profile, threads=threads, methods=("ff", "syn"), memory_model=False
    )
    real = prophet.measure_real(profile, threads)

    print(f"  {'threads':>8} {'FF':>7} {'SYN':>7} {'real':>7}")
    for t in threads:
        print(
            f"  {t:>8}"
            f" {report.speedup(method='ff', n_threads=t):>7.2f}"
            f" {report.speedup(method='syn', n_threads=t):>7.2f}"
            f" {real.speedup(n_threads=t):>7.2f}"
        )

    print("\nthe speedup plateaus once every stage cluster is bottlenecked "
          "by 'encode' — adding threads beyond that point buys nothing, "
          "which is exactly what a programmer needs to know in advance.")


if __name__ == "__main__":
    main()
