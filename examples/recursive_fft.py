"""Recursive (Cilk-style) parallelism: where the synthesizer earns its keep.

The paper's Fig. 1(b): recursive FFT parallelism defeats naive OpenMP teams
(physical-thread oversubscription) and defeats analytical emulators too —
the fast-forward emulator cannot model OS preemption or work stealing
(Fig. 7), and the Suitability tool gives no meaningful prediction at all.
The program-synthesis emulator simply *runs* a fake-delay clone through a
real work-stealing runtime, inheriting all of that behaviour for free.

Run:  python examples/recursive_fft.py
"""

from repro import ParallelProphet, WESTMERE_12
from repro.baselines import SuitabilityAnalysis
from repro.workloads import get_workload


def main() -> None:
    prophet = ParallelProphet(machine=WESTMERE_12)
    fft = get_workload("ompscr_fft", n_points=4096)
    print(f"workload: {fft.description}")
    print(f"input: {fft.input_label}, paradigm: {fft.paradigm}")

    profile = prophet.profile(fft.program)
    print(f"tree depth: {profile.tree.max_depth()} "
          f"({profile.tree.logical_nodes()} nodes)")

    threads = [2, 4, 8, 12]

    print("\nSuitability-like baseline:")
    suit = SuitabilityAnalysis()
    if not suit.supports(profile):
        print("  no meaningful prediction — recursion nests deeper than the "
              "tool can emulate (exactly the paper's FFT-Cilk finding)")

    print("\nfast-forward vs synthesizer vs real (Cilk work stealing):")
    ff = prophet.predict(
        profile, threads, paradigm="cilk", methods=("ff",), memory_model=True
    )
    syn = prophet.predict(
        profile, threads, paradigm="cilk", methods=("syn",), memory_model=True
    )
    real = prophet.measure_real(profile, threads, paradigm="cilk")
    print(f"  {'threads':>8} {'FF':>7} {'SYN':>7} {'real':>7}")
    for t in threads:
        print(
            f"  {t:>8} {ff.speedup(method='ff', n_threads=t):>7.2f} "
            f"{syn.speedup(method='syn', n_threads=t):>7.2f} "
            f"{real.speedup(n_threads=t):>7.2f}"
        )

    print("\nmemory also matters here (118 MB streamed per level):")
    for t in threads:
        print(f"  burden factor at {t:2d} threads: "
              f"{profile.burden_for('fft', t):.2f}")


if __name__ == "__main__":
    main()
