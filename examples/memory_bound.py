"""Predicting memory-limited speedup saturation (the paper's Fig. 2).

NPB-FT streams an 850 MB array through the memory system every FFT pass.
A memory-blind predictor promises near-linear scaling; the real code
saturates near 4.5x as DRAM bandwidth fills.  Parallel Prophet's burden
factors — computed from *serial-run* hardware counters plus a one-off
machine calibration — predict the saturation before any parallel code
exists.

Run:  python examples/memory_bound.py
"""

from repro import ParallelProphet, WESTMERE_12
from repro.core.memmodel import classify_memory_behavior
from repro.workloads import get_workload


def main() -> None:
    prophet = ParallelProphet(machine=WESTMERE_12)

    print("calibrating the machine's memory model (Eqs. 6-7)...")
    cal = prophet.calibration([2, 4, 6, 8, 10, 12])
    print(cal.summary())

    ft = get_workload("npb_ft")
    print(f"\nworkload: {ft.description} ({ft.input_label})")
    profile = prophet.profile(ft.program)

    print("\nper-section serial counters -> classification (Table IV):")
    for name, sc in profile.sections.items():
        traffic = sc.traffic_mbs(WESTMERE_12)
        level, verdict = classify_memory_behavior(traffic, WESTMERE_12)
        print(f"  {name:<10} MPI={sc.mpi:.4f}  traffic={traffic:6.0f} MB/s"
              f"  -> {level.value}: {verdict}")

    threads = [2, 4, 6, 8, 10, 12]
    pred_blind = prophet.predict(profile, threads, memory_model=False)
    pred_mem = prophet.predict(profile, threads, memory_model=True)
    real = prophet.measure_real(profile, threads)

    print("\nburden factors per thread count:")
    sec = next(iter(profile.sections))
    print("  " + "  ".join(
        f"{t}:{profile.burden_for(sec, t):.2f}" for t in threads
    ))

    print(f"\n  {'threads':>8} {'blind':>7} {'with-mem':>9} {'real':>7}")
    for t in threads:
        print(
            f"  {t:>8}"
            f" {pred_blind.speedup(method='syn', n_threads=t):>7.2f}"
            f" {pred_mem.speedup(method='syn', n_threads=t):>9.2f}"
            f" {real.speedup(n_threads=t):>7.2f}"
        )
    print("\nthe memory-blind prediction keeps climbing; the burden-factor "
          "prediction saturates with the real machine — Fig. 2 reproduced.")


if __name__ == "__main__":
    main()
