"""Input sensitivity: how stable are predictions across program inputs?

The paper's first stated limitation (§VII-E): "obviously, a profiling
result is dependent on an input."  Before trusting a prediction, a user
should know whether it would survive a different input size.  This example
profiles LU reduction at several matrix sizes and compares the predicted
speedup curves: the *shape* stabilises quickly with size (the diagonal
structure is scale-free), while small inputs under-predict because fork/join
overhead looms larger — quantifying exactly how "representative" an input
must be.

Run:  python examples/input_sensitivity.py
"""

from repro import ParallelProphet, WESTMERE_12
from repro.core.asciiplot import speedup_chart
from repro.workloads import get_workload

THREADS = [2, 4, 6, 8, 10, 12]
SIZES = [32, 64, 96, 128]


def main() -> None:
    prophet = ParallelProphet(machine=WESTMERE_12)
    curves = {}
    for size in SIZES:
        wl = get_workload("ompscr_lu", size=size)
        profile = prophet.profile(wl.program)
        report = prophet.predict(
            profile,
            THREADS,
            schedules=[wl.schedule],
            methods=("syn",),
            memory_model=True,
        )
        curves[f"n={size}"] = [
            report.speedup(method="syn", n_threads=t) for t in THREADS
        ]

    print("LU reduction: predicted speedup at four input sizes\n")
    print(speedup_chart(curves, THREADS, height=13))

    small, big = curves[f"n={SIZES[0]}"], curves[f"n={SIZES[-1]}"]
    print("\nprediction drift vs the largest input:")
    for label, ys in curves.items():
        drift = max(abs(a - b) / b for a, b in zip(ys, big))
        print(f"  {label:>6}: max drift {drift:6.1%}")

    print(
        "\nsmall inputs under-predict (the recurring fork/join overhead of "
        "the inner loop weighs more when sections are short); by "
        f"n={SIZES[-2]} the curve is within ~10% of n={SIZES[-1]}."
        "\n=> profile with an input big enough that per-section work "
        "dominates the runtime overheads — then the prediction transfers."
    )


if __name__ == "__main__":
    main()
