"""Semi-automatic annotation via dependence analysis (paper Section IV-A).

The paper notes annotation "can be made fully or semi-automatic by ...
dynamic dependence analyses [20]" — SD3, by the same authors.  This example
walks the full assisted workflow on three candidate loops:

1. profile each loop's memory accesses (strided sets, SD3-style);
2. classify cross-iteration dependences (flow / anti / output, reductions);
3. take the suggester's annotation advice;
4. apply it and let Parallel Prophet predict the payoff.

Run:  python examples/annotation_assist.py
"""

from repro import ParallelProphet, WESTMERE_12
from repro.depend import (
    LoopDependenceProfiler,
    Parallelizability,
    StrideRange,
    suggest,
)

N = 32
A_BASE, B_BASE, SUM_CELL = 0x10000, 0x20000, 0x30000
ROW_BYTES = 8 * N


def analyze_stencil_rows():
    """for i: b[i][:] = f(a[i][:]) — independent rows: DOALL."""
    dp = LoopDependenceProfiler("stencil_rows")
    for i in range(N):
        with dp.iteration():
            dp.read(StrideRange.block(A_BASE + i * ROW_BYTES, N, 8))
            dp.write(StrideRange.block(B_BASE + i * ROW_BYTES, N, 8))
    return dp.finish()


def analyze_dot_product():
    """for i: total += a[i] * b[i] — a reduction."""
    dp = LoopDependenceProfiler("dot_product")
    for i in range(N):
        with dp.iteration():
            dp.read(StrideRange.single(A_BASE + 8 * i))
            dp.read(StrideRange.single(B_BASE + 8 * i))
            dp.read(StrideRange.single(SUM_CELL))
            dp.write(StrideRange.single(SUM_CELL))
    return dp.finish()


def analyze_prefix_sum():
    """for i: a[i] += a[i-1] — a loop-carried recurrence: serial."""
    dp = LoopDependenceProfiler("prefix_sum")
    for i in range(N):
        with dp.iteration():
            if i > 0:
                dp.read(StrideRange.single(A_BASE + 8 * (i - 1)))
            dp.read(StrideRange.single(A_BASE + 8 * i))
            dp.write(StrideRange.single(A_BASE + 8 * i))
    return dp.finish()


def main() -> None:
    print("=== step 1-3: dependence analysis and annotation advice ===\n")
    advices = {}
    for report in (analyze_stencil_rows(), analyze_dot_product(), analyze_prefix_sum()):
        advice = suggest(report)
        advices[report.loop_name] = advice
        print(advice.summary())
        print()

    assert advices["stencil_rows"].verdict is Parallelizability.DOALL
    assert advices["dot_product"].verdict is Parallelizability.REDUCTION
    assert advices["prefix_sum"].verdict is Parallelizability.SERIAL

    print("=== step 4: apply the advice and predict ===\n")

    def annotated_program(tr):
        # stencil_rows: DOALL section, as advised.
        with tr.section("stencil_rows"):
            for _i in range(N):
                with tr.task():
                    tr.compute(60_000)
        # dot_product: DOALL + lock around the accumulator, as advised.
        with tr.section("dot_product"):
            for _i in range(N):
                with tr.task():
                    tr.compute(20_000)
                    with tr.lock(1):
                        tr.compute(400)
        # prefix_sum: left serial, as advised.
        tr.compute(N * 15_000)

    prophet = ParallelProphet(machine=WESTMERE_12)
    profile = prophet.profile(annotated_program)
    report = prophet.predict(profile, threads=[2, 4, 8, 12], memory_model=False)
    print(report.to_table())

    est = report.one(method="syn", n_threads=12)
    print("\nper-section speedups at 12 threads:")
    for name, s in est.sections.items():
        print(f"  {name:<14} {s:5.2f}x")
    print(f"\noverall: {est.speedup:.2f}x — capped by the serial prefix_sum "
          "(Amdahl), exactly what the dependence analysis predicted.")


if __name__ == "__main__":
    main()
