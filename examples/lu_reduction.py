"""Inner-loop parallelism and schedule choice: the LU reduction case.

The paper's Fig. 1(a) motivating example: only the *inner* loop of LU
reduction is parallelizable, its trip count shrinks every outer iteration
(diagonal imbalance), and the parallel region is re-entered size-1 times, so
fork/join overhead recurs constantly.  Questions a programmer would ask
before parallelizing — answered here before writing any parallel code:

- which OpenMP schedule should I use?
- how much does the frequent inner-loop fork/join cost me?
- why does Intel Advisor's Suitability underestimate this loop?

Run:  python examples/lu_reduction.py
"""

from repro import ParallelProphet, WESTMERE_12
from repro.baselines import SuitabilityAnalysis
from repro.workloads import get_workload


def main() -> None:
    prophet = ParallelProphet(machine=WESTMERE_12)
    lu = get_workload("ompscr_lu", size=96)
    print(f"workload: {lu.description} ({lu.input_label})")

    profile = prophet.profile(lu.program)
    n_sections = len(profile.tree.top_level_sections())
    print(f"  {n_sections} parallel inner-loop activations recorded")
    print(f"  tree: {profile.tree.logical_nodes()} logical nodes, "
          f"{profile.tree.unique_nodes()} stored "
          f"({profile.compression.reduction:.0%} compressed)")

    threads = [2, 4, 8, 12]
    print("\nschedule comparison (synthesizer prediction):")
    report = prophet.predict(
        profile,
        threads=threads,
        schedules=["static", "static,1", "dynamic,1"],
        methods=("syn",),
    )
    print(report.to_table())

    best = max(
        ("static", "static,1", "dynamic,1"),
        key=lambda s: report.speedup(method="syn", schedule=s, n_threads=12),
    )
    print(f"\n=> best schedule at 12 threads: {best}.")
    print("   (LU's inner iterations are uniform *within* a section, so the "
          "schedules nearly tie here; dynamic,1 pays its per-chunk dispatch "
          "cost on the short late sections.)")

    print("\nground truth vs the Suitability-like baseline (static,1):")
    real = prophet.measure_real(profile, threads, schedule="static,1")
    suit = SuitabilityAnalysis().predict(profile, threads)
    for t in threads:
        print(f"  {t:2d} threads: real {real.speedup(n_threads=t):5.2f}x, "
              f"prophet {report.speedup(method='syn', schedule='static,1', n_threads=t):5.2f}x, "
              f"suitability {suit.speedup(n_threads=t):5.2f}x")
    print("Suitability's inflated per-region overhead model punishes the "
          "frequent inner loop — the paper's Section VII-C observation.")


if __name__ == "__main__":
    main()
