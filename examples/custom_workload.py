"""Authoring a custom annotated workload.

Shows the full annotation vocabulary on a made-up image pipeline:
per-frame parallel tile processing (imbalanced), a shared histogram lock,
a nested parallel reduction, and declared memory behaviour via MemSpec —
then answers "is it worth parallelizing, and with which paradigm?".

Run:  python examples/custom_workload.py
"""

from repro import ParallelProphet, WESTMERE_12
from repro.baselines import amdahl_speedup
from repro.simhw.memtrace import AccessPattern, MemSpec


FRAMES = 4
TILES = 24
TILE_BYTES = 2_000_000  # 2 MB per tile: frames stream through the LLC


def image_pipeline(tr):
    for frame in range(FRAMES):
        tr.compute(150_000)  # serial decode
        with tr.section("tiles"):
            for tile in range(TILES):
                with tr.task(f"f{frame}t{tile}"):
                    # Filter pass: cost varies with tile content; streams
                    # the tile once.
                    tr.compute(
                        400_000 + 60_000 * (tile % 5),
                        mem=MemSpec(
                            AccessPattern.STREAMING, bytes_touched=TILE_BYTES
                        ),
                    )
                    # Histogram update under a shared lock.
                    with tr.lock(1):
                        tr.compute(4_000)
                    # Nested parallel sharpen over sub-blocks.
                    with tr.section("subblocks"):
                        for _ in range(4):
                            with tr.task():
                                tr.compute(30_000)
        tr.compute(80_000)  # serial encode


def main() -> None:
    prophet = ParallelProphet(machine=WESTMERE_12)
    profile = prophet.profile(image_pipeline)

    serial_fraction = profile.tree.serial_fraction()
    print(f"serial fraction: {serial_fraction:.1%} "
          f"(Amdahl ceiling at 12 threads: "
          f"{amdahl_speedup(serial_fraction, 12):.1f}x)")

    threads = [2, 4, 8, 12]
    print("\nOpenMP (dynamic,1) vs Cilk work stealing (synthesizer + memory):")
    omp = prophet.predict(
        profile, threads, paradigm="omp", schedules=["dynamic,1"],
        methods=("syn",),
    )
    cilk = prophet.predict(
        profile, threads, paradigm="cilk", methods=("syn",),
    )
    real_omp = prophet.measure_real(profile, threads, schedule="dynamic,1")
    real_cilk = prophet.measure_real(profile, threads, paradigm="cilk")
    print(f"  {'threads':>8} {'omp':>7} {'real':>7} {'cilk':>7} {'real':>7}")
    for t in threads:
        print(
            f"  {t:>8}"
            f" {omp.speedup(method='syn', n_threads=t):>7.2f}"
            f" {real_omp.speedup(n_threads=t):>7.2f}"
            f" {cilk.speedup(method='syn', n_threads=t):>7.2f}"
            f" {real_cilk.speedup(n_threads=t):>7.2f}"
        )

    print("\nper-section diagnosis at 12 threads:")
    est = omp.one(method="syn", n_threads=12)
    for name, speedup in est.sections.items():
        beta = profile.burden_for(name, 12)
        print(f"  {name:<10} section speedup {speedup:5.2f}x, burden {beta:.2f}")
    print("\nverdict: worth parallelizing — nested sections favour Cilk, and "
          "streaming tiles start to press on memory bandwidth at high "
          "thread counts.")


if __name__ == "__main__":
    main()
