"""Tests for the program-synthesis emulator (paper Section IV-E)."""

import pytest

from repro.core.profiler import IntervalProfiler
from repro.core.synthesizer import Synthesizer
from repro.runtime import RuntimeOverheads, Schedule
from repro.simhw import MachineConfig

M = MachineConfig(n_cores=4)
ZERO_OH = RuntimeOverheads().scaled(0.0)


def profile_of(program, machine=M):
    return IntervalProfiler(machine).profile(program)


def balanced_profile(n=8, cost=50_000):
    def program(tr):
        with tr.section("loop"):
            for _ in range(n):
                with tr.task():
                    tr.compute(cost)

    return profile_of(program)


class TestPrediction:
    def test_balanced_near_ideal(self):
        syn = Synthesizer(overheads=ZERO_OH)
        run = syn.predict(balanced_profile(), 4, use_memory_model=False)
        assert run.estimate.speedup == pytest.approx(4.0, rel=0.05)

    def test_estimate_metadata(self):
        syn = Synthesizer(schedule=Schedule.dynamic(1))
        run = syn.predict(balanced_profile(), 2)
        est = run.estimate
        assert est.method == "syn"
        assert est.schedule == "dynamic,1"
        assert est.n_threads == 2
        assert est.with_memory_model is True

    def test_memory_model_applies_burdens(self):
        profile = balanced_profile()
        profile.burdens["loop"] = {4: 2.0}
        syn = Synthesizer(overheads=ZERO_OH)
        with_mem = syn.predict(profile, 4, use_memory_model=True)
        without = syn.predict(profile, 4, use_memory_model=False)
        assert with_mem.estimate.speedup == pytest.approx(
            without.estimate.speedup / 2.0, rel=0.05
        )

    def test_per_section_speedups(self):
        def program(tr):
            with tr.section("a"):
                for _ in range(4):
                    with tr.task():
                        tr.compute(10_000)
            with tr.section("b"):
                with tr.task():
                    tr.compute(40_000)

        profile = profile_of(program)
        syn = Synthesizer(overheads=ZERO_OH)
        run = syn.predict(profile, 4, use_memory_model=False)
        sections = run.estimate.sections
        assert sections["a"] == pytest.approx(4.0, rel=0.1)
        assert sections["b"] == pytest.approx(1.0, rel=0.1)

    def test_repeated_sections_aggregate(self):
        def program(tr):
            for _ in range(3):
                with tr.section("rep"):
                    for _ in range(4):
                        with tr.task():
                            tr.compute(10_000)

        profile = profile_of(program)
        syn = Synthesizer(overheads=ZERO_OH)
        run = syn.predict(profile, 4, use_memory_model=False)
        assert run.estimate.sections["rep"] == pytest.approx(4.0, rel=0.1)

    def test_cilk_paradigm(self):
        syn = Synthesizer(paradigm="cilk", overheads=ZERO_OH)
        run = syn.predict(balanced_profile(16, 25_000), 4, use_memory_model=False)
        assert run.estimate.speedup == pytest.approx(4.0, rel=0.2)
        assert run.estimate.paradigm == "cilk"


class TestCostAccounting:
    def test_slowdown_per_estimate(self):
        """Paper Section VII-D: an estimated speedup of S costs at least a
        (1 + 1/S)x slowdown because the synthesizer runs the fake program."""
        syn = Synthesizer(overheads=ZERO_OH)
        run = syn.predict(balanced_profile(), 4, use_memory_model=False)
        s = run.estimate.speedup
        assert run.slowdown_per_estimate == pytest.approx(1.0 / s, rel=0.1)

    def test_emulation_cycles_positive(self):
        syn = Synthesizer()
        run = syn.predict(balanced_profile(), 2)
        assert run.emulation_cycles > 0
