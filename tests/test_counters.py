"""Tests for the PAPI-like counter facade."""

import pytest

from repro.errors import SimulationError
from repro.simhw import CounterSet, MachineConfig, PerfCounters


class TestCounterSet:
    def test_add(self):
        a = CounterSet(10, 20, 3)
        a.add(CounterSet(5, 5, 1))
        assert (a.instructions, a.cycles, a.llc_misses) == (15, 25, 4)

    def test_sub(self):
        d = CounterSet(10, 20, 4) - CounterSet(4, 5, 1)
        assert (d.instructions, d.cycles, d.llc_misses) == (6, 15, 3)

    def test_copy_is_independent(self):
        a = CounterSet(1, 2, 3)
        b = a.copy()
        b.instructions = 99
        assert a.instructions == 1

    def test_mpi(self):
        assert CounterSet(1000, 0, 5).mpi == pytest.approx(0.005)

    def test_mpi_zero_instructions(self):
        assert CounterSet(0, 0, 5).mpi == 0.0

    def test_cpi(self):
        assert CounterSet(100, 250, 0).cpi == pytest.approx(2.5)

    def test_traffic(self):
        m = MachineConfig(freq_ghz=1.0, line_size=64)
        c = CounterSet(instructions=1, cycles=1e9, llc_misses=1e6)
        assert c.traffic_mbs(m) == pytest.approx(64.0)


class TestPerfCounters:
    def test_start_stop_delta(self):
        acc = CounterSet()
        pc = PerfCounters(acc)
        pc.start(now=100.0)
        acc.instructions += 500
        acc.llc_misses += 10
        delta = pc.stop(now=400.0)
        assert delta.instructions == 500
        assert delta.llc_misses == 10
        # Cycles report the wall interval, not the accumulator delta.
        assert delta.cycles == 300.0

    def test_double_start_rejected(self):
        pc = PerfCounters(CounterSet())
        pc.start(0.0)
        with pytest.raises(SimulationError):
            pc.start(1.0)

    def test_stop_without_start_rejected(self):
        with pytest.raises(SimulationError):
            PerfCounters(CounterSet()).stop(0.0)

    def test_restartable(self):
        acc = CounterSet()
        pc = PerfCounters(acc)
        pc.start(0.0)
        pc.stop(10.0)
        pc.start(10.0)
        acc.instructions += 1
        assert pc.stop(20.0).instructions == 1

    def test_running_flag(self):
        pc = PerfCounters(CounterSet())
        assert not pc.running
        pc.start(0.0)
        assert pc.running
        pc.stop(1.0)
        assert not pc.running
