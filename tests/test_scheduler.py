"""Tests for the CPU scheduler bookkeeping."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.simos import CpuScheduler, SimThread, ThreadState


def make_thread(tid=1, affinity=None):
    def gen():
        yield None

    return SimThread(tid, gen(), name=f"t{tid}", affinity=affinity)


class TestReadyQueue:
    def test_fifo_order(self):
        sched = CpuScheduler(2)
        a, b = make_thread(1), make_thread(2)
        sched.make_ready(a)
        sched.make_ready(b)
        assert sched.pick_next(0) is a
        assert sched.pick_next(0) is b

    def test_front_insertion(self):
        sched = CpuScheduler(2)
        a, b = make_thread(1), make_thread(2)
        sched.make_ready(a)
        sched.make_ready(b, front=True)
        assert sched.pick_next(0) is b

    def test_finished_thread_rejected(self):
        sched = CpuScheduler(1)
        t = make_thread()
        t.state = ThreadState.FINISHED
        with pytest.raises(SimulationError):
            sched.make_ready(t)

    def test_thread_on_core_rejected(self):
        sched = CpuScheduler(1)
        t = make_thread()
        sched.make_ready(t)
        got = sched.pick_next(0)
        sched.assign(got, 0)
        with pytest.raises(SimulationError):
            sched.make_ready(t)


class TestAffinity:
    def test_affinity_respected(self):
        sched = CpuScheduler(2)
        t = make_thread(affinity=frozenset({1}))
        sched.make_ready(t)
        assert sched.pick_next(0) is None
        assert sched.pick_next(1) is t

    def test_has_waiter_for(self):
        sched = CpuScheduler(2)
        t = make_thread(affinity=frozenset({1}))
        sched.make_ready(t)
        assert not sched.has_waiter_for(0)
        assert sched.has_waiter_for(1)

    def test_unpinned_runs_anywhere(self):
        sched = CpuScheduler(3)
        sched.make_ready(make_thread())
        assert sched.has_waiter_for(2)


class TestAssignment:
    def test_assign_unassign(self):
        sched = CpuScheduler(2)
        t = make_thread()
        sched.make_ready(t)
        got = sched.pick_next(1)
        sched.assign(got, 1)
        assert t.core == 1
        assert t.state is ThreadState.RUNNING
        assert sched.running_threads() == [t]
        core = sched.unassign(t)
        assert core == 1
        assert t.core is None

    def test_double_assign_rejected(self):
        sched = CpuScheduler(2)
        a, b = make_thread(1), make_thread(2)
        sched.make_ready(a)
        sched.make_ready(b)
        sched.assign(sched.pick_next(0), 0)
        with pytest.raises(SimulationError):
            sched.assign(sched.pick_next(0), 0)

    def test_unassign_not_running_rejected(self):
        sched = CpuScheduler(1)
        with pytest.raises(SimulationError):
            sched.unassign(make_thread())

    def test_idle_cores(self):
        sched = CpuScheduler(3)
        t = make_thread()
        sched.make_ready(t)
        sched.assign(sched.pick_next(1), 1)
        assert sched.idle_cores() == [0, 2]

    def test_invalid_core_count(self):
        with pytest.raises(ConfigurationError):
            CpuScheduler(0)
