"""End-to-end tests for the ``repro serve`` daemon over real HTTP.

A module-scoped server (ephemeral port, small budgets) backs the
read-path tests; lifecycle tests (saturation, shutdown) build their own
short-lived servers so they can abuse the queue without polluting the
shared one.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricsRegistry, get_metrics, set_metrics
from repro.serve import Deadline, ReproServer, ServeConfig, ServeState, create_server
from repro.serve.budgets import RequestBudgets

#: Small but real grids: npb_ep at 2 threads answers in ~100 ms.
FAST = {"workload": "npb_ep", "threads": [2], "memory_model": False}


def request(server, method, path, payload=None, timeout=120):
    data = json.dumps(payload).encode() if payload is not None else None
    req = urllib.request.Request(
        f"http://127.0.0.1:{server.port}{path}",
        data=data,
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


@pytest.fixture(autouse=True)
def fresh_metrics():
    registry = MetricsRegistry()
    set_metrics(registry)
    yield registry


@pytest.fixture(scope="module")
def server():
    config = ServeConfig(
        port=0,
        queue_depth=4,
        budgets=RequestBudgets(max_grid_points=64, max_threads=32, timeout_s=60.0),
    )
    srv = create_server(config).start()
    yield srv
    srv.stop()


class TestReadEndpoints:
    def test_health(self, server):
        status, body = request(server, "GET", "/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["uptime_s"] >= 0

    def test_workloads_lists_the_registry(self, server):
        status, body = request(server, "GET", "/workloads")
        assert status == 200
        names = {row["name"] for row in body["workloads"]}
        assert {"npb_ep", "npb_cg", "ompscr_md", "ompscr_fft"} <= names
        for row in body["workloads"]:
            assert set(row) == {
                "name",
                "paradigm",
                "input",
                "description",
                "schedule",
            }

    def test_unknown_route_404(self, server):
        status, body = request(server, "POST", "/frobnicate", {})
        assert status == 404
        assert body["error"] == "not_found"

    def test_malformed_json_400(self, server):
        req = urllib.request.Request(
            f"http://127.0.0.1:{server.port}/predict",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 400
        assert json.loads(err.value.read())["error"] == "bad_json"


class TestPredict:
    def test_predict_returns_estimates(self, server):
        status, body = request(server, "POST", "/predict", FAST)
        assert status == 200
        report = body["reports"]["npb_ep"]
        methods = {e["method"] for e in report["estimates"]}
        assert methods == {"ff", "syn"}  # the /predict default pair
        for est in report["estimates"]:
            assert est["speedup"] > 0
        assert body["elapsed_s"] >= 0

    def test_repeat_request_served_from_cache(self, server):
        payload = {**FAST, "threads": [2, 4]}
        _, cold = request(server, "POST", "/predict", payload)
        status, warm = request(server, "POST", "/predict", payload)
        assert status == 200
        assert warm["cached"] is True
        assert warm["reports"] == cold["reports"]

    def test_equivalent_requests_share_one_cache_entry(self, server):
        # Normalisation canonicalises workload order: a permuted /sweep
        # repeat is a response-cache hit, not a recompute.
        base = {"threads": [2], "memory_model": False}
        request(
            server,
            "POST",
            "/sweep",
            {**base, "workloads": ["npb_is", "npb_ep"]},
        )
        status, body = request(
            server,
            "POST",
            "/sweep",
            {**base, "workloads": ["npb_ep", "npb_is"]},
        )
        assert status == 200
        assert body["cached"] is True

    def test_unknown_workload_400(self, server):
        status, body = request(
            server,
            "POST",
            "/predict",
            {**FAST, "workload": "nosuch"},
        )
        assert status == 400
        assert "nosuch" in body["message"]

    def test_missing_workload_field_400(self, server):
        status, body = request(server, "POST", "/predict", {"threads": [2]})
        assert status == 400
        assert "workload" in body["message"]

    def test_unknown_method_400(self, server):
        status, body = request(
            server,
            "POST",
            "/predict",
            {**FAST, "methods": ["magic"]},
        )
        assert status == 400
        assert "magic" in body["message"]


class TestBudgets:
    def test_oversized_grid_413(self, server):
        status, body = request(
            server,
            "POST",
            "/sweep",
            {"workloads": ["npb_ep"], "threads": list(range(1, 100))},
        )
        assert status == 413
        assert body["error"] == "grid_budget_exceeded"

    def test_absurd_thread_count_413(self, server):
        status, body = request(
            server,
            "POST",
            "/predict",
            {**FAST, "threads": [4096]},
        )
        assert status == 413
        assert body["error"] == "grid_budget_exceeded"

    def test_explore_samples_count_against_the_budget(self, server):
        status, body = request(
            server,
            "POST",
            "/explore",
            {**FAST, "samples": 1000},
        )
        assert status == 413

    def test_oversized_body_413(self, server):
        # Raw socket: declare a 2 MiB body but never send it — the server
        # must refuse on the declared length alone and close the connection.
        import socket

        with socket.create_connection(("127.0.0.1", server.port), 30) as sock:
            sock.sendall(
                b"POST /predict HTTP/1.1\r\n"
                b"Host: localhost\r\n"
                b"Content-Type: application/json\r\n"
                b"Content-Length: 2097152\r\n"
                b"\r\n"
            )
            # The refusal closes the connection, so read to EOF — a single
            # recv may return only the first TCP segment (headers without
            # the JSON body) and flake.
            chunks = []
            while True:
                data = sock.recv(65536)
                if not data:
                    break
                chunks.append(data)
            reply = b"".join(chunks).decode()
        assert reply.split("\r\n", 1)[0].split()[1] == "413"
        assert "body_too_large" in reply


class TestStats:
    def test_stats_match_the_metrics_registry(self, server):
        request(server, "POST", "/predict", FAST)
        request(server, "POST", "/predict", FAST)
        status, stats = request(server, "GET", "/stats")
        assert status == 200
        counters = get_metrics().counters(prefix="serve.")
        # /stats itself bumped serve.requests after the snapshot it
        # returned, so allow exactly that one in-flight increment.
        assert counters["serve.requests"] - stats["metrics"]["serve.requests"] <= 1
        for name, value in stats["metrics"].items():
            if name != "serve.requests":
                assert counters[name] == value
        assert stats["queue"]["depth"] == 4
        response = stats["cache"]["classes"]["response"]
        assert response["hits"] >= 1  # the repeated FAST request

    def test_hit_rate_rises_on_repeats(self, server):
        payload = {**FAST, "threads": [2, 8]}
        request(server, "POST", "/predict", payload)
        _, before = request(server, "GET", "/stats")
        for _ in range(3):
            request(server, "POST", "/predict", payload)
        _, after = request(server, "GET", "/stats")
        rate = "serve.cache.response.hit_rate"
        assert after["hit_rates"][rate] > before["hit_rates"].get(rate, 0.0)

    def test_cache_clear_forgets_responses(self, server):
        payload = {**FAST, "threads": [4]}
        request(server, "POST", "/predict", payload)
        status, body = request(server, "POST", "/cache/clear", {})
        assert status == 200
        assert body["cleared"]["response"] >= 1
        _, again = request(server, "POST", "/predict", payload)
        assert again["cached"] is False


class TestSaturation:
    def test_queue_full_gives_429(self):
        srv = create_server(ServeConfig(port=0, queue_depth=1, workers=1)).start()
        try:
            started, release = threading.Event(), threading.Event()

            def block():
                started.set()
                release.wait()

            srv.state.queue.submit(block, Deadline(60.0), label="blocker")
            assert started.wait(10.0)
            srv.state.queue.submit(lambda: None, Deadline(60.0), label="fill")
            status, body = request(srv, "POST", "/predict", FAST)
            assert status == 429
            assert body["error"] == "queue_full"
            release.set()
        finally:
            srv.stop()

    def test_deadline_exceeded_gives_504(self):
        srv = create_server(ServeConfig(port=0, queue_depth=4, workers=1)).start()
        try:
            started, release = threading.Event(), threading.Event()

            def block():
                started.set()
                release.wait()

            srv.state.queue.submit(block, Deadline(60.0), label="blocker")
            assert started.wait(10.0)
            status, body = request(
                srv,
                "POST",
                "/predict",
                {**FAST, "timeout_s": 0.2},
            )
            assert status == 504
            assert body["error"] == "deadline_exceeded"
            release.set()
        finally:
            srv.stop()


class TestLifecycle:
    def test_shutdown_endpoint_drains_and_stops(self):
        srv = create_server(ServeConfig(port=0)).start()
        status, body = request(srv, "POST", "/predict", FAST)
        assert status == 200
        status, body = request(srv, "POST", "/shutdown", {})
        assert status == 200
        assert body["status"] == "draining"
        assert srv._stopped.wait(30.0)
        srv.stop()  # idempotent
        # URLError on a refused connect, ConnectionResetError if the probe
        # races the listener teardown — both are OSErrors, both mean down.
        with pytest.raises(OSError):
            request(srv, "GET", "/health", timeout=3)

    def test_shutdown_disallowed_when_configured_off(self):
        srv = create_server(ServeConfig(port=0, allow_shutdown=False)).start()
        try:
            status, body = request(srv, "POST", "/shutdown", {})
            assert status == 400
            assert "shutdown" in body["message"]
        finally:
            srv.stop()

    def test_stop_drains_accepted_work(self):
        srv = create_server(ServeConfig(port=0))
        done = []
        jobs = [
            srv.state.queue.submit(
                lambda i=i: done.append(i),
                Deadline(60.0),
                label="t",
            )
            for i in range(4)
        ]
        srv.start()
        srv.stop()
        assert sorted(done) == list(range(4))
        assert all(job.done for job in jobs)


class TestServeState:
    """Transport-free handler checks (no sockets)."""

    def test_handle_maps_serve_errors_to_status(self):
        state = ServeState(budgets=RequestBudgets(max_grid_points=1))
        status, body = state.handle(
            "POST",
            "/predict",
            {"workload": "npb_ep", "threads": [2, 4]},
        )
        assert status == 413
        assert body["error"] == "grid_budget_exceeded"
        state.queue.shutdown(timeout=5.0)

    def test_trailing_slash_routes(self):
        state = ServeState()
        status, body = state.handle("GET", "/health/", {})
        assert status == 200 and body["status"] == "ok"
        state.queue.shutdown(timeout=5.0)

    def test_non_object_body_rejected(self):
        state = ServeState()
        status, body = state.handle("POST", "/predict", [1, 2])
        assert status == 400
        state.queue.shutdown(timeout=5.0)

    def test_server_wires_config_through(self):
        srv = ReproServer(ServeConfig(port=0, queue_depth=7, predictor_cache=3))
        try:
            assert srv.state.queue.depth == 7
            assert srv.state.cache.predictors.maxsize == 3
            assert srv.state.on_shutdown is not None
        finally:
            srv.stop()
