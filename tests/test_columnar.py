"""Tests for the columnar sweep engine (``repro.core.columnar``).

The engine's contract is *parity, not approximation*: every grid point it
serves must agree with the eager kernel within 1e-9 relative, and every
point it declines must reach the eager path untouched.  The property test
reuses the ``test_fuzz_pipeline`` program generator so the parity claim is
exercised across random program shapes, not just hand-picked fixtures.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import ParallelProphet
from repro.core.batch import BatchPredictor
from repro.core.columnar import verify_points
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, set_metrics
from repro.simhw import MachineConfig
from repro.simhw.dram import DramModel, SegmentDemand
from repro.simhw.memtrace import AccessPattern, MemSpec
from repro.validate.fuzz import build_program

from tests.test_fuzz_pipeline import programs

M4 = MachineConfig(n_cores=4)
M8 = MachineConfig(n_cores=8)

REL = 1e-9


# ------------------------------------------------------------------ fixtures


def imbalanced_loop(tr):
    with tr.section("loop"):
        for i in range(16):
            with tr.task():
                tr.compute(5_000 + 1_000 * (i % 4))


def memory_loop(tr):
    with tr.section("mem"):
        for _ in range(8):
            with tr.task():
                tr.compute(
                    20_000,
                    mem=MemSpec(AccessPattern.STREAMING, bytes_touched=1_000_000),
                )


def locked_loop(tr):
    with tr.section("locked"):
        for _ in range(8):
            with tr.task():
                with tr.lock(1):
                    tr.compute(6_000)


def nested_loop(tr):
    with tr.section("outer"):
        for _ in range(4):
            with tr.task():
                tr.compute(5_000)
                with tr.section("inner"):
                    for _ in range(2):
                        with tr.task():
                            tr.compute(5_000)


def mixed_workload(tr):
    tr.compute(30_000)
    imbalanced_loop(tr)
    memory_loop(tr)


@pytest.fixture(scope="module")
def prophet():
    return ParallelProphet(machine=M8)


@pytest.fixture(scope="module")
def profiles(prophet):
    return {
        "cpu": prophet.profile(imbalanced_loop),
        "mem": prophet.profile(memory_loop),
        "locked": prophet.profile(locked_loop),
        "nested": prophet.profile(nested_loop),
        "mixed": prophet.profile(mixed_workload),
    }


@pytest.fixture()
def fresh_metrics():
    mine = MetricsRegistry()
    old = set_metrics(mine)
    try:
        yield mine
    finally:
        set_metrics(old)


def _assert_parity(eager, columnar, rel=REL):
    """Same grid, same keys, speedups within ``rel``."""
    assert len(eager.estimates) == len(columnar.estimates) > 0
    for e, c in zip(eager.estimates, columnar.estimates):
        assert (e.method, e.schedule, e.n_threads) == (
            c.method,
            c.schedule,
            c.n_threads,
        )
        assert c.speedup == pytest.approx(e.speedup, rel=rel), (
            f"{e.method}/{e.schedule}/t={e.n_threads}"
        )


def _both_backends(prophet, profile, **kwargs):
    eager = BatchPredictor(prophet, jobs=1, backend="eager").sweep(
        profile, **kwargs
    )["workload"]
    columnar = BatchPredictor(prophet, jobs=1, backend="columnar").sweep(
        profile, **kwargs
    )["workload"]
    return eager, columnar


# ------------------------------------------------------------ property test


def _strip_to_eligible(items):
    """Keep memory specs, drop locks and nested sections — the static-family
    leaf-only shape the columnar engine lowers."""
    out = []
    for item in items:
        if isinstance(item, float):
            out.append(item)
            continue
        kind, tasks = item
        out.append(
            (
                kind,
                [
                    ([(op, cyc, mem, None) for op, cyc, mem, _ in ops], [])
                    for ops, _nested in tasks
                ],
            )
        )
    return out


class TestColumnarParityProperty:
    @given(programs(), st.integers(min_value=1, max_value=6))
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_matches_eager_on_random_programs(self, items, n_threads):
        """FF/SYN/REAL parity at <=1e-9 across random eligible programs
        (t=5,6 oversubscribe the 4-core machine, exercising the syn/real
        fallback; memory specs exercise the batched-DRAM missy walk and
        its mixed-signature fallback)."""
        prophet = ParallelProphet(machine=M4)
        profile = prophet.profile(build_program(_strip_to_eligible(items)))
        kwargs = dict(
            threads=[n_threads],
            schedules=["static", "static,2"],
            methods=("ff", "syn", "real"),
            memory_model=False,
        )
        eager, columnar = _both_backends(prophet, profile, **kwargs)
        _assert_parity(eager, columnar)

    @given(programs(), st.integers(min_value=1, max_value=4))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
    )
    def test_ineligible_programs_fall_back_exactly(self, items, n_threads):
        """Unstripped programs (locks, nesting) must be *identical*, not
        merely close: the engine declines and both runs are eager."""
        prophet = ParallelProphet(machine=M4)
        profile = prophet.profile(build_program(items))
        kwargs = dict(
            threads=[n_threads],
            schedules=["static,1"],
            methods=("ff", "syn"),
            memory_model=False,
        )
        eager, columnar = _both_backends(prophet, profile, **kwargs)
        for e, c in zip(eager.estimates, columnar.estimates):
            assert (c.speedup == e.speedup) or (
                c.speedup == pytest.approx(e.speedup, rel=REL)
            )


# ------------------------------------------------------------ fixture parity


class TestFixtureParity:
    @pytest.mark.parametrize("schedule", ["static", "static,1", "static,3"])
    def test_cpu_grid(self, prophet, profiles, schedule):
        eager, columnar = _both_backends(
            prophet,
            profiles["cpu"],
            threads=[1, 2, 3, 4, 8],
            schedules=[schedule],
            methods=("ff", "syn", "real"),
            memory_model=False,
        )
        _assert_parity(eager, columnar)

    def test_missy_real_grid(self, prophet, profiles, fresh_metrics):
        """Memory-demanding REAL replay: the batched DRAM bisection must
        match the kernel's per-solve path, including saturation."""
        eager, columnar = _both_backends(
            prophet,
            profiles["mem"],
            threads=[2, 4, 8],
            schedules=["static"],
            methods=("real",),
            memory_model=False,
        )
        _assert_parity(eager, columnar)
        assert fresh_metrics.counter_value("columnar.hits") > 0

    def test_memory_model_burdens(self, prophet, profiles):
        eager, columnar = _both_backends(
            prophet,
            profiles["mixed"],
            threads=[2, 4, 8],
            schedules=["static"],
            methods=("ff", "syn"),
            memory_model=True,
        )
        _assert_parity(eager, columnar)

    def test_report_precision_identity(self, prophet, profiles):
        """Fig. 11/12-style assembly: the rendered report — the benches'
        output surface — must be byte-identical across backends."""
        kwargs = dict(
            threads=[2, 4, 6, 8],
            schedules=["static", "static,2"],
            methods=("ff", "syn"),
            memory_model=True,
        )
        eager = prophet.predict(profiles["mixed"], backend="eager", **kwargs)
        columnar = prophet.predict(
            profiles["mixed"], backend="columnar", **kwargs
        )
        assert columnar.to_table() == eager.to_table()


# ----------------------------------------------------------------- fallbacks


class TestFallbacks:
    def _run(self, prophet, profile, **kwargs):
        kwargs.setdefault("memory_model", False)
        return _both_backends(prophet, profile, **kwargs)

    def test_locks_fall_back(self, prophet, profiles, fresh_metrics):
        eager, columnar = self._run(
            prophet, profiles["locked"], threads=[4], methods=("syn", "real")
        )
        _assert_parity(eager, columnar)
        assert fresh_metrics.counter_value("columnar.fallbacks") > 0

    def test_nesting_falls_back(self, prophet, profiles, fresh_metrics):
        eager, columnar = self._run(
            prophet, profiles["nested"], threads=[4], methods=("ff", "syn")
        )
        _assert_parity(eager, columnar)
        assert fresh_metrics.counter_value("columnar.fallbacks") > 0
        assert fresh_metrics.counter_value("columnar.hits") == 0

    def test_dynamic_schedule_falls_back(self, prophet, profiles,
                                         fresh_metrics):
        eager, columnar = self._run(
            prophet,
            profiles["cpu"],
            threads=[2, 4],
            schedules=["dynamic,1"],
            methods=("ff", "syn"),
        )
        _assert_parity(eager, columnar)
        assert fresh_metrics.counter_value("columnar.hits") == 0
        assert fresh_metrics.counter_value("columnar.fallbacks") == 4.0

    def test_oversubscription_replay_falls_back(self, prophet, profiles,
                                                fresh_metrics):
        """t > n_cores: FF's abstract machine is still closed-form (served),
        but the replay involves preemption, so syn declines."""
        eager, columnar = self._run(
            prophet, profiles["cpu"], threads=[16], methods=("ff", "syn")
        )
        _assert_parity(eager, columnar)
        assert fresh_metrics.counter_value("columnar.hits") == 1.0  # the ff
        assert fresh_metrics.counter_value("columnar.fallbacks") == 1.0

    def test_numpy_missing_falls_back(self, prophet, profiles, fresh_metrics,
                                      monkeypatch):
        import repro.core.columnar as columnar_mod

        monkeypatch.setattr(columnar_mod, "np", None)
        report = prophet.predict(
            profiles["cpu"],
            threads=[2],
            methods=("ff", "syn"),
            memory_model=False,
            backend="columnar",
        )
        assert len(report.estimates) == 2
        assert fresh_metrics.counter_value("columnar.hits") == 0
        assert fresh_metrics.counter_value("columnar.fallbacks") == 2.0

    def test_syn_replay_counter_served_points(self, prophet, profiles,
                                              fresh_metrics):
        """Served SYN points still count as replays — the counter means
        'synthesizer estimates produced', whichever backend computed them."""
        BatchPredictor(prophet, jobs=1).sweep(
            {"cpu": profiles["cpu"], "mem": profiles["mem"]},
            threads=[2, 4],
            methods=("syn",),
            memory_model=False,
        )
        assert fresh_metrics.counter_value("syn.replays") == 4.0


# ------------------------------------------------------------- configuration


class TestBackendSelection:
    def test_bad_backend_rejected_by_predict(self, prophet, profiles):
        with pytest.raises(ConfigurationError):
            prophet.predict(profiles["cpu"], threads=[2], backend="bogus")

    def test_bad_backend_rejected_by_batch(self, prophet):
        with pytest.raises(ConfigurationError):
            BatchPredictor(prophet, backend="bogus")

    def test_columnar_is_alias_of_auto(self, prophet, profiles):
        a = prophet.predict(
            profiles["cpu"], threads=[2], memory_model=False, backend="auto"
        )
        b = prophet.predict(
            profiles["cpu"],
            threads=[2],
            memory_model=False,
            backend="columnar",
        )
        assert a.estimates == b.estimates

    def test_jobs_do_not_change_columnar_results(self, prophet, profiles):
        """Batch composition must not leak into per-point values."""
        kwargs = dict(
            threads=[2, 4, 8],
            methods=("ff", "syn", "real"),
            memory_model=False,
        )
        serial = BatchPredictor(prophet, jobs=1).sweep(profiles["cpu"], **kwargs)
        pooled = BatchPredictor(prophet, jobs=2).sweep(profiles["cpu"], **kwargs)
        assert serial["workload"].estimates == pooled["workload"].estimates


# -------------------------------------------------------------- verification


class TestVerifyPoints:
    def test_clean_profile_verifies(self, prophet, profiles):
        checked, skipped, mismatches = verify_points(
            prophet, profiles["cpu"], threads=[1, 2, 4, 8]
        )
        assert mismatches == []
        assert checked == 8  # ff + syn at four thread counts
        assert skipped == 0

    def test_ineligible_points_counted_as_skipped(self, prophet, profiles):
        checked, skipped, mismatches = verify_points(
            prophet, profiles["locked"], threads=[2, 4]
        )
        assert mismatches == []
        assert checked == 0
        assert skipped == 4


# --------------------------------------------------------- batched DRAM solve


class TestSolveBatch:
    #: (mem_fraction, demand) running sets spanning the solver's regimes:
    #: unsaturated (queue factor only), saturated (bisection), deeply
    #: saturated, and zero-demand padding columns.
    CASES = [
        [(0.3, 1e8)],
        [(0.9, 8e9), (0.8, 7e9), (0.5, 1e9)],
        [(0.99, 5e10), (0.97, 4e10)],
        [(0.0, 0.0), (0.6, 3e9), (0.0, 0.0)],
    ]

    def _dram(self):
        return DramModel(
            M8, peak_bytes_per_sec=M8.dram_peak_bytes_per_sec_per_socket
        )

    def test_matches_scalar_solve(self):
        np = pytest.importorskip("numpy")
        width = max(len(c) for c in self.CASES)
        F = np.zeros((len(self.CASES), width))
        D = np.zeros((len(self.CASES), width))
        for i, case in enumerate(self.CASES):
            for j, (f, d) in enumerate(case):
                F[i, j] = f
                D[i, j] = d
        ks, wh = self._dram().solve_batch(F, D)
        for i, case in enumerate(self.CASES):
            segs = [SegmentDemand(f, d) for f, d in case]
            scalar = self._dram().stall_multiplier(segs)
            assert float(ks[i]) == scalar, f"case {i}"

    def test_warm_start_threads_like_scalar(self):
        np = pytest.importorskip("numpy")
        case = self.CASES[2]
        F = np.asarray([[f for f, _ in case]])
        D = np.asarray([[d for _, d in case]])
        dram = self._dram()
        k1, wh = dram.solve_batch(F, D)
        k2, _ = dram.solve_batch(F, D, wh)
        segs = [SegmentDemand(f, d) for f, d in case]
        scalar = self._dram()
        total = sum(d for _, d in case)
        s1 = scalar._solve(segs, total)
        s2 = scalar._solve(segs, total)  # second call reuses _warm_hi
        assert float(k1[0]) == s1
        assert float(k2[0]) == s2


# ------------------------------------------------------------ metrics/cal


class TestHitRates:
    def test_derived_rates(self):
        reg = MetricsRegistry()
        reg.inc("dram.solve.hits", 3.0)
        reg.inc("dram.solve.misses", 1.0)
        reg.inc("lonely.hits", 2.0)  # no paired .misses: no rate
        assert reg.hit_rates() == {"dram.solve.hit_rate": 0.75}
        rendered = reg.render()
        assert "dram.solve.hit_rate" in rendered
        assert "75.0%" in rendered

    def test_snapshot_stays_raw(self):
        reg = MetricsRegistry()
        reg.inc("x.hits", 1.0)
        reg.inc("x.misses", 1.0)
        assert "x.hit_rate" not in reg.snapshot()["counters"]

    def test_zero_total_emits_no_rate(self):
        reg = MetricsRegistry()
        reg.inc("x.hits", 0.0)
        reg.inc("x.misses", 0.0)
        assert reg.hit_rates() == {}


class TestSharedCalibration:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_calibrates_once_per_sweep(self, jobs, fresh_metrics):
        """Both the in-process and the pooled sweep paths calibrate the
        Ψ/Φ model exactly once per prophet — never per grid point."""
        prophet = ParallelProphet(machine=M8)
        profile = prophet.profile(memory_loop)
        BatchPredictor(prophet, jobs=jobs).sweep(
            profile, threads=[4, 8], methods=("syn",), memory_model=True
        )
        assert fresh_metrics.counter_value("memmodel.calibrations") == 1.0
