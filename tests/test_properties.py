"""Property-based tests (hypothesis) for the core invariants listed in
DESIGN.md: tree/compression conservation, kernel work conservation and
fairness, DRAM-model monotonicity, schedule partitioning, and emulator
bounds."""

from __future__ import annotations


import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.compress import compress_tree
from repro.core.ffemu import FastForwardEmulator
from repro.core.profiler import IntervalProfiler
from repro.core.tree import Node, NodeKind, ProgramTree
from repro.runtime import RuntimeOverheads, Schedule
from repro.simhw import DramModel, MachineConfig, SegmentDemand
from repro.simos import Compute, Join, SimKernel, Spawn

M = MachineConfig(n_cores=4)
M12 = MachineConfig(n_cores=12)
ZERO_OH = RuntimeOverheads().scaled(0.0)

# ----------------------------------------------------------- strategies

lengths = st.floats(min_value=1.0, max_value=1e6, allow_nan=False)


@st.composite
def loop_trees(draw):
    """A ROOT -> SEC -> TASK* -> (U|L)* tree with random lengths/locks."""
    root = Node(NodeKind.ROOT)
    sec = root.add(Node(NodeKind.SEC, name="s"))
    n_tasks = draw(st.integers(min_value=1, max_value=12))
    for _ in range(n_tasks):
        task = sec.add(Node(NodeKind.TASK))
        n_leaves = draw(st.integers(min_value=1, max_value=4))
        for _ in range(n_leaves):
            if draw(st.booleans()):
                task.add(Node(NodeKind.U, length=draw(lengths)))
            else:
                task.add(
                    Node(
                        NodeKind.L,
                        length=draw(lengths),
                        lock_id=draw(st.integers(1, 3)),
                    )
                )
    return ProgramTree(root)


@st.composite
def segment_sets(draw):
    """Physically consistent segments: demand is proportional to the memory
    fraction, capped at the per-core maximum line_size·freq/ω₀ (a segment
    cannot generate traffic without spending stall time on it)."""
    d_max = M12.line_size * M12.freq_hz / M12.base_miss_stall
    n = draw(st.integers(min_value=1, max_value=16))
    segs = []
    for _ in range(n):
        f = draw(st.floats(min_value=0.0, max_value=1.0))
        segs.append(SegmentDemand(mem_fraction=f, demand_bytes_per_sec=f * d_max))
    return segs


# ----------------------------------------------------------- tree properties


class TestTreeProperties:
    @given(loop_trees())
    @settings(max_examples=50, deadline=None)
    def test_compression_preserves_total_length(self, tree):
        before = tree.serial_cycles()
        compress_tree(tree, tolerance=0.05)
        assert tree.serial_cycles() == pytest.approx(before, rel=1e-9)

    @given(loop_trees())
    @settings(max_examples=50, deadline=None)
    def test_compression_never_grows(self, tree):
        before = tree.unique_nodes()
        stats = compress_tree(tree, tolerance=0.05)
        assert stats.nodes_after <= before
        assert 0.0 <= stats.reduction <= 1.0

    @given(loop_trees())
    @settings(max_examples=50, deadline=None)
    def test_compressed_tree_validates(self, tree):
        compress_tree(tree, tolerance=0.05)
        tree.root.validate()

    @given(loop_trees())
    @settings(max_examples=30, deadline=None)
    def test_logical_nodes_invariant_under_compression(self, tree):
        logical_before = tree.logical_nodes()
        compress_tree(tree, tolerance=0.0)
        assert tree.logical_nodes() == logical_before


# ----------------------------------------------------------- DRAM properties


class TestDramProperties:
    @given(segment_sets())
    @settings(max_examples=100, deadline=None)
    def test_slowdowns_at_least_one(self, segs):
        model = DramModel(M12)
        assert all(s >= 1.0 - 1e-12 for s in model.slowdowns(segs))

    @given(segment_sets())
    @settings(max_examples=100, deadline=None)
    def test_achieved_bandwidth_capped(self, segs):
        model = DramModel(M12)
        achieved = model.aggregate_achieved_bandwidth(segs)
        assert achieved <= M12.dram_peak_bytes_per_sec * (1 + 1e-6)

    @given(segment_sets(), st.floats(min_value=0.1, max_value=1e10))
    @settings(max_examples=60, deadline=None)
    def test_adding_demand_never_speeds_others(self, segs, extra_demand):
        model = DramModel(M12)
        before = model.stall_multiplier(segs)
        extra = SegmentDemand(mem_fraction=0.5, demand_bytes_per_sec=extra_demand)
        after = model.stall_multiplier(segs + [extra])
        assert after >= before - 1e-9


# ----------------------------------------------------------- kernel properties


class TestKernelProperties:
    @given(
        st.lists(
            st.floats(min_value=100.0, max_value=200_000.0), min_size=1, max_size=10
        ),
        st.integers(min_value=1, max_value=6),
    )
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_work_conservation(self, costs, n_cores):
        """Total instructions retired equals total demanded regardless of
        core count, preemption, or interleaving."""
        machine = MachineConfig(n_cores=n_cores, timeslice_cycles=5_000.0)
        kernel = SimKernel(machine)

        def worker(c):
            yield Compute(cycles=c, instructions=c)

        def main():
            ts = []
            for c in costs:
                ts.append((yield Spawn(worker(c))))
            for t in ts:
                yield Join(t)

        kernel.spawn(main())
        end = kernel.run()
        assert kernel.counters.instructions == pytest.approx(sum(costs), rel=1e-9)
        # Makespan bounds: max task <= end, and <= serial sum (+slack).
        assert end >= max(costs) - 1e-6
        assert end <= sum(costs) + 1e-6

    @given(
        st.lists(
            st.floats(min_value=1000.0, max_value=100_000.0), min_size=2, max_size=8
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_makespan_work_and_span_bounds(self, costs):
        """Greedy scheduling: span <= makespan <= work/P + span."""
        p = 3
        machine = MachineConfig(n_cores=p, timeslice_cycles=2_000.0)
        kernel = SimKernel(machine)

        def worker(c):
            yield Compute(cycles=c)

        def main():
            ts = []
            for c in costs:
                ts.append((yield Spawn(worker(c))))
            for t in ts:
                yield Join(t)

        kernel.spawn(main())
        end = kernel.run()
        work, span = sum(costs), max(costs)
        assert end >= span - 1e-6
        assert end <= work / p + span + 1e-6


# --------------------------------------------------------- schedule properties


class TestScheduleProperties:
    @given(
        st.integers(min_value=0, max_value=200),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=1, max_value=7),
    )
    def test_static_assignment_partitions(self, n_iters, n_threads, chunk):
        for sched in (Schedule.static(), Schedule.static_chunk(chunk)):
            owned = sched.static_assignment(n_iters, n_threads)
            assert len(owned) == n_threads
            flat = sorted(i for block in owned for i in block)
            assert flat == list(range(n_iters))

    @given(
        st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=9)
    )
    def test_chunks_partition(self, n_iters, chunk):
        chunks = Schedule.dynamic(chunk).chunks(n_iters)
        flat = [i for c in chunks for i in c]
        assert flat == list(range(n_iters))
        assert all(len(c) <= chunk for c in chunks)

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=8))
    def test_static_balance(self, n_iters, n_threads):
        owned = Schedule.static().static_assignment(n_iters, n_threads)
        sizes = [len(b) for b in owned]
        assert max(sizes) - min(sizes) <= 1


# --------------------------------------------------------- emulator properties


class TestEmulatorProperties:
    @given(loop_trees(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_ff_speedup_bounded(self, tree, n_threads):
        ff = FastForwardEmulator(ZERO_OH)
        time, _ = ff.emulate_profile(tree, n_threads, Schedule.static_chunk(1))
        speedup = tree.serial_cycles() / time
        assert 0 < speedup <= n_threads + 1e-9

    @given(loop_trees())
    @settings(max_examples=20, deadline=None)
    def test_ff_single_thread_exact(self, tree):
        ff = FastForwardEmulator(ZERO_OH)
        time, _ = ff.emulate_profile(tree, 1, Schedule.static())
        assert time == pytest.approx(tree.serial_cycles(), rel=1e-9)

    @given(
        st.lists(
            st.floats(min_value=1000.0, max_value=50_000.0), min_size=1, max_size=10
        ),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_ff_matches_real_replay_on_flat_loops(self, costs, n_threads):
        """For single-level loops without locks the FF and the simulated
        runtime agree (zero overheads, static,1)."""

        def program(tr):
            with tr.section("loop"):
                for c in costs:
                    with tr.task():
                        tr.compute(c)

        profile = IntervalProfiler(M12).profile(program)
        ff = FastForwardEmulator(ZERO_OH)
        ff_time, _ = ff.emulate_profile(
            profile.tree, n_threads, Schedule.static_chunk(1)
        )
        from repro.core.executor import ParallelExecutor, ReplayMode

        ex = ParallelExecutor(
            M12, schedule=Schedule.static_chunk(1), overheads=ZERO_OH
        )
        real = ex.execute_profile(profile.tree, n_threads, ReplayMode.REAL)
        assert ff_time == pytest.approx(real.total_cycles, rel=0.02)


# ------------------------------------------------------- profiling properties


class TestProfilerProperties:
    @given(
        st.lists(
            st.floats(min_value=10.0, max_value=1e5), min_size=1, max_size=15
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_net_lengths_exact_with_perfect_subtraction(self, costs):
        def program(tr):
            with tr.section("loop"):
                for c in costs:
                    with tr.task():
                        tr.compute(c)

        profile = IntervalProfiler(M, compress=False).profile(program)
        assert profile.serial_cycles() == pytest.approx(sum(costs), rel=1e-9)

    @given(
        st.lists(st.floats(min_value=10.0, max_value=1e5), min_size=1, max_size=10),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_residual_overhead_bounded(self, costs, accuracy):
        def program(tr):
            with tr.section("loop"):
                for c in costs:
                    with tr.task():
                        tr.compute(c)

        profile = IntervalProfiler(
            M, compress=False, overhead_subtraction_accuracy=accuracy
        ).profile(program)
        events = 2 + 2 * len(costs)
        max_residual = events * M.tracer_overhead_cycles
        net = profile.serial_cycles()
        assert sum(costs) - 1e-6 <= net <= sum(costs) + max_residual + 1e-6


# --------------------------------------------------------- serialization


class TestSerializationProperties:
    @given(loop_trees())
    @settings(max_examples=40, deadline=None)
    def test_tree_roundtrip_preserves_everything(self, tree):
        from repro.core.serialize import tree_from_dict, tree_to_dict

        restored = tree_from_dict(tree_to_dict(tree))
        assert restored.serial_cycles() == pytest.approx(tree.serial_cycles())
        assert restored.logical_nodes() == tree.logical_nodes()
        assert restored.unique_nodes() == tree.unique_nodes()
        restored.root.validate()

    @given(loop_trees())
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_after_compression_preserves_sharing(self, tree):
        from repro.core.compress import compress_tree
        from repro.core.serialize import tree_from_dict, tree_to_dict

        compress_tree(tree, tolerance=0.05)
        restored = tree_from_dict(tree_to_dict(tree))
        assert restored.unique_nodes() == tree.unique_nodes()
        assert restored.serial_cycles() == pytest.approx(tree.serial_cycles())

    @given(loop_trees(), st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_emulates_identically(self, tree, n_threads):
        from repro.core.serialize import tree_from_dict, tree_to_dict

        ff = FastForwardEmulator(ZERO_OH)
        a, _ = ff.emulate_profile(tree, n_threads, Schedule.static_chunk(1))
        restored = tree_from_dict(tree_to_dict(tree))
        b, _ = ff.emulate_profile(restored, n_threads, Schedule.static_chunk(1))
        assert a == pytest.approx(b, rel=1e-12)


# ----------------------------------------------------- stride intersection


class TestStrideClosureProperties:
    @given(
        st.integers(0, 500),
        st.integers(1, 16),
        st.integers(1, 40),
        st.integers(-3, 3),
    )
    @settings(max_examples=80, deadline=None)
    def test_shifting_by_stride_keeps_intersection(self, start, stride, count, k):
        """A range always intersects its own shift by k strides when the
        shifted window still overlaps."""
        from repro.depend import StrideRange, ranges_intersect

        a = StrideRange(start, stride, count)
        b = StrideRange(start + k * stride, stride, count)
        overlap_expected = abs(k) < count
        assert ranges_intersect(a, b) == overlap_expected
