"""Tests for the bottleneck diagnoser (Table III's 'diagnose bottleneck')."""


from repro.core.diagnose import BottleneckDiagnoser
from repro.core.profiler import IntervalProfiler
from repro.runtime import Schedule
from repro.simhw import MachineConfig
from repro.simhw.memtrace import AccessPattern, MemSpec

M = MachineConfig(n_cores=12)


def profile_of(program, machine=M):
    return IntervalProfiler(machine).profile(program)


def diagnose_one(program, n_threads=8, schedule=Schedule.static(), with_mem=False):
    profile = profile_of(program)
    if with_mem:
        from repro import ParallelProphet

        ParallelProphet(machine=M).attach_burdens(profile, [n_threads])
    d = BottleneckDiagnoser(schedule=schedule)
    results = d.diagnose(profile, n_threads)
    assert len(results) >= 1
    return results[0]


class TestDominantCauses:
    def test_lock_bound_section(self):
        def program(tr):
            with tr.section("locks"):
                for _ in range(16):
                    with tr.task():
                        tr.compute(10_000)
                        with tr.lock(1):
                            tr.compute(40_000)

        diag = diagnose_one(program)
        assert diag.dominant_cause() == "locks"
        assert diag.predicted_speedup < 2.0  # heavily serialized

    def test_imbalanced_section(self):
        def program(tr):
            with tr.section("ramp"):
                for i in range(16):
                    with tr.task():
                        tr.compute((i + 1) * 100_000)

        diag = diagnose_one(program, schedule=Schedule.static())
        assert diag.dominant_cause() == "imbalance"

    def test_overhead_bound_section(self):
        def program(tr):
            with tr.section("fine"):
                for _ in range(64):
                    with tr.task():
                        tr.compute(300)  # tiny tasks, dispatch dominates

        diag = diagnose_one(program, schedule=Schedule.dynamic(1))
        assert diag.dominant_cause() == "overhead"

    def test_memory_bound_section(self):
        def program(tr):
            spec = MemSpec(AccessPattern.STREAMING, bytes_touched=18_000_000)
            with tr.section("stream"):
                for _ in range(16):
                    with tr.task():
                        tr.compute(10_000_000, mem=spec)

        diag = diagnose_one(program, n_threads=12, with_mem=True)
        assert diag.dominant_cause() == "memory"

    def test_healthy_section_is_structural(self):
        def program(tr):
            with tr.section("good"):
                for _ in range(24):
                    with tr.task():
                        tr.compute(1_000_000)

        diag = diagnose_one(program)
        assert diag.dominant_cause() == "structure"
        assert diag.predicted_speedup > 7.0
        assert diag.lost_speedup < 1.0


class TestDiagnosisMechanics:
    def test_attributions_nonnegative(self):
        def program(tr):
            with tr.section("s"):
                for i in range(8):
                    with tr.task():
                        tr.compute(10_000 * (i + 1))
                        with tr.lock(1):
                            tr.compute(2_000)

        diag = diagnose_one(program)
        assert all(v >= 0.0 for v in diag.attributions.values())
        assert set(diag.attributions) == {"imbalance", "locks", "overhead", "memory"}

    def test_multiple_sections_diagnosed(self):
        def program(tr):
            with tr.section("a"):
                with tr.task():
                    tr.compute(1_000)
            with tr.section("b"):
                with tr.task():
                    tr.compute(1_000)

        profile = profile_of(program)
        results = BottleneckDiagnoser().diagnose(profile, 4)
        assert [r.name for r in results] == ["a", "b"]

    def test_summary_renders(self):
        def program(tr):
            with tr.section("s"):
                for _ in range(4):
                    with tr.task():
                        tr.compute(1_000)

        diag = diagnose_one(program, n_threads=4)
        text = diag.summary()
        assert "s:" in text and "dominant cause" in text

    def test_ideal_and_lost(self):
        def program(tr):
            with tr.section("s"):
                with tr.task():
                    tr.compute(100_000)  # one task: cannot scale

        diag = diagnose_one(program, n_threads=8)
        assert diag.ideal_speedup == 8.0
        assert diag.lost_speedup > 6.5
        # A single task is a structural limit: no knockout recovers it.
        assert diag.dominant_cause() == "structure"
