"""Tests for nowait semantics (PAR_SEC_END(nowait), Table II).

The paper lists multiple locks and OpenMP's ``nowait`` as annotation
features beyond Suitability's.  With nowait, a thread finishing its share
of one worksharing loop proceeds straight into the next — complementary
imbalance across consecutive loops cancels instead of stacking barriers.
"""

import pytest

from repro import ParallelProphet
from repro.core.executor import ParallelExecutor, ReplayMode
from repro.core.ffemu import FastForwardEmulator
from repro.core.profiler import IntervalProfiler
from repro.core.tree import group_nowait_chains
from repro.runtime import OmpRuntime, RuntimeOverheads, Schedule
from repro.simhw import MachineConfig
from repro.simos import Compute, SimKernel

M = MachineConfig(n_cores=4)
ZERO_OH = RuntimeOverheads().scaled(0.0)


def complementary_program(nowait: bool):
    """Loop A's ramp and loop B's reverse ramp: with nowait each thread's
    A+B total is constant; with barriers the imbalance bites twice."""

    def program(tr):
        with tr.section("A", barrier=not nowait):
            for i in range(4):
                with tr.task():
                    tr.compute((i + 1) * 100_000)
        with tr.section("B"):
            for i in range(4):
                with tr.task():
                    tr.compute((4 - i) * 100_000)

    return program


class TestChainGrouping:
    def test_chain_formed(self):
        profile = IntervalProfiler(M).profile(complementary_program(True))
        groups = group_nowait_chains(profile.tree.root.children)
        assert len(groups) == 1
        assert isinstance(groups[0], list) and len(groups[0]) == 2

    def test_no_chain_with_barriers(self):
        profile = IntervalProfiler(M).profile(complementary_program(False))
        groups = group_nowait_chains(profile.tree.root.children)
        assert len(groups) == 2
        assert all(not isinstance(g, list) for g in groups)

    def test_trailing_nowait_not_chained_alone(self):
        def program(tr):
            with tr.section("only", barrier=False):
                with tr.task():
                    tr.compute(100)

        profile = IntervalProfiler(M).profile(program)
        groups = group_nowait_chains(profile.tree.root.children)
        assert len(groups) == 1 and not isinstance(groups[0], list)


class TestRuntimeParallelLoops:
    def test_nowait_lets_threads_flow_through(self):
        kernel = SimKernel(M)
        omp = OmpRuntime(kernel, ZERO_OH)

        def body(c):
            def f():
                yield Compute(cycles=c)

            return f

        loop_a = [body((i + 1) * 100_000) for i in range(4)]
        loop_b = [body((4 - i) * 100_000) for i in range(4)]

        def master():
            yield from omp.parallel_loops(
                [(loop_a, Schedule.static_chunk(1), True),
                 (loop_b, Schedule.static_chunk(1), False)],
                n_threads=4,
            )

        kernel.spawn(master())
        end = kernel.run()
        # Per-thread totals are all 500k: perfect overlap.
        assert end == pytest.approx(500_000.0, rel=0.01)

    def test_barrier_boundary_stacks_imbalance(self):
        kernel = SimKernel(M)
        omp = OmpRuntime(kernel, ZERO_OH)

        def body(c):
            def f():
                yield Compute(cycles=c)

            return f

        loop_a = [body((i + 1) * 100_000) for i in range(4)]
        loop_b = [body((4 - i) * 100_000) for i in range(4)]

        def master():
            yield from omp.parallel_loops(
                [(loop_a, Schedule.static_chunk(1), False),
                 (loop_b, Schedule.static_chunk(1), False)],
                n_threads=4,
            )

        kernel.spawn(master())
        end = kernel.run()
        # Both loops bottleneck on their 400k iteration: 800k total.
        assert end == pytest.approx(800_000.0, rel=0.01)


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def prophet(self):
        return ParallelProphet(machine=M, overheads=ZERO_OH)

    def test_real_replay_gains_from_nowait(self, prophet):
        with_nowait = prophet.profile(complementary_program(True))
        without = prophet.profile(complementary_program(False))
        sched = "static,1"
        r_nowait = prophet.measure_real(with_nowait, [4], schedule=sched)
        r_barrier = prophet.measure_real(without, [4], schedule=sched)
        assert r_nowait.speedup(n_threads=4) == pytest.approx(4.0, rel=0.02)
        assert r_barrier.speedup(n_threads=4) == pytest.approx(2.5, rel=0.05)

    def test_ff_predicts_the_gain(self, prophet):
        profile = prophet.profile(complementary_program(True))
        ff = FastForwardEmulator(ZERO_OH)
        time, results = ff.emulate_profile(
            profile.tree, 4, Schedule.static_chunk(1)
        )
        assert profile.serial_cycles() / time == pytest.approx(4.0, rel=0.02)
        assert results[0].name == "A+B"

    def test_syn_predicts_the_gain(self, prophet):
        profile = prophet.profile(complementary_program(True))
        report = prophet.predict(
            profile, [4], schedules=["static,1"], methods=("syn",),
            memory_model=False,
        )
        assert report.speedup(method="syn", n_threads=4) == pytest.approx(
            4.0, rel=0.02
        )

    def test_ff_and_replay_agree_on_chain(self, prophet):
        def program(tr):
            with tr.section("x", barrier=False):
                for i in range(8):
                    with tr.task():
                        tr.compute(10_000 + i * 7_000)
            with tr.section("y", barrier=False):
                for i in range(8):
                    with tr.task():
                        tr.compute(80_000 - i * 7_000)
            with tr.section("z"):
                for i in range(8):
                    with tr.task():
                        tr.compute(30_000)

        profile = prophet.profile(program)
        ff = FastForwardEmulator(ZERO_OH)
        ff_time, _ = ff.emulate_profile(profile.tree, 4, Schedule.static_chunk(1))
        ex = ParallelExecutor(M, schedule=Schedule.static_chunk(1), overheads=ZERO_OH)
        real = ex.execute_profile(profile.tree, 4, ReplayMode.REAL)
        assert ff_time == pytest.approx(real.total_cycles, rel=0.03)

    def test_dynamic_chain_replay_works(self, prophet):
        """The synthesizer/replay handles dynamic-schedule chains exactly;
        the FF falls back to barrier semantics (documented)."""
        profile = prophet.profile(complementary_program(True))
        ex = ParallelExecutor(M, schedule=Schedule.dynamic(1), overheads=ZERO_OH)
        real = ex.execute_profile(profile.tree, 4, ReplayMode.REAL)
        assert real.speedup > 3.0
        ff = FastForwardEmulator(ZERO_OH)
        ff_time, _ = ff.emulate_profile(profile.tree, 4, Schedule.dynamic(1))
        # FF fallback: not worse than barrier semantics would be.
        assert profile.serial_cycles() / ff_time <= real.speedup + 1e-9
