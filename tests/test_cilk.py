"""Tests for the Cilk-style work-stealing runtime."""

import pytest

from repro.errors import ConfigurationError
from repro.runtime import CilkPool, RuntimeOverheads
from repro.simhw import MachineConfig
from repro.simos import Compute, SimKernel

ZERO_OH = RuntimeOverheads().scaled(0.0)


def run_pool(machine, root_factory, n_workers, overheads=ZERO_OH):
    kernel = SimKernel(machine)
    pool = CilkPool(kernel, n_workers=n_workers, overheads=overheads)

    def master():
        yield from pool.run(root_factory)

    kernel.spawn(master(), name="master")
    end = kernel.run()
    return pool, end


class TestSpawnSync:
    def test_spawned_children_run_in_parallel(self, machine4):
        def leaf(ctx):
            yield Compute(cycles=100_000)

        def root(ctx):
            for _ in range(3):
                yield from ctx.spawn(leaf)
            yield from leaf(ctx)
            yield from ctx.sync()

        _, end = run_pool(machine4, root, 4)
        assert end == pytest.approx(100_000.0, rel=0.02)

    def test_every_task_runs_exactly_once(self, machine4):
        ran = []

        def leaf(tag):
            def f(ctx):
                ran.append(tag)
                yield Compute(cycles=1000)

            return f

        def root(ctx):
            for i in range(10):
                yield from ctx.spawn(leaf(i))
            yield from ctx.sync()

        run_pool(machine4, root, 4)
        assert sorted(ran) == list(range(10))

    def test_sync_waits_for_children(self, machine4):
        from repro.simos import GetTime

        after_sync = []

        def slow(ctx):
            yield Compute(cycles=77_000)

        def root(ctx):
            yield from ctx.spawn(slow)
            yield from ctx.sync()
            after_sync.append((yield GetTime()))

        run_pool(machine4, root, 2)
        assert after_sync[0] >= 77_000.0

    def test_implicit_sync_at_task_end(self, machine4):
        """A Cilk function does not return while its children run: the
        grandparent's sync must also cover grandchildren."""
        ran = []

        def grandchild(ctx):
            ran.append("gc")
            yield Compute(cycles=50_000)

        def child(ctx):
            yield from ctx.spawn(grandchild)
            yield Compute(cycles=1000)
            # No explicit sync: implicit sync must still cover grandchild.

        def root(ctx):
            yield from ctx.spawn(child)
            yield from ctx.sync()
            assert ran == ["gc"]

        run_pool(machine4, root, 2)

    def test_recursive_tree_scales(self, machine4):
        def rec(depth):
            def f(ctx):
                if depth == 0:
                    yield Compute(cycles=50_000)
                    return
                yield from ctx.spawn(rec(depth - 1))
                yield from rec(depth - 1)(ctx)
                yield from ctx.sync()

            return f

        pool, end = run_pool(machine4, rec(4), 4)
        # 16 leaves x 50k = 800k serial; near-ideal on 4 workers.
        assert end == pytest.approx(200_000.0, rel=0.15)
        assert pool.steals > 0

    def test_single_worker_serializes(self, machine4):
        def rec(depth):
            def f(ctx):
                if depth == 0:
                    yield Compute(cycles=10_000)
                    return
                yield from ctx.spawn(rec(depth - 1))
                yield from rec(depth - 1)(ctx)
                yield from ctx.sync()

            return f

        _, end = run_pool(machine4, rec(3), 1)
        assert end == pytest.approx(80_000.0, rel=0.01)

    def test_call_runs_inline(self, machine4):
        def callee(ctx):
            yield Compute(cycles=5000)
            return "inline"

        results = []

        def root(ctx):
            results.append((yield from ctx.call(callee)))

        run_pool(machine4, root, 2)
        assert results == ["inline"]


class TestCilkFor:
    def test_all_iterations_execute(self, machine4):
        ran = []

        def body(i):
            def f(ctx):
                ran.append(i)
                yield Compute(cycles=1000)

            return f

        bodies = [body(i) for i in range(25)]

        def root(ctx):
            pool = ctx.pool
            yield from pool.cilk_for(ctx, bodies)

        run_pool(machine4, root, 4)
        assert sorted(ran) == list(range(25))

    def test_balanced_for_scales(self, machine4):
        def body(ctx):
            yield Compute(cycles=50_000)

        def root(ctx):
            yield from ctx.pool.cilk_for(ctx, [body] * 16)

        _, end = run_pool(machine4, root, 4)
        assert end == pytest.approx(200_000.0, rel=0.15)

    def test_imbalanced_for_load_balances(self, machine4):
        # One huge iteration + many small: stealing keeps the rest busy.
        def big(ctx):
            yield Compute(cycles=400_000)

        def small(ctx):
            yield Compute(cycles=20_000)

        def root(ctx):
            yield from ctx.pool.cilk_for(ctx, [big] + [small] * 20, grain=1)

        _, end = run_pool(machine4, root, 4)
        serial = 400_000 + 20 * 20_000
        # Ideal makespan = max(big task, serial/4) = the big task: stealing
        # must pack the small tasks alongside it.
        assert end == pytest.approx(400_000.0, rel=0.1)
        assert end < 0.6 * serial

    def test_empty_for(self, machine4):
        def root(ctx):
            yield from ctx.pool.cilk_for(ctx, [])

        _, end = run_pool(machine4, root, 2)
        assert end == 0.0

    def test_grain_respected(self, machine4):
        """With grain >= n no splitting happens: zero steals possible from
        the range (the root runs it whole)."""

        def body(ctx):
            yield Compute(cycles=100)

        def root(ctx):
            yield from ctx.pool.cilk_for(ctx, [body] * 8, grain=8)

        pool, _ = run_pool(machine4, root, 4)
        assert pool.spawns == 0


class TestPoolMechanics:
    def test_worker_count_validation(self, machine4):
        kernel = SimKernel(machine4)
        with pytest.raises(ConfigurationError):
            CilkPool(kernel, n_workers=0)

    def test_oversubscribed_pool_still_correct(self):
        machine = MachineConfig(n_cores=2, timeslice_cycles=5_000.0)
        ran = []

        def body(i):
            def f(ctx):
                ran.append(i)
                yield Compute(cycles=30_000)

            return f

        kernel = SimKernel(machine)
        pool = CilkPool(kernel, n_workers=6, overheads=ZERO_OH)

        def root(ctx):
            yield from pool.cilk_for(ctx, [body(i) for i in range(12)])

        def master():
            yield from pool.run(root)

        kernel.spawn(master())
        end = kernel.run()
        assert sorted(ran) == list(range(12))
        # 12 x 30k on 2 physical cores.
        assert end == pytest.approx(180_000.0, rel=0.1)

    def test_pool_reusable_across_runs(self, machine4):
        def body(ctx):
            yield Compute(cycles=1000)

        kernel = SimKernel(machine4)
        pool = CilkPool(kernel, n_workers=2, overheads=ZERO_OH)

        def master():
            yield from pool.run(body)
            yield from pool.run(body)

        kernel.spawn(master())
        end = kernel.run()
        assert end == pytest.approx(2000.0, rel=0.01)

    def test_tasks_run_counter(self, machine4):
        def leaf(ctx):
            yield Compute(cycles=10)

        def root(ctx):
            for _ in range(5):
                yield from ctx.spawn(leaf)
            yield from ctx.sync()

        pool, _ = run_pool(machine4, root, 3)
        assert pool.tasks_run == 6  # root + 5 leaves
