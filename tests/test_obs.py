"""Unit tests for the observability subsystem (repro.obs)."""

from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    TraceEvent,
    Tracer,
    get_metrics,
    get_tracer,
    set_metrics,
    set_tracer,
)
from repro.obs.tracer import COUNTER, INSTANT, SPAN


class TestTracer:
    def test_disabled_by_default_and_noop(self):
        tr = Tracer()
        assert not tr.enabled
        tr.span("a", ts=0.0, dur=1.0)
        tr.instant("b", ts=0.0)
        tr.counter("c", ts=0.0, value=1.0)
        assert len(tr) == 0
        assert tr.events() == []

    def test_records_when_enabled(self):
        tr = Tracer(enabled=True)
        tr.span("work", ts=10.0, dur=5.0, track="cpu0", cat="sched")
        tr.instant("mark", ts=12.0, track="thread:t1")
        tr.counter("bw", ts=13.0, value=2.5)
        kinds = [e.kind for e in tr.events()]
        assert kinds == [SPAN, INSTANT, COUNTER]
        span = tr.events()[0]
        assert (span.name, span.ts, span.dur, span.track) == (
            "work", 10.0, 5.0, "cpu0"
        )
        counter = tr.events()[2]
        assert counter.args == {"value": 2.5}

    def test_ring_buffer_drops_oldest(self):
        tr = Tracer(capacity=3, enabled=True)
        for i in range(5):
            tr.instant(f"e{i}", ts=float(i))
        assert len(tr) == 3
        assert tr.dropped == 2
        assert [e.name for e in tr.events()] == ["e2", "e3", "e4"]

    def test_clear_resets_everything(self):
        tr = Tracer(capacity=2, enabled=True)
        tr.offset = 100.0
        for i in range(4):
            tr.instant(f"e{i}", ts=float(i))
        tr.clear()
        assert len(tr) == 0
        assert tr.dropped == 0
        assert tr.offset == 0.0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_global_swap(self):
        original = get_tracer()
        mine = Tracer(enabled=True)
        try:
            old = set_tracer(mine)
            assert old is original
            assert get_tracer() is mine
        finally:
            set_tracer(original)

    def test_enable_mid_flight(self):
        tr = Tracer()
        tr.span("ignored", ts=0.0, dur=1.0)
        tr.enabled = True
        tr.span("kept", ts=1.0, dur=1.0)
        assert [e.name for e in tr.events()] == ["kept"]


class TestMetricsRegistry:
    def test_counters(self):
        m = MetricsRegistry()
        m.inc("a")
        m.inc("a", 2.5)
        assert m.counter_value("a") == 3.5
        assert m.counter_value("missing") == 0.0

    def test_gauges_last_write_wins(self):
        m = MetricsRegistry()
        assert m.gauge_value("g") is None
        m.gauge("g", 1.0)
        m.gauge("g", 7.0)
        assert m.gauge_value("g") == 7.0

    def test_histograms(self):
        m = MetricsRegistry()
        assert m.histogram("h") is None
        for v in (1.0, 5.0, 3.0):
            m.observe("h", v)
        h = m.histogram("h")
        assert h.count == 3
        assert h.total == 9.0
        assert h.min == 1.0 and h.max == 5.0
        assert h.mean == 3.0

    def test_snapshot_is_plain_and_sorted(self):
        m = MetricsRegistry()
        m.inc("z")
        m.inc("a")
        m.gauge("g", 1.0)
        m.observe("h", 2.0)
        snap = m.snapshot()
        assert list(snap["counters"]) == ["a", "z"]
        assert snap["histograms"]["h"] == {
            "count": 1, "sum": 2.0, "min": 2.0, "max": 2.0
        }
        # Mutating the registry afterwards must not change the snapshot.
        m.inc("a", 10.0)
        assert snap["counters"]["a"] == 1.0

    def test_reset(self):
        m = MetricsRegistry()
        m.inc("a")
        m.observe("h", 1.0)
        m.reset()
        assert m.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_merge_counters_commutative(self):
        snaps = []
        for vals in ((1.0, 3.0), (2.0, 5.0), (4.0, 7.0)):
            w = MetricsRegistry()
            w.inc("x", vals[0])
            w.inc("y", vals[1])
            w.observe("h", vals[0])
            snaps.append(w.snapshot())

        forward = MetricsRegistry()
        for s in snaps:
            forward.merge(s)
        backward = MetricsRegistry()
        for s in reversed(snaps):
            backward.merge(s)
        assert forward.snapshot() == backward.snapshot()
        assert forward.counter_value("x") == 7.0
        assert forward.histogram("h").count == 3

    def test_merge_empty_histogram_is_noop(self):
        w = MetricsRegistry()
        w.observe("h", 1.0)
        w.reset()
        w.inc("dummy")  # snapshot with no histograms
        parent = MetricsRegistry()
        parent.merge(w.snapshot())
        assert parent.histogram("h") is None

    def test_render(self):
        m = MetricsRegistry()
        assert m.render() == "(no metrics recorded)"
        m.inc("ff.fast_path.hits", 3)
        m.gauge("g", 1.5)
        m.observe("h", 2.0)
        text = m.render()
        assert "ff.fast_path.hits" in text
        assert "counters:" in text
        assert "gauges:" in text
        assert "histograms:" in text

    def test_global_swap(self):
        original = get_metrics()
        mine = MetricsRegistry()
        try:
            old = set_metrics(mine)
            assert old is original
            assert get_metrics() is mine
        finally:
            set_metrics(original)


class TestEventShape:
    def test_trace_event_slots(self):
        e = TraceEvent(SPAN, "n", 1.0, 2.0, "t", "c", None)
        with pytest.raises(AttributeError):
            e.extra = 1
