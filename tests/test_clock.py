"""Tests for the virtual cycle clock."""

import pytest

from repro.errors import SimulationError
from repro.simhw import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_custom_start(self):
        assert VirtualClock(100.0).now == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock(-1.0)

    def test_advance_to(self):
        clock = VirtualClock()
        clock.advance_to(50.0)
        assert clock.now == 50.0

    def test_advance_by(self):
        clock = VirtualClock(10.0)
        clock.advance_by(5.0)
        assert clock.now == 15.0

    def test_advance_by_negative_rejected(self):
        clock = VirtualClock()
        with pytest.raises(SimulationError):
            clock.advance_by(-1.0)

    def test_time_never_decreases(self):
        clock = VirtualClock()
        clock.advance_to(100.0)
        with pytest.raises(SimulationError):
            clock.advance_to(50.0)

    def test_tiny_float_drift_tolerated(self):
        clock = VirtualClock()
        clock.advance_to(100.0)
        # Sub-nanosecond backwards drift from float arithmetic is clamped,
        # not fatal.
        clock.advance_to(100.0 - 1e-10)
        assert clock.now == 100.0

    def test_advance_to_same_time_is_noop(self):
        clock = VirtualClock()
        clock.advance_to(10.0)
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_reset(self):
        clock = VirtualClock()
        clock.advance_to(1000.0)
        clock.reset()
        assert clock.now == 0.0

    def test_reset_negative_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock().reset(-5.0)
