"""Tests for the comparison predictors: analytical models, Kismet-style
upper bound, and the Suitability-like emulator."""

import pytest

from repro.baselines import (
    KismetEstimator,
    SuitabilityAnalysis,
    amdahl_speedup,
    eyerman_eeckhout_speedup,
    gustafson_speedup,
    karp_flatt_metric,
)
from repro.core.profiler import IntervalProfiler
from repro.errors import ConfigurationError
from repro.simhw import MachineConfig

M = MachineConfig(n_cores=12)


def profile_of(program):
    return IntervalProfiler(M).profile(program)


class TestAmdahlFamily:
    def test_amdahl_no_serial_part(self):
        assert amdahl_speedup(0.0, 8) == pytest.approx(8.0)

    def test_amdahl_all_serial(self):
        assert amdahl_speedup(1.0, 64) == pytest.approx(1.0)

    def test_amdahl_limit(self):
        # s=0.1 -> asymptote at 10x.
        assert amdahl_speedup(0.1, 10_000) == pytest.approx(10.0, rel=0.01)

    def test_amdahl_validation(self):
        with pytest.raises(ConfigurationError):
            amdahl_speedup(1.5, 2)
        with pytest.raises(ConfigurationError):
            amdahl_speedup(0.5, 0)

    def test_gustafson_linear_in_t(self):
        assert gustafson_speedup(0.0, 8) == pytest.approx(8.0)
        assert gustafson_speedup(0.5, 8) == pytest.approx(4.5)

    def test_karp_flatt_recovers_serial_fraction(self):
        t = 8
        s = 0.2
        measured = amdahl_speedup(s, t)
        assert karp_flatt_metric(measured, t) == pytest.approx(s, rel=1e-9)

    def test_karp_flatt_undefined_at_one_thread(self):
        with pytest.raises(ConfigurationError):
            karp_flatt_metric(1.0, 1)

    def test_eyerman_eeckhout_reduces_to_amdahl(self):
        # No critical sections -> plain Amdahl.
        assert eyerman_eeckhout_speedup(0.1, 0.0, 0.0, 8) == pytest.approx(
            amdahl_speedup(0.1, 8)
        )

    def test_eyerman_eeckhout_contention_hurts(self):
        free = eyerman_eeckhout_speedup(0.0, 0.3, 0.0, 8)
        contended = eyerman_eeckhout_speedup(0.0, 0.3, 1.0, 8)
        assert contended < free
        # Fully-contended critical sections bound the speedup.
        assert contended <= 1.0 / 0.3 + 1e-9

    def test_eyerman_eeckhout_validation(self):
        with pytest.raises(ConfigurationError):
            eyerman_eeckhout_speedup(0.7, 0.5, 0.0, 4)


class TestKismet:
    def test_upper_bound_on_balanced_loop(self):
        def program(tr):
            with tr.section("loop"):
                for _ in range(16):
                    with tr.task():
                        tr.compute(10_000)

        profile = profile_of(program)
        report = KismetEstimator().predict(profile, [2, 4, 8])
        assert report.speedup(n_threads=8) == pytest.approx(8.0, rel=0.01)

    def test_critical_path_bounds(self):
        # One long task dominates: speedup capped by it regardless of t.
        def program(tr):
            with tr.section("loop"):
                with tr.task():
                    tr.compute(90_000)
                for _ in range(9):
                    with tr.task():
                        tr.compute(1_000)

        profile = profile_of(program)
        report = KismetEstimator().predict(profile, [12])
        # total=99k, cp=90k -> bound = 1.1.
        assert report.speedup(n_threads=12) == pytest.approx(1.1, rel=0.01)

    def test_serial_part_counted(self):
        def program(tr):
            tr.compute(50_000)
            with tr.section("s"):
                for _ in range(4):
                    with tr.task():
                        tr.compute(12_500)

        profile = profile_of(program)
        report = KismetEstimator().predict(profile, [4])
        # 100k serial; best parallel = 50k + 12.5k.
        assert report.speedup(n_threads=4) == pytest.approx(1.6, rel=0.01)

    def test_kismet_never_predicts_saturation(self):
        """Kismet's defining limitation: an upper bound that keeps growing
        even for memory-bound code."""
        from repro.simhw.memtrace import AccessPattern, MemSpec

        def program(tr):
            spec = MemSpec(AccessPattern.STREAMING, bytes_touched=18_000_000)
            with tr.section("hot"):
                for _ in range(12):
                    with tr.task():
                        tr.compute(10_000_000, mem=spec)

        profile = profile_of(program)
        report = KismetEstimator().predict(profile, [2, 4, 8, 12])
        speeds = [report.speedup(n_threads=t) for t in (2, 4, 8, 12)]
        assert speeds == sorted(speeds)
        assert speeds[-1] == pytest.approx(12.0, rel=0.01)

    def test_nested_sections_in_path(self):
        def program(tr):
            with tr.section("outer"):
                with tr.task():
                    with tr.section("inner"):
                        for _ in range(4):
                            with tr.task():
                                tr.compute(10_000)

        profile = profile_of(program)
        report = KismetEstimator().predict(profile, [4])
        assert report.speedup(n_threads=4) == pytest.approx(4.0, rel=0.01)


class TestSuitability:
    def test_balanced_loop_ok(self):
        def program(tr):
            with tr.section("loop"):
                for _ in range(32):
                    with tr.task():
                        tr.compute(1_000_000)

        profile = profile_of(program)
        report = SuitabilityAnalysis().predict(profile, [2, 4, 8])
        assert report.speedup(n_threads=8) == pytest.approx(8.0, rel=0.1)

    def test_power_of_two_interpolation(self):
        def program(tr):
            with tr.section("loop"):
                for _ in range(32):
                    with tr.task():
                        tr.compute(100_000)

        profile = profile_of(program)
        report = SuitabilityAnalysis().predict(profile, [4, 6, 8])
        s4 = report.speedup(n_threads=4)
        s6 = report.speedup(n_threads=6)
        s8 = report.speedup(n_threads=8)
        assert s6 == pytest.approx((s4 + s8) / 2, rel=1e-9)

    def test_inner_loop_overhead_overestimated(self):
        """The paper's LU observation: frequent inner-loop sections make
        Suitability markedly more pessimistic than the real runtime."""

        def program(tr):
            for _k in range(40):
                with tr.section("inner"):
                    for _ in range(8):
                        with tr.task():
                            tr.compute(20_000)

        profile = profile_of(program)
        suit = SuitabilityAnalysis().predict(profile, [8])
        from repro.core.synthesizer import Synthesizer

        syn = Synthesizer().predict(profile, 8, use_memory_model=False)
        assert suit.speedup(n_threads=8) < 0.8 * syn.estimate.speedup

    def test_deep_recursion_unsupported(self):
        def program(tr):
            def rec(depth):
                if depth == 0:
                    tr.compute(1000)
                    return
                with tr.section(f"d{depth}"):
                    with tr.task():
                        rec(depth - 1)
                    with tr.task():
                        rec(depth - 1)

            with tr.section("root"):
                with tr.task():
                    rec(5)

        profile = profile_of(program)
        analysis = SuitabilityAnalysis()
        assert not analysis.supports(profile)
        assert len(analysis.predict(profile, [2, 4])) == 0

    def test_shallow_nesting_supported(self):
        def program(tr):
            with tr.section("outer"):
                with tr.task():
                    with tr.section("inner"):
                        with tr.task():
                            tr.compute(1000)

        profile = profile_of(program)
        assert SuitabilityAnalysis().supports(profile)

    def test_no_memory_model(self):
        """Suitability ignores memory: predictions for a saturating workload
        stay near-linear (Fig. 12(f)'s 'Suit' line)."""
        from repro.simhw.memtrace import AccessPattern, MemSpec

        def program(tr):
            spec = MemSpec(AccessPattern.STREAMING, bytes_touched=18_000_000)
            with tr.section("hot"):
                for _ in range(12):
                    with tr.task():
                        tr.compute(10_000_000, mem=spec)

        profile = profile_of(program)
        # 12 tasks on 4 threads = 3 even waves; the real speedup saturates
        # near 3.6 here while Suitability predicts ~4 (memory-blind).
        report = SuitabilityAnalysis().predict(profile, [4])
        assert report.speedup(n_threads=4) > 3.7


class TestHillMarty:
    def test_reduces_to_amdahl_with_unit_cores(self):
        from repro.baselines import hill_marty_speedup

        assert hill_marty_speedup(0.2, 16, 1) == pytest.approx(
            amdahl_speedup(0.2, 16)
        )

    def test_bigger_cores_help_serial_code(self):
        from repro.baselines import hill_marty_speedup

        # Highly serial: a beefier core wins despite fewer of them.
        serial_heavy = 0.8
        small_cores = hill_marty_speedup(serial_heavy, 64, 1)
        big_cores = hill_marty_speedup(serial_heavy, 64, 16)
        assert big_cores > small_cores

    def test_many_small_cores_help_parallel_code(self):
        from repro.baselines import hill_marty_speedup

        parallel_heavy = 0.01
        small_cores = hill_marty_speedup(parallel_heavy, 64, 1)
        big_cores = hill_marty_speedup(parallel_heavy, 64, 64)
        assert small_cores > big_cores

    def test_validation(self):
        from repro.baselines import hill_marty_speedup

        with pytest.raises(ConfigurationError):
            hill_marty_speedup(0.5, 4, 8)
        with pytest.raises(ConfigurationError):
            hill_marty_speedup(0.5, 0, 1)


class TestCilkview:
    def _balanced(self, n=8, cost=10_000):
        def program(tr):
            with tr.section("loop"):
                for _ in range(n):
                    with tr.task():
                        tr.compute(cost)

        return profile_of(program)

    def test_work_and_span(self):
        from repro.baselines import CilkviewAnalyzer
        from repro.runtime import RuntimeOverheads

        cv = CilkviewAnalyzer(RuntimeOverheads().scaled(0.0))
        prof = cv.analyze(self._balanced(8, 10_000))
        assert prof.work == pytest.approx(80_000)
        assert prof.span == pytest.approx(10_000)
        assert prof.parallelism == pytest.approx(8.0)

    def test_bounds_bracket_real(self):
        from repro.baselines import CilkviewAnalyzer
        from repro.core.executor import ParallelExecutor, ReplayMode

        profile = self._balanced(32, 100_000)
        cv = CilkviewAnalyzer()
        sp = cv.analyze(profile)
        ex = ParallelExecutor(M, paradigm="cilk")
        real = ex.execute_profile(profile.tree, 8, ReplayMode.REAL).speedup
        lo, hi = sp.estimate_range(8)
        assert lo <= real * 1.05
        assert real <= hi + 1e-9

    def test_upper_bound_laws(self):
        from repro.baselines import CilkviewAnalyzer

        sp = CilkviewAnalyzer().analyze(self._balanced(4, 10_000))
        # Span law: never above parallelism (4); work law: never above P.
        assert sp.speedup_upper_bound(2) == pytest.approx(2.0)
        assert sp.speedup_upper_bound(16) == pytest.approx(4.0)

    def test_serial_chain_has_parallelism_one(self):
        from repro.baselines import CilkviewAnalyzer

        def program(tr):
            tr.compute(50_000)
            with tr.section("one"):
                with tr.task():
                    tr.compute(50_000)

        sp = CilkviewAnalyzer().analyze(profile_of(program))
        assert sp.parallelism == pytest.approx(1.0)

    def test_nested_sections_reduce_span(self):
        from repro.baselines import CilkviewAnalyzer
        from repro.runtime import RuntimeOverheads

        def program(tr):
            with tr.section("outer"):
                for _ in range(2):
                    with tr.task():
                        with tr.section("inner"):
                            for _ in range(2):
                                with tr.task():
                                    tr.compute(10_000)

        cv = CilkviewAnalyzer(RuntimeOverheads().scaled(0.0))
        sp = cv.analyze(profile_of(program))
        assert sp.work == pytest.approx(40_000)
        assert sp.span == pytest.approx(10_000)

    def test_burden_lowers_the_floor(self):
        from repro.baselines import CilkviewAnalyzer

        # Fine-grained tasks: burdened estimate well below the ceiling.
        sp = CilkviewAnalyzer().analyze(self._balanced(64, 500))
        lo, hi = sp.estimate_range(8)
        assert lo < 0.7 * hi
        assert sp.burdened_span > sp.span
        assert sp.spawns == 64
