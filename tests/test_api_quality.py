"""API-quality gates: every public item is documented and importable.

These are the "doc comments on every public item" deliverable enforced as
tests, so documentation cannot silently rot.
"""

from __future__ import annotations

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro",
    "repro.simhw",
    "repro.simos",
    "repro.runtime",
    "repro.core",
    "repro.baselines",
    "repro.workloads",
    "repro.depend",
]


def _walk_modules():
    seen = []
    for pkg_name in PACKAGES:
        pkg = importlib.import_module(pkg_name)
        seen.append(pkg)
        for info in pkgutil.iter_modules(pkg.__path__, prefix=pkg_name + "."):
            if info.name.endswith("__main__"):
                continue  # importing it would run the CLI
            seen.append(importlib.import_module(info.name))
    return seen


ALL_MODULES = _walk_modules()


class TestDocumentation:
    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_module_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), module.__name__

    @pytest.mark.parametrize("module", ALL_MODULES, ids=lambda m: m.__name__)
    def test_public_classes_and_functions_documented(self, module):
        undocumented = []
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", None) != module.__name__:
                continue  # re-export; documented at home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
                continue
            if inspect.isclass(obj):
                for mname, member in vars(obj).items():
                    if mname.startswith("_"):
                        continue
                    if inspect.isfunction(member) and not (
                        member.__doc__ and member.__doc__.strip()
                    ):
                        undocumented.append(f"{name}.{mname}")
        assert not undocumented, (
            f"{module.__name__}: undocumented public items: {undocumented}"
        )


class TestExports:
    @pytest.mark.parametrize(
        "pkg_name", [p for p in PACKAGES if p != "repro.workloads"]
    )
    def test_all_exports_resolve(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        for name in getattr(pkg, "__all__", []):
            assert getattr(pkg, name, None) is not None, f"{pkg_name}.{name}"

    def test_top_level_lazy_prophet(self):
        assert repro.ParallelProphet.__name__ == "ParallelProphet"

    def test_unknown_top_level_attribute(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist
