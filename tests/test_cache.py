"""Tests for the set-associative LRU cache simulator."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.simhw import CacheConfig, SetAssociativeCache


def make_cache(capacity=64 * 1024, line=64, assoc=4) -> SetAssociativeCache:
    return SetAssociativeCache(CacheConfig(capacity, line, assoc))


class TestCacheConfig:
    def test_geometry(self):
        cfg = CacheConfig(64 * 1024, 64, 4)
        assert cfg.n_sets == 256
        assert cfg.n_lines == 1024

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity_bytes": 0},
            {"capacity_bytes": 1024, "line_size": 48},
            {"capacity_bytes": 1024, "associativity": 0},
            {"capacity_bytes": 1000, "line_size": 64, "associativity": 4},
        ],
    )
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            CacheConfig(**{"capacity_bytes": 64 * 1024, **kwargs})


class TestCacheBehaviour:
    def test_cold_miss_then_hit(self):
        cache = make_cache()
        assert cache.access(0x1000) is False
        assert cache.access(0x1000) is True
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1

    def test_same_line_different_bytes_hit(self):
        cache = make_cache(line=64)
        cache.access(0x1000)
        assert cache.access(0x1000 + 63) is True

    def test_adjacent_lines_are_distinct(self):
        cache = make_cache(line=64)
        cache.access(0x1000)
        assert cache.access(0x1000 + 64) is False

    def test_lru_eviction_within_set(self):
        cache = make_cache(capacity=4 * 64, line=64, assoc=4)  # one set
        lines = [i * 64 for i in range(4)]
        for a in lines:
            cache.access(a)
        cache.access(lines[0])  # refresh line 0 -> line 1 is now LRU
        cache.access(5 * 64)  # evicts line 1
        assert cache.access(lines[0]) is True
        assert cache.access(lines[1]) is False  # was evicted

    def test_eviction_counted(self):
        cache = make_cache(capacity=4 * 64, line=64, assoc=4)
        for i in range(5):
            cache.access(i * 64)
        assert cache.stats.evictions == 1

    def test_working_set_fits_no_capacity_misses(self):
        cache = make_cache(capacity=64 * 1024)
        addrs = np.arange(0, 32 * 1024, 64)
        cache.access_block(addrs)
        misses_second_pass = cache.access_block(addrs)
        assert misses_second_pass == 0

    def test_streaming_overflow_always_misses(self):
        cache = make_cache(capacity=8 * 1024)
        addrs = np.arange(0, 64 * 1024, 64)  # 8x the capacity
        first = cache.access_block(addrs)
        second = cache.access_block(addrs)
        assert first == len(addrs)
        assert second == len(addrs)  # LRU keeps none of a circular sweep

    def test_miss_ratio(self):
        cache = make_cache()
        cache.access(0)
        cache.access(0)
        assert cache.stats.miss_ratio == pytest.approx(0.5)
        assert cache.stats.hits == 1

    def test_reset(self):
        cache = make_cache()
        cache.access(0x2000)
        cache.reset()
        assert cache.stats.accesses == 0
        assert cache.resident_lines == 0
        assert cache.access(0x2000) is False

    def test_contains(self):
        cache = make_cache()
        cache.access(0x4000)
        assert cache.contains(0x4000)
        assert cache.contains(0x4000 + 32)  # same line
        assert not cache.contains(0x8000)

    def test_resident_lines_bounded_by_capacity(self):
        cache = make_cache(capacity=8 * 1024, line=64)
        cache.access_block(np.arange(0, 1 << 20, 64))
        assert cache.resident_lines == cache.config.n_lines
